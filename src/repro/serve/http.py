"""``HotspotServer`` — the stdlib-only HTTP face of the serving layer.

A minimal asyncio HTTP/1.1 server (no third-party framework; the
container images this repo targets carry only the standard library)
exposing five endpoints, all published under ``/v1/`` (the bare legacy
paths keep answering as aliases, with a ``Deprecation: true`` header
and a ``Link`` naming the ``/v1`` successor):

* ``GET /v1/hotspots`` — surviving hotspots of the **latest published
  snapshot** as GeoJSON; query parameters ``bbox=minx,miny,maxx,maxy``,
  ``since=`` / ``until=`` (ISO-8601), ``min_confidence=``,
  ``confirmed=true|false`` and ``static=true|false`` (static heat
  sources — refineries — flagged by the federation) filter the
  features.
* ``POST /v1/stsparql`` — a read-only stSPARQL endpoint over the same
  snapshot (body: the query text, or JSON ``{"query": ..., "params":
  ..., "explain": ..., "engine": ..., "timeout_s": ...}`` — the same
  keyword contract as :meth:`Strabon.query`).  Updates are refused
  with **403** — writes go through the monitoring service, never
  through the serving layer; a request overrunning ``timeout_s``
  answers **408**.
* ``GET /v1/metrics`` — the Prometheus exposition of the process
  registry.
* ``GET /v1/health`` — the monitoring service's degradation status
  (acquisition outcome counts, circuit-breaker state, dead letters,
  deadline misses, SLO burn rates, latest snapshot identity).
* ``GET /v1/debug/tracez`` — recent complete distributed traces from
  the process tracer (``limit=``, ``trace_id=``, ``format=text``), for
  correlating a served ``trace_id`` back to the acquisition that
  produced the data.

Every data-bearing response carries a normalised ``provenance`` block:
the opaque consistency ``token`` (see
:class:`~repro.serve.state.ConsistencyToken`) plus its sequence /
generation parts, the publishing acquisition's ``trace_id``, the
request's own ``request_trace_id``, and the scatter-gather fields
(``shards`` / ``degraded`` / ``missing_shards``) the sharded router
fills in.  The pre-v1 ``snapshot`` block is retained for
compatibility.

Every request runs under a ``serve.request`` span that joins the trace
named by incoming ``x-trace-id`` / ``x-parent-span`` headers (or roots
a fresh one); responses carrying a snapshot embed both the publishing
acquisition's ``trace_id`` and the request's own ``request_trace_id``.

The event loop never runs a query itself: evaluation happens on a
thread pool (``read_workers`` wide) so slow reads overlap and the
accept loop stays responsive.  Every request is answered from one
atomically-published :class:`~repro.serve.state.PublishedSnapshot`, so
a response can never observe half-refined acquisition state.

:func:`serve_in_thread` runs the whole server (loop included) on a
daemon thread — the shape tests, examples and the load benchmark use.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import SnapshotWriteError
from repro.obs import (
    TraceContext,
    context_of,
    get_flight_recorder,
    get_metrics,
    get_tracer,
    prometheus_text,
    recent_traces,
)
from repro.obs.slo import SERVE_LATENCY_SLO_S
from repro.serve.hotspots import _stamp, parse_bbox, query_hotspots
from repro.serve.sse import (
    SseHub,
    format_batch,
    format_comment,
    frame_sequence,
)
from repro.serve.state import ConsistencyToken
from repro.serve.subscribe import SubscriptionError
from repro.stsparql.errors import QueryTimeoutError, SparqlError

_tracer = get_tracer()
_metrics = get_metrics()

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    422: "Unprocessable Entity",
    503: "Service Unavailable",
}

#: Endpoints published under ``/v1/``; the bare legacy paths keep
#: working as aliases but answer with a ``Deprecation`` header naming
#: the successor.
V1_ENDPOINTS = (
    "/hotspots",
    "/stsparql",
    "/metrics",
    "/health",
    "/debug/tracez",
    "/subscriptions",
    "/stream",
)

#: Seconds of stream silence before a keep-alive comment is emitted.
STREAM_KEEPALIVE_S = 15.0

#: Engine names a request may select via ``query_engine`` (the JSON
#: body's ``engine`` field over HTTP).
QUERY_ENGINES = ("auto", "interpreted", "columnar")

#: Request bodies beyond this are refused (a read endpoint has no
#: business accepting megabytes).
MAX_BODY_BYTES = 1 << 20


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    if extra_headers:
        head += "".join(
            f"{name}: {value}\r\n"
            for name, value in extra_headers.items()
        )
    return head.encode("ascii") + b"\r\n" + body


def _json_response(status: int, payload: Any) -> bytes:
    return _response(
        status, json.dumps(payload).encode("utf-8"), "application/json"
    )


def _deprecation_headers(route: str) -> Dict[str, str]:
    """Headers a legacy (unversioned) alias carries on every answer."""
    return {
        "Deprecation": "true",
        "Link": f"</v1{route}>; rel=\"successor-version\"",
    }


def _splice_headers(payload: bytes, headers: Dict[str, str]) -> bytes:
    """Insert extra header lines into an already-built raw response."""
    head, _, rest = payload.partition(b"\r\n")
    lines = "".join(
        f"{name}: {value}\r\n" for name, value in headers.items()
    ).encode("ascii")
    return head + b"\r\n" + lines + rest


class HotspotServer:
    """Serve the latest published snapshot over HTTP.

    ``service`` is duck-typed: it must expose a ``publisher`` (a
    :class:`~repro.serve.state.SnapshotPublisher`) and a ``health()``
    returning a JSON-serialisable dict — a
    :class:`~repro.core.service.FireMonitoringService` in teleios mode,
    or any stand-in with the same two attributes.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        read_workers: int = 4,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.read_workers = read_workers
        self._executor = ThreadPoolExecutor(
            max_workers=read_workers, thread_name_prefix="serve-read"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        #: (host, port) actually bound — resolved once started (port=0
        #: asks the kernel for a free one).
        self.address: Optional[Tuple[str, int]] = None
        #: SSE fan-out hub — attached to the service's subscription
        #: engine lazily, on the first ``/v1/stream`` connection.
        self.sse = SseHub()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)

    @property
    def url(self) -> str:
        if self.address is None:
            raise RuntimeError("server is not started")
        return f"http://{self.address[0]}:{self.address[1]}"

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                path = urlsplit(target).path.rstrip("/") or "/"
                if method == "GET" and path in (
                    "/stream",
                    "/v1/stream",
                ):
                    # SSE: the response never ends, so the stream
                    # handler owns the writer; the connection is
                    # dedicated (no keep-alive reuse after it).
                    await self._stream(writer, target, headers)
                    break
                payload = await self._dispatch(
                    method, target, headers, body
                )
                writer.write(payload)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, _version = (
                line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise asyncio.IncompleteReadError(b"", length)
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> bytes:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        # The versioned surface lives under /v1/; the bare legacy paths
        # stay as aliases whose answers carry a Deprecation header.
        if path == "/v1" or path.startswith("/v1/"):
            route = path[len("/v1"):] or "/"
            legacy = False
        else:
            route = path
            legacy = any(
                route == known or route.startswith(known + "/")
                for known in V1_ENDPOINTS
            )
        endpoint = route.lstrip("/") or "root"
        started = time.perf_counter()
        # A client sending x-trace-id / x-parent-span joins its trace;
        # otherwise the request span roots a fresh one.
        incoming = TraceContext.from_headers(headers)
        trace_id: Optional[str] = None
        try:
            with _tracer.use_context(incoming):
                with _tracer.span(
                    "serve.request", endpoint=endpoint, method=method
                ) as span:
                    trace_id = span.trace_id
                    status, payload = await self._route(
                        method,
                        route,
                        split.query,
                        body,
                        context_of(span),
                    )
                    span.set(status=status)
        except _HttpError as error:
            status = error.status
            payload = _json_response(status, {"error": str(error)})
        except SubscriptionError as error:
            status = 422
            payload = _json_response(status, {"error": str(error)})
        except SnapshotWriteError as error:
            status = 403
            payload = _json_response(status, {"error": str(error)})
        except QueryTimeoutError as error:
            status = 408
            payload = _json_response(
                status, {"error": f"{type(error).__name__}: {error}"}
            )
        except SparqlError as error:
            status = 400
            payload = _json_response(
                status, {"error": f"{type(error).__name__}: {error}"}
            )
        except Exception as error:  # noqa: BLE001 — 500, never a crash
            status = 500
            payload = _response(
                500,
                json.dumps(
                    {"error": f"{type(error).__name__}: {error}"}
                ).encode("utf-8"),
            )
            get_flight_recorder().record(
                "error",
                f"serve.{endpoint}",
                trace_id=trace_id,
                error=f"{type(error).__name__}: {error}",
            )
        if legacy:
            payload = _splice_headers(
                payload, _deprecation_headers(route)
            )
        elapsed = time.perf_counter() - started
        if _metrics.enabled:
            _metrics.counter(
                "serve_requests_total",
                "HTTP requests served, by endpoint and status",
            ).inc(endpoint=endpoint, status=str(status))
            _metrics.histogram(
                "serve_request_seconds",
                "Wall seconds per HTTP request, by endpoint",
            ).observe(elapsed, exemplar=trace_id, endpoint=endpoint)
        # Only reader-facing data requests consume the serving error
        # budget — health probes, metric scrapes and debug views are
        # not the objective (and /health reporting its own request
        # would make the report a moving target).
        if route in ("/hotspots", "/stsparql"):
            self._record_serving_slo(status, elapsed, trace_id)
        return payload

    def _record_serving_slo(
        self, status: int, elapsed: float, trace_id: Optional[str]
    ) -> None:
        slo = getattr(self.service, "slo", None)
        if slo is None:
            return
        try:
            slo.record(
                "serving-latency",
                status < 500 and elapsed < SERVE_LATENCY_SLO_S,
                trace_id=trace_id,
            )
        except KeyError:  # a stand-in service without that SLO
            pass

    async def _route(
        self, method: str, path: str, query: str, body: bytes, ctx
    ) -> Tuple[int, bytes]:
        if path == "/hotspots":
            if method != "GET":
                raise _HttpError(405, "use GET /hotspots")
            return 200, await self._hotspots(query, ctx)
        if path == "/stsparql":
            if method != "POST":
                raise _HttpError(405, "use POST /stsparql")
            return 200, await self._stsparql(body, ctx)
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "use GET /metrics")
            text = prometheus_text(_metrics)
            return 200, _response(
                200,
                text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/health":
            if method != "GET":
                raise _HttpError(405, "use GET /health")
            health = await self._in_thread(self.service.health)
            latest = self.service.publisher.latest()
            health["provenance"] = (
                None
                if latest is None
                else self._provenance(latest, ctx)
            )
            return 200, _json_response(200, health)
        if path == "/debug/tracez":
            if method != "GET":
                raise _HttpError(405, "use GET /debug/tracez")
            return 200, self._tracez(query, ctx)
        if path == "/subscriptions" or path.startswith(
            "/subscriptions/"
        ):
            return await self._subscriptions(method, path, body, ctx)
        if path == "/stream":
            # GET /stream never reaches _route (the connection handler
            # takes it over); anything else here is a method error.
            raise _HttpError(405, "use GET /stream (SSE)")
        raise _HttpError(404, f"no such endpoint: {path}")

    # -- endpoint bodies ---------------------------------------------------

    def _in_thread(self, fn, *args, context=None):
        """Run ``fn`` on the read executor, under the request's trace
        context (worker threads have no ambient request state)."""
        if context is None:
            return asyncio.get_running_loop().run_in_executor(
                self._executor, fn, *args
            )

        def call():
            with _tracer.use_context(context):
                return fn(*args)

        return asyncio.get_running_loop().run_in_executor(
            self._executor, call
        )

    def _latest(self):
        published = self.service.publisher.latest()
        if published is None:
            raise _HttpError(
                503, "no snapshot published yet — ingest is warming up"
            )
        return published

    def _provenance(self, published, ctx=None) -> Dict[str, Any]:
        """The normalised v1 provenance block every data-bearing
        response carries: which frozen state answered (as an opaque
        consistency token plus its parts), which acquisition trace
        produced it, and — for routed responses — which shards were
        consulted and whether any were missing."""
        token = ConsistencyToken.single(
            published.sequence, published.generation
        )
        return {
            "api": "v1",
            "role": "server",
            "token": token.encode(),
            "sequence": published.sequence,
            "generation": published.generation,
            "timestamp": None
            if published.timestamp is None
            else _stamp(published.timestamp),
            "trace_id": published.trace_id,
            "request_trace_id": None if ctx is None else ctx.trace_id,
            "shards": None,
            "degraded": False,
            "missing_shards": [],
            # Per-source federation reports of the publishing
            # acquisition (empty without a federation): a reader can
            # see right in the provenance that e.g. the polar feed was
            # out when this state was produced.
            "sources": list(getattr(published, "sources", ()) or ()),
        }

    # -- subscriptions -----------------------------------------------------

    def _engine(self):
        engine = getattr(self.service, "subscriptions", None)
        if engine is None:
            raise _HttpError(
                404, "subscriptions are not enabled on this service"
            )
        return engine

    @staticmethod
    def _parse_json_body(body: bytes) -> Dict[str, Any]:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _HttpError(400, "body must be a JSON object")
        if not isinstance(doc, dict):
            raise _HttpError(400, "body must be a JSON object")
        return doc

    @staticmethod
    def _subscription_doc(engine, sub) -> Dict[str, Any]:
        doc = sub.to_dict()
        doc["cursor"] = engine.cursor(sub.id)
        return doc

    async def _subscriptions(
        self, method: str, path: str, body: bytes, ctx
    ) -> Tuple[int, bytes]:
        engine = self._engine()
        parts = [p for p in path.split("/") if p]
        if len(parts) == 1:
            if method == "GET":
                subs = engine.registry.list()
                return 200, _json_response(
                    200,
                    {
                        "count": len(subs),
                        "subscriptions": [
                            self._subscription_doc(engine, s)
                            for s in subs
                        ],
                    },
                )
            if method == "POST":
                doc = self._parse_json_body(body)
                # Registration primes against the latest snapshot (a
                # scan) — keep it off the event loop.
                sub = await self._in_thread(
                    engine.register, doc, context=ctx
                )
                return 201, _json_response(
                    201, self._subscription_doc(engine, sub)
                )
            raise _HttpError(405, "use GET or POST /subscriptions")
        sub_id = parts[1]
        if len(parts) == 2:
            if method == "GET":
                sub = engine.registry.get(sub_id)
                if sub is None:
                    raise _HttpError(
                        404, f"no such subscription: {sub_id}"
                    )
                return 200, _json_response(
                    200, self._subscription_doc(engine, sub)
                )
            if method == "DELETE":
                removed = await self._in_thread(
                    engine.remove, sub_id, context=ctx
                )
                if not removed:
                    raise _HttpError(
                        404, f"no such subscription: {sub_id}"
                    )
                return 200, _json_response(
                    200, {"removed": sub_id}
                )
            raise _HttpError(
                405, "use GET or DELETE /subscriptions/<id>"
            )
        if len(parts) == 3 and parts[2] == "ack":
            if method != "POST":
                raise _HttpError(
                    405, "use POST /subscriptions/<id>/ack"
                )
            if engine.registry.get(sub_id) is None:
                raise _HttpError(
                    404, f"no such subscription: {sub_id}"
                )
            doc = self._parse_json_body(body)
            try:
                sequence = int(doc["sequence"])
            except (KeyError, TypeError, ValueError):
                raise _HttpError(
                    400, 'ack body must be {"sequence": <int>}'
                )
            cursor = engine.ack(sub_id, sequence)
            return 200, _json_response(
                200, {"subscription": sub_id, "cursor": cursor}
            )
        raise _HttpError(404, f"no such endpoint: {path}")

    async def _stream(self, writer, target: str, headers) -> None:
        """``GET /v1/stream?subscription=<id>[&cursor=N]`` — SSE.

        Resume order: explicit ``cursor=`` beats ``Last-Event-ID``
        beats the durable acknowledged cursor.  The channel registers
        on the hub *before* the log replay, and live frames whose
        sequence the replay already covered are dropped, so the
        hand-off from replayed history to live delivery has no gap and
        no duplicate.
        """
        split = urlsplit(target)
        params = parse_qs(split.query)

        def single(name: str) -> Optional[str]:
            values = params.get(name)
            return values[-1] if values else None

        status = 200
        try:
            engine = self._engine()
            sub_id = single("subscription")
            if not sub_id:
                raise _HttpError(
                    400, "subscription= query parameter is required"
                )
            if engine.registry.get(sub_id) is None:
                raise _HttpError(
                    404, f"no such subscription: {sub_id}"
                )
            cursor_text = single("cursor")
            if cursor_text is None:
                cursor_text = headers.get("last-event-id")
            if cursor_text is not None:
                try:
                    cursor = int(cursor_text)
                except ValueError:
                    raise _HttpError(
                        400, f"bad cursor: {cursor_text!r}"
                    )
            else:
                cursor = engine.cursor(sub_id)
        except _HttpError as error:
            status = error.status
            writer.write(
                _json_response(status, {"error": str(error)})
            )
            await writer.drain()
            if _metrics.enabled:
                _metrics.counter(
                    "serve_requests_total",
                    "HTTP requests served, by endpoint and status",
                ).inc(endpoint="stream", status=str(status))
            return
        if _metrics.enabled:
            _metrics.counter(
                "serve_requests_total",
                "HTTP requests served, by endpoint and status",
            ).inc(endpoint="stream", status="200")
        self.sse.attach(engine)
        channel = self.sse.register(sub_id)
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
            )
            last = cursor
            for batch in engine.replay_after(cursor):
                for frame in format_batch(
                    batch, subscription_id=sub_id
                ):
                    writer.write(frame)
                last = max(last, batch.sequence)
            await writer.drain()
            while True:
                try:
                    frame = await asyncio.wait_for(
                        channel.queue.get(),
                        timeout=STREAM_KEEPALIVE_S,
                    )
                except asyncio.TimeoutError:
                    writer.write(format_comment())
                    await writer.drain()
                    continue
                sequence = frame_sequence(frame)
                if sequence is not None and sequence <= last:
                    continue  # the log replay already covered it
                writer.write(frame)
                await writer.drain()
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            self.sse.unregister(channel)

    def _tracez(self, query: str, ctx=None) -> bytes:
        """Recent complete traces (``/debug/tracez``).

        Query parameters: ``limit=`` (default 20), ``trace_id=`` to
        filter to one trace, ``format=text`` for the human tree
        rendering instead of JSON.
        """
        params = parse_qs(query)

        def single(name: str) -> Optional[str]:
            values = params.get(name)
            return values[-1] if values else None

        try:
            limit = int(single("limit") or "20")
        except ValueError as error:
            raise _HttpError(400, f"bad limit: {error}")
        if limit < 1:
            raise _HttpError(400, "limit must be >= 1")
        traces = recent_traces(
            _tracer, limit=limit, trace_id=single("trace_id")
        )
        if single("format") == "text":
            blocks = [
                f"trace {t['trace_id']} ({t['span_count']} span(s), "
                f"{t['status']})\n{t['tree']}"
                for t in traces
            ]
            return _response(
                200,
                ("\n\n".join(blocks) + "\n").encode("utf-8"),
                "text/plain; charset=utf-8",
            )
        latest = self.service.publisher.latest()
        return _json_response(
            200,
            {
                "tracing_enabled": _tracer.enabled,
                "count": len(traces),
                "traces": traces,
                "provenance": None
                if latest is None
                else self._provenance(latest, ctx),
            },
        )

    async def _hotspots(self, query: str, ctx=None) -> bytes:
        params = parse_qs(query)

        def single(name: str) -> Optional[str]:
            values = params.get(name)
            return values[-1] if values else None

        try:
            bbox_text = single("bbox")
            bbox = None if bbox_text is None else parse_bbox(bbox_text)
            conf_text = single("min_confidence")
            min_confidence = (
                None if conf_text is None else float(conf_text)
            )
        except ValueError as error:
            raise _HttpError(400, str(error))
        def flag(name: str) -> Optional[bool]:
            text = single(name)
            if text is None:
                return None
            lowered = text.lower()
            if lowered not in ("true", "false", "1", "0"):
                raise _HttpError(
                    400, f"{name} must be true/false, got {text!r}"
                )
            return lowered in ("true", "1")

        confirmed = flag("confirmed")
        static = flag("static")
        published = self._latest()
        collection = await self._in_thread(
            lambda: query_hotspots(
                published,
                bbox=bbox,
                since=single("since"),
                until=single("until"),
                min_confidence=min_confidence,
                confirmed=confirmed,
                static=static,
            ),
            context=ctx,
        )
        if ctx is not None:
            # Provenance both ways: the publishing acquisition's trace
            # (set by query_hotspots) plus this request's own trace.
            collection["snapshot"]["request_trace_id"] = ctx.trace_id
        collection["provenance"] = self._provenance(published, ctx)
        return _json_response(200, collection)

    @staticmethod
    def _parse_query_body(body: bytes) -> Dict[str, Any]:
        """Decode an ``/stsparql`` request body into the unified query
        contract: raw query text, or JSON ``{"query": ..., "params":
        ..., "explain": ..., "engine": ..., "timeout_s": ...}`` —
        field-for-field the keywords of :meth:`Strabon.query`."""
        text = body.decode("utf-8", errors="replace").strip()
        fields: Dict[str, Any] = {
            "query": text,
            "params": None,
            "explain": False,
            "engine": None,
            "timeout_s": None,
        }
        if text.startswith("{"):
            try:
                doc = json.loads(text)
                fields["query"] = doc["query"]
                fields["params"] = doc.get("params")
                fields["explain"] = bool(doc.get("explain", False))
                fields["engine"] = doc.get("engine")
                fields["timeout_s"] = doc.get("timeout_s")
            except (json.JSONDecodeError, KeyError, TypeError):
                raise _HttpError(
                    400, 'JSON body must look like {"query": "..."}'
                )
        if not fields["query"]:
            raise _HttpError(400, "empty query")
        params = fields["params"]
        if params is not None and not isinstance(params, dict):
            raise _HttpError(400, "params must be a JSON object")
        engine = fields["engine"]
        if engine is not None and engine not in QUERY_ENGINES:
            raise _HttpError(
                400,
                f"engine must be one of {'/'.join(QUERY_ENGINES)}, "
                f"got {engine!r}",
            )
        timeout_s = fields["timeout_s"]
        if timeout_s is not None:
            try:
                timeout_s = float(timeout_s)
            except (TypeError, ValueError):
                raise _HttpError(400, "timeout_s must be a number")
            if timeout_s <= 0:
                raise _HttpError(400, "timeout_s must be > 0")
            fields["timeout_s"] = timeout_s
        return fields

    async def _stsparql(self, body: bytes, ctx=None) -> bytes:
        fields = self._parse_query_body(body)
        explain = fields["explain"]
        published = self._latest()
        result = await self._in_thread(
            lambda: published.view.query(
                fields["query"],
                params=fields["params"],
                explain=explain,
                query_engine=fields["engine"],
                timeout=fields["timeout_s"],
            ),
            context=ctx,
        )
        from repro.stsparql.eval import SolutionSet

        if explain:
            # The executed plan (engine, join order, estimates), not
            # the solutions.
            payload: Any = dict(result)
        elif isinstance(result, SolutionSet):
            payload = result.to_sparql_json()
        elif isinstance(result, bool):
            payload = {"head": {}, "boolean": result}
        else:  # CONSTRUCT — triple count only over HTTP
            payload = {"triples": len(result)}
        payload = dict(payload)
        payload["snapshot"] = {
            "sequence": published.sequence,
            "generation": published.generation,
            "trace_id": published.trace_id,
        }
        if ctx is not None:
            payload["snapshot"]["request_trace_id"] = ctx.trace_id
        payload["provenance"] = self._provenance(published, ctx)
        return _json_response(200, payload)


class ServerHandle:
    """A running :class:`HotspotServer` on a background thread."""

    def __init__(self, server: HotspotServer, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def address(self) -> Tuple[str, int]:
        assert self.server.address is not None
        return self.server.address

    def stop(self) -> None:
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout=10)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(
    service,
    host: str = "127.0.0.1",
    port: int = 0,
    read_workers: int = 4,
) -> ServerHandle:
    """Start a :class:`HotspotServer` (and its event loop) on a daemon
    thread; returns once the socket is bound."""
    server = HotspotServer(
        service, host=host, port=port, read_workers=read_workers
    )
    return spawn_server(server, "hotspot-server")


def spawn_server(
    server: HotspotServer, thread_name: str
) -> ServerHandle:
    """Run an already-built server (or subclass — the router) with its
    own event loop on a daemon thread; returns once bound."""
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def runner() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        try:
            loop.run_forever()
        finally:
            # Open keep-alive connections are still parked in
            # readline(); cancel them and let the cancellations land
            # before the loop closes.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(
        target=runner, name=thread_name, daemon=True
    )
    thread.start()
    if not started.wait(timeout=10):
        raise RuntimeError(f"{thread_name} failed to start in 10s")
    return ServerHandle(server, thread, loop)
