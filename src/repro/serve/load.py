"""A small closed-loop HTTP load generator (stdlib ``http.client``).

Drives a running :class:`~repro.serve.http.HotspotServer` with N
concurrent clients, each looping over a fixed request mix on a
keep-alive connection, and reports throughput and latency quantiles —
the numbers behind ``BENCH_serve.json``.

Closed-loop means each client issues its next request only after the
previous response arrives: offered load adapts to server speed, so the
measured throughput is the server's capacity at that concurrency, not a
drop rate.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: A request: ``("GET", "/hotspots?min_confidence=0.5")`` or
#: ``("POST", "/stsparql", "SELECT ...")``.
Request = Union[Tuple[str, str], Tuple[str, str, str]]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


@dataclass
class LoadReport:
    """What one load run measured."""

    clients: int
    requests: int
    errors: int
    seconds: float
    latencies: List[float] = field(default_factory=list, repr=False)
    status_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def quantiles(self) -> Dict[str, float]:
        ordered = sorted(self.latencies)
        return {
            "p50_ms": _percentile(ordered, 0.50) * 1e3,
            "p95_ms": _percentile(ordered, 0.95) * 1e3,
            "p99_ms": _percentile(ordered, 0.99) * 1e3,
            "max_ms": (ordered[-1] * 1e3) if ordered else 0.0,
        }

    def summary(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "clients": float(self.clients),
            "requests": float(self.requests),
            "errors": float(self.errors),
            "seconds": self.seconds,
            "throughput_rps": self.throughput_rps,
        }
        out.update(self.quantiles())
        return out


class LoadGenerator:
    """Closed-loop load against one host:port."""

    def __init__(
        self,
        host: str,
        port: int,
        requests: Sequence[Request],
        clients: int = 4,
    ) -> None:
        if not requests:
            raise ValueError("need at least one request in the mix")
        self.host = host
        self.port = port
        self.requests = list(requests)
        self.clients = clients

    def _client_loop(
        self,
        stop: threading.Event,
        budget: Optional[int],
        latencies: List[float],
        statuses: List[int],
        offset: int,
    ) -> None:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=30
        )
        sent = 0
        index = offset
        try:
            while not stop.is_set() and (
                budget is None or sent < budget
            ):
                request = self.requests[index % len(self.requests)]
                index += 1
                method, path = request[0], request[1]
                body = request[2] if len(request) > 2 else None
                t0 = time.perf_counter()
                try:
                    conn.request(method, path, body=body)
                    response = conn.getresponse()
                    response.read()
                    status = response.status
                except (
                    http.client.HTTPException,
                    ConnectionError,
                    OSError,
                ):
                    conn.close()
                    conn = http.client.HTTPConnection(
                        self.host, self.port, timeout=30
                    )
                    status = -1
                latencies.append(time.perf_counter() - t0)
                statuses.append(status)
                sent += 1
        finally:
            conn.close()

    def run(
        self,
        duration_s: Optional[float] = None,
        total_requests: Optional[int] = None,
    ) -> LoadReport:
        """Run until ``duration_s`` elapses or every client has issued
        its share of ``total_requests`` (whichever is given)."""
        if (duration_s is None) == (total_requests is None):
            raise ValueError(
                "give exactly one of duration_s / total_requests"
            )
        budget = (
            None
            if total_requests is None
            else max(1, total_requests // self.clients)
        )
        stop = threading.Event()
        per_client: List[Tuple[List[float], List[int]]] = [
            ([], []) for _ in range(self.clients)
        ]
        threads = [
            threading.Thread(
                target=self._client_loop,
                args=(stop, budget, lats, stats, i),
                name=f"load-client-{i}",
                daemon=True,
            )
            for i, (lats, stats) in enumerate(per_client)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        if duration_s is not None:
            time.sleep(duration_s)
            stop.set()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        latencies = [v for lats, _ in per_client for v in lats]
        statuses = [s for _, stats in per_client for s in stats]
        status_counts: Dict[int, int] = {}
        for s in statuses:
            status_counts[s] = status_counts.get(s, 0) + 1
        errors = sum(
            n for s, n in status_counts.items() if s < 200 or s >= 400
        )
        return LoadReport(
            clients=self.clients,
            requests=len(latencies),
            errors=errors,
            seconds=elapsed,
            latencies=latencies,
            status_counts=status_counts,
        )


def fetch_json(
    host: str,
    port: int,
    path: str,
    method: str = "GET",
    body: Optional[str] = None,
) -> dict:
    """One-shot request helper (tests and examples)."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        data = response.read()
        if response.status != 200:
            raise RuntimeError(
                f"{method} {path} -> {response.status}: {data[:200]!r}"
            )
        return json.loads(data)
    finally:
        conn.close()
