"""Read-side worker pool: N workers, one frozen snapshot.

Scale-out for the query path.  Two execution kinds:

* ``"thread"`` — a :class:`ThreadPoolExecutor` whose workers share one
  :class:`~repro.stsparql.SnapshotView` (and therefore one R-tree, one
  inference closure, one plan cache).  Cheap to start; on CPython the
  GIL serialises the pure-Python evaluation, so threads buy concurrency
  (overlapping requests) but not parallel speed-up.
* ``"process"`` — a fork-based :class:`ProcessPoolExecutor` whose
  initializer ships the *pickled snapshot* to each worker exactly once;
  every worker rebuilds a private view over it and answers queries in
  true parallel.  This is the configuration the serve benchmark scales.

``"auto"`` picks processes when ``fork`` is available (Linux/macOS)
and falls back to threads elsewhere — same policy as the acquisition
pipeline's worker_kind.

:meth:`ReadWorkerPool.from_checkpoint` replaces the pickled-snapshot
hand-off with **zero-copy attach**: each worker mmaps the durable
checkpoint file (:class:`~repro.durable.attach.CheckpointReader`) and
joins in O(1) — nothing is serialised through the fork, the kernel
page cache holds one copy of the bytes for all workers, and worker
start-up cost is independent of graph size.  This is how shard
processes and late-joining read workers attach to a running service.

Results cross the process boundary as plain picklable data: SELECT
returns the W3C SPARQL-JSON dict, ASK a bool — never live Term-laden
SolutionSets.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ServiceStateError
from repro.obs import get_tracer
from repro.rdf.graph import GraphSnapshot
from repro.stsparql import SnapshotView
from repro.stsparql.eval import SolutionSet

_tracer = get_tracer()

RequestLike = Union[str, Tuple[str, Optional[Dict[str, object]]]]


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


# Per-worker-process view, installed by the pool initializer (the
# snapshot arrives pickled in the initargs, once per worker, not once
# per request).
_WORKER_VIEW: Optional[SnapshotView] = None


def _init_read_worker(snapshot: GraphSnapshot) -> None:
    global _WORKER_VIEW
    _WORKER_VIEW = SnapshotView(snapshot)


def _init_attach_worker(path: str) -> None:
    """Zero-copy initializer: attach to the checkpoint at ``path``.

    The fork carries only a path string; the worker mmaps the
    checkpoint (O(1)) and decodes it lazily on its first query, so
    pool start-up never pays a per-worker deserialisation of the whole
    graph.
    """
    global _WORKER_VIEW
    from repro.durable.attach import CheckpointReader

    _WORKER_VIEW = _LazyAttachView(CheckpointReader(path))


class _LazyAttachView:
    """A :class:`SnapshotView` stand-in that materialises from an
    attached checkpoint on the first query."""

    def __init__(self, reader) -> None:
        self._reader = reader
        self._view: Optional[SnapshotView] = None

    @property
    def generation(self) -> int:
        return self._reader.generation

    def query(self, text, params=None, **kwargs):
        if self._view is None:
            self._view = SnapshotView(self._reader.snapshot())
        return self._view.query(text, params, **kwargs)


def _encode(result: Union[SolutionSet, bool, Any]):
    if isinstance(result, SolutionSet):
        return result.to_sparql_json()
    if isinstance(result, bool):
        return result
    # CONSTRUCT: a graph — return its size (the serving path never
    # CONSTRUCTs across the process boundary).
    return len(result)


def _run_in_worker(text: str, params: Optional[Dict[str, object]]):
    assert _WORKER_VIEW is not None, "pool initializer did not run"
    return _encode(_WORKER_VIEW.query(text, params))


def _run_traced_in_worker(
    text: str, params: Optional[Dict[str, object]], context
):
    """Like :func:`_run_in_worker`, under the caller's trace context.

    Returns ``(encoded result, span records)``; the parent adopts the
    records so the read worker's span stitches into the request trace.
    The fork hook already re-rooted this process's tracer.
    """
    assert _WORKER_VIEW is not None, "pool initializer did not run"
    if not _tracer.enabled:
        return _encode(_WORKER_VIEW.query(text, params)), []
    with _tracer.use_context(context):
        with _tracer.span(
            "pool.query", kind="process", worker_pid=os.getpid()
        ):
            encoded = _encode(_WORKER_VIEW.query(text, params))
    return encoded, _tracer.drain_records()


class ReadWorkerPool:
    """Execute read-only stSPARQL requests over one snapshot, N-wide."""

    def __init__(
        self,
        snapshot: Optional[GraphSnapshot],
        workers: int = 1,
        kind: str = "auto",
        view: Optional[SnapshotView] = None,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if kind not in ("auto", "thread", "process"):
            raise ValueError(f"unknown pool kind {kind!r}")
        if kind == "auto":
            kind = "process" if _fork_available() else "thread"
        if kind == "process" and not _fork_available():
            raise ServiceStateError(
                "process read workers need the fork start method; "
                "use kind='thread'"
            )
        if snapshot is None and checkpoint_path is None:
            raise ValueError(
                "need a snapshot or a checkpoint_path to attach to"
            )
        self.snapshot = snapshot
        self.checkpoint_path = checkpoint_path
        self.workers = workers
        self.kind = kind
        self._closed = False
        if kind == "process":
            self._view = None
            if checkpoint_path is not None:
                # Zero-copy attach: the fork carries a path, not a
                # pickled graph — each worker mmaps the checkpoint.
                initializer, initargs = (
                    _init_attach_worker,
                    (checkpoint_path,),
                )
            else:
                initializer, initargs = (
                    _init_read_worker,
                    (snapshot,),
                )
            self._pool: Union[
                ProcessPoolExecutor, ThreadPoolExecutor
            ] = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=initializer,
                initargs=initargs,
            )
        else:
            if view is not None:
                self._view = view
            elif snapshot is not None:
                self._view = SnapshotView(snapshot)
            else:
                from repro.durable.attach import CheckpointReader

                reader = CheckpointReader(checkpoint_path)
                self.snapshot = reader.snapshot()
                self._view = SnapshotView(self.snapshot)
            self._pool = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="read-worker",
            )

    @classmethod
    def from_checkpoint(
        cls, path: str, workers: int = 1, kind: str = "auto"
    ) -> "ReadWorkerPool":
        """A pool whose workers attach to a durable checkpoint file.

        Process workers never receive the graph at all — only the
        path — so pool construction is O(1) in graph size and N
        workers share one page-cached copy of the checkpoint bytes.
        """
        return cls(
            None, workers=workers, kind=kind, checkpoint_path=path
        )

    # -- execution ---------------------------------------------------------

    def _run_local(self, text: str, params):
        assert self._view is not None
        return _encode(self._view.query(text, params))

    def _run_local_traced(self, text: str, params, context):
        with _tracer.use_context(context):
            with _tracer.span("pool.query", kind="thread"):
                return self._run_local(text, params)

    def submit(
        self,
        text: str,
        params: Optional[Dict[str, object]] = None,
        context=None,
    ) -> Future:
        """Queue one request; the future resolves to SPARQL-JSON (dict)
        for SELECT or a bool for ASK.

        ``context`` (a :class:`~repro.obs.TraceContext`) threads the
        caller's trace into the worker: the query runs under a
        ``pool.query`` span parented on the context, and — for process
        workers — the remote span records are stitched back into this
        process's tracer before the future resolves.
        """
        if self._closed:
            raise ServiceStateError("read pool is closed")
        if self.kind == "process":
            if context is None:
                return self._pool.submit(_run_in_worker, text, params)
            inner = self._pool.submit(
                _run_traced_in_worker, text, params, context
            )
            outer: Future = Future()

            def _stitch(done: Future) -> None:
                try:
                    encoded, records = done.result()
                except BaseException as error:  # noqa: BLE001
                    outer.set_exception(error)
                    return
                _tracer.adopt(records)
                outer.set_result(encoded)

            inner.add_done_callback(_stitch)
            return outer
        if context is None:
            return self._pool.submit(self._run_local, text, params)
        return self._pool.submit(
            self._run_local_traced, text, params, context
        )

    def map(self, requests: Iterable[RequestLike]) -> List[Any]:
        """Run a batch of requests across the pool; results in order.

        Each request is a query text or a ``(text, params)`` pair.
        """
        futures = []
        for request in requests:
            if isinstance(request, str):
                futures.append(self.submit(request))
            else:
                text, params = request
                futures.append(self.submit(text, params))
        return [f.result() for f in futures]

    def warm(self) -> None:
        """Force every worker to exist (process kind: fork + unpickle
        now, not on the first timed request)."""
        self.map(["ASK { ?__warm_s ?__warm_p ?__warm_o }"] * self.workers)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ReadWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        source = (
            f"generation {self.snapshot.generation}"
            if self.snapshot is not None
            else f"checkpoint {self.checkpoint_path!r}"
        )
        return f"<ReadWorkerPool {self.kind} x{self.workers} over {source}>"
