"""``ShardRouter`` — scatter-gather front end over the shard tier.

The router speaks the same v1 HTTP surface as a single
:class:`~repro.serve.http.HotspotServer` but answers by fanning out to
the per-shard servers of a :class:`~repro.serve.shard.ShardManager`
and merging:

* ``GET /v1/hotspots`` — the fan-out is **bbox-pruned**: only tile
  shards whose envelope intersects the requested bbox are consulted
  (the catch-all shard holds no geometric subjects, so it is never
  consulted here).  Per-shard GeoJSON features are concatenated and
  re-sorted by hotspot URI, so the merged collection is byte-identical
  to the single-store answer.
* ``POST /v1/stsparql`` — fans out to **all** shards (tiles plus
  catch-all) and merges under federated-union semantics: SELECT
  bindings are the multiset union, ASK is the logical OR.  Requests
  whose top level uses solution modifiers that do not distribute over
  a union (GROUP BY / HAVING / ORDER BY / LIMIT / OFFSET / aggregates)
  are refused with **422** — clients run those against a single server
  or post-process.  Subject-based partitioning keeps each subject's
  star co-located, so subject-local queries (the serving workload)
  merge exactly.

A shard that fails mid-fan-out does not fail the request: the response
is served from the surviving shards with ``provenance.degraded: true``
and the dead shards listed in ``provenance.missing_shards`` (the fault
site ``router.fanout`` lets tests kill a specific shard
deterministically).  A shard that *answers* with a 4xx — a query
timeout, a malformed request — propagates that status verbatim
instead: the error is deterministic, so the unified client contract
(408 → ``QueryTimeoutError`` etc.) holds through the router.  Every response carries the **composite**
consistency token — one ``(sequence, generation)`` part per shard, in
:attr:`ShardManager.shard_ids` order — so a client can assert the
whole tier never travels backwards in time.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.faults import trip
from repro.obs import get_metrics, get_tracer
from repro.serve.hotspots import parse_bbox
from repro.serve.http import (
    HotspotServer,
    ServerHandle,
    _HttpError,
    _json_response,
)
from repro.serve.shard import ShardManager
from repro.stsparql import ast
from repro.stsparql.parser import parse

_tracer = get_tracer()
_metrics = get_metrics()

__all__ = ["RouterService", "ShardRouter", "serve_router_in_thread"]


def _contains_aggregate(node) -> bool:
    import dataclasses

    if isinstance(node, ast.Aggregate):
        return True
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        return any(
            _contains_aggregate(value)
            for value in vars(node).values()
        )
    if isinstance(node, (list, tuple)):
        return any(_contains_aggregate(item) for item in node)
    return False


def _undistributable(parsed) -> Optional[str]:
    """Why a parsed request cannot be answered by a federated union
    (None when it can)."""
    if isinstance(parsed, ast.AskQuery):
        return None
    if not isinstance(parsed, ast.SelectQuery):
        return (
            "only SELECT and ASK distribute over the shard union — "
            "run CONSTRUCT and updates against a single server"
        )
    if parsed.group_by or parsed.having:
        return "GROUP BY / HAVING does not distribute over shards"
    if parsed.order_by:
        return "ORDER BY does not distribute over shards"
    if parsed.limit is not None or parsed.offset:
        return "LIMIT / OFFSET does not distribute over shards"
    if any(
        _contains_aggregate(projection.expression)
        for projection in parsed.projections
    ):
        return "aggregates do not distribute over shards"
    return None


class RouterService:
    """The duck-typed ``service`` behind a :class:`ShardRouter`.

    Health is the aggregate of the main service's own health (when it
    has one) and every shard's, under the router's composite token.
    """

    def __init__(self, manager: ShardManager) -> None:
        self.manager = manager
        self.base = manager.service

    @property
    def publisher(self):
        return self.base.publisher

    @property
    def slo(self):
        return getattr(self.base, "slo", None)

    @property
    def subscriptions(self):
        """The main service's subscription engine — subscriptions are
        a write-path construct (evaluated on the main commit), so the
        router serves the same registry and stream as the main server
        rather than fanning out to shards."""
        return getattr(self.base, "subscriptions", None)

    def health(self) -> dict:
        tier = self.manager.health()
        shard_docs = tier["shards"]
        degraded = any(
            doc["status"] != "ok" for doc in shard_docs
        )
        doc = {
            "status": "degraded" if degraded else "ok",
            "role": "router",
            "token": tier["token"],
            "layout": tier["layout"],
            "shards": shard_docs,
        }
        base_health = getattr(self.base, "health", None)
        if callable(base_health):
            doc["service"] = base_health()
        return doc


class ShardRouter(HotspotServer):
    """The scatter-gather HTTP front end (see the module docstring)."""

    def __init__(
        self,
        manager: ShardManager,
        host: str = "127.0.0.1",
        port: int = 0,
        read_workers: int = 8,
    ) -> None:
        super().__init__(
            RouterService(manager),
            host=host,
            port=port,
            read_workers=read_workers,
        )
        self.manager = manager

    # -- provenance --------------------------------------------------------

    def _provenance(self, published=None, ctx=None) -> Dict[str, Any]:
        """Router provenance: composite token over *all* shards (the
        single-server sequence/generation pair has no meaning here)."""
        return self._router_provenance(ctx, None, [])

    def _router_provenance(
        self,
        ctx,
        consulted: Optional[List[dict]],
        missing: List[int],
    ) -> Dict[str, Any]:
        latest = self.manager.service.publisher.latest()
        return {
            "api": "v1",
            "role": "router",
            "token": self.manager.token().encode(),
            "sequence": None,
            "generation": None,
            "timestamp": None,
            "trace_id": None if latest is None else latest.trace_id,
            "request_trace_id": None if ctx is None else ctx.trace_id,
            "shards": consulted,
            "degraded": bool(missing),
            "missing_shards": sorted(missing),
        }

    # -- fan-out machinery -------------------------------------------------

    def _fetch_shard(
        self,
        shard_id: int,
        method: str,
        path: str,
        body: Optional[str] = None,
    ) -> dict:
        """One shard leg of a fan-out (runs on the read executor).

        A shard that *answers* with a client error (4xx — a timeout, a
        malformed query) raises :class:`_HttpError`, which the scatter
        propagates verbatim: the error is deterministic, every shard
        would say the same.  Anything else (connection refused, 5xx)
        counts as shard death and degrades the response instead.
        ``router.fanout`` is a fault site keyed by shard id, so the
        partial-failure tests can kill exactly one shard's leg.
        """
        trip("router.fanout", index=shard_id)
        address = self.manager.shards[shard_id].address
        if address is None:
            raise RuntimeError(f"shard {shard_id} has no HTTP server")
        host, port = address
        import http.client

        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request(method, path, body=body)
            response = conn.getresponse()
            data = response.read()
        finally:
            conn.close()
        if response.status == 200:
            return json.loads(data)
        try:
            message = json.loads(data).get("error", "")
        except (json.JSONDecodeError, AttributeError):
            message = data.decode("utf-8", errors="replace")[:200]
        raise _HttpError(response.status, message)

    async def _scatter(
        self,
        shard_ids: List[int],
        method: str,
        path: str,
        body: Optional[str],
        ctx,
    ) -> Tuple[List[Tuple[int, dict]], List[int]]:
        """Fan one request out to ``shard_ids``; returns
        ``([(shard_id, payload), ...], [failed_shard_id, ...])``."""
        with _tracer.span(
            "router.fanout", shards=len(shard_ids), path=path
        ):
            tasks = [
                self._in_thread(
                    self._fetch_shard,
                    sid,
                    method,
                    path,
                    body,
                    context=ctx,
                )
                for sid in shard_ids
            ]
            outcomes = await asyncio.gather(
                *tasks, return_exceptions=True
            )
        answered: List[Tuple[int, dict]] = []
        missing: List[int] = []
        for sid, outcome in zip(shard_ids, outcomes):
            if (
                isinstance(outcome, _HttpError)
                and outcome.status < 500
            ):
                # Deterministic client error (bad query, timeout):
                # every shard would answer the same — propagate it.
                raise outcome
            if isinstance(outcome, BaseException):
                missing.append(sid)
                if _metrics.enabled:
                    _metrics.counter(
                        "router_shard_errors_total",
                        "Failed shard legs of router fan-outs",
                    ).inc(shard=str(sid))
            else:
                answered.append((sid, outcome))
        if _metrics.enabled:
            _metrics.counter(
                "router_fanout_total",
                "Router fan-outs, by endpoint",
            ).inc(endpoint=path.split("?", 1)[0])
        if not answered:
            raise _HttpError(
                503, "no shard answered — the shard tier is down"
            )
        return answered, missing

    @staticmethod
    def _shard_blocks(
        answered: List[Tuple[int, dict]]
    ) -> List[dict]:
        blocks = []
        for sid, payload in answered:
            prov = payload.get("provenance") or {}
            blocks.append(
                {
                    "shard": sid,
                    "sequence": prov.get("sequence"),
                    "generation": prov.get("generation"),
                }
            )
        return blocks

    # -- endpoints ---------------------------------------------------------

    async def _hotspots(self, query: str, ctx=None) -> bytes:
        from urllib.parse import parse_qs

        params = parse_qs(query)
        bbox_values = params.get("bbox")
        try:
            bbox = (
                None
                if not bbox_values
                else parse_bbox(bbox_values[-1])
            )
        except ValueError as error:
            raise _HttpError(400, str(error))
        # Prune the fan-out: only tiles intersecting the bbox can hold
        # matching hotspots (geometric subjects never land in the
        # catch-all), and the raw query string is forwarded verbatim so
        # every shard applies the same filters.
        shard_ids = self.manager.shard_ids_for_bbox(bbox)
        path = "/v1/hotspots" + (f"?{query}" if query else "")
        answered, missing = await self._scatter(
            shard_ids, "GET", path, None, ctx
        )
        features: List[dict] = []
        for _sid, payload in answered:
            features.extend(payload.get("features", []))
        features.sort(key=lambda f: f["properties"]["hotspot"])
        collection = {
            "type": "FeatureCollection",
            "features": features,
            "provenance": self._router_provenance(
                ctx, self._shard_blocks(answered), missing
            ),
        }
        return _json_response(200, collection)

    async def _stsparql(self, body: bytes, ctx=None) -> bytes:
        fields = self._parse_query_body(body)
        parsed = (
            parse(fields["query"])
        )  # SparqlParseError → 400 upstream
        if isinstance(parsed, ast.UpdateRequest):
            raise _HttpError(
                403,
                "the serving tier is read-only: send updates to the "
                "monitoring service",
            )
        reason = _undistributable(parsed)
        if reason is not None:
            raise _HttpError(422, reason)
        forwarded = json.dumps(
            {
                "query": fields["query"],
                "params": fields["params"],
                "explain": fields["explain"],
                "engine": fields["engine"],
                "timeout_s": fields["timeout_s"],
            }
        )
        answered, missing = await self._scatter(
            list(self.manager.shard_ids),
            "POST",
            "/v1/stsparql",
            forwarded,
            ctx,
        )
        if fields["explain"]:
            payload: Dict[str, Any] = {
                "engine": "router",
                "operation": "explain",
                "rows": sum(
                    doc.get("rows", 0) for _sid, doc in answered
                ),
                "shards": {
                    str(sid): {
                        key: doc.get(key)
                        for key in (
                            "engine",
                            "operation",
                            "rows",
                            "plan",
                        )
                    }
                    for sid, doc in answered
                },
            }
        elif isinstance(parsed, ast.AskQuery):
            payload = {
                "head": {},
                "boolean": any(
                    doc.get("boolean", False)
                    for _sid, doc in answered
                ),
            }
        else:
            # Multiset union of the per-shard SELECT bindings; the
            # variable header is the ordered union of shard headers.
            variables: List[str] = []
            bindings: List[dict] = []
            for _sid, doc in answered:
                for name in doc.get("head", {}).get("vars", []):
                    if name not in variables:
                        variables.append(name)
                bindings.extend(
                    doc.get("results", {}).get("bindings", [])
                )
            payload = {
                "head": {"vars": variables},
                "results": {"bindings": bindings},
            }
        payload["provenance"] = self._router_provenance(
            ctx, self._shard_blocks(answered), missing
        )
        return _json_response(200, payload)


def serve_router_in_thread(
    manager: ShardManager,
    host: str = "127.0.0.1",
    port: int = 0,
    read_workers: int = 8,
) -> ServerHandle:
    """Start a :class:`ShardRouter` on a daemon thread (the shard
    servers must already be up — see
    :meth:`ShardManager.start_http`)."""
    from repro.serve.http import spawn_server

    router = ShardRouter(
        manager, host=host, port=port, read_workers=read_workers
    )
    return spawn_server(router, "shard-router")
