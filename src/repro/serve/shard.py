"""Spatial sharding of the hotspot store for scatter-gather serving.

The serving tier partitions the published RDF store by **spatial
tile**: the :class:`~repro.seviri.geo.TargetGrid` product area (the
paper's Greek AOI) is cut into an ``tiles_x x tiles_y`` grid of
envelopes, and every *subject* whose ``strdf:hasGeometry`` geometry
falls in a tile lands — with its entire star of triples — in that
tile's partition.  Subjects with no geometry (ontology, corine
taxonomy, auxiliary data) go to one **catch-all** partition that every
fan-out consults for non-spatial queries and no bbox-pruned ``/hotspots``
fan-out ever needs.

Partitioning is *by subject*, which is what makes scatter-gather
answers exact: a subject's star is never split across shards, so any
query whose joins stay subject-local (the serving workload — the
``/hotspots`` star query, per-hotspot lookups) evaluates on each shard
exactly as it would on the whole store, and the multiset union of the
per-shard answers equals the single-store answer.

:class:`ShardManager` owns one :class:`~repro.stsparql.Strabon` + one
:class:`~repro.serve.state.SnapshotPublisher` per partition and
subscribes to the main publisher: every main publication repartitions
the frozen snapshot and republishes per shard, so the shard tier lags
the writer by exactly one deterministic fan-out and each shard's
``(sequence, generation)`` advances in lock-step.  The composite
:class:`~repro.serve.state.ConsistencyToken` over all shards is the
router's consistency stamp.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.geometry import Envelope, Geometry
from repro.obs import get_metrics
from repro.rdf.graph import Graph
from repro.serve.state import ConsistencyToken, SnapshotPublisher
from repro.stsparql import Strabon

_metrics = get_metrics()

#: Partition id of the non-geometric (catch-all) shard.
CATCH_ALL = -1

__all__ = [
    "CATCH_ALL",
    "ShardManager",
    "Tile",
    "TileLayout",
    "partition_snapshot",
]


@dataclass(frozen=True)
class Tile:
    """One spatial partition: an index and its lon/lat envelope."""

    index: int
    envelope: Envelope


class TileLayout:
    """A ``tiles_x x tiles_y`` tiling of the product-grid envelope.

    Derived from the SEVIRI target grid so the serving partitions line
    up with the area the chain actually georeferences to; geometry
    centres outside the grid clamp to the nearest edge tile (nothing
    is ever dropped by the partitioner).
    """

    def __init__(
        self, tiles_x: int, tiles_y: int, grid=None
    ) -> None:
        if tiles_x < 1 or tiles_y < 1:
            raise ValueError("tile counts must be >= 1")
        if grid is None:
            from repro.seviri.geo import TargetGrid

            grid = TargetGrid()
        self.grid = grid
        self.tiles_x = tiles_x
        self.tiles_y = tiles_y
        minx, miny = grid.lon0, grid.lat0
        maxx = grid.lon0 + grid.nx * grid.dlon
        maxy = grid.lat0 + grid.ny * grid.dlat
        #: The full area covered by the tiling.
        self.envelope = Envelope(minx, miny, maxx, maxy)
        self._dx = (maxx - minx) / tiles_x
        self._dy = (maxy - miny) / tiles_y
        self.tiles: List[Tile] = [
            Tile(
                j * tiles_x + i,
                Envelope(
                    minx + i * self._dx,
                    miny + j * self._dy,
                    minx + (i + 1) * self._dx,
                    miny + (j + 1) * self._dy,
                ),
            )
            for j in range(tiles_y)
            for i in range(tiles_x)
        ]

    @classmethod
    def for_shards(cls, shards: int, grid=None) -> "TileLayout":
        """The most-square ``a x b = shards`` tiling (4 → 2x2, 2 → 2x1,
        6 → 3x2 ...)."""
        if shards < 1:
            raise ValueError("shards must be >= 1")
        best_a = 1
        for a in range(1, int(shards**0.5) + 1):
            if shards % a == 0:
                best_a = a
        return cls(shards // best_a, best_a, grid=grid)

    def tile_for(self, lon: float, lat: float) -> int:
        """Tile index owning the point (clamped to the nearest tile for
        out-of-grid coordinates)."""
        i = int((lon - self.envelope.minx) / self._dx)
        j = int((lat - self.envelope.miny) / self._dy)
        i = min(max(i, 0), self.tiles_x - 1)
        j = min(max(j, 0), self.tiles_y - 1)
        return j * self.tiles_x + i

    def tiles_for_bbox(self, bbox: Optional[Envelope]) -> List[int]:
        """Tile indices whose envelope intersects ``bbox`` (all of them
        when ``bbox`` is None).  The router prunes its ``/hotspots``
        fan-out to exactly this set."""
        if bbox is None:
            return [tile.index for tile in self.tiles]
        return [
            tile.index
            for tile in self.tiles
            if tile.envelope.intersects(bbox)
        ]

    def __len__(self) -> int:
        return len(self.tiles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TileLayout {self.tiles_x}x{self.tiles_y} over "
            f"({self.envelope.minx}, {self.envelope.miny}, "
            f"{self.envelope.maxx}, {self.envelope.maxy})>"
        )


def partition_snapshot(snapshot, layout: TileLayout) -> Dict[int, Graph]:
    """Partition a frozen graph into per-tile graphs plus a catch-all.

    By subject: a subject carrying any geometry literal goes — with
    every triple it is the subject of — to the tile under its first
    geometry's envelope centre; all other subjects go to
    :data:`CATCH_ALL`.  The partitions are disjoint and their union is
    exactly the input (asserted by the shard test-suite).
    """
    subject_tile: Dict[object, int] = {}
    for s, _p, lit in snapshot.geometry_literals():
        if s in subject_tile:
            continue
        geom = lit.value
        if isinstance(geom, Geometry) and not geom.is_empty:
            env = geom.envelope
            subject_tile[s] = layout.tile_for(
                (env.minx + env.maxx) / 2.0,
                (env.miny + env.maxy) / 2.0,
            )
    parts: Dict[int, Graph] = {
        tile.index: Graph() for tile in layout.tiles
    }
    parts[CATCH_ALL] = Graph()
    for s, p, o in snapshot.triples():
        parts[subject_tile.get(s, CATCH_ALL)].add(s, p, o)
    return parts


@dataclass
class _Shard:
    """One partition's serving state (engine, publisher, HTTP server)."""

    shard_id: int
    tile: Optional[Tile]
    publisher: SnapshotPublisher
    strabon: Optional[Strabon] = None
    plan_cache: object = None
    handle: object = None  # ServerHandle once HTTP is started

    @property
    def address(self):
        return None if self.handle is None else self.handle.address


class _ShardService:
    """The duck-typed ``service`` a per-shard ``HotspotServer`` sees:
    the shard's publisher plus a small health document."""

    #: Shards never host the subscription engine — continuous queries
    #: evaluate on the main commit path; the router exposes the main
    #: service's engine instead (``/v1/subscriptions`` on a shard
    #: answers 404).
    subscriptions = None

    def __init__(self, manager: "ShardManager", shard_id: int) -> None:
        self._manager = manager
        self._shard = manager.shards[shard_id]

    @property
    def publisher(self) -> SnapshotPublisher:
        return self._shard.publisher

    def health(self) -> dict:
        tile = self._shard.tile
        latest = self._shard.publisher.latest()
        return {
            "status": "ok" if latest is not None else "starting",
            "role": "shard",
            "shard": self._shard.shard_id,
            "tile": None
            if tile is None
            else [
                tile.envelope.minx,
                tile.envelope.miny,
                tile.envelope.maxx,
                tile.envelope.maxy,
            ],
            "snapshot": None
            if latest is None
            else {
                "sequence": latest.sequence,
                "generation": latest.generation,
                "triples": len(latest),
            },
        }


class ShardManager:
    """Partition the published store and serve each partition.

    ``service`` is duck-typed: it must expose a ``publisher``
    (:class:`~repro.serve.state.SnapshotPublisher`).  The manager
    subscribes to it, so every publication by the writer repartitions
    the frozen snapshot and republishes through each shard's own
    publisher; the per-shard publishers are seeded with the main
    sequence so shard tokens stay monotonic across service restarts
    exactly like the main one.
    """

    def __init__(
        self,
        service,
        shards: int = 4,
        layout: Optional[TileLayout] = None,
        grid=None,
        query_engine: Optional[str] = None,
    ) -> None:
        self.service = service
        self.layout = (
            layout
            if layout is not None
            else TileLayout.for_shards(shards, grid=grid)
        )
        self._query_engine = query_engine
        self._repartition_lock = threading.Lock()
        self._last_main_sequence = -1
        base = service.publisher.sequence
        #: Deterministic shard order: tiles row-major, catch-all last.
        self.shard_ids: List[int] = [
            tile.index for tile in self.layout.tiles
        ] + [CATCH_ALL]
        self.shards: Dict[int, _Shard] = {}
        for tile in self.layout.tiles:
            self.shards[tile.index] = _Shard(
                shard_id=tile.index,
                tile=tile,
                publisher=SnapshotPublisher(start_sequence=base),
            )
        self.shards[CATCH_ALL] = _Shard(
            shard_id=CATCH_ALL,
            tile=None,
            publisher=SnapshotPublisher(start_sequence=base),
        )
        service.publisher.subscribe(self._on_publish)
        latest = service.publisher.latest()
        if latest is not None:
            self._on_publish(latest)

    # -- repartition on publish --------------------------------------------

    def _on_publish(self, published) -> None:
        """Fan one main publication out to every shard publisher."""
        with self._repartition_lock:
            if published.sequence <= self._last_main_sequence:
                return  # duplicate delivery (construction race)
            self._last_main_sequence = published.sequence
            t0 = time.perf_counter()
            parts = partition_snapshot(
                published.view.snapshot, self.layout
            )
            for sid in self.shard_ids:
                shard = self.shards[sid]
                strabon = Strabon(
                    parts[sid], query_engine=self._query_engine
                )
                if shard.plan_cache is not None:
                    # Parsed plans survive repartitions: the cache is
                    # keyed on request text alone.
                    strabon.plan_cache = shard.plan_cache
                shard.plan_cache = strabon.plan_cache
                shard.strabon = strabon
                shard.publisher.publish(
                    strabon,
                    timestamp=published.timestamp,
                    trace_id=published.trace_id,
                )
            if _metrics.enabled:
                _metrics.histogram(
                    "serve_shard_repartition_seconds",
                    "Wall seconds to repartition + republish all shards",
                ).observe(time.perf_counter() - t0)
                gauge = _metrics.gauge(
                    "serve_shard_triples",
                    "Triples held per serving shard",
                )
                for sid in self.shard_ids:
                    gauge.set(len(parts[sid]), shard=str(sid))

    # -- composite consistency ---------------------------------------------

    def token(self) -> ConsistencyToken:
        """The composite consistency token over all shards, in
        :attr:`shard_ids` order."""
        parts = []
        for sid in self.shard_ids:
            latest = self.shards[sid].publisher.latest()
            parts.append(
                (0, 0)
                if latest is None
                else (latest.sequence, latest.generation)
            )
        return ConsistencyToken(tuple(parts))

    def shard_ids_for_bbox(
        self, bbox: Optional[Envelope]
    ) -> List[int]:
        """Tile shards a bbox-filtered ``/hotspots`` must consult.

        Never includes the catch-all: hotspot subjects always carry a
        geometry, so they always live in a tile shard.
        """
        return self.layout.tiles_for_bbox(bbox)

    # -- HTTP lifecycle ----------------------------------------------------

    def start_http(
        self, host: str = "127.0.0.1", read_workers: int = 2
    ) -> Dict[int, tuple]:
        """Start one HTTP server per shard; returns shard_id →
        (host, port)."""
        from repro.serve.http import serve_in_thread

        for sid in self.shard_ids:
            shard = self.shards[sid]
            if shard.handle is None:
                shard.handle = serve_in_thread(
                    _ShardService(self, sid),
                    host=host,
                    port=0,
                    read_workers=read_workers,
                )
        return self.addresses()

    def addresses(self) -> Dict[int, tuple]:
        return {
            sid: self.shards[sid].address
            for sid in self.shard_ids
            if self.shards[sid].handle is not None
        }

    def stop_http(self) -> None:
        for shard in self.shards.values():
            if shard.handle is not None:
                shard.handle.stop()
                shard.handle = None

    def health(self) -> dict:
        """Aggregate shard-tier health (the router folds this into its
        own health document)."""
        return {
            "shards": [
                _ShardService(self, sid).health()
                for sid in self.shard_ids
            ],
            "token": self.token().encode(),
            "layout": {
                "tiles_x": self.layout.tiles_x,
                "tiles_y": self.layout.tiles_y,
            },
        }

    def __enter__(self) -> "ShardManager":
        return self

    def __exit__(self, *exc) -> None:
        self.stop_http()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardManager {self.layout.tiles_x}x{self.layout.tiles_y}"
            f"+catchall token={self.token().encode()}>"
        )
