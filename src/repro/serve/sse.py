"""Server-Sent Events delivery for subscription notifications.

The wire format is plain SSE (``text/event-stream``): one event per
notification, the event ``id`` carrying the publication sequence the
notification belongs to::

    id: 7
    event: notification
    data: {"subscription": "ab12...", "kind": "filter", ...}

followed by a ``batch`` event closing each publication's group (its
``data`` names the sequence and the batch size), so a client can
acknowledge at publication granularity — the granularity of the
durable cursor contract.  Comment lines (``: keep-alive``) are emitted
while idle so intermediaries do not reap the connection.

Threading: the writer thread (the monitoring service's publish path)
calls :meth:`SseHub.deliver`; connected channels live on the HTTP
server's asyncio loop.  The hub crosses that boundary with
``loop.call_soon_threadsafe`` — the writer never blocks on a slow
subscriber (a channel whose queue is full simply drops the event; the
client recovers the gap from the durable log on reconnect, which is
the same path as any other disconnection).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Dict, List, Optional

from repro.durable.cursors import NotificationBatch

__all__ = [
    "SseChannel",
    "SseHub",
    "format_batch",
    "format_comment",
    "frame_sequence",
]

#: Events a channel buffers before the hub starts dropping (the client
#: resumes any gap from the log on reconnect).
CHANNEL_QUEUE_LIMIT = 1024


def format_event(
    doc: Dict, sequence: int, event: str = "notification"
) -> bytes:
    data = json.dumps(doc, sort_keys=True)
    return (
        f"id: {sequence}\nevent: {event}\ndata: {data}\n\n"
    ).encode("utf-8")


def format_batch(
    batch: NotificationBatch,
    subscription_id: Optional[str] = None,
) -> List[bytes]:
    """One publication's SSE frames — restricted to one subscription's
    notifications when ``subscription_id`` is given — plus the closing
    ``batch`` marker clients acknowledge on."""
    frames = [
        format_event(doc, batch.sequence)
        for doc in batch.notifications
        if subscription_id is None
        or doc.get("subscription") == subscription_id
    ]
    frames.append(
        format_event(
            {
                "sequence": batch.sequence,
                "notifications": len(batch.notifications),
            },
            batch.sequence,
            event="batch",
        )
    )
    return frames


def format_comment(text: str = "keep-alive") -> bytes:
    return f": {text}\n\n".encode("utf-8")


def frame_sequence(frame: bytes) -> Optional[int]:
    """The ``id:`` (publication sequence) of an SSE frame, or None for
    comments — the stream handler's replay/live dedupe key."""
    if not frame.startswith(b"id: "):
        return None
    try:
        return int(frame.split(b"\n", 1)[0][4:])
    except ValueError:
        return None


class SseChannel:
    """One connected subscriber: an asyncio queue on the server loop."""

    def __init__(
        self,
        subscription_id: str,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.subscription_id = subscription_id
        self.loop = loop
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=CHANNEL_QUEUE_LIMIT
        )
        self.dropped = 0

    def push_threadsafe(self, frame: bytes) -> None:
        """Enqueue from the writer thread; drops when full (the gap is
        recovered from the durable log on reconnect)."""

        def _put() -> None:
            try:
                self.queue.put_nowait(frame)
            except asyncio.QueueFull:
                self.dropped += 1

        try:
            self.loop.call_soon_threadsafe(_put)
        except RuntimeError:
            # The server loop is already closed — connection is dead.
            self.dropped += 1


class SseHub:
    """Routes notification batches to connected SSE channels.

    Registered as a listener on the
    :class:`~repro.serve.subscribe.SubscriptionEngine`; delivery is
    per-subscription — a channel only sees the notifications of the
    subscription it streams, plus that subscription's ``batch``
    markers (emitted even when the batch holds no matches for it, so
    the client's cursor can advance past quiet publications).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._channels: Dict[str, List[SseChannel]] = {}
        self._engine = None

    def attach(self, engine) -> None:
        """Listen on an engine (idempotent per hub)."""
        if self._engine is engine:
            return
        self._engine = engine
        engine.add_listener(self.deliver)

    def register(
        self,
        subscription_id: str,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> SseChannel:
        channel = SseChannel(
            subscription_id,
            loop if loop is not None else asyncio.get_running_loop(),
        )
        with self._lock:
            self._channels.setdefault(
                subscription_id, []
            ).append(channel)
        return channel

    def unregister(self, channel: SseChannel) -> None:
        with self._lock:
            channels = self._channels.get(
                channel.subscription_id, []
            )
            self._channels[channel.subscription_id] = [
                c for c in channels if c is not channel
            ]
            if not self._channels[channel.subscription_id]:
                del self._channels[channel.subscription_id]

    def connections(self) -> int:
        with self._lock:
            return sum(
                len(chs) for chs in self._channels.values()
            )

    def deliver(self, batch: NotificationBatch) -> None:
        """Writer-thread entry point: fan one batch out per channel."""
        with self._lock:
            live = {
                sub_id: list(channels)
                for sub_id, channels in self._channels.items()
            }
        if not live:
            return
        by_subscription: Dict[str, List[bytes]] = {}
        for doc in batch.notifications:
            by_subscription.setdefault(
                str(doc.get("subscription")), []
            ).append(format_event(doc, batch.sequence))
        closing = format_event(
            {
                "sequence": batch.sequence,
                "notifications": len(batch.notifications),
            },
            batch.sequence,
            event="batch",
        )
        for sub_id, channels in live.items():
            frames = by_subscription.get(sub_id, [])
            for channel in channels:
                for frame in frames:
                    channel.push_threadsafe(frame)
                channel.push_threadsafe(closing)
