"""Snapshot publication: the hand-off point between writer and readers.

The monitoring service is a single-writer system — one thread ingests
acquisitions and runs the six-step semantic refinement against the live
Strabon store.  The serving layer must never expose that store directly:
mid-refinement the graph holds *torn* state (hotspots stored but not yet
municipality-tagged, sea hotspots not yet deleted, survivors not yet
confirmation-marked).  Instead the writer **publishes** an immutable
:class:`~repro.stsparql.SnapshotView` after each acquisition's
refinement completes, and every read request — HTTP or in-process —
executes against the latest *published* snapshot.

:class:`SnapshotPublisher` is that hand-off: a tiny thread-safe holder
whose :meth:`publish` swap is atomic (one reference assignment under a
lock) and whose :meth:`latest` never blocks on the writer.  Readers that
grabbed an older snapshot keep a fully consistent view for as long as
they hold it — publication never invalidates an in-flight read.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional

from repro.obs import get_metrics
from repro.stsparql import SnapshotView, Strabon

_metrics = get_metrics()


@dataclass(frozen=True)
class ConsistencyToken:
    """An opaque, comparable consistency token for served responses.

    One part per shard — ``(sequence, generation)`` of the published
    snapshot that answered — so a single-server token has one part and
    a routed (scatter-gather) token has one part per consulted shard.
    The wire form is versioned and human-readable::

        v1:12.340            one server:  sequence 12, generation 340
        v1:12.340-12.17-9.0  three shards

    Tokens over the *same* topology are partially ordered:
    :meth:`is_behind` is componentwise — a client that stored a token
    can assert the service never travels backwards in time, shard by
    shard, across restarts (publishers reseed their sequence counters
    on recovery precisely to keep this holding).
    """

    parts: tuple

    @classmethod
    def single(cls, sequence: int, generation: int) -> "ConsistencyToken":
        return cls(((int(sequence), int(generation)),))

    @classmethod
    def decode(cls, text: str) -> "ConsistencyToken":
        if not text.startswith("v1:"):
            raise ValueError(f"unversioned consistency token: {text!r}")
        try:
            parts = tuple(
                (int(seq), int(gen))
                for seq, gen in (
                    chunk.split(".") for chunk in text[3:].split("-")
                )
            )
        except ValueError:
            raise ValueError(f"malformed consistency token: {text!r}")
        if not parts:
            raise ValueError(f"empty consistency token: {text!r}")
        return cls(parts)

    def encode(self) -> str:
        return "v1:" + "-".join(f"{s}.{g}" for s, g in self.parts)

    def is_behind(self, other: "ConsistencyToken") -> bool:
        """True when *every* part of ``self`` is <= the matching part
        of ``other`` and at least one is strictly older.  Tokens from
        different topologies (part counts) are incomparable and raise."""
        if len(self.parts) != len(other.parts):
            raise ValueError(
                "tokens from different shard topologies are incomparable"
            )
        if any(
            s > o for (s, _), (o, _) in zip(self.parts, other.parts)
        ):
            return False
        return self.parts != other.parts


@dataclass(frozen=True)
class PublishedSnapshot:
    """One immutable published state of the hotspot store.

    ``sequence`` increases by one per publication; ``generation`` is the
    live graph's mutation counter at the instant of publication.  Both
    are monotonic, so a reader can detect (and a test can assert) that
    it never travels backwards in time.
    """

    view: SnapshotView
    sequence: int
    generation: int
    #: Acquisition timestamp that triggered this publication (None for
    #: the initial — auxiliary-data-only — publication).
    timestamp: Optional[datetime] = None
    #: ``time.monotonic()`` at publication, for staleness metrics.
    published_monotonic: float = field(default=0.0)
    #: Trace id of the acquisition that published this snapshot (None
    #: when tracing was off) — readers expose it as provenance, linking
    #: any served result back to the trace that produced the data.
    trace_id: Optional[str] = None
    #: Per-source federation reports for the publishing acquisition
    #: (tuple of plain dicts; empty without a federation).  This is how
    #: an outage gap reaches readers: the snapshot still serves, and
    #: its provenance names the missing feed.
    sources: tuple = ()

    def __len__(self) -> int:
        return len(self.view.snapshot)


class SnapshotPublisher:
    """Single-writer / many-reader atomic snapshot hand-off.

    ``start_sequence`` seeds the sequence counter: a recovered service
    passes the highest sequence readers may already have observed
    before the crash, so publication numbering stays monotonic across
    process restarts (a polling reader never sees it regress).
    """

    def __init__(self, start_sequence: int = 0) -> None:
        if start_sequence < 0:
            raise ValueError("start_sequence must be >= 0")
        self._lock = threading.Lock()
        self._latest: Optional[PublishedSnapshot] = None
        self._sequence = start_sequence
        self._changed = threading.Condition(self._lock)
        self._subscribers: list = []

    def subscribe(self, callback) -> None:
        """Register ``callback(published)`` to run after every publish.

        Callbacks run on the writer thread, *outside* the publisher
        lock (readers are never blocked by a slow subscriber), in
        registration order.  The sharded serving tier subscribes its
        repartitioner here so every main publication fans out to the
        per-shard publishers.

        Callbacks are **isolated**: one raising never prevents the
        publication, the remaining callbacks (the sharded lockstep
        republish among them), or future publications — the error is
        counted and flight-recorded instead.
        """
        with self._lock:
            self._subscribers.append(callback)

    def publish(
        self,
        strabon: Strabon,
        timestamp: Optional[datetime] = None,
        trace_id: Optional[str] = None,
        sources: tuple = (),
    ) -> PublishedSnapshot:
        """Freeze the engine's current state and make it the latest.

        Must be called from the writer thread only (snapshotting races
        with mutation otherwise — the graph itself is single-writer).
        The snapshot/view creation is O(1): the copy-on-write graph
        hands out borrowed indexes, and the engine reuses the view when
        the generation is unchanged (an acquisition that refined zero
        hotspots republishes the same frozen structures).
        """
        view = strabon.snapshot_view()
        with self._changed:
            self._sequence += 1
            published = PublishedSnapshot(
                view=view,
                sequence=self._sequence,
                generation=view.generation,
                timestamp=timestamp,
                published_monotonic=time.monotonic(),
                trace_id=trace_id,
                sources=tuple(sources),
            )
            self._latest = published
            self._changed.notify_all()
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(published)
            except Exception as error:  # noqa: BLE001 — isolation
                # A broken subscriber must not break the publication,
                # the callbacks after it (the sharded repartitioner
                # subscribes here), or the writer itself.
                from repro.obs import get_flight_recorder

                get_flight_recorder().record(
                    "error",
                    "publish.subscriber",
                    sequence=published.sequence,
                    trace_id=trace_id,
                    error=f"{type(error).__name__}: {error}",
                )
                if _metrics.enabled:
                    _metrics.counter(
                        "serve_subscriber_errors_total",
                        "Publish subscriber callbacks that raised",
                    ).inc()
        if _metrics.enabled:
            gauge = _metrics.gauge(
                "serve_snapshot_info",
                "Latest published snapshot (sequence / generation / size)",
            )
            gauge.set(published.sequence, field="sequence")
            gauge.set(published.generation, field="generation")
            gauge.set(len(published), field="triples")
        return published

    def latest(self) -> Optional[PublishedSnapshot]:
        """The most recently published snapshot (never blocks long —
        the lock is only ever held for a reference swap)."""
        with self._lock:
            return self._latest

    def require_latest(self) -> PublishedSnapshot:
        """Like :meth:`latest` but raising when nothing is published."""
        latest = self.latest()
        if latest is None:
            raise LookupError("no snapshot has been published yet")
        return latest

    @property
    def sequence(self) -> int:
        with self._lock:
            return self._sequence

    def wait_for(
        self, sequence: int, timeout: Optional[float] = None
    ) -> Optional[PublishedSnapshot]:
        """Block until a snapshot with ``sequence`` or later is
        published; returns it (or None on timeout).  Test/ops helper —
        the serving path itself never waits."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._changed:
            while self._latest is None or self._sequence < sequence:
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._changed.wait(remaining)
            return self._latest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        latest = self.latest()
        if latest is None:
            return "<SnapshotPublisher (nothing published)>"
        return (
            f"<SnapshotPublisher seq={latest.sequence} "
            f"generation={latest.generation}>"
        )
