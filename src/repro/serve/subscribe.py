"""``repro.serve.subscribe`` — continuous queries over the hotspot store.

The paper's service is a *push* pipeline: refined hotspots must reach
civil-protection users inside the acquisition budget, not wait for the
next poll of ``/hotspots``.  This module turns the serving tier around:
clients register **subscriptions** — standing queries that stay live
across acquisitions — and the service evaluates them *incrementally*
against each committed WAL triple batch, pushing matches out as
notifications (delivered over SSE by ``repro.serve.sse`` /
``repro.serve.http``).

Three subscription families:

* ``filter`` — the ``/hotspots`` predicate vocabulary as a standing
  query: bounding-box geofence, confidence floor, municipality,
  confirmation status.  Geofences live in an R-tree, so matching one
  changed hotspot against 100k subscriptions is a point probe, not a
  scan.
* ``stsparql`` — a restricted stSPARQL SELECT over the hotspot star,
  using ``?h`` as the hotspot variable.  Incremental evaluation binds
  ``?h`` to each changed subject via the engine's ``params=``
  pre-binding, so the query text stays constant (plan-cache friendly)
  and cost scales with the delta, not the graph.
* ``fwi`` — per-municipality fire-danger classes in the spirit of the
  Fire Weather Index rules of Gao et al. (arXiv 1411.2186): the class
  is a pure function of the live fire evidence inside each
  municipality — hotspot confidences plus the weather-station
  ``noa:hasDangerContribution`` observations the multi-source
  federation feeds in — and a subscription fires on every class
  *transition* at or above its ``min_class``.

Hotspots the federation flagged as **static heat sources**
(``noa:matchesStaticSource`` — refineries, industrial flares) are
excluded from every alert family: they are real combustion, but not
fires, so they neither notify nor contribute fire-danger evidence.

**Why incremental equals full re-run.**  A hotspot's match status
against any subscription above depends only on its own star (type,
geometry, confidence, confirmation, municipality link), and the
refinement pipeline only mutates the stars of the current
acquisition's hotspots (insertion, municipality tagging, sea/land
deletion, confirmation marking).  So the set of subjects whose match
status *can* have changed since the last publication is exactly the
set of subjects appearing in the committed triple batch — evaluating
only those, minus the already-notified set, yields the same
notifications as re-running every standing query over the full
snapshot.  The federation's per-hotspot marks (``crossConfirmedBy``,
``matchesStaticSource``) are part of that star and are written by the
same refinement commit, so the argument survives multi-source fusion
unchanged.  FWI classes aggregate per municipality, so the recompute
set is the municipalities referenced by the batch (a municipality
whose hotspots and weather observations did not change cannot change
class — weather stars link via the same ``isInMunicipality``
predicate the delta extractor watches).  The differential
suite (``tests/serve/test_subscribe_differential.py``) asserts this
equivalence run-for-run; the delivery contract across crashes lives in
``repro.durable.cursors``.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.durable.codec import OP_ADD, OP_CLEAR, OP_REMOVE
from repro.durable.cursors import (
    CursorStore,
    NotificationBatch,
    NotificationLog,
)
from repro.geometry import Envelope
from repro.geometry.rtree import RTree
from repro.obs import get_metrics, get_tracer
from repro.rdf.namespace import NOA, RDF, STRDF
from repro.rdf.term import URI

__all__ = [
    "DANGER_CLASSES",
    "DeltaBatch",
    "HotspotRecord",
    "Notification",
    "Subscription",
    "SubscriptionEngine",
    "SubscriptionError",
    "SubscriptionRegistry",
    "danger_class",
    "municipality_score",
    "municipality_scores",
    "validate_standing_query",
]

_tracer = get_tracer()
_metrics = get_metrics()

#: Fire-danger classes, mildest first.  A municipality's class is a
#: pure function of the summed confidence of its live hotspots, so
#: incremental recomputation of the touched municipalities is exactly
#: equivalent to a full recompute.
DANGER_CLASSES = ("low", "moderate", "high", "very-high", "extreme")

#: Summed-confidence boundaries between consecutive danger classes.
FWI_THRESHOLDS = (0.5, 1.5, 3.0, 5.0)

SUBSCRIPTION_KINDS = ("filter", "stsparql", "fwi")

#: Tombstoned R-tree entries tolerated before a rebuild (the R-tree
#: has no delete; removals are filtered at probe time until then).
_TOMBSTONE_REBUILD = 64

_HOTSPOT = NOA.Hotspot
_TYPE = RDF.type
_GEOMETRY = STRDF.hasGeometry
_CONFIDENCE = NOA.hasConfidence
_CONFIRMATION = NOA.hasConfirmation
_MUNICIPALITY = NOA.isInMunicipality
_ACQUIRED = NOA.hasAcquisitionDateTime
_CONFIRMED = NOA.confirmed
_CROSS_CONFIRMED = NOA.crossConfirmedBy
_STATIC_MATCH = NOA.matchesStaticSource
_WEATHER = NOA.WeatherObservation
_DANGER_CONTRIBUTION = NOA.hasDangerContribution


class SubscriptionError(ValueError):
    """An invalid subscription document or standing query."""


def danger_class(score: float) -> int:
    """Danger-class index for a municipality's summed confidence."""
    index = 0
    for boundary in FWI_THRESHOLDS:
        if score >= boundary:
            index += 1
    return index


def validate_standing_query(text: str) -> None:
    """Refuse standing queries outside the incremental fragment.

    A standing query must be a plain SELECT over the hotspot star
    using ``?h`` as the hotspot variable — no solution modifiers and
    no aggregates, because those make a row's membership depend on
    *other* rows, which breaks the subject-local incremental argument.
    """
    from repro.stsparql import ast
    from repro.stsparql.parser import parse

    try:
        parsed = parse(text)
    except Exception as error:
        raise SubscriptionError(
            f"standing query does not parse: {error}"
        ) from error
    if not isinstance(parsed, ast.SelectQuery):
        raise SubscriptionError(
            "standing queries must be SELECT queries"
        )
    if (
        parsed.group_by
        or parsed.having
        or parsed.order_by
        or parsed.limit is not None
        or parsed.offset
    ):
        raise SubscriptionError(
            "standing queries cannot use GROUP BY / HAVING / ORDER "
            "BY / LIMIT / OFFSET — row membership must be "
            "subject-local for incremental evaluation"
        )
    for projection in parsed.projections:
        if isinstance(projection.expression, ast.Aggregate):
            raise SubscriptionError(
                "standing queries cannot project aggregates"
            )
    if "?h" not in text:
        raise SubscriptionError(
            "standing queries must use ?h as the hotspot variable"
        )


@dataclass(frozen=True)
class Subscription:
    """One registered standing query."""

    id: str
    kind: str
    bbox: Optional[Envelope] = None
    min_confidence: Optional[float] = None
    municipality: Optional[str] = None
    confirmed: Optional[bool] = None
    query: Optional[str] = None
    min_class: int = 0
    #: Publication sequence at registration — the subscription only
    #: observes acquisitions committed after it (current matches are
    #: primed into the seen-set, not notified).
    created_sequence: int = 0

    @classmethod
    def from_dict(
        cls, doc: Dict[str, Any], sub_id: str, created_sequence: int
    ) -> "Subscription":
        if not isinstance(doc, dict):
            raise SubscriptionError(
                "subscription must be a JSON object"
            )
        kind = doc.get("kind", "filter")
        if kind not in SUBSCRIPTION_KINDS:
            raise SubscriptionError(
                f"kind must be one of {'/'.join(SUBSCRIPTION_KINDS)}, "
                f"got {kind!r}"
            )
        bbox = None
        if doc.get("bbox") is not None:
            raw = doc["bbox"]
            if not (
                isinstance(raw, (list, tuple)) and len(raw) == 4
            ):
                raise SubscriptionError(
                    "bbox must be [minx, miny, maxx, maxy]"
                )
            try:
                bbox = Envelope(*(float(v) for v in raw))
            except (TypeError, ValueError) as error:
                raise SubscriptionError(
                    f"bad bbox: {error}"
                ) from error
        min_confidence = doc.get("min_confidence")
        if min_confidence is not None:
            try:
                min_confidence = float(min_confidence)
            except (TypeError, ValueError) as error:
                raise SubscriptionError(
                    f"bad min_confidence: {error}"
                ) from error
        confirmed = doc.get("confirmed")
        if confirmed is not None and not isinstance(confirmed, bool):
            raise SubscriptionError("confirmed must be a boolean")
        municipality = doc.get("municipality")
        if municipality is not None:
            municipality = str(municipality)
        query = doc.get("query")
        min_class = 0
        if kind == "stsparql":
            if not query:
                raise SubscriptionError(
                    "stsparql subscriptions need a query"
                )
            validate_standing_query(query)
        elif query is not None:
            raise SubscriptionError(
                f"{kind} subscriptions do not take a query"
            )
        if kind == "fwi":
            name = doc.get("min_class", "high")
            if name not in DANGER_CLASSES:
                raise SubscriptionError(
                    f"min_class must be one of "
                    f"{'/'.join(DANGER_CLASSES)}, got {name!r}"
                )
            min_class = DANGER_CLASSES.index(name)
        return cls(
            id=sub_id,
            kind=kind,
            bbox=bbox,
            min_confidence=min_confidence,
            municipality=municipality,
            confirmed=confirmed,
            query=query,
            min_class=min_class,
            created_sequence=created_sequence,
        )

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "created_sequence": self.created_sequence,
        }
        if self.bbox is not None:
            doc["bbox"] = list(self.bbox.as_tuple())
        if self.min_confidence is not None:
            doc["min_confidence"] = self.min_confidence
        if self.municipality is not None:
            doc["municipality"] = self.municipality
        if self.confirmed is not None:
            doc["confirmed"] = self.confirmed
        if self.query is not None:
            doc["query"] = self.query
        if self.kind == "fwi":
            doc["min_class"] = DANGER_CLASSES[self.min_class]
        return doc


@dataclass(frozen=True)
class HotspotRecord:
    """One hotspot star flattened for predicate matching."""

    subject: str
    lon: float
    lat: float
    confidence: Optional[float] = None
    confirmed: Optional[bool] = None
    municipality: Optional[str] = None
    acquired: Optional[str] = None
    #: Federation sources that corroborated the hotspot (sorted).
    sources: Tuple[str, ...] = ()
    #: Matched a known static heat source (refinery) — excluded from
    #: every alert family and from fire-danger evidence.
    static: bool = False


@dataclass(frozen=True)
class DeltaBatch:
    """The subjects and municipalities one commit may have changed."""

    subjects: Tuple[str, ...] = ()
    municipalities: Tuple[str, ...] = ()
    #: A ``clear`` was journaled — subject-local reasoning is void and
    #: the evaluator falls back to a full scan for this batch.
    full_rescan: bool = False


@dataclass(frozen=True)
class Notification:
    """One match pushed to one subscription."""

    subscription: str
    kind: str
    sequence: int
    subject: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> Tuple[str, ...]:
        """Delivery identity — the differential and resume contracts
        compare sets of these."""
        if self.kind == "fwi":
            return (
                self.subscription,
                self.subject,
                str(self.payload.get("danger_class")),
            )
        return (self.subscription, self.subject)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "subscription": self.subscription,
            "kind": self.kind,
            "sequence": self.sequence,
            "subject": self.subject,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Notification":
        return cls(
            subscription=str(doc["subscription"]),
            kind=str(doc["kind"]),
            sequence=int(doc["sequence"]),
            subject=str(doc["subject"]),
            payload=dict(doc.get("payload", {})),
        )


# -- delta extraction ------------------------------------------------------


def delta_from_ops(ops: Sequence) -> DeltaBatch:
    """Collapse a journaled op batch into its touched subjects and
    municipalities (both sides of ``noa:isInMunicipality`` — an add
    raises the target's evidence, a star-delete lowers it)."""
    subjects: Set[str] = set()
    municipalities: Set[str] = set()
    full_rescan = False
    for opcode, triple in ops:
        if opcode == OP_CLEAR:
            full_rescan = True
            subjects.clear()
            municipalities.clear()
            continue
        if opcode not in (OP_ADD, OP_REMOVE) or triple is None:
            continue
        s, p, o = triple
        subjects.add(_text(s))
        if p == _MUNICIPALITY:
            municipalities.add(_text(o))
    return DeltaBatch(
        subjects=tuple(sorted(subjects)),
        municipalities=tuple(sorted(municipalities)),
        full_rescan=full_rescan,
    )


def _text(term: Any) -> str:
    value = getattr(term, "value", term)
    if isinstance(value, str):
        return value
    lexical = getattr(term, "lexical", None)
    return lexical if lexical is not None else str(value)


def _source_graph(source):
    """The triple store behind a Strabon engine, a SnapshotView, or a
    bare graph."""
    graph = getattr(source, "graph", None)
    if graph is not None:
        return graph
    snapshot = getattr(source, "snapshot", None)
    if snapshot is not None and not callable(snapshot):
        return snapshot
    return source


def hotspot_record(graph, subject: str) -> Optional[HotspotRecord]:
    """The subject's star as a :class:`HotspotRecord`, or None when it
    is not (or no longer) a live hotspot with a usable geometry."""
    uri = URI(subject)
    if not any(
        True for _ in graph.triples(uri, _TYPE, _HOTSPOT)
    ):
        return None
    geom_lit = graph.value(uri, _GEOMETRY)
    geom = getattr(geom_lit, "value", None)
    envelope = getattr(geom, "envelope", None)
    if envelope is None:
        return None
    lon, lat = envelope.center
    confidence: Optional[float] = None
    conf_term = graph.value(uri, _CONFIDENCE)
    if conf_term is not None:
        try:
            confidence = float(conf_term.lexical)
        except (AttributeError, TypeError, ValueError):
            confidence = None
    confirmation = graph.value(uri, _CONFIRMATION)
    confirmed = (
        None if confirmation is None else confirmation == _CONFIRMED
    )
    municipality = graph.value(uri, _MUNICIPALITY)
    acquired = graph.value(uri, _ACQUIRED)
    sources = sorted(
        _source_short(o)
        for _, _, o in graph.triples(uri, _CROSS_CONFIRMED, None)
    )
    static = graph.value(uri, _STATIC_MATCH) is not None
    return HotspotRecord(
        subject=subject,
        lon=lon,
        lat=lat,
        confidence=confidence,
        confirmed=confirmed,
        municipality=(
            None if municipality is None else _text(municipality)
        ),
        acquired=getattr(acquired, "lexical", None),
        sources=tuple(sources),
        static=static,
    )


def _source_short(term: Any) -> str:
    """``noa:Source_polar`` → ``"polar"``."""
    tail = _text(term).rsplit("#", 1)[-1].rsplit("/", 1)[-1]
    _, _, name = tail.partition("Source_")
    return name or tail


def iter_hotspot_records(graph) -> Iterable[HotspotRecord]:
    """Every live hotspot star (the full-scan path: priming, the full
    re-run baseline, and ``full_rescan`` batches)."""
    for subject in graph.subjects(_TYPE, _HOTSPOT):
        record = hotspot_record(graph, _text(subject))
        if record is not None:
            yield record


def municipality_score(graph, municipality: str) -> float:
    """Summed fire-danger evidence inside a municipality.

    Live hotspot confidences (static heat sources excluded — a
    refinery flare is not fire danger) plus the federation's
    weather-station ``hasDangerContribution`` observations.
    """
    target = URI(municipality)
    score = 0.0
    for s, _, _ in graph.triples(None, _MUNICIPALITY, target):
        if any(True for _ in graph.triples(s, _TYPE, _HOTSPOT)):
            if graph.value(s, _STATIC_MATCH) is not None:
                continue
            term = graph.value(s, _CONFIDENCE)
        elif any(True for _ in graph.triples(s, _TYPE, _WEATHER)):
            term = graph.value(s, _DANGER_CONTRIBUTION)
        else:
            continue
        try:
            score += float(term.lexical)
        except (AttributeError, TypeError, ValueError):
            continue
    return score


def municipality_scores(graph) -> Dict[str, float]:
    """:func:`municipality_score` for every municipality at once (the
    full-scan FWI paths: baseline and ``full_rescan`` batches)."""
    scores: Dict[str, float] = {}
    for record in iter_hotspot_records(graph):
        if record.municipality is None or record.static:
            continue
        scores[record.municipality] = scores.get(
            record.municipality, 0.0
        ) + (record.confidence or 0.0)
    for s in graph.subjects(_TYPE, _WEATHER):
        municipality = graph.value(s, _MUNICIPALITY)
        if municipality is None:
            continue
        contribution = graph.value(s, _DANGER_CONTRIBUTION)
        try:
            value = float(contribution.lexical)
        except (AttributeError, TypeError, ValueError):
            continue
        key = _text(municipality)
        scores[key] = scores.get(key, 0.0) + value
    return scores


def _municipality_matches(uri: Optional[str], wanted: str) -> bool:
    if uri is None:
        return False
    if uri == wanted:
        return True
    local = uri.rsplit("#", 1)[-1].rsplit("/", 1)[-1]
    return local == wanted


# -- the registry ----------------------------------------------------------


class SubscriptionRegistry:
    """Thread-safe subscription store with an R-tree geofence index.

    Geofenced ``filter`` subscriptions are indexed by their bounding
    box so matching a changed hotspot is a point probe —
    O(log subscriptions) — instead of a scan.  The R-tree has no
    delete, so removals are tombstoned and filtered at probe time; the
    index is rebuilt (STR bulk-load) once tombstones pile up.  Fresh
    registrations go to a side list probed linearly and folded into
    the tree on the next rebuild, keeping single registrations O(log n)
    amortised and bulk registration one packing pass.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._subs: Dict[str, Subscription] = {}
        self._rtree: Optional[RTree] = None
        self._pending: List[Subscription] = []
        self._tombstones: Set[str] = set()
        self._global_filters: Dict[str, Subscription] = {}
        self._queries: Dict[str, Subscription] = {}
        self._fwi: Dict[str, Subscription] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._subs)

    def add(
        self, sub: Subscription, defer_rebuild: bool = False
    ) -> Subscription:
        with self._lock:
            if sub.id in self._subs:
                raise SubscriptionError(
                    f"duplicate subscription id {sub.id!r}"
                )
            self._subs[sub.id] = sub
            if sub.kind == "filter":
                if sub.bbox is None:
                    self._global_filters[sub.id] = sub
                else:
                    self._pending.append(sub)
                    if (
                        not defer_rebuild
                        and len(self._pending) > _TOMBSTONE_REBUILD
                    ):
                        self._rebuild()
            elif sub.kind == "stsparql":
                self._queries[sub.id] = sub
            else:
                self._fwi[sub.id] = sub
            return sub

    def add_many(self, subs: Iterable[Subscription]) -> None:
        """Bulk registration: one STR bulk-load instead of n inserts
        (per-add threshold rebuilds are deferred to the single pack at
        the end — they would make bulk registration quadratic)."""
        with self._lock:
            for sub in subs:
                self.add(sub, defer_rebuild=True)
            self._rebuild()

    def remove(self, sub_id: str) -> bool:
        with self._lock:
            sub = self._subs.pop(sub_id, None)
            if sub is None:
                return False
            self._global_filters.pop(sub_id, None)
            self._queries.pop(sub_id, None)
            self._fwi.pop(sub_id, None)
            self._pending = [
                p for p in self._pending if p.id != sub_id
            ]
            if sub.kind == "filter" and sub.bbox is not None:
                self._tombstones.add(sub_id)
                if len(self._tombstones) > _TOMBSTONE_REBUILD:
                    self._rebuild()
            return True

    def get(self, sub_id: str) -> Optional[Subscription]:
        with self._lock:
            return self._subs.get(sub_id)

    def list(self) -> List[Subscription]:
        with self._lock:
            return sorted(
                self._subs.values(), key=lambda s: s.id
            )

    def standing_queries(self) -> List[Subscription]:
        with self._lock:
            return list(self._queries.values())

    def fwi_subscriptions(self) -> List[Subscription]:
        with self._lock:
            return list(self._fwi.values())

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return {
                "filter": len(self._subs)
                - len(self._queries)
                - len(self._fwi),
                "stsparql": len(self._queries),
                "fwi": len(self._fwi),
            }

    def _rebuild(self) -> None:
        live = [
            s
            for s in self._subs.values()
            if s.kind == "filter" and s.bbox is not None
        ]
        self._rtree = RTree.bulk_load(
            (s.bbox, s) for s in live
        )
        self._pending = []
        self._tombstones = set()

    def geofence_candidates(
        self, lon: float, lat: float
    ) -> List[Subscription]:
        """Filter subscriptions whose predicates could match a hotspot
        at (lon, lat): a point probe of the geofence index plus the
        bbox-less filters (which see everything)."""
        with self._lock:
            if self._rtree is None and (
                self._pending or self._tombstones
            ):
                self._rebuild()
            out: List[Subscription] = []
            if self._rtree is not None:
                for sub in self._rtree.search_point(lon, lat):
                    if sub.id in self._tombstones:
                        continue
                    if sub.id not in self._subs:
                        continue
                    out.append(sub)
            for sub in self._pending:
                if sub.bbox.contains_point(lon, lat):
                    out.append(sub)
            out.extend(self._global_filters.values())
            return out

    @staticmethod
    def filter_matches(
        sub: Subscription, record: HotspotRecord
    ) -> bool:
        """The non-spatial predicates (bbox was the index probe)."""
        if sub.min_confidence is not None:
            if (
                record.confidence is None
                or record.confidence < sub.min_confidence
            ):
                return False
        if sub.confirmed is not None:
            if record.confirmed is None:
                return False
            if record.confirmed != sub.confirmed:
                return False
        if sub.municipality is not None:
            if not _municipality_matches(
                record.municipality, sub.municipality
            ):
                return False
        return True


# -- journal tee -----------------------------------------------------------


class _TeeJournal:
    """Fans graph-mutation records out to several journals.

    The durable store drains *its own* journal reference (never via
    ``graph._journal``), so interposing a tee on the graph is safe: the
    store still sees every op, and the subscription engine gets an
    independent copy to turn into deltas.
    """

    def __init__(self, *sinks) -> None:
        self._sinks = [s for s in sinks if s is not None]

    def record_add(self, s, p, o) -> None:
        for sink in self._sinks:
            sink.record_add(s, p, o)

    def record_remove(self, s, p, o) -> None:
        for sink in self._sinks:
            sink.record_remove(s, p, o)

    def record_clear(self) -> None:
        for sink in self._sinks:
            sink.record_clear()

    def __len__(self) -> int:
        return len(self._sinks[0]) if self._sinks else 0


class _CaptureJournal:
    """The engine's private journal behind the tee."""

    def __init__(self) -> None:
        self._ops: List = []

    def record_add(self, s, p, o) -> None:
        self._ops.append((OP_ADD, (s, p, o)))

    def record_remove(self, s, p, o) -> None:
        self._ops.append((OP_REMOVE, (s, p, o)))

    def record_clear(self) -> None:
        self._ops.clear()
        self._ops.append((OP_CLEAR, None))

    def drain(self) -> List:
        ops, self._ops = self._ops, []
        return ops

    def __len__(self) -> int:
        return len(self._ops)


# -- the engine ------------------------------------------------------------


class SubscriptionEngine:
    """Evaluates every registered subscription against each commit.

    Single-writer like the store itself: :meth:`process_commit` and
    :meth:`publish_batch` run on the service's writer thread inside
    the publish window; registration and acknowledgement arrive from
    HTTP threads and synchronise on the engine lock.

    With a ``state_dir`` the engine is durable: the registry, the
    per-subscriber acknowledged cursors and the notification log live
    under ``<state_dir>/`` and follow the store's commit order — the
    triple WAL fsync is the commit point, the notification batch is
    appended (fsynced) *before* the snapshot publish, and recovery
    regenerates the at-most-one tail batch a crash between the two can
    swallow (see :meth:`repair_tail`).
    """

    def __init__(
        self,
        state_dir: Optional[str] = None,
        fsync: str = "commit",
        slo=None,
    ) -> None:
        import os

        self.registry = SubscriptionRegistry()
        self._lock = threading.RLock()
        self._seen: Dict[str, Set[str]] = {}
        self._fwi_classes: Optional[Dict[str, int]] = None
        self._listeners: List[
            Callable[[NotificationBatch], None]
        ] = []
        self._slo = slo
        self._strabon = None
        self._publisher = None
        self._capture: Optional[_CaptureJournal] = None
        self._base_journal = None
        self._eval_started: Dict[int, float] = {}
        self.state_dir = state_dir
        self.log: Optional[NotificationLog] = None
        self.cursors: Optional[CursorStore] = None
        #: Session-only cursors when there is no durable store.
        self._mem_cursors: Dict[str, int] = {}
        self._registry_path: Optional[str] = None
        self._fsync = fsync
        if state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
            self._registry_path = os.path.join(
                state_dir, "registry.json"
            )
            self.log = NotificationLog(
                os.path.join(state_dir, "notifications.log"),
                fsync=fsync,
            )
            self.cursors = CursorStore(
                os.path.join(state_dir, "cursors.json"),
                fsync=fsync != "never",
            )
            self._load_registry()
            self._rebuild_seen()

    # -- durable state -----------------------------------------------------

    def _load_registry(self) -> None:
        from repro.durable import load_service_state

        assert self._registry_path is not None
        saved = load_service_state(self._registry_path)
        if saved is None:
            return
        subs = []
        for doc in saved.get("subscriptions", []):
            subs.append(
                Subscription.from_dict(
                    doc,
                    sub_id=str(doc["id"]),
                    created_sequence=int(
                        doc.get("created_sequence", 0)
                    ),
                )
            )
        self.registry.add_many(subs)

    def _persist_registry(self) -> None:
        if self._registry_path is None:
            return
        from repro.durable import save_service_state

        save_service_state(
            self._registry_path,
            {
                "version": 1,
                "subscriptions": [
                    s.to_dict() for s in self.registry.list()
                ],
            },
            fsync=self._fsync != "never",
        )

    def _rebuild_seen(self) -> None:
        """Replaying the notification log restores exactly-once: every
        previously delivered (subscription, subject) pair re-enters
        the seen-set, so regenerated or repaired batches can never
        duplicate a notification that already reached the log."""
        assert self.log is not None
        for batch in self.log.batches:
            for doc in batch.notifications:
                note = Notification.from_dict(doc)
                if note.kind == "fwi":
                    continue
                self._seen.setdefault(
                    note.subscription, set()
                ).add(note.subject)

    # -- wiring ------------------------------------------------------------

    def bind(self, strabon, publisher=None) -> None:
        """Attach to the live graph (tee the mutation journal) and the
        publisher (for priming new registrations against the latest
        published snapshot)."""
        self._strabon = strabon
        self._publisher = publisher
        graph = strabon.graph
        self._capture = _CaptureJournal()
        self._base_journal = graph._journal
        if self._base_journal is not None:
            graph._journal = _TeeJournal(
                self._base_journal, self._capture
            )
        else:
            graph._journal = self._capture
        self._ensure_fwi_baseline(graph)

    def detach(self) -> None:
        """Restore the graph's original journal (must run before the
        durable store's close, whose identity check expects it)."""
        if self._strabon is None:
            return
        graph = self._strabon.graph
        self._strabon = None
        self._capture = None
        graph._journal = self._base_journal
        self._base_journal = None

    def close(self) -> None:
        self.detach()
        if self.log is not None:
            self.log.close()

    def add_listener(
        self, listener: Callable[[NotificationBatch], None]
    ) -> None:
        """``listener(batch)`` runs on the writer thread after every
        publication (the SSE hub registers here)."""
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        with self._lock:
            self._listeners = [
                cb for cb in self._listeners if cb is not listener
            ]

    # -- registration ------------------------------------------------------

    def register(self, doc: Dict[str, Any]) -> Subscription:
        """Validate, index, prime and persist one subscription.

        Priming evaluates the new subscription against the latest
        *published* snapshot and marks current matches as seen without
        notifying — a standing query starts "from now", it does not
        replay history.
        """
        sequence = (
            self._publisher.sequence
            if self._publisher is not None
            else 0
        )
        sub = Subscription.from_dict(
            doc, sub_id=uuid.uuid4().hex[:12], created_sequence=sequence
        )
        with self._lock:
            self.registry.add(sub)
            self._prime([sub])
            self._persist_registry()
        self._export_gauges()
        return sub

    def register_many(
        self, docs: Iterable[Dict[str, Any]]
    ) -> List[Subscription]:
        """Bulk registration (one R-tree pack, one priming scan)."""
        sequence = (
            self._publisher.sequence
            if self._publisher is not None
            else 0
        )
        subs = [
            Subscription.from_dict(
                doc,
                sub_id=uuid.uuid4().hex[:12],
                created_sequence=sequence,
            )
            for doc in docs
        ]
        with self._lock:
            self.registry.add_many(subs)
            self._prime(subs)
            self._persist_registry()
        self._export_gauges()
        return subs

    def remove(self, sub_id: str) -> bool:
        with self._lock:
            removed = self.registry.remove(sub_id)
            if removed:
                self._seen.pop(sub_id, None)
                self._mem_cursors.pop(sub_id, None)
                if self.cursors is not None:
                    self.cursors.forget(sub_id)
                self._persist_registry()
        self._export_gauges()
        return removed

    # -- cursors -----------------------------------------------------------

    def ack(self, sub_id: str, sequence: int) -> int:
        """Advance a subscriber's acknowledged cursor (monotonic);
        returns the cursor now in effect.  Durable when the engine is."""
        if self.cursors is not None:
            return self.cursors.ack(sub_id, sequence)
        if sequence < 0:
            raise SubscriptionError("cursor sequence must be >= 0")
        with self._lock:
            current = self._mem_cursors.get(sub_id, 0)
            if sequence > current:
                self._mem_cursors[sub_id] = sequence
                current = sequence
            return current

    def cursor(self, sub_id: str) -> int:
        """The acknowledged cursor (0 = nothing acknowledged yet)."""
        if self.cursors is not None:
            return self.cursors.get(sub_id)
        with self._lock:
            return self._mem_cursors.get(sub_id, 0)

    def replay_after(self, sequence: int) -> List[NotificationBatch]:
        """Logged batches past a cursor — the SSE resume set (empty
        when the engine runs without a durable log)."""
        if self.log is None:
            return []
        return self.log.after(sequence)

    def _prime(self, subs: List[Subscription]) -> None:
        source = self._priming_source()
        if source is None:
            return
        graph = _source_graph(source)
        filters = [s for s in subs if s.kind == "filter"]
        queries = [s for s in subs if s.kind == "stsparql"]
        if filters:
            for record in iter_hotspot_records(graph):
                if record.static:
                    continue
                for sub in filters:
                    if (
                        sub.bbox is not None
                        and not sub.bbox.contains_point(
                            record.lon, record.lat
                        )
                    ):
                        continue
                    if SubscriptionRegistry.filter_matches(
                        sub, record
                    ):
                        self._seen.setdefault(
                            sub.id, set()
                        ).add(record.subject)
        for sub in queries:
            rows = source.select(sub.query)
            for row in rows:
                h = row.get("h")
                if h is not None:
                    self._seen.setdefault(sub.id, set()).add(
                        _text(h)
                    )
        if any(s.kind == "fwi" for s in subs):
            self._ensure_fwi_baseline(graph)

    def _priming_source(self):
        if self._publisher is not None:
            latest = self._publisher.latest()
            if latest is not None:
                return latest.view
        if self._strabon is not None:
            return self._strabon
        return None

    # -- evaluation --------------------------------------------------------

    def _ensure_fwi_baseline(self, graph) -> None:
        if self._fwi_classes is not None:
            return
        classes: Dict[str, int] = {}
        for municipality, score in municipality_scores(
            graph
        ).items():
            index = danger_class(score)
            if index:
                classes[municipality] = index
        self._fwi_classes = classes

    def process_commit(
        self,
        sequence: int,
        wal_seq: Optional[int] = None,
        ops: Optional[Sequence] = None,
    ) -> NotificationBatch:
        """Evaluate the committed delta and durably log the batch.

        Runs inside the service's publish window, *after* the triple
        WAL fsync (the commit point) and *before* the snapshot
        publish.  ``ops`` overrides the captured journal (the recovery
        repair path passes decoded WAL ops).
        """
        started = time.monotonic()
        if ops is None:
            ops = (
                self._capture.drain()
                if self._capture is not None
                else []
            )
        delta = delta_from_ops(ops)
        assert self._strabon is not None, "engine is not bound"
        with self._lock, _tracer.span(
            "subscribe.evaluate",
            sequence=sequence,
            subjects=len(delta.subjects),
        ):
            notifications = self._evaluate_delta(
                delta, self._strabon, sequence
            )
        batch = NotificationBatch(
            sequence=sequence,
            wal_seq=wal_seq,
            notifications=tuple(
                n.to_dict() for n in notifications
            ),
        )
        if self.log is not None:
            self.log.append(batch)
        self._eval_started[sequence] = started
        return batch

    def _evaluate_delta(
        self, delta: DeltaBatch, source, sequence: int
    ) -> List[Notification]:
        graph = _source_graph(source)
        if delta.full_rescan:
            return self._evaluate_records(
                list(iter_hotspot_records(graph)),
                source,
                sequence,
                municipalities=None,
            )
        records = []
        for subject in delta.subjects:
            record = hotspot_record(graph, subject)
            if record is not None:
                records.append(record)
        municipalities = set(delta.municipalities)
        for record in records:
            if record.municipality is not None:
                municipalities.add(record.municipality)
        return self._evaluate_records(
            records, source, sequence, municipalities
        )

    def _evaluate_records(
        self,
        records: List[HotspotRecord],
        source,
        sequence: int,
        municipalities: Optional[Set[str]],
    ) -> List[Notification]:
        graph = _source_graph(source)
        notifications: List[Notification] = []
        # filter family: point probe per changed hotspot.  Static heat
        # sources never alert.
        for record in records:
            if record.static:
                continue
            for sub in self.registry.geofence_candidates(
                record.lon, record.lat
            ):
                seen = self._seen.setdefault(sub.id, set())
                if record.subject in seen:
                    continue
                if SubscriptionRegistry.filter_matches(
                    sub, record
                ):
                    seen.add(record.subject)
                    notifications.append(
                        self._hotspot_notification(
                            sub, record, sequence
                        )
                    )
        # stsparql family: the standing query with ?h pre-bound to
        # each changed subject — constant text, cached plan.
        for sub in self.registry.standing_queries():
            seen = self._seen.setdefault(sub.id, set())
            for record in records:
                if record.static or record.subject in seen:
                    continue
                rows = source.select(
                    sub.query,
                    params={"h": URI(record.subject)},
                )
                if len(rows):
                    seen.add(record.subject)
                    notifications.append(
                        self._hotspot_notification(
                            sub, record, sequence
                        )
                    )
        # fwi family: recompute only the touched municipalities.
        if municipalities is None:
            notifications.extend(
                self._fwi_full(graph, sequence)
            )
        else:
            self._ensure_fwi_baseline(graph)
            for municipality in sorted(municipalities):
                notifications.extend(
                    self._fwi_transition(
                        graph, municipality, sequence
                    )
                )
        return notifications

    def _fwi_transition(
        self, graph, municipality: str, sequence: int
    ) -> List[Notification]:
        assert self._fwi_classes is not None
        new_index = danger_class(
            municipality_score(graph, municipality)
        )
        old_index = self._fwi_classes.get(municipality, 0)
        if new_index == old_index:
            return []
        if new_index:
            self._fwi_classes[municipality] = new_index
        else:
            self._fwi_classes.pop(municipality, None)
        out = []
        for sub in self.registry.fwi_subscriptions():
            if new_index < sub.min_class:
                continue
            if (
                sub.municipality is not None
                and not _municipality_matches(
                    municipality, sub.municipality
                )
            ):
                continue
            out.append(
                Notification(
                    subscription=sub.id,
                    kind="fwi",
                    sequence=sequence,
                    subject=municipality,
                    payload={
                        "danger_class": DANGER_CLASSES[new_index],
                        "previous_class": DANGER_CLASSES[old_index],
                        "municipality": municipality,
                    },
                )
            )
        return out

    def _fwi_full(self, graph, sequence: int) -> List[Notification]:
        """Full-rescan fallback: recompute every municipality."""
        self._ensure_fwi_baseline(graph)
        assert self._fwi_classes is not None
        scores = municipality_scores(graph)
        touched = set(scores) | set(self._fwi_classes)
        out: List[Notification] = []
        for municipality in sorted(touched):
            out.extend(
                self._fwi_transition(graph, municipality, sequence)
            )
        return out

    @staticmethod
    def _hotspot_notification(
        sub: Subscription,
        record: HotspotRecord,
        sequence: int,
    ) -> Notification:
        payload: Dict[str, Any] = {
            "lon": record.lon,
            "lat": record.lat,
            "confidence": record.confidence,
            "municipality": record.municipality,
            "confirmed": record.confirmed,
            "acquired": record.acquired,
            "sources": list(record.sources),
        }
        return Notification(
            subscription=sub.id,
            kind=sub.kind,
            sequence=sequence,
            subject=record.subject,
            payload=payload,
        )

    def evaluate_full(
        self, source, sequence: int, commit: bool = True
    ) -> List[Notification]:
        """The full re-run baseline: every standing query over the
        whole snapshot, minus the seen-set.

        With ``commit=False`` the engine's state (seen-sets, FWI
        classes) is untouched — the differential benchmark uses this
        to time a re-run against the same pre-state the incremental
        path saw.
        """
        graph = _source_graph(source)
        with self._lock:
            if not commit:
                saved_seen = {
                    k: set(v) for k, v in self._seen.items()
                }
                saved_fwi = (
                    None
                    if self._fwi_classes is None
                    else dict(self._fwi_classes)
                )
            notifications = self._evaluate_full_locked(
                graph, source, sequence
            )
            if not commit:
                self._seen = saved_seen
                self._fwi_classes = saved_fwi
            return notifications

    def _evaluate_full_locked(
        self, graph, source, sequence: int
    ) -> List[Notification]:
        notifications: List[Notification] = []
        records = list(iter_hotspot_records(graph))
        for record in records:
            if record.static:
                continue
            for sub in self.registry.geofence_candidates(
                record.lon, record.lat
            ):
                seen = self._seen.setdefault(sub.id, set())
                if record.subject in seen:
                    continue
                if SubscriptionRegistry.filter_matches(
                    sub, record
                ):
                    seen.add(record.subject)
                    notifications.append(
                        self._hotspot_notification(
                            sub, record, sequence
                        )
                    )
        by_subject = {r.subject: r for r in records}
        for sub in self.registry.standing_queries():
            seen = self._seen.setdefault(sub.id, set())
            for row in source.select(sub.query):
                h = row.get("h")
                if h is None:
                    continue
                subject = _text(h)
                if subject in seen:
                    continue
                record = by_subject.get(subject)
                if record is None:
                    record = hotspot_record(graph, subject)
                if record is None or record.static:
                    continue
                seen.add(subject)
                notifications.append(
                    self._hotspot_notification(
                        sub, record, sequence
                    )
                )
        notifications.extend(self._fwi_full(graph, sequence))
        return notifications

    # -- delivery ----------------------------------------------------------

    def publish_batch(
        self, batch: NotificationBatch, published=None
    ) -> None:
        """Fan the batch out to listeners; record latency + SLO.

        Runs after the snapshot publish, so a subscriber that reads
        back through the query API on receiving a notification always
        observes a snapshot containing the notified state.
        """
        started = self._eval_started.pop(batch.sequence, None)
        with self._lock:
            listeners = list(self._listeners)
        delivered = True
        for listener in listeners:
            try:
                listener(batch)
            except Exception:  # noqa: BLE001 — isolation, like publish
                delivered = False
        elapsed = (
            0.0
            if started is None
            else time.monotonic() - started
        )
        if _metrics.enabled:
            _metrics.histogram(
                "subscribe_notification_seconds",
                "Commit-to-fanout latency per notification batch",
            ).observe(elapsed)
            if batch.notifications:
                _metrics.counter(
                    "subscribe_notifications_total",
                    "Notifications fanned out to subscribers",
                ).inc(len(batch.notifications))
        if self._slo is not None:
            from repro.obs.slo import NOTIFY_LATENCY_SLO_S

            try:
                self._slo.record(
                    "notification-delivery",
                    delivered and elapsed < NOTIFY_LATENCY_SLO_S,
                    trace_id=getattr(published, "trace_id", None),
                )
            except KeyError:
                pass

    # -- recovery ----------------------------------------------------------

    def repair_tail(
        self, wal_records, sequence: int
    ) -> Optional[NotificationBatch]:
        """Regenerate the at-most-one batch a crash can swallow.

        The crash window is between the triple-WAL fsync (the commit
        point) and the notification-log append: the acquisition is
        durable but its notifications never reached the log.  Only the
        *last* WAL record can be in that state — any earlier record
        was followed by a successful append.  Its ops are re-decoded
        and evaluated against the recovered graph (which, the record
        being last, equals the state the original evaluation saw); the
        regenerated batch is stamped with the restart's imminent
        publication sequence, and the rebuilt seen-set guarantees no
        notification already in the log is emitted twice.
        """
        from repro.durable.codec import decode_ops
        from repro.durable.wal import REC_BATCH, split_batch_payload

        last = None
        for record in wal_records:
            if record.kind == REC_BATCH:
                last = record
        if last is None:
            return None
        logged = self.log.last_wal_seq if self.log else None
        if logged is not None and last.seq <= logged:
            return None
        _, ops_bytes = split_batch_payload(last.payload)
        ops = decode_ops(ops_bytes)
        batch = self.process_commit(
            sequence, wal_seq=last.seq, ops=ops
        )
        return batch

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        counts = self.registry.counts()
        report: Dict[str, Any] = {
            "subscriptions": sum(counts.values()),
            "by_kind": counts,
            "durable": self.log is not None,
        }
        if self.log is not None:
            report["logged_batches"] = len(self.log)
            report["last_sequence"] = self.log.last_sequence
        if self.cursors is not None:
            report["cursors"] = self.cursors.all()
        return report

    def _export_gauges(self) -> None:
        if not _metrics.enabled:
            return
        for kind, count in self.registry.counts().items():
            _metrics.gauge(
                "subscribe_subscriptions",
                "Registered subscriptions, by kind",
            ).set(count, kind=kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SubscriptionEngine subs={len(self.registry)} "
            f"durable={self.log is not None}>"
        )
