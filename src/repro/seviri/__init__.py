"""Earth-observation substrate: synthetic MSG/SEVIRI + MODIS simulation.

The paper's service consumes MSG/SEVIRI HRIT imagery from a receiving
station.  Here an equivalent synthetic pipeline produces physically
plausible brightness-temperature imagery of a simulated Greek fire season:

* :mod:`repro.seviri.sensors` — sensor models (MSG1/MSG2 SEVIRI, MODIS),
* :mod:`repro.seviri.solar` — solar geometry (zenith angle, day/night),
* :mod:`repro.seviri.fires` — fire-event and fire-season simulation,
* :mod:`repro.seviri.geo` — raw satellite grid, target lon/lat grid and
  the second-degree-polynomial georeferencing of the paper,
* :mod:`repro.seviri.scene` — brightness-temperature synthesis (IR 3.9
  and IR 10.8 µm) with diurnal cycles, sea/land contrast, smoke plumes
  and sensor noise,
* :mod:`repro.seviri.hrit` — an HRIT-like segmented binary file format
  with writer, reader and a Data-Vault format driver,
* :mod:`repro.seviri.modis` — simulated MODIS/FIRMS reference hotspots,
* :mod:`repro.seviri.acquisition` — acquisition scheduling (5-minute
  MSG1, 15-minute MSG2, twice-daily Terra/Aqua).
"""

from repro.seviri.sensors import MODIS_AQUA, MODIS_TERRA, MSG1, MSG2, Sensor
from repro.seviri.solar import solar_zenith_deg
from repro.seviri.fires import FireEvent, FireSeason
from repro.seviri.geo import GeoReference, RawGrid, TargetGrid
from repro.seviri.scene import SceneGenerator
from repro.seviri.hrit import HRITDriver, read_hrit_image, write_hrit_segments
from repro.seviri.modis import ModisDetection, simulate_modis_detections
from repro.seviri.acquisition import (
    AcquisitionSchedule,
    modis_overpasses,
    msg_schedule,
)
from repro.seviri.monitor import ReadyAcquisition, SeviriMonitor

__all__ = [
    "AcquisitionSchedule",
    "FireEvent",
    "FireSeason",
    "GeoReference",
    "HRITDriver",
    "MODIS_AQUA",
    "MODIS_TERRA",
    "MSG1",
    "MSG2",
    "ModisDetection",
    "RawGrid",
    "ReadyAcquisition",
    "SceneGenerator",
    "Sensor",
    "SeviriMonitor",
    "TargetGrid",
    "modis_overpasses",
    "msg_schedule",
    "read_hrit_image",
    "simulate_modis_detections",
    "solar_zenith_deg",
    "write_hrit_segments",
]
