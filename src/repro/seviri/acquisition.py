"""Acquisition scheduling.

MSG1 SEVIRI delivers an image every 5 minutes, MSG2 every 15 (Section 2);
MODIS Terra/Aqua pass over Greece at fixed local times.  The schedule
objects below drive the real-time loop of the service and the Table 2 /
Figure 8 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime, time, timedelta, timezone
from typing import Iterator, List, Tuple

from repro.seviri.sensors import MODIS_AQUA, MODIS_TERRA, MSG1, MSG2, Sensor


@dataclass(frozen=True)
class Acquisition:
    """One scheduled image acquisition."""

    sensor: Sensor
    timestamp: datetime


def msg_schedule(
    day: date, sensor: Sensor = MSG2, tz=timezone.utc
) -> List[Acquisition]:
    """All acquisitions of a geostationary sensor during ``day``."""
    if not sensor.is_geostationary:
        raise ValueError(f"{sensor.name} is not geostationary")
    out: List[Acquisition] = []
    current = datetime.combine(day, time(0, 0), tzinfo=tz)
    end = current + timedelta(days=1)
    step = timedelta(minutes=sensor.revisit_minutes)
    while current < end:
        out.append(Acquisition(sensor, current))
        current += step
    return out


def modis_overpasses(
    day: date, tz=timezone.utc, longitude: float = 23.7
) -> List[Acquisition]:
    """Terra/Aqua overpasses during ``day``.

    Local solar overpass times are converted to UTC using the longitude
    (Greece ≈ UTC+1.6 solar offset at 23.7°E).
    """
    out: List[Acquisition] = []
    solar_offset = timedelta(hours=longitude / 15.0)
    for sensor in (MODIS_TERRA, MODIS_AQUA):
        for hhmm in sensor.overpass_local_times:
            hh, mm = map(int, hhmm.split(":"))
            local = datetime.combine(day, time(hh, mm), tzinfo=tz)
            out.append(Acquisition(sensor, local - solar_offset))
    out.sort(key=lambda a: a.timestamp)
    return out


@dataclass
class AcquisitionSchedule:
    """A merged multi-sensor schedule over a date range."""

    start: date
    days: int
    sensors: Tuple[Sensor, ...] = (MSG1, MSG2)
    include_modis: bool = True

    def msg_acquisitions(self) -> List[Acquisition]:
        out: List[Acquisition] = []
        for d in range(self.days):
            day = self.start + timedelta(days=d)
            for sensor in self.sensors:
                if sensor.is_geostationary:
                    out.extend(msg_schedule(day, sensor))
        out.sort(key=lambda a: (a.timestamp, a.sensor.name))
        return out

    def modis_acquisitions(self) -> List[Acquisition]:
        if not self.include_modis:
            return []
        out: List[Acquisition] = []
        for d in range(self.days):
            out.extend(modis_overpasses(self.start + timedelta(days=d)))
        return out

    def __iter__(self) -> Iterator[Acquisition]:
        merged = self.msg_acquisitions() + self.modis_acquisitions()
        merged.sort(key=lambda a: a.timestamp)
        return iter(merged)
