"""Fire-event simulation: the ground truth of the synthetic fire season.

A :class:`FireEvent` is an ignition with a growth/peak/decay intensity
profile and a circular footprint; :class:`FireSeason` samples a multi-day
crisis scenario over the synthetic Greece with three event flavours that
drive the paper's error analysis:

* **forest fires** — the real emergencies the service must catch,
* **agricultural burns** — real combustion outside forests that the
  refinement step must discard ("not real forest fires"),
* **smoke plumes** — drifting warm smoke from big fires that causes the
  false alarms of Figure 7 (often over the sea).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.corine import FIRE_CONSISTENT_KEYS
from repro.datasets.geography import SyntheticGreece
from repro.geometry import Point, Polygon


@dataclass
class FireEvent:
    """A single fire (or smoke artifact) with a temporal profile."""

    event_id: int
    lon: float
    lat: float
    start: datetime
    peak: datetime
    end: datetime
    max_radius_km: float
    kind: str = "forest"  # "forest" | "agricultural" | "smoke" | "industrial"
    #: Wind direction in radians (plume orientation for smoke).
    wind_direction: float = 0.0

    def active(self, when: datetime) -> bool:
        return self.start <= when <= self.end

    def intensity_at(self, when: datetime) -> float:
        """Intensity in [0, 1]: linear growth to the peak, linear decay."""
        if not self.active(when):
            return 0.0
        if when <= self.peak:
            rise = (when - self.start).total_seconds()
            total = max((self.peak - self.start).total_seconds(), 1.0)
            return rise / total
        fall = (self.end - when).total_seconds()
        total = max((self.end - self.peak).total_seconds(), 1.0)
        return fall / total

    def radius_km_at(self, when: datetime) -> float:
        """Burning-front radius: grows with the burnt area, saturating."""
        if not self.active(when):
            return 0.0
        frac = (when - self.start).total_seconds() / max(
            (self.end - self.start).total_seconds(), 1.0
        )
        return self.max_radius_km * min(1.0, 0.2 + 1.6 * frac)

    def radius_deg_at(self, when: datetime) -> float:
        return self.radius_km_at(when) / 111.0

    def footprint(self, when: datetime, resolution: int = 12) -> Optional[Polygon]:
        """The burning area as a polygon, or None when inactive."""
        r = self.radius_deg_at(when)
        if r <= 0.0:
            return None
        pts = [
            (
                self.lon + r * math.cos(2 * math.pi * k / resolution),
                self.lat + r * math.sin(2 * math.pi * k / resolution),
            )
            for k in range(resolution)
        ]
        return Polygon(pts)

    @property
    def location(self) -> Point:
        return Point(self.lon, self.lat)


class FireSeason:
    """A multi-day simulated crisis with ground-truth fire events."""

    def __init__(
        self,
        greece: SyntheticGreece,
        start: datetime,
        days: int = 3,
        forest_fires_per_day: float = 4.0,
        agricultural_burns_per_day: float = 2.0,
        smoke_fraction: float = 0.8,
        seed: int = 7,
    ) -> None:
        self.greece = greece
        self.start = start
        self.days = days
        rng = np.random.default_rng(seed)
        self.events: List[FireEvent] = []
        next_id = 0
        for day in range(days):
            day_start = start + timedelta(days=day)
            n_forest = rng.poisson(forest_fires_per_day)
            n_agri = rng.poisson(agricultural_burns_per_day)
            for _ in range(max(n_forest, 1)):
                event = self._sample_event(
                    rng, next_id, day_start, kind="forest"
                )
                if event is None:
                    continue
                self.events.append(event)
                next_id += 1
                # Big fires spawn a drifting smoke plume artifact.
                if (
                    event.max_radius_km > 1.5
                    and rng.random() < smoke_fraction
                ):
                    self.events.append(
                        self._smoke_for(rng, next_id, event)
                    )
                    next_id += 1
            for _ in range(n_agri):
                event = self._sample_event(
                    rng, next_id, day_start, kind="agricultural"
                )
                if event is None:
                    continue
                self.events.append(event)
                next_id += 1

    def _sample_event(
        self,
        rng: np.random.Generator,
        event_id: int,
        day_start: datetime,
        kind: str,
    ) -> Optional[FireEvent]:
        for _ in range(200):
            lon = rng.uniform(*self._lon_range())
            lat = rng.uniform(*self._lat_range())
            if not self.greece.is_land(lon, lat):
                continue
            cover = self.greece.land_cover_at(lon, lat)
            if kind == "forest":
                if cover not in FIRE_CONSISTENT_KEYS:
                    continue
            else:  # agricultural burns happen on arable land
                if cover is None or cover in FIRE_CONSISTENT_KEYS:
                    continue
            ignition_hour = float(rng.uniform(8.0, 16.0))
            start = day_start + timedelta(hours=ignition_hour)
            if kind == "forest":
                duration_h = float(rng.uniform(4.0, 14.0))
                # Heavy small-fire tail: many fires stay below the MSG
                # sub-pixel sensitivity floor (these drive Table 1's
                # omission error — MODIS at 1 km still sees them).
                max_radius = float(rng.uniform(0.7, 5.0))
                if rng.random() < 0.35:
                    max_radius = float(rng.uniform(0.5, 1.2))
            else:
                duration_h = float(rng.uniform(1.0, 3.0))
                max_radius = float(rng.uniform(0.5, 1.2))
            peak = start + timedelta(hours=duration_h * 0.4)
            end = start + timedelta(hours=duration_h)
            return FireEvent(
                event_id=event_id,
                lon=lon,
                lat=lat,
                start=start,
                peak=peak,
                end=end,
                max_radius_km=max_radius,
                kind=kind,
                wind_direction=float(rng.uniform(0, 2 * math.pi)),
            )
        return None

    def _smoke_for(
        self, rng: np.random.Generator, event_id: int, fire: FireEvent
    ) -> FireEvent:
        # The plume drifts downwind. Greek summer sea-breeze circulation
        # carries most plumes towards the coast and out over the sea —
        # which is where Figure 7's false alarms sit, and what makes them
        # removable by the sea/land-cover refinement steps.
        drift_km = float(rng.uniform(6.0, 15.0))
        direction = fire.wind_direction
        candidates = [
            fire.wind_direction + k * math.pi / 4 for k in range(8)
        ]
        rng.shuffle(candidates)
        for angle in candidates:
            lon_c = fire.lon + drift_km / 111.0 * math.cos(angle)
            lat_c = fire.lat + drift_km / 111.0 * math.sin(angle)
            cover = self.greece.land_cover_at(lon_c, lat_c)
            if not self.greece.is_land(lon_c, lat_c) or (
                cover is not None and cover not in FIRE_CONSISTENT_KEYS
            ):
                direction = angle
                break
        lon = fire.lon + drift_km / 111.0 * math.cos(direction)
        lat = fire.lat + drift_km / 111.0 * math.sin(direction)
        return FireEvent(
            event_id=event_id,
            lon=lon,
            lat=lat,
            start=fire.start + timedelta(minutes=30),
            peak=fire.peak,
            end=fire.end,
            max_radius_km=fire.max_radius_km * 1.2,
            kind="smoke",
            wind_direction=direction,
        )

    def _lon_range(self) -> Tuple[float, float]:
        minx, _, maxx, _ = self.greece.bbox
        return (minx + 0.3, maxx - 0.3)

    def _lat_range(self) -> Tuple[float, float]:
        _, miny, _, maxy = self.greece.bbox
        return (miny + 0.3, maxy - 0.3)

    # -- queries ---------------------------------------------------------

    def active_events(self, when: datetime) -> List[FireEvent]:
        return [e for e in self.events if e.active(when)]

    def active_fires(self, when: datetime) -> List[FireEvent]:
        """Real combustion only (no smoke artifacts).

        Includes ``industrial`` static heat sources: a refinery flare
        is real combustion every instrument detects — filtering it is
        the refinement stage's job, not the simulation's.
        """
        return [
            e
            for e in self.active_events(when)
            if e.kind in ("forest", "agricultural", "industrial")
        ]

    def forest_fires(self) -> List[FireEvent]:
        return [e for e in self.events if e.kind == "forest"]

    @property
    def end(self) -> datetime:
        return self.start + timedelta(days=self.days)
