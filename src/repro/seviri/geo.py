"""Satellite imaging geometry and georeferencing.

Two grids matter:

* the **raw grid** — pixel coordinates of the image as downlinked.  The
  MSG satellite is geostationary, so the mapping from raw pixels to
  geographic coordinates is fixed; we model it as an affine transform
  (scale + slight rotation) plus a small quadratic distortion standing in
  for the real scan geometry.
* the **target grid** — the regular lon/lat product grid over the area of
  interest to which the chain georeferences (the paper georeferences to
  HGRS 87; our product grid is geographic but
  :class:`repro.geometry.projection.GreekGrid` provides the projected
  frame where needed).

Georeferencing follows the paper exactly: the transformation is computed
once (here: least-squares fit of two second-degree polynomials mapping
target lon/lat to raw pixel coordinates), and every image is resampled the
same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.geometry import Polygon


@dataclass(frozen=True)
class TargetGrid:
    """A regular geographic grid; cell (i, j) covers a dlon x dlat box."""

    lon0: float = 20.5
    lat0: float = 34.5
    dlon: float = 0.04
    dlat: float = 0.04
    nx: int = 162
    ny: int = 175

    def lon(self, i) -> np.ndarray:
        """Longitude of pixel centre(s) at x-index ``i``."""
        return self.lon0 + (np.asarray(i, dtype=np.float64) + 0.5) * self.dlon

    def lat(self, j) -> np.ndarray:
        return self.lat0 + (np.asarray(j, dtype=np.float64) + 0.5) * self.dlat

    def index_of(self, lon: float, lat: float) -> Tuple[int, int]:
        i = int((lon - self.lon0) / self.dlon)
        j = int((lat - self.lat0) / self.dlat)
        return (i, j)

    def contains(self, lon: float, lat: float) -> bool:
        i, j = self.index_of(lon, lat)
        return 0 <= i < self.nx and 0 <= j < self.ny

    def mesh(self) -> Tuple[np.ndarray, np.ndarray]:
        """(lon, lat) arrays of shape (nx, ny) for all pixel centres."""
        lons = self.lon(np.arange(self.nx))
        lats = self.lat(np.arange(self.ny))
        return np.meshgrid(lons, lats, indexing="ij")

    def pixel_polygon(self, i: int, j: int) -> Polygon:
        """The pixel's footprint as a lon/lat polygon (the paper's 4x4 km
        square hotspot geometry)."""
        lon_lo = self.lon0 + i * self.dlon
        lat_lo = self.lat0 + j * self.dlat
        return Polygon(
            [
                (lon_lo, lat_lo),
                (lon_lo + self.dlon, lat_lo),
                (lon_lo + self.dlon, lat_lo + self.dlat),
                (lon_lo, lat_lo + self.dlat),
            ]
        )


@dataclass(frozen=True)
class RawGrid:
    """The raw satellite pixel grid and its fixed imaging geometry.

    ``raw_to_geo`` maps pixel indices to lon/lat; the inverse is never
    computed exactly — the chain approximates it with fitted polynomials,
    as NOA's chain does.
    """

    nx: int = 260
    ny: int = 280
    #: Geographic anchor of raw pixel (0, 0).
    lon_origin: float = 19.6
    lat_origin: float = 33.9
    #: Nominal degrees per raw pixel.
    dlon: float = 0.033
    dlat: float = 0.031
    #: Rotation (radians) between the scan axes and the geographic axes.
    rotation: float = 0.035
    #: Quadratic distortion coefficient (scan curvature).
    curvature: float = 3.5e-7

    def raw_to_geo(self, i, j) -> Tuple[np.ndarray, np.ndarray]:
        """Map raw pixel indices to (lon, lat)."""
        i = np.asarray(i, dtype=np.float64)
        j = np.asarray(j, dtype=np.float64)
        cos_r = np.cos(self.rotation)
        sin_r = np.sin(self.rotation)
        u = i * cos_r - j * sin_r
        v = i * sin_r + j * cos_r
        lon = self.lon_origin + u * self.dlon + self.curvature * (v**2)
        lat = self.lat_origin + v * self.dlat + self.curvature * (u**2)
        return lon, lat

    def mesh(self) -> Tuple[np.ndarray, np.ndarray]:
        ii, jj = np.meshgrid(
            np.arange(self.nx), np.arange(self.ny), indexing="ij"
        )
        return self.raw_to_geo(ii, jj)


def _poly2_design(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Design matrix of a full 2-degree bivariate polynomial."""
    return np.column_stack(
        [np.ones_like(x), x, y, x * x, x * y, y * y]
    )


class GeoReference:
    """Second-degree polynomial mapping target lon/lat → raw pixel coords.

    Mirrors §3.1.2: "applies a two degree polynomial in order to map
    pixels of the old image to the pixels of the new image.  The
    coefficients of the polynomial as well as the target image dimensions
    are all precalculated."
    """

    def __init__(self, raw: RawGrid, target: TargetGrid) -> None:
        self.raw = raw
        self.target = target
        # Fit on a coarse control-point grid.
        ctrl_i = np.linspace(0, raw.nx - 1, 24)
        ctrl_j = np.linspace(0, raw.ny - 1, 24)
        ii, jj = np.meshgrid(ctrl_i, ctrl_j, indexing="ij")
        lon, lat = raw.raw_to_geo(ii, jj)
        design = _poly2_design(lon.ravel(), lat.ravel())
        self.coeff_i, *_ = np.linalg.lstsq(design, ii.ravel(), rcond=None)
        self.coeff_j, *_ = np.linalg.lstsq(design, jj.ravel(), rcond=None)
        residual_i = design @ self.coeff_i - ii.ravel()
        residual_j = design @ self.coeff_j - jj.ravel()
        #: RMS fit error in raw pixels (should be well below 1).
        self.rms_pixels = float(
            np.sqrt(np.mean(residual_i**2 + residual_j**2))
        )

    def geo_to_raw(self, lon, lat) -> Tuple[np.ndarray, np.ndarray]:
        """Polynomial estimate of raw pixel coordinates for lon/lat."""
        lon = np.asarray(lon, dtype=np.float64)
        lat = np.asarray(lat, dtype=np.float64)
        design = _poly2_design(lon.ravel(), lat.ravel())
        i = design @ self.coeff_i
        j = design @ self.coeff_j
        return i.reshape(lon.shape), j.reshape(lat.shape)

    def resample(
        self,
        raw_image: np.ndarray,
        window: Optional[Tuple[int, int, int, int]] = None,
    ) -> np.ndarray:
        """Nearest-neighbour resample of a raw image onto the target grid.

        ``window`` identifies the raw-grid origin of ``raw_image`` when it
        is a cropped sub-image (``(i_lo, i_hi, j_lo, j_hi)``).  Returns an
        (nx, ny) float array; pixels that fall outside the raw image come
        back as NaN.
        """
        lon, lat = self.target.mesh()
        i, j = self.geo_to_raw(lon, lat)
        ii = np.round(i).astype(np.int64)
        jj = np.round(j).astype(np.int64)
        if window is not None:
            ii = ii - window[0]
            jj = jj - window[2]
        valid = (
            (ii >= 0)
            & (ii < raw_image.shape[0])
            & (jj >= 0)
            & (jj < raw_image.shape[1])
        )
        out = np.full(lon.shape, np.nan, dtype=np.float64)
        out[valid] = raw_image[ii[valid], jj[valid]]
        return out

    def source_indices(self) -> Tuple[np.ndarray, np.ndarray]:
        """Integer raw-pixel indices feeding each target cell — the
        precalculated lookup the SciQL chain stores as arrays."""
        lon, lat = self.target.mesh()
        i, j = self.geo_to_raw(lon, lat)
        return (
            np.round(i).astype(np.int64),
            np.round(j).astype(np.int64),
        )

    def crop_window(self) -> Tuple[int, int, int, int]:
        """Raw-grid window ``(i_lo, i_hi, j_lo, j_hi)`` covering the target
        area — the chain's cropping step."""
        lon, lat = self.target.mesh()
        i, j = self.geo_to_raw(lon, lat)
        margin = 2
        return (
            max(int(np.floor(i.min())) - margin, 0),
            min(int(np.ceil(i.max())) + margin + 1, self.raw.nx),
            max(int(np.floor(j.min())) - margin, 0),
            min(int(np.ceil(j.max())) + margin + 1, self.raw.ny),
        )
