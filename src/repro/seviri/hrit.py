"""An HRIT-like segmented binary image format.

Real MSG data arrives as High Rate Information Transmission files: one
image is split across several wavelet-compressed segment files that may
arrive out of order.  We reproduce the structure with a compact binary
format ("HSIM"): fixed-size header + zlib-compressed uint16 payload
(brightness temperature × 100), one file per row-band segment.

The module also provides :class:`HRITDriver`, the Data-Vault format driver
that materialises an attached image (a directory of segments or a single
segment file) into a SciQL array.
"""

from __future__ import annotations

import glob
import os
import struct
import zlib
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arraydb.array import Dimension, SciQLArray
from repro.arraydb.catalog import Catalog
from repro.arraydb.errors import VaultError
from repro.arraydb.types import DOUBLE

MAGIC = b"HSIM"
VERSION = 1
_HEADER_FMT = ">4sHH16s8sqiiHHd"
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)

#: Temperatures are stored as uint16 centikelvin.
_SCALE = 100.0


@dataclass(frozen=True)
class SegmentHeader:
    """Decoded header of one segment file."""

    sensor: str
    band: str
    timestamp: datetime
    rows: int  # full image rows (x extent)
    cols: int  # full image cols (y extent)
    segment_index: int
    segment_count: int
    calibration_scale: float

    @property
    def rows_per_segment(self) -> int:
        return -(-self.rows // self.segment_count)


def write_hrit_segments(
    directory: str,
    sensor: str,
    band: str,
    timestamp: datetime,
    image: np.ndarray,
    segment_count: int = 4,
) -> List[str]:
    """Write ``image`` as ``segment_count`` HSIM segment files.

    Returns the file paths (one per segment).  File name pattern mirrors
    real HRIT naming: ``H-000-<sensor>-<band>-<stamp>-C_<seg>.hsim``.
    """
    if timestamp.tzinfo is None:
        timestamp = timestamp.replace(tzinfo=timezone.utc)
    os.makedirs(directory, exist_ok=True)
    rows, cols = image.shape
    rows_per_segment = -(-rows // segment_count)
    quantised = np.clip(image * _SCALE, 0, 65535).astype(">u2")
    paths: List[str] = []
    stamp = timestamp.strftime("%Y%m%d%H%M")
    for seg in range(segment_count):
        lo = seg * rows_per_segment
        hi = min(lo + rows_per_segment, rows)
        payload = zlib.compress(quantised[lo:hi].tobytes(), level=6)
        header = struct.pack(
            _HEADER_FMT,
            MAGIC,
            VERSION,
            0,
            sensor.encode()[:16].ljust(16, b"\0"),
            band.encode()[:8].ljust(8, b"\0"),
            int(timestamp.timestamp()),
            rows,
            cols,
            seg,
            segment_count,
            _SCALE,
        )
        path = os.path.join(
            directory, f"H-000-{sensor}-{band}-{stamp}-C_{seg:02d}.hsim"
        )
        with open(path, "wb") as f:
            f.write(header)
            f.write(payload)
        paths.append(path)
    return paths


def read_segment(path: str) -> Tuple[SegmentHeader, np.ndarray]:
    """Read one segment file; returns its header and row-band pixels."""
    with open(path, "rb") as f:
        raw_header = f.read(_HEADER_SIZE)
        payload = f.read()
    if len(raw_header) < _HEADER_SIZE:
        raise VaultError(f"truncated HSIM header in {path!r}")
    (
        magic,
        version,
        _flags,
        sensor,
        band,
        epoch,
        rows,
        cols,
        seg_index,
        seg_count,
        scale,
    ) = struct.unpack(_HEADER_FMT, raw_header)
    if magic != MAGIC:
        raise VaultError(f"{path!r} is not an HSIM file")
    if version != VERSION:
        raise VaultError(f"unsupported HSIM version {version}")
    header = SegmentHeader(
        sensor=sensor.rstrip(b"\0").decode(),
        band=band.rstrip(b"\0").decode(),
        timestamp=datetime.fromtimestamp(epoch, tz=timezone.utc),
        rows=rows,
        cols=cols,
        segment_index=seg_index,
        segment_count=seg_count,
        calibration_scale=scale,
    )
    try:
        data = np.frombuffer(zlib.decompress(payload), dtype=">u2")
    except zlib.error as error:
        raise VaultError(
            f"corrupt HSIM payload in {path!r}: {error}"
        ) from error
    rows_here = min(
        header.rows_per_segment,
        rows - seg_index * header.rows_per_segment,
    )
    try:
        grid = data.reshape(rows_here, cols).astype(np.float64) / scale
    except (ValueError, ZeroDivisionError) as error:
        raise VaultError(
            f"inconsistent HSIM geometry in {path!r}: {error}"
        ) from error
    return header, grid


def read_hrit_image(
    paths: Sequence[str],
) -> Tuple[SegmentHeader, np.ndarray]:
    """Assemble a full image from its segment files (any order).

    Segments decode concurrently on up to ``decode_workers`` threads
    (zlib decompression and the NumPy reshape both release the GIL).
    Assembly is unchanged: results arrive keyed by each header's
    ``segment_index``, so file order — and decode completion order —
    never mattered in the first place.
    """
    if not paths:
        raise VaultError("no segment files given")
    from repro.perf import get_config
    from repro.perf.parallel import map_concurrent

    decoded = map_concurrent(
        read_segment,
        list(paths),
        max_workers=get_config().decode_workers,
        name="hrit-decode",
    )
    segments: Dict[int, np.ndarray] = {}
    header: Optional[SegmentHeader] = None
    for seg_header, grid in decoded:
        if header is None:
            header = seg_header
        elif (
            seg_header.rows != header.rows
            or seg_header.cols != header.cols
            or seg_header.band != header.band
            or seg_header.timestamp != header.timestamp
        ):
            raise VaultError("segment files belong to different images")
        segments[seg_header.segment_index] = grid
    assert header is not None
    if len(segments) != header.segment_count:
        missing = set(range(header.segment_count)) - set(segments)
        raise VaultError(f"missing segments: {sorted(missing)}")
    image = np.vstack([segments[i] for i in range(header.segment_count)])
    return header, image


def segment_paths_for(directory: str, band: Optional[str] = None) -> List[str]:
    """All HSIM segment files under ``directory`` (optionally one band)."""
    pattern = f"*-{band}-*.hsim" if band else "*.hsim"
    return sorted(glob.glob(os.path.join(directory, pattern)))


class HRITDriver:
    """Data-Vault format driver for HSIM imagery.

    An attachment may be a single segment file, a directory holding all
    the segments of one band's image, or an explicit sequence of segment
    files (the SEVIRI Monitor hands over exactly the segments of one
    image, whose archive directory mixes many images); the driver
    materialises it as a 2-D SciQL array named after the attachment with
    attribute ``v``.
    """

    format_name = "HRIT"

    def can_handle(self, path) -> bool:
        if not isinstance(path, str):
            return bool(path) and self.can_handle(str(path[0]))
        if os.path.isdir(path):
            return bool(segment_paths_for(path))
        if not path.endswith(".hsim"):
            return False
        try:
            with open(path, "rb") as f:
                return f.read(4) == MAGIC
        except OSError:
            return False

    def load(self, path, catalog: Catalog, name: str) -> None:
        if not isinstance(path, str):
            paths = [str(p) for p in path]
        elif os.path.isdir(path):
            paths = segment_paths_for(path)
        else:
            paths = [path]
        header, image = read_hrit_image(paths)
        array = SciQLArray(
            name,
            [
                Dimension("x", 0, image.shape[0]),
                Dimension("y", 0, image.shape[1]),
            ],
            [("v", DOUBLE)],
        )
        array.set_attribute("v", image)
        catalog.create(array, replace=True)


def image_metadata(paths: Sequence[str]) -> List[SegmentHeader]:
    """Headers only — the cheap metadata extraction the SEVIRI Monitor
    stores in its SQLite catalog (no payload decompression)."""
    headers: List[SegmentHeader] = []
    for path in paths:
        with open(path, "rb") as f:
            raw = f.read(_HEADER_SIZE)
        if len(raw) < _HEADER_SIZE or raw[:4] != MAGIC:
            raise VaultError(f"{path!r} is not an HSIM file")
        (
            _magic,
            _version,
            _flags,
            sensor,
            band,
            epoch,
            rows,
            cols,
            seg_index,
            seg_count,
            scale,
        ) = struct.unpack(_HEADER_FMT, raw)
        try:
            sensor_name = sensor.rstrip(b"\0").decode()
            band_name = band.rstrip(b"\0").decode()
            acquired = datetime.fromtimestamp(epoch, tz=timezone.utc)
        except (UnicodeDecodeError, ValueError, OSError, OverflowError) as e:
            raise VaultError(
                f"corrupt HSIM header fields in {path!r}: {e}"
            ) from e
        headers.append(
            SegmentHeader(
                sensor=sensor_name,
                band=band_name,
                timestamp=acquired,
                rows=rows,
                cols=cols,
                segment_index=seg_index,
                segment_count=seg_count,
                calibration_scale=scale,
            )
        )
    return headers
