"""Simulated MODIS/FIRMS reference hotspots.

Table 1 validates MSG/SEVIRI products against MODIS fire detections from
NASA FIRMS.  Here MODIS observations are simulated directly from the
ground-truth fire events: at an overpass, every sufficiently intense fire
yields a cluster of 1 km detection points inside its footprint (with a
small miss rate), and occasionally a spurious detection appears (MODIS is
good, not perfect).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime
from typing import List, Optional

import numpy as np

from repro.datasets.geography import SyntheticGreece
from repro.geometry import Point
from repro.seviri.fires import FireSeason

#: MODIS nominal fire-pixel size in degrees.
MODIS_PIXEL_DEG = 0.01


@dataclass(frozen=True)
class ModisDetection:
    """One MODIS fire pixel (FIRMS row analogue)."""

    lon: float
    lat: float
    timestamp: datetime
    confidence: float
    satellite: str

    @property
    def point(self) -> Point:
        return Point(self.lon, self.lat)


def simulate_modis_detections(
    greece: SyntheticGreece,
    season: FireSeason,
    when: datetime,
    satellite: str = "Terra",
    detection_probability: float = 0.92,
    false_alarm_rate: float = 0.4,
    min_intensity: float = 0.08,
    seed: Optional[int] = None,
) -> List[ModisDetection]:
    """MODIS detections for the overpass at ``when``.

    ``false_alarm_rate`` is the expected number of spurious detections per
    overpass (Poisson).
    """
    if seed is None:
        seed = int(when.timestamp()) & 0x7FFFFFFF
    rng = np.random.default_rng(seed)
    detections: List[ModisDetection] = []
    for event in season.active_fires(when):
        intensity = event.intensity_at(when)
        if intensity < min_intensity:
            continue
        # MODIS's 1 km pixels resolve the smouldering fringe beyond the
        # actively flaming front, so its clusters extend a bit past the
        # footprint the coarse MSG classifier flags with confidence 2.
        radius = 1.2 * max(event.radius_deg_at(when), MODIS_PIXEL_DEG)
        # 1 km sampling lattice over the footprint.
        steps = max(int(2 * radius / MODIS_PIXEL_DEG), 1)
        for i in range(steps + 1):
            for j in range(steps + 1):
                lon = event.lon - radius + i * MODIS_PIXEL_DEG
                lat = event.lat - radius + j * MODIS_PIXEL_DEG
                d = math.hypot(lon - event.lon, lat - event.lat)
                if d > radius:
                    continue
                # Detection probability falls off towards the fire edge;
                # MODIS stays sensitive even for young fires (1 km pixels).
                p = (
                    detection_probability
                    * (0.35 + 0.65 * intensity)
                    * (1.0 - 0.4 * d / radius)
                )
                if rng.random() < p:
                    detections.append(
                        ModisDetection(
                            lon=lon + rng.normal(0, MODIS_PIXEL_DEG / 5),
                            lat=lat + rng.normal(0, MODIS_PIXEL_DEG / 5),
                            timestamp=when,
                            confidence=float(
                                np.clip(60 + 40 * intensity, 0, 100)
                            ),
                            satellite=satellite,
                        )
                    )
    # Sporadic false detections over land (hot bare soil, sun glint).
    for _ in range(rng.poisson(false_alarm_rate)):
        for _ in range(50):
            lon = rng.uniform(greece.bbox[0], greece.bbox[2])
            lat = rng.uniform(greece.bbox[1], greece.bbox[3])
            if greece.is_land(lon, lat):
                detections.append(
                    ModisDetection(
                        lon=lon,
                        lat=lat,
                        timestamp=when,
                        confidence=float(rng.uniform(20, 50)),
                        satellite=satellite,
                    )
                )
                break
    return detections
