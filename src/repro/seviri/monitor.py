"""The SEVIRI Monitor: the pre-TELEIOS real-time data-stream manager (§2).

The paper describes a Python application that managed the raw MSG data
stream in the pre-TELEIOS architecture:

1. extract raw-file metadata into an **SQLite** catalog ("such a step is
   required as one image comprises multiple raw files, which might arrive
   out-of-order"),
2. filter files irrelevant to fire monitoring and dispatch the rest to a
   disk array for permanent storage,
3. trigger the processing chain once all segments of both IR bands of an
   acquisition have arrived.

This module reproduces that component over the HSIM segment format: an
:class:`SeviriMonitor` watches an incoming directory, catalogues segment
headers in SQLite (header-only reads — no payload decompression), archives
relevant files, discards non-applicable bands, and yields ready-to-process
acquisitions.
"""

from __future__ import annotations

import glob
import logging
import os
import shutil
import sqlite3
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arraydb.errors import VaultError
from repro.faults import DeadLetterBox
from repro.obs import get_metrics, get_tracer
from repro.perf import get_config
from repro.perf.parallel import map_outcomes
from repro.seviri.hrit import image_metadata

#: The spectral bands the fire-monitoring chain consumes.
FIRE_BANDS = ("IR_039", "IR_108")

_log = logging.getLogger(__name__)
_tracer = get_tracer()
_metrics = get_metrics()

_SCHEMA = """
CREATE TABLE IF NOT EXISTS raw_files (
    path            TEXT PRIMARY KEY,
    sensor          TEXT NOT NULL,
    band            TEXT NOT NULL,
    acquired_at     TEXT NOT NULL,
    segment_index   INTEGER NOT NULL,
    segment_count   INTEGER NOT NULL,
    rows            INTEGER NOT NULL,
    cols            INTEGER NOT NULL,
    registered_at   TEXT NOT NULL,
    dispatched      INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_raw_files_image
    ON raw_files (sensor, band, acquired_at);
"""


@dataclass(frozen=True)
class ReadyAcquisition:
    """An acquisition ready for the processing chain.

    Normally both IR bands are present; an acquisition dispatched by
    :meth:`SeviriMonitor.dispatch_stale` lists the band(s) that never
    arrived in ``missing_bands`` — the service runtime then processes it
    in documented single-band degraded mode.
    """

    sensor: str
    timestamp: datetime
    band_paths: Dict[str, Tuple[str, ...]]
    missing_bands: Tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        return not self.missing_bands

    @property
    def chain_input(self) -> Tuple[Sequence[str], Sequence[str]]:
        """(IR 3.9 paths, IR 10.8 paths) as the chains expect them."""
        return (
            list(self.band_paths.get("IR_039", ())),
            list(self.band_paths.get("IR_108", ())),
        )


class SeviriMonitor:
    """Watches an incoming directory and manages the raw data stream."""

    def __init__(
        self,
        incoming_dir: str,
        archive_dir: str,
        db_path: str = ":memory:",
        relevant_bands: Sequence[str] = FIRE_BANDS,
        dead_letter_dir: Optional[str] = None,
    ) -> None:
        self.incoming_dir = incoming_dir
        self.archive_dir = archive_dir
        self.relevant_bands = tuple(relevant_bands)
        os.makedirs(archive_dir, exist_ok=True)
        #: Quarantine for undecodable segment files.  They used to be
        #: left in the incoming directory (and re-parsed on every scan);
        #: now each is moved here once, with a reason record.
        self.dead_letters = DeadLetterBox(
            dead_letter_dir
            if dead_letter_dir is not None
            else os.path.join(archive_dir, "dead_letter")
        )
        self._db = sqlite3.connect(db_path)
        self._db.executescript(_SCHEMA)
        #: Files ignored because their band is irrelevant to the scenario.
        self.filtered_count = 0
        #: Files whose header could not be parsed.
        self.rejected_count = 0

    # -- step 1: metadata extraction --------------------------------------

    def scan(self) -> int:
        """Catalogue new segment files; returns how many were registered.

        Only the fixed-size header of each file is read — the compressed
        payload stays untouched (the paper's metadata-extraction step).
        """
        with _tracer.measure("monitor.scan") as span:
            registered = self._scan_incoming()
            span.set(registered=registered)
        if _metrics.enabled:
            _metrics.histogram(
                "monitor_scan_seconds",
                "Wall seconds per incoming-directory scan "
                "(header-only metadata decode)",
            ).observe(span.duration)
        return registered

    def _scan_incoming(self) -> int:
        registered = 0
        new_paths = [
            path
            for path in sorted(
                glob.glob(os.path.join(self.incoming_dir, "*.hsim"))
            )
            if not self._known(path)
        ]
        # Header parsing (open + read + unpack, all GIL-releasing I/O)
        # fans out across threads; everything stateful — the SQLite
        # catalog, the counters, file deletion — stays on this thread,
        # in sorted path order, exactly as the serial scan behaved.
        headers = map_outcomes(
            lambda p: image_metadata([p])[0],
            new_paths,
            max_workers=get_config().decode_workers,
            name="hsim-scan",
        )
        for path, header in zip(new_paths, headers):
            if isinstance(header, (VaultError, OSError)):
                self.rejected_count += 1
                if _metrics.enabled:
                    _metrics.counter(
                        "monitor_segments_dropped_total",
                        "Segment files dropped by the monitor",
                    ).inc(reason="unparseable")
                if os.path.exists(path):
                    self.dead_letters.quarantine(
                        path,
                        reason="unparseable-header",
                        site="monitor.scan",
                        error=header,
                    )
                continue
            if isinstance(header, Exception):
                raise header
            if header.band not in self.relevant_bands:
                # Step 2a: disregard non-applicable data.
                self.filtered_count += 1
                if _metrics.enabled:
                    _metrics.counter(
                        "monitor_segments_dropped_total",
                        "Segment files dropped by the monitor",
                    ).inc(reason="irrelevant_band")
                _log.debug(
                    "monitor filtered %s segment %s",
                    header.band,
                    os.path.basename(path),
                )
                os.remove(path)
                continue
            self._db.execute(
                "INSERT INTO raw_files (path, sensor, band, acquired_at,"
                " segment_index, segment_count, rows, cols, registered_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    path,
                    header.sensor,
                    header.band,
                    header.timestamp.isoformat(),
                    header.segment_index,
                    header.segment_count,
                    header.rows,
                    header.cols,
                    datetime.now(timezone.utc).isoformat(),
                ),
            )
            registered += 1
        self._db.commit()
        if registered and _metrics.enabled:
            _metrics.counter(
                "monitor_segments_received_total",
                "Segment files catalogued by the monitor",
            ).inc(registered)
        return registered

    def _known(self, path: str) -> bool:
        row = self._db.execute(
            "SELECT 1 FROM raw_files WHERE path = ?", (path,)
        ).fetchone()
        return row is not None

    # -- step 2: completeness + dispatch ------------------------------------

    def complete_images(self) -> List[Tuple[str, str, str]]:
        """(sensor, band, acquired_at) keys whose segments all arrived."""
        rows = self._db.execute(
            "SELECT sensor, band, acquired_at, COUNT(*), MAX(segment_count)"
            " FROM raw_files WHERE dispatched = 0"
            " GROUP BY sensor, band, acquired_at"
        ).fetchall()
        return [
            (sensor, band, acquired)
            for sensor, band, acquired, have, want in rows
            if have == want
        ]

    def dispatch_ready(self) -> List[ReadyAcquisition]:
        """Archive and hand over acquisitions whose *both* IR bands are
        complete (the chain needs 3.9 and 10.8 together)."""
        with _tracer.span("monitor.dispatch") as span:
            ready = self._dispatch_ready()
            span.set(acquisitions=len(ready))
        if ready:
            if _metrics.enabled:
                _metrics.counter(
                    "monitor_acquisitions_assembled_total",
                    "Complete two-band acquisitions handed to the chain",
                ).inc(len(ready))
            for acquisition in ready:
                _log.info(
                    "monitor dispatched acquisition %s %s (%d segments)",
                    acquisition.sensor,
                    acquisition.timestamp,
                    sum(len(p) for p in acquisition.band_paths.values()),
                )
        return ready

    def _dispatch_ready(self) -> List[ReadyAcquisition]:
        complete = self.complete_images()
        by_acquisition: Dict[Tuple[str, str], Dict[str, bool]] = {}
        for sensor, band, acquired in complete:
            by_acquisition.setdefault((sensor, acquired), {})[band] = True
        ready: List[ReadyAcquisition] = []
        for (sensor, acquired), bands in sorted(by_acquisition.items()):
            if not all(b in bands for b in self.relevant_bands):
                continue
            band_paths: Dict[str, Tuple[str, ...]] = {}
            for band in self.relevant_bands:
                paths = [
                    row[0]
                    for row in self._db.execute(
                        "SELECT path FROM raw_files WHERE sensor = ? AND"
                        " band = ? AND acquired_at = ? AND dispatched = 0"
                        " ORDER BY segment_index",
                        (sensor, band, acquired),
                    )
                ]
                archived = tuple(self._archive(p) for p in paths)
                band_paths[band] = archived
                for old, new in zip(paths, archived):
                    self._db.execute(
                        "UPDATE raw_files SET path = ?, dispatched = 1"
                        " WHERE path = ?",
                        (new, old),
                    )
            self._db.commit()
            ready.append(
                ReadyAcquisition(
                    sensor=sensor,
                    timestamp=datetime.fromisoformat(acquired),
                    band_paths=band_paths,
                )
            )
        return ready

    def dispatch_stale(
        self, older_than: datetime
    ) -> List[ReadyAcquisition]:
        """Give up waiting for acquisitions older than ``older_than``.

        An acquisition whose 3.9 *or* 10.8 µm band completed but whose
        other band never (fully) arrived would block in the catalog
        forever.  This dispatches every such acquisition acquired before
        ``older_than`` in **single-band degraded mode**: the complete
        band is archived and handed over, the stragglers of the missing
        band are marked dispatched so they are never assembled, and
        ``missing_bands`` tells the service runtime what is gone.
        """
        if older_than.tzinfo is None:
            older_than = older_than.replace(tzinfo=timezone.utc)
        by_acquisition: Dict[Tuple[str, str], List[str]] = {}
        for sensor, band, acquired in self.complete_images():
            by_acquisition.setdefault((sensor, acquired), []).append(band)
        ready: List[ReadyAcquisition] = []
        for (sensor, acquired), bands in sorted(by_acquisition.items()):
            missing = tuple(
                b for b in self.relevant_bands if b not in bands
            )
            if not missing:
                continue  # fully complete: dispatch_ready's job
            if datetime.fromisoformat(acquired) >= older_than:
                continue  # still within its grace period
            band_paths: Dict[str, Tuple[str, ...]] = {}
            for band in bands:
                paths = [
                    row[0]
                    for row in self._db.execute(
                        "SELECT path FROM raw_files WHERE sensor = ? AND"
                        " band = ? AND acquired_at = ? AND dispatched = 0"
                        " ORDER BY segment_index",
                        (sensor, band, acquired),
                    )
                ]
                archived = tuple(self._archive(p) for p in paths)
                band_paths[band] = archived
                for old, new in zip(paths, archived):
                    self._db.execute(
                        "UPDATE raw_files SET path = ?, dispatched = 1"
                        " WHERE path = ?",
                        (new, old),
                    )
            # Stragglers of the missing band(s) must not resurrect the
            # acquisition if they trickle in after we gave up on it.
            self._db.execute(
                "UPDATE raw_files SET dispatched = 1"
                " WHERE sensor = ? AND acquired_at = ?",
                (sensor, acquired),
            )
            self._db.commit()
            if _metrics.enabled:
                _metrics.counter(
                    "monitor_acquisitions_stale_total",
                    "Acquisitions dispatched single-band after their "
                    "grace period",
                ).inc()
            _log.warning(
                "monitor dispatched STALE acquisition %s %s without %s",
                sensor,
                acquired,
                "/".join(missing),
            )
            ready.append(
                ReadyAcquisition(
                    sensor=sensor,
                    timestamp=datetime.fromisoformat(acquired),
                    band_paths=band_paths,
                    missing_bands=missing,
                )
            )
        return ready

    def _archive(self, path: str) -> str:
        """Move a segment file to the permanent disk array."""
        target = os.path.join(self.archive_dir, os.path.basename(path))
        shutil.move(path, target)
        return target

    # -- introspection -----------------------------------------------------

    def pending_images(self) -> List[Tuple[str, str, str, int, int]]:
        """Images still waiting for segments: (sensor, band, acquired_at,
        have, want)."""
        rows = self._db.execute(
            "SELECT sensor, band, acquired_at, COUNT(*), MAX(segment_count)"
            " FROM raw_files WHERE dispatched = 0"
            " GROUP BY sensor, band, acquired_at"
        ).fetchall()
        return [r for r in rows if r[3] < r[4]]

    def catalog_size(self) -> int:
        (count,) = self._db.execute(
            "SELECT COUNT(*) FROM raw_files"
        ).fetchone()
        return int(count)

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "SeviriMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
