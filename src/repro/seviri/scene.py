"""Brightness-temperature scene synthesis.

Produces the IR 3.9 µm and IR 10.8 µm rasters the detection chain consumes,
on the **raw satellite grid** (so cropping and georeferencing remain real
work).  The thermal model is deliberately simple but captures everything
the EUMETSAT classifier keys on:

* diurnal surface-temperature cycle with land/sea contrast,
* per-pixel static terrain variation (deterministic),
* fire contribution: sub-pixel hot sources raise T3.9 far more than
  T10.8 (the physical basis of the 3.9/10.8 split),
* smoke plumes: moderate, textured T3.9 elevation — the classic false
  alarm of Figure 7,
* sensor noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.geography import SyntheticGreece
from repro.seviri.fires import FireEvent, FireSeason
from repro.seviri.geo import RawGrid
from repro.seviri.solar import solar_zenith_deg

#: Fire brightness temperature (K) of the burning fraction at 3.9 µm.
FIRE_TEMP_039 = 600.0
#: ... and at 10.8 µm (smaller: smoke/flames are semi-transparent there).
FIRE_TEMP_108 = 450.0


@dataclass
class SceneImage:
    """One synthesised acquisition on the raw grid."""

    timestamp: datetime
    t039: np.ndarray  # brightness temperature, K
    t108: np.ndarray
    sensor_name: str = "MSG2"


class SceneGenerator:
    """Synthesises raw-grid brightness temperatures for any timestamp."""

    def __init__(
        self,
        greece: SyntheticGreece,
        raw: Optional[RawGrid] = None,
        seed: int = 99,
        noise_k: float = 0.35,
        clouds_per_scene: float = 0.0,
    ) -> None:
        self.greece = greece
        self.raw = raw if raw is not None else RawGrid()
        self.seed = seed
        self.noise_k = noise_k
        #: Expected number of cloud fields per acquisition (Poisson).
        self.clouds_per_scene = clouds_per_scene
        # One-time precomputation: per-pixel geography.
        self.lon, self.lat = self.raw.mesh()
        self.land_mask = self._rasterize_land()
        rng = np.random.default_rng(seed)
        #: Static terrain temperature offset (K), land only.
        self.terrain = np.where(
            self.land_mask, rng.normal(0.0, 1.1, self.lon.shape), 0.0
        )

    def _rasterize_land(self) -> np.ndarray:
        """Vectorised even-odd rasterisation of the land polygons."""
        lon = self.lon.ravel()
        lat = self.lat.ravel()
        inside = np.zeros(lon.shape, dtype=bool)
        for poly in self.greece.land_polygons:
            env = poly.envelope
            box = (
                (lon >= env.minx)
                & (lon <= env.maxx)
                & (lat >= env.miny)
                & (lat <= env.maxy)
            )
            if not box.any():
                continue
            px = lon[box]
            py = lat[box]
            crossings = np.zeros(px.shape, dtype=np.int64)
            ring = poly.shell.open_coords
            n = len(ring)
            for k in range(n):
                x1, y1 = ring[k]
                x2, y2 = ring[(k + 1) % n]
                straddles = (y1 > py) != (y2 > py)
                if not straddles.any():
                    continue
                with np.errstate(divide="ignore", invalid="ignore"):
                    t = (py - y1) / (y2 - y1)
                xi = x1 + t * (x2 - x1)
                crossings += (straddles & (xi > px)).astype(np.int64)
            inside_box = crossings % 2 == 1
            partial = inside[box]
            partial |= inside_box
            inside[box] = partial
        return inside.reshape(self.lon.shape)

    # -- thermal model -----------------------------------------------------

    def _background(
        self, when: datetime
    ) -> Tuple[np.ndarray, np.ndarray]:
        zenith = solar_zenith_deg(when, self.lon, self.lat)
        # Insolation proxy: daylight heating, zero at night.
        heating = np.clip(np.cos(np.radians(zenith)), 0.0, None)
        land_t = 287.0 + 16.0 * heating + self.terrain
        sea_t = 292.0 + 2.0 * heating
        t108 = np.where(self.land_mask, land_t, sea_t)
        # At 3.9 µm daytime solar reflection adds a bit over land.
        t039 = t108 + np.where(self.land_mask, 2.0 * heating, 0.5 * heating)
        return t039, t108

    def _apply_fire(
        self,
        t039: np.ndarray,
        t108: np.ndarray,
        event: FireEvent,
        when: datetime,
    ) -> None:
        intensity = event.intensity_at(when)
        if intensity <= 0.0:
            return
        radius_deg = max(event.radius_deg_at(when), 0.004)
        # Work on a local window around the event for speed.
        pad = radius_deg * 3 + 0.1
        window = (
            (self.lon >= event.lon - pad)
            & (self.lon <= event.lon + pad)
            & (self.lat >= event.lat - pad)
            & (self.lat <= event.lat + pad)
        )
        if not window.any():
            return
        lon = self.lon[window]
        lat = self.lat[window]
        if event.kind == "smoke":
            # Elongated warm plume downwind; moderate, textured.
            ca, sa = math.cos(event.wind_direction), math.sin(
                event.wind_direction
            )
            du = (lon - event.lon) * ca + (lat - event.lat) * sa
            dv = -(lon - event.lon) * sa + (lat - event.lat) * ca
            shape = np.exp(
                -((du / (radius_deg * 2.5)) ** 2)
                - ((dv / (radius_deg * 0.8)) ** 2)
            )
            rng = np.random.default_rng(
                self.seed ^ event.event_id ^ int(when.timestamp())
            )
            texture = rng.normal(1.0, 0.35, lon.shape).clip(0.0, 2.0)
            bump039 = 26.0 * intensity * shape * texture
            bump108 = 1.5 * intensity * shape
            t039[window] += bump039
            t108[window] += bump108
            return
        # Real combustion: sub-pixel fraction of the pixel is burning.
        # The spatial spread is at least a pixel wide so small fires still
        # land on a pixel centre (MSG's key property: a small burning
        # portion of a 4x4 km pixel suffices for detection — §2).
        d2 = (lon - event.lon) ** 2 + (lat - event.lat) ** 2
        sigma = max(radius_deg * 0.6, 0.6 * self.raw.dlon)
        proximity = np.exp(-d2 / (2.0 * sigma**2))
        # A wider, weaker halo models warm fringes around the burning
        # core; it is what produces the classifier's "potential fire"
        # pixels at fire margins.
        halo = np.exp(-d2 / (2.0 * (2.0 * sigma) ** 2))
        pixel_area_deg2 = self.raw.dlon * self.raw.dlat
        burning_area = math.pi * radius_deg**2 * intensity
        core_load = burning_area / pixel_area_deg2 * 0.5
        fraction = np.clip(
            core_load * proximity + core_load * 0.07 * halo, 0.0, 0.35
        )
        # Planck-ish mixing approximated linearly in brightness temp;
        # the 10.8 µm band barely reacts to sub-pixel hot sources, which
        # is exactly what the classifier's std108 gate relies on.
        t039[window] += fraction * (FIRE_TEMP_039 - t039[window])
        t108[window] += fraction * 0.04 * (FIRE_TEMP_108 - t108[window])

    def _apply_clouds(
        self,
        t039: np.ndarray,
        t108: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """Cold cloud blobs: both bands drop towards cloud-top temps."""
        minx, miny, maxx, maxy = self.greece.bbox
        for _ in range(rng.poisson(self.clouds_per_scene)):
            cx = rng.uniform(minx, maxx)
            cy = rng.uniform(miny, maxy)
            radius = rng.uniform(0.25, 0.8)
            depth = rng.uniform(35.0, 55.0)
            d2 = (self.lon - cx) ** 2 + (self.lat - cy) ** 2
            opacity = np.clip(
                np.exp(-d2 / (2.0 * (radius * 0.6) ** 2)) * 1.4, 0.0, 1.0
            )
            # Opaque cores replace the surface signal with cloud top.
            t108 -= opacity * depth
            t039 -= opacity * depth

    def generate(
        self,
        when: datetime,
        season: Optional[FireSeason] = None,
        sensor_name: str = "MSG2",
    ) -> SceneImage:
        """Synthesise the two-band acquisition at ``when`` (UTC)."""
        if when.tzinfo is None:
            when = when.replace(tzinfo=timezone.utc)
        t039, t108 = self._background(when)
        if season is not None:
            for event in season.active_events(when):
                self._apply_fire(t039, t108, event, when)
        rng = np.random.default_rng(
            (self.seed * 1_000_003) ^ int(when.timestamp())
        )
        # Cloud fields come last: an opaque cloud hides whatever burns
        # beneath it in both bands (the omission mechanism clouds cause).
        if self.clouds_per_scene > 0:
            self._apply_clouds(t039, t108, rng)
        t039 = t039 + rng.normal(0.0, self.noise_k, t039.shape)
        t108 = t108 + rng.normal(0.0, self.noise_k, t108.shape)
        return SceneImage(
            timestamp=when,
            t039=t039.astype(np.float64),
            t108=t108.astype(np.float64),
            sensor_name=sensor_name,
        )
