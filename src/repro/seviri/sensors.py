"""Sensor models.

Captures the observational characteristics the paper contrasts in
Section 2: the geostationary MSG/SEVIRI instruments with coarse pixels
but 5/15-minute revisit, versus polar-orbiting MODIS with 1 km fire
pixels but only two passes per platform per day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Sensor:
    """An earth-observation instrument as seen by the pipeline."""

    name: str
    platform: str
    #: Nadir pixel size in kilometres.
    pixel_km: float
    #: Revisit period in minutes (geostationary) — 0 for polar orbiters.
    revisit_minutes: int
    #: Spectral bands relevant to fire detection.
    bands: Tuple[str, ...]
    #: Local solar times of overpasses (polar orbiters only).
    overpass_local_times: Tuple[str, ...] = ()

    @property
    def is_geostationary(self) -> bool:
        return self.revisit_minutes > 0

    #: Approximate pixel size in degrees at Greek latitudes.
    @property
    def pixel_deg(self) -> float:
        return self.pixel_km / 111.0


MSG1 = Sensor(
    name="MSG1",
    platform="Meteosat-8",
    pixel_km=4.0,
    revisit_minutes=5,
    bands=("IR_039", "IR_108"),
)

MSG2 = Sensor(
    name="MSG2",
    platform="Meteosat-9",
    pixel_km=4.0,
    revisit_minutes=15,
    bands=("IR_039", "IR_108"),
)

MODIS_TERRA = Sensor(
    name="MODIS-Terra",
    platform="Terra",
    pixel_km=1.0,
    revisit_minutes=0,
    bands=("B21", "B22", "B31"),
    overpass_local_times=("09:30", "20:30"),
)

MODIS_AQUA = Sensor(
    name="MODIS-Aqua",
    platform="Aqua",
    pixel_km=1.0,
    revisit_minutes=0,
    bands=("B21", "B22", "B31"),
    overpass_local_times=("00:30", "11:30"),
)
