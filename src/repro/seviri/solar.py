"""Solar geometry.

The classification thresholds of the EUMETSAT algorithm depend on the
per-pixel solar zenith angle at acquisition time (day < 70°, night > 90°,
linear interpolation in between).  This module implements the standard
NOAA solar-position approximation, accurate to a fraction of a degree —
far better than needed to pick thresholds.
"""

from __future__ import annotations

import math
from datetime import datetime, timezone
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


def _fractional_year(when: datetime) -> float:
    """Fractional year γ in radians (NOAA convention)."""
    start = datetime(when.year, 1, 1, tzinfo=when.tzinfo)
    doy = (when - start).total_seconds() / 86400.0
    return 2.0 * math.pi / 365.0 * (doy - 0.5 + when.hour / 24.0)


def solar_declination_rad(when: datetime) -> float:
    """Solar declination angle in radians."""
    g = _fractional_year(when)
    return (
        0.006918
        - 0.399912 * math.cos(g)
        + 0.070257 * math.sin(g)
        - 0.006758 * math.cos(2 * g)
        + 0.000907 * math.sin(2 * g)
        - 0.002697 * math.cos(3 * g)
        + 0.00148 * math.sin(3 * g)
    )


def equation_of_time_minutes(when: datetime) -> float:
    """Equation of time in minutes."""
    g = _fractional_year(when)
    return 229.18 * (
        0.000075
        + 0.001868 * math.cos(g)
        - 0.032077 * math.sin(g)
        - 0.014615 * math.cos(2 * g)
        - 0.040849 * math.sin(2 * g)
    )


def solar_zenith_deg(
    when_utc: datetime, lon_deg: ArrayLike, lat_deg: ArrayLike
) -> ArrayLike:
    """Solar zenith angle in degrees for a UTC time and lon/lat arrays."""
    if when_utc.tzinfo is None:
        when_utc = when_utc.replace(tzinfo=timezone.utc)
    decl = solar_declination_rad(when_utc)
    eqtime = equation_of_time_minutes(when_utc)
    minutes_utc = (
        when_utc.hour * 60.0
        + when_utc.minute
        + when_utc.second / 60.0
    )
    lon = np.asarray(lon_deg, dtype=np.float64)
    lat = np.radians(np.asarray(lat_deg, dtype=np.float64))
    true_solar_minutes = minutes_utc + eqtime + 4.0 * lon
    hour_angle = np.radians(true_solar_minutes / 4.0 - 180.0)
    cos_zenith = np.sin(lat) * math.sin(decl) + np.cos(lat) * math.cos(
        decl
    ) * np.cos(hour_angle)
    cos_zenith = np.clip(cos_zenith, -1.0, 1.0)
    zenith = np.degrees(np.arccos(cos_zenith))
    if np.isscalar(lon_deg) and np.isscalar(lat_deg):
        return float(zenith)
    return zenith


def is_daytime(when_utc: datetime, lon_deg: float, lat_deg: float) -> bool:
    """True when the sun is above the EUMETSAT 'day' threshold (70°)."""
    return float(solar_zenith_deg(when_utc, lon_deg, lat_deg)) < 70.0
