"""Minimal but real ESRI shapefile I/O.

The NOA chain's products are ESRI shapefiles; refinement starts by
converting shapefiles to RDF.  This package writes and reads actual
``.shp`` / ``.shx`` / ``.dbf`` bytes for the two shape types the pipeline
needs (Point and Polygon) with character/numeric/date DBF attributes.
"""

from repro.shapefile.model import Field, ShapeRecord, Shapefile
from repro.shapefile.reader import read_shapefile
from repro.shapefile.writer import write_shapefile

__all__ = [
    "Field",
    "ShapeRecord",
    "Shapefile",
    "read_shapefile",
    "write_shapefile",
]
