"""In-memory model of a shapefile layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.geometry import Geometry

SHAPE_TYPE_NULL = 0
SHAPE_TYPE_POINT = 1
SHAPE_TYPE_POLYGON = 5

SHAPE_TYPES = {
    "POINT": SHAPE_TYPE_POINT,
    "POLYGON": SHAPE_TYPE_POLYGON,
    "MULTIPOLYGON": SHAPE_TYPE_POLYGON,
}


@dataclass(frozen=True)
class Field:
    """A DBF attribute column."""

    name: str  # max 10 chars (DBF limit)
    field_type: str  # "C" character, "N" numeric, "F" float, "D" date, "L" bool
    length: int = 32
    decimals: int = 0

    def __post_init__(self) -> None:
        if len(self.name) > 10:
            raise ValueError(f"DBF field name too long: {self.name!r}")
        if self.field_type not in ("C", "N", "F", "D", "L"):
            raise ValueError(f"bad DBF field type {self.field_type!r}")
        # dBase fixes the storage width of dates (YYYYMMDD) and logicals.
        if self.field_type == "D":
            object.__setattr__(self, "length", 8)
        elif self.field_type == "L":
            object.__setattr__(self, "length", 1)


@dataclass
class ShapeRecord:
    """One feature: a geometry plus its attribute values."""

    geometry: Geometry
    attributes: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Shapefile:
    """A shapefile layer: homogeneous shape type + attribute schema."""

    fields: List[Field]
    records: List[ShapeRecord]

    def __len__(self) -> int:
        return len(self.records)

    def attribute_column(self, name: str) -> List[Any]:
        return [r.attributes.get(name) for r in self.records]
