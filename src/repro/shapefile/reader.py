"""Shapefile reader (.shp + .dbf)."""

from __future__ import annotations

import os
import struct
from datetime import date
from typing import Any, List, Optional, Tuple

from repro.geometry import Geometry, LinearRing, Point, Polygon
from repro.geometry.multi import MultiPolygon
from repro.geometry import algorithms as alg
from repro.shapefile.model import (
    SHAPE_TYPE_NULL,
    SHAPE_TYPE_POINT,
    SHAPE_TYPE_POLYGON,
    Field,
    ShapeRecord,
    Shapefile,
)


def read_shapefile(base_path: str) -> Shapefile:
    """Read ``<base>.shp`` + ``<base>.dbf`` back into a :class:`Shapefile`."""
    base, ext = os.path.splitext(base_path)
    if ext.lower() in (".shp", ".shx", ".dbf"):
        base_path = base
    geometries = _read_shp(base_path + ".shp")
    fields, rows = _read_dbf(base_path + ".dbf")
    records: List[ShapeRecord] = []
    for i, geom in enumerate(geometries):
        attributes = rows[i] if i < len(rows) else {}
        if geom is not None:
            records.append(ShapeRecord(geom, attributes))
    return Shapefile(fields=fields, records=records)


def _read_shp(path: str) -> List[Optional[Geometry]]:
    with open(path, "rb") as f:
        data = f.read()
    if len(data) < 100:
        raise ValueError(f"{path!r} is too short to be a shapefile")
    (file_code,) = struct.unpack(">i", data[:4])
    if file_code != 9994:
        raise ValueError(f"{path!r} is not a shapefile (bad magic)")
    geometries: List[Optional[Geometry]] = []
    pos = 100
    while pos + 8 <= len(data):
        _number, length_words = struct.unpack(">ii", data[pos : pos + 8])
        pos += 8
        content = data[pos : pos + length_words * 2]
        pos += length_words * 2
        geometries.append(_parse_shape(content))
    return geometries


def _parse_shape(content: bytes) -> Optional[Geometry]:
    (shape_type,) = struct.unpack("<i", content[:4])
    if shape_type == SHAPE_TYPE_NULL:
        return None
    if shape_type == SHAPE_TYPE_POINT:
        x, y = struct.unpack("<dd", content[4:20])
        return Point(x, y)
    if shape_type == SHAPE_TYPE_POLYGON:
        num_parts, num_points = struct.unpack("<ii", content[36:44])
        parts = struct.unpack(f"<{num_parts}i", content[44 : 44 + 4 * num_parts])
        coords_start = 44 + 4 * num_parts
        points: List[Tuple[float, float]] = []
        for k in range(num_points):
            x, y = struct.unpack(
                "<dd", content[coords_start + 16 * k : coords_start + 16 * k + 16]
            )
            points.append((x, y))
        rings: List[List[Tuple[float, float]]] = []
        boundaries = list(parts) + [num_points]
        for i in range(num_parts):
            rings.append(points[boundaries[i] : boundaries[i + 1]])
        return _assemble_polygons(rings)
    raise ValueError(f"unsupported shape type {shape_type}")


def _assemble_polygons(rings: List[List[Tuple[float, float]]]) -> Geometry:
    """Group rings into polygons: CW rings (per spec) are shells, CCW are
    holes assigned to the containing shell."""
    shells: List[List[Tuple[float, float]]] = []
    holes: List[List[Tuple[float, float]]] = []
    for ring in rings:
        if len(ring) < 4:
            continue
        if alg.is_ccw(alg.ensure_open(ring)):
            holes.append(ring)
        else:
            shells.append(ring)
    if not shells:  # tolerate wrong winding from sloppy writers
        shells, holes = holes, []
    polygons: List[Polygon] = []
    hole_assignment: List[List[List[Tuple[float, float]]]] = [
        [] for _ in shells
    ]
    for hole in holes:
        probe = hole[0]
        for i, shell in enumerate(shells):
            if alg.point_in_ring(probe, alg.ensure_open(shell)) >= 0:
                hole_assignment[i].append(hole)
                break
    for shell, its_holes in zip(shells, hole_assignment):
        polygons.append(Polygon(shell, its_holes))
    if len(polygons) == 1:
        return polygons[0]
    return MultiPolygon(polygons)


def _read_dbf(path: str) -> Tuple[List[Field], List[dict]]:
    with open(path, "rb") as f:
        data = f.read()
    record_count, header_size, record_size = struct.unpack(
        "<IHH", data[4:12]
    )
    fields: List[Field] = []
    pos = 32
    while data[pos] != 0x0D:
        name_raw, ftype, length, decimals = struct.unpack(
            "<11sc4xBB14x", data[pos : pos + 32]
        )
        fields.append(
            Field(
                name=name_raw.split(b"\0")[0].decode("ascii"),
                field_type=ftype.decode("ascii"),
                length=length,
                decimals=decimals,
            )
        )
        pos += 32
    rows: List[dict] = []
    pos = header_size
    for _ in range(record_count):
        chunk = data[pos : pos + record_size]
        pos += record_size
        if not chunk or chunk[0:1] == b"*":
            continue
        row: dict = {}
        offset = 1
        for f in fields:
            raw = chunk[offset : offset + f.length]
            offset += f.length
            row[f.name] = _parse_value(raw, f)
        rows.append(row)
    return fields, rows


def _parse_value(raw: bytes, field: Field) -> Any:
    text = raw.decode("utf-8", "replace").strip()
    if field.field_type == "C":
        return text
    if field.field_type in ("N", "F"):
        if not text:
            return None
        return float(text) if ("." in text or field.decimals) else int(text)
    if field.field_type == "D":
        if len(text) != 8 or not text.isdigit():
            return None
        return date(int(text[:4]), int(text[4:6]), int(text[6:8]))
    if field.field_type == "L":
        if text in ("T", "t", "Y", "y"):
            return True
        if text in ("F", "f", "N", "n"):
            return False
        return None
    return text
