"""Shapefile writer (.shp + .shx + .dbf)."""

from __future__ import annotations

import os
import struct
from datetime import date, datetime
from typing import Any, List, Tuple

from repro.geometry import Geometry, Point, Polygon
from repro.geometry.multi import MultiPolygon, polygons_of
from repro.shapefile.model import (
    SHAPE_TYPE_POINT,
    SHAPE_TYPE_POLYGON,
    Field,
    Shapefile,
)


def write_shapefile(shapefile: Shapefile, base_path: str) -> Tuple[str, str, str]:
    """Write ``<base>.shp``, ``<base>.shx`` and ``<base>.dbf``.

    Returns the three written paths.  The shape type is inferred from the
    first record's geometry (Point or Polygon family).
    """
    base, ext = os.path.splitext(base_path)
    if ext.lower() == ".shp":
        base_path = base
    shp_path = base_path + ".shp"
    shx_path = base_path + ".shx"
    dbf_path = base_path + ".dbf"
    shape_type = _infer_shape_type(shapefile)
    shp_records: List[bytes] = []
    offsets: List[Tuple[int, int]] = []
    bbox = [float("inf"), float("inf"), float("-inf"), float("-inf")]
    offset_words = 50  # header is 100 bytes = 50 words
    for number, record in enumerate(shapefile.records, start=1):
        content = _shape_content(record.geometry, shape_type)
        length_words = len(content) // 2
        header = struct.pack(">ii", number, length_words)
        shp_records.append(header + content)
        offsets.append((offset_words, length_words))
        offset_words += 4 + length_words
        env = record.geometry.envelope
        bbox[0] = min(bbox[0], env.minx)
        bbox[1] = min(bbox[1], env.miny)
        bbox[2] = max(bbox[2], env.maxx)
        bbox[3] = max(bbox[3], env.maxy)
    if not shapefile.records:
        bbox = [0.0, 0.0, 0.0, 0.0]
    total_words = offset_words
    with open(shp_path, "wb") as f:
        f.write(_main_header(total_words, shape_type, bbox))
        for chunk in shp_records:
            f.write(chunk)
    shx_words = 50 + 4 * len(offsets)
    with open(shx_path, "wb") as f:
        f.write(_main_header(shx_words, shape_type, bbox))
        for off, length in offsets:
            f.write(struct.pack(">ii", off, length))
    with open(dbf_path, "wb") as f:
        f.write(_dbf_bytes(shapefile))
    return (shp_path, shx_path, dbf_path)


def _infer_shape_type(shapefile: Shapefile) -> int:
    for record in shapefile.records:
        if isinstance(record.geometry, Point):
            return SHAPE_TYPE_POINT
        if isinstance(record.geometry, (Polygon, MultiPolygon)):
            return SHAPE_TYPE_POLYGON
        raise ValueError(
            f"unsupported shapefile geometry {record.geometry.geom_type}"
        )
    return SHAPE_TYPE_POLYGON


def _main_header(length_words: int, shape_type: int, bbox: List[float]) -> bytes:
    header = struct.pack(">i", 9994)
    header += b"\0" * 20
    header += struct.pack(">i", length_words)
    header += struct.pack("<ii", 1000, shape_type)
    header += struct.pack("<4d", *bbox)
    header += struct.pack("<4d", 0.0, 0.0, 0.0, 0.0)  # Z and M ranges
    return header


def _shape_content(geometry: Geometry, shape_type: int) -> bytes:
    if shape_type == SHAPE_TYPE_POINT:
        assert isinstance(geometry, Point)
        return struct.pack("<idd", SHAPE_TYPE_POINT, geometry.x, geometry.y)
    # Polygon: collect rings from all polygons (shells CW per spec,
    # holes CCW).
    rings: List[List[Tuple[float, float]]] = []
    for poly in polygons_of(geometry):
        shell = list(poly.shell.oriented(False).coords)  # CW shell
        rings.append(shell)
        for hole in poly.holes:
            rings.append(list(hole.oriented(True).coords))  # CCW holes
    env = geometry.envelope
    num_points = sum(len(r) for r in rings)
    parts: List[int] = []
    running = 0
    for r in rings:
        parts.append(running)
        running += len(r)
    content = struct.pack("<i", SHAPE_TYPE_POLYGON)
    content += struct.pack("<4d", env.minx, env.miny, env.maxx, env.maxy)
    content += struct.pack("<ii", len(rings), num_points)
    content += struct.pack(f"<{len(parts)}i", *parts)
    for r in rings:
        for x, y in r:
            content += struct.pack("<dd", x, y)
    return content


def _dbf_bytes(shapefile: Shapefile) -> bytes:
    fields = shapefile.fields
    record_size = 1 + sum(f.length for f in fields)
    header_size = 32 + 32 * len(fields) + 1
    now = datetime.now()
    out = struct.pack(
        "<BBBBIHH20x",
        0x03,
        now.year - 1900,
        now.month,
        now.day,
        len(shapefile.records),
        header_size,
        record_size,
    )
    for f in fields:
        out += struct.pack(
            "<11sc4xBB14x",
            f.name.encode("ascii")[:11],
            f.field_type.encode("ascii"),
            f.length,
            f.decimals,
        )
    out += b"\x0d"
    for record in shapefile.records:
        out += b" "  # not deleted
        for f in fields:
            out += _format_value(record.attributes.get(f.name), f)
    out += b"\x1a"
    return out


def _format_value(value: Any, field: Field) -> bytes:
    if field.field_type == "C":
        text = "" if value is None else str(value)
        return text.encode("utf-8", "replace")[: field.length].ljust(
            field.length
        )
    if field.field_type in ("N", "F"):
        if value is None:
            return b" " * field.length
        if field.decimals:
            text = f"{float(value):.{field.decimals}f}"
        else:
            text = str(int(value))
        return text[: field.length].rjust(field.length).encode("ascii")
    if field.field_type == "D":
        if value is None:
            return b" " * 8
        if isinstance(value, (datetime, date)):
            return value.strftime("%Y%m%d").encode("ascii")
        return str(value)[:8].ljust(8).encode("ascii")
    if field.field_type == "L":
        if value is None:
            return b"?"
        return b"T" if value else b"F"
    raise ValueError(f"bad field type {field.field_type!r}")
