"""Multi-source acquisition federation (``repro.sources``).

Per-source drivers (polar orbiter, weather stations) alongside the
geostationary SEVIRI stream, with spatio-temporal dedup/fusion,
static-heat-source simulation, a FIRMS-style Data Vault driver, and
the federation layer that turns source failures into provenance
instead of crashes.
"""

from repro.sources.base import (
    KIND_FIRE,
    KIND_WEATHER,
    SourceBatch,
    SourceDriver,
    SourceObservation,
    SourcesConfig,
    sort_observations,
)
from repro.sources.federation import (
    GAP_STATUSES,
    STATUS_BREAKER_OPEN,
    STATUS_IDLE,
    STATUS_OK,
    STATUS_OUTAGE,
    SourceFederation,
    SourceReport,
)
from repro.sources.fusion import FusedCluster, fuse, fused_confidence
from repro.sources.polar import PolarOrbiterDriver
from repro.sources.static import (
    StaticHeatEvent,
    StaticSite,
    attach_static_sites,
    load_static_sites,
    simulate_static_sites,
    static_site_events,
)
from repro.sources.vault import (
    FirmsCsvDriver,
    read_firms_csv,
    write_firms_csv,
)
from repro.sources.weather import (
    WeatherStation,
    WeatherStationDriver,
    danger_contribution,
    simulate_stations,
)

__all__ = [
    "GAP_STATUSES",
    "KIND_FIRE",
    "KIND_WEATHER",
    "STATUS_BREAKER_OPEN",
    "STATUS_IDLE",
    "STATUS_OK",
    "STATUS_OUTAGE",
    "FirmsCsvDriver",
    "FusedCluster",
    "PolarOrbiterDriver",
    "SourceBatch",
    "SourceDriver",
    "SourceFederation",
    "SourceObservation",
    "SourceReport",
    "SourcesConfig",
    "StaticHeatEvent",
    "StaticSite",
    "WeatherStation",
    "WeatherStationDriver",
    "attach_static_sites",
    "danger_contribution",
    "fuse",
    "fused_confidence",
    "load_static_sites",
    "read_firms_csv",
    "simulate_static_sites",
    "simulate_stations",
    "sort_observations",
    "static_site_events",
    "write_firms_csv",
]
