"""Driver protocol and shared records for the acquisition federation.

The federation layer generalises the single SEVIRI/HRIT stream into a
set of *sources*, each behind a small driver interface: the
geostationary stream stays where it is (the processing chain), while a
polar orbiter (MODIS/VIIRS-like) and a weather-station network
contribute :class:`SourceObservation` records per acquisition slot.
Drivers are deliberately tiny — ``available(when)`` models each
source's revisit pattern, ``acquire(when, season)`` produces a
timestamped batch — so fault injection and circuit breaking can wrap
them uniformly (see :mod:`repro.sources.federation`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Tuple

from repro.seviri.fires import FireSeason

#: Source kinds understood by the ingest path.
KIND_FIRE = "fire"
KIND_WEATHER = "weather"


@dataclass(frozen=True)
class SourceObservation:
    """One point observation from one source.

    ``confidence`` is normalised to [0, 1] for fire detections (the
    polar instruments report 0–100; drivers rescale) and carries the
    danger contribution for weather observations.  ``extras`` holds
    per-kind attributes (satellite name, temperature, wind ...).
    """

    source: str
    kind: str
    lon: float
    lat: float
    timestamp: datetime
    confidence: float
    extras: Dict[str, object] = field(default_factory=dict)


@dataclass
class SourceBatch:
    """Everything one driver produced for one acquisition slot."""

    source: str
    kind: str
    timestamp: datetime
    observations: List[SourceObservation]
    seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.observations)


class SourceDriver(ABC):
    """A single upstream feed behind the federation.

    Subclasses are deterministic in ``(seed, when)`` — two drivers
    acquired in either order produce identical observations, which is
    what makes the fusion stage order-independent end to end.
    """

    #: Unique source name; also the fault site (``source.<name>``).
    name: str = "source"
    #: ``fire`` or ``weather``.
    kind: str = KIND_FIRE

    @abstractmethod
    def available(self, when: datetime) -> bool:
        """Does this source have a pass / report at ``when``?"""

    @abstractmethod
    def acquire(
        self, when: datetime, season: Optional[FireSeason]
    ) -> SourceBatch:
        """Produce the batch for the acquisition slot at ``when``."""


def sort_observations(
    observations: List[SourceObservation],
) -> List[SourceObservation]:
    """Canonical observation order (source, time, position).

    Sorting before ingest and before fusion removes any dependence on
    the order drivers were polled in — the differential suite's
    oracle property.
    """
    return sorted(
        observations,
        key=lambda o: (
            o.source,
            o.timestamp.isoformat(),
            round(o.lon, 9),
            round(o.lat, 9),
            round(o.confidence, 9),
        ),
    )


@dataclass
class SourcesConfig:
    """Federation configuration carried by ``ServiceConfig.sources``.

    Serialisable to/from a plain dict so the durable service can
    persist it in ``service.json`` and restore the same federation on
    recovery.
    """

    polar: bool = True
    weather: bool = True
    stations: int = 12
    seed: int = 0
    #: Polar revisit period; the pass window is ``polar_pass_minutes``.
    polar_revisit_minutes: int = 90
    polar_pass_minutes: int = 20
    #: Spatio-temporal dedup window for cross-source confirmation.
    fusion_window_minutes: int = 30
    fusion_window_degrees: float = 0.05
    #: Confidence multiplier for hotspots no other source has seen.
    single_source_decay: float = 0.85
    #: Simulated static industrial heat sources (refineries).
    static_sites: int = 3
    #: Per-source circuit breaker tuning.
    breaker_threshold: int = 2
    breaker_recovery_seconds: float = 60.0

    def validate(self) -> None:
        if self.fusion_window_minutes <= 0:
            raise ValueError("fusion_window_minutes must be positive")
        if self.fusion_window_degrees <= 0:
            raise ValueError("fusion_window_degrees must be positive")
        if not 0.0 < self.single_source_decay <= 1.0:
            raise ValueError(
                "single_source_decay must be in (0, 1]"
            )
        if self.stations < 0 or self.static_sites < 0:
            raise ValueError("stations/static_sites must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        return {
            "polar": self.polar,
            "weather": self.weather,
            "stations": self.stations,
            "seed": self.seed,
            "polar_revisit_minutes": self.polar_revisit_minutes,
            "polar_pass_minutes": self.polar_pass_minutes,
            "fusion_window_minutes": self.fusion_window_minutes,
            "fusion_window_degrees": self.fusion_window_degrees,
            "single_source_decay": self.single_source_decay,
            "static_sites": self.static_sites,
            "breaker_threshold": self.breaker_threshold,
            "breaker_recovery_seconds": self.breaker_recovery_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SourcesConfig":
        known = {
            key: payload[key]
            for key in cls().to_dict()
            if key in payload
        }
        config = cls(**known)  # type: ignore[arg-type]
        config.validate()
        return config


__all__ = [
    "KIND_FIRE",
    "KIND_WEATHER",
    "SourceBatch",
    "SourceDriver",
    "SourceObservation",
    "SourcesConfig",
    "sort_observations",
]
