"""The acquisition federation: drivers + breakers + provenance.

:class:`SourceFederation` polls every registered driver once per
acquisition slot and returns what it got, *plus a report per source* —
the provenance record that rides the snapshot into ``/v1/hotspots``,
``health()`` and subscription notifications.  Losing a source is a
degradation, not a failure: a driver that raises (or whose fault site
``source.<name>`` trips) is recorded as an outage, its circuit
breaker counts the failure, and the acquisition proceeds with the
remaining feeds — the degradation-ladder entry "lose a source, keep
serving with provenance noting the gap".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from datetime import datetime
from typing import Dict, List, Optional, Tuple

from repro.datasets.geography import SyntheticGreece
from repro.faults import trip as faults_trip
from repro.faults.retry import CircuitBreaker
from repro.obs import get_metrics, get_tracer
from repro.rdf import Graph
from repro.seviri.fires import FireSeason
from repro.sources.base import (
    SourceBatch,
    SourceDriver,
    SourcesConfig,
)
from repro.sources.polar import PolarOrbiterDriver
from repro.sources.static import (
    StaticSite,
    attach_static_sites,
    load_static_sites,
    simulate_static_sites,
)
from repro.sources.weather import WeatherStationDriver

_tracer = get_tracer()
_metrics = get_metrics()

#: Report statuses.  ``idle`` (no pass scheduled) is not a gap;
#: ``outage`` and ``breaker-open`` are.
STATUS_OK = "ok"
STATUS_IDLE = "idle"
STATUS_OUTAGE = "outage"
STATUS_BREAKER_OPEN = "breaker-open"
GAP_STATUSES = (STATUS_OUTAGE, STATUS_BREAKER_OPEN)


@dataclass
class SourceReport:
    """Per-source provenance for one acquisition slot."""

    source: str
    kind: str
    status: str
    observations: int = 0
    seconds: float = 0.0
    error: Optional[str] = None

    @property
    def is_gap(self) -> bool:
        return self.status in GAP_STATUSES

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "source": self.source,
            "kind": self.kind,
            "status": self.status,
            "observations": self.observations,
            "seconds": round(self.seconds, 6),
        }
        if self.error:
            payload["error"] = self.error
        return payload


class SourceFederation:
    """All non-geostationary sources behind one collect() call."""

    def __init__(
        self,
        drivers: List[SourceDriver],
        config: Optional[SourcesConfig] = None,
        static_sites: Optional[List[StaticSite]] = None,
    ) -> None:
        self.config = config or SourcesConfig()
        self.drivers = list(drivers)
        self.static_sites = list(static_sites or [])
        self.season: Optional[FireSeason] = None
        self.breakers: Dict[str, CircuitBreaker] = {
            driver.name: CircuitBreaker(
                name=f"source.{driver.name}",
                failure_threshold=self.config.breaker_threshold,
                recovery_seconds=self.config.breaker_recovery_seconds,
            )
            for driver in self.drivers
        }
        self.last_reports: List[SourceReport] = []
        self._outages: Dict[str, int] = {
            driver.name: 0 for driver in self.drivers
        }
        self._observations: Dict[str, int] = {
            driver.name: 0 for driver in self.drivers
        }
        self._last_status: Dict[str, str] = {
            driver.name: STATUS_IDLE for driver in self.drivers
        }

    @classmethod
    def from_config(
        cls, config: SourcesConfig, greece: SyntheticGreece
    ) -> "SourceFederation":
        config.validate()
        drivers: List[SourceDriver] = []
        if config.polar:
            drivers.append(
                PolarOrbiterDriver(
                    greece,
                    seed=config.seed,
                    revisit_minutes=config.polar_revisit_minutes,
                    pass_minutes=config.polar_pass_minutes,
                )
            )
        if config.weather:
            drivers.append(
                WeatherStationDriver(
                    greece,
                    stations=config.stations,
                    seed=config.seed,
                )
            )
        sites = simulate_static_sites(
            greece, count=config.static_sites, seed=config.seed
        )
        return cls(drivers, config=config, static_sites=sites)

    # -- lifecycle ---------------------------------------------------------

    def prepare(
        self, season: Optional[FireSeason], graph: Graph
    ) -> None:
        """Bind the season and seed the static-site catalogue.

        Idempotent: static events are injected once per season and the
        catalogue triples only add what is missing, so a recovered
        durable service (whose WAL already replayed them) journals
        nothing new.
        """
        self.season = season
        if season is not None and self.static_sites:
            attach_static_sites(season, self.static_sites)
        if self.static_sites:
            load_static_sites(graph, self.static_sites)

    # -- acquisition -------------------------------------------------------

    def collect(
        self,
        when: datetime,
        fault_index: Optional[int] = None,
    ) -> Tuple[List[SourceBatch], List[SourceReport]]:
        """Poll every driver for the slot at ``when``.

        Never raises: each driver failure becomes an ``outage`` report
        (and a breaker failure); an open breaker short-circuits the
        driver entirely until its recovery window elapses.
        """
        batches: List[SourceBatch] = []
        reports: List[SourceReport] = []
        for driver in self.drivers:
            report, batch = self._collect_one(
                driver, when, fault_index
            )
            reports.append(report)
            self._last_status[driver.name] = report.status
            if report.status == STATUS_OK:
                self._observations[driver.name] += (
                    report.observations
                )
            elif report.is_gap:
                self._outages[driver.name] += 1
            if batch is not None:
                batches.append(batch)
        self.last_reports = reports
        return batches, reports

    def _collect_one(
        self,
        driver: SourceDriver,
        when: datetime,
        fault_index: Optional[int],
    ) -> Tuple[SourceReport, Optional[SourceBatch]]:
        if not driver.available(when):
            return (
                SourceReport(driver.name, driver.kind, STATUS_IDLE),
                None,
            )
        breaker = self.breakers[driver.name]
        if not breaker.allow():
            return (
                SourceReport(
                    driver.name,
                    driver.kind,
                    STATUS_BREAKER_OPEN,
                    error="circuit breaker open",
                ),
                None,
            )
        started = time.monotonic()
        try:
            with _tracer.span(
                "source.acquire", source=driver.name
            ) as span:
                faults_trip(
                    f"source.{driver.name}", index=fault_index
                )
                batch = driver.acquire(when, self.season)
                span.set(observations=len(batch))
        except Exception as error:  # noqa: BLE001 — gap, not crash
            breaker.record_failure()
            if _metrics.enabled:
                _metrics.counter(
                    "source_outages_total",
                    "Source acquisitions lost to outages",
                ).inc(source=driver.name)
            return (
                SourceReport(
                    driver.name,
                    driver.kind,
                    STATUS_OUTAGE,
                    seconds=time.monotonic() - started,
                    error=f"{type(error).__name__}: {error}",
                ),
                None,
            )
        breaker.record_success()
        if _metrics.enabled:
            _metrics.counter(
                "source_observations_total",
                "Observations ingested per source",
            ).inc(len(batch), source=driver.name)
        return (
            SourceReport(
                driver.name,
                driver.kind,
                STATUS_OK,
                observations=len(batch),
                seconds=time.monotonic() - started,
            ),
            batch,
        )

    # -- introspection -----------------------------------------------------

    def provenance(self) -> List[Dict[str, object]]:
        """The last slot's reports as plain dicts (for snapshots)."""
        return [report.to_dict() for report in self.last_reports]

    def status(self) -> Dict[str, Dict[str, object]]:
        """Per-source health block (breaker state, gap counters)."""
        return {
            driver.name: {
                "kind": driver.kind,
                "breaker": self.breakers[driver.name].state,
                "last_status": self._last_status[driver.name],
                "observations_total": self._observations[
                    driver.name
                ],
                "outages_total": self._outages[driver.name],
            }
            for driver in self.drivers
        }


__all__ = [
    "GAP_STATUSES",
    "SourceFederation",
    "SourceReport",
    "STATUS_BREAKER_OPEN",
    "STATUS_IDLE",
    "STATUS_OK",
    "STATUS_OUTAGE",
]
