"""Spatio-temporal dedup and confidence fusion.

Cross-source confirmation needs two primitives:

* :func:`fuse` — cluster raw detections from many sources inside a
  spatio-temporal window (grid-bucketed union-find, O(n) for the
  benchmark's 100 K-detection case) so one fire seen by three
  instruments becomes one cluster, while two fires a few pixels apart
  stay distinct;
* :func:`fused_confidence` — the noisy-OR rule
  ``1 - prod(1 - c_i)``: independent detections only ever *raise*
  belief, and the result is invariant to source arrival order (the
  inputs are sorted before multiplying so the floating-point product
  is bit-identical across permutations too).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.sources.base import SourceObservation, sort_observations


def fused_confidence(confidences: Iterable[float]) -> float:
    """Noisy-OR fusion of per-source confidences in [0, 1]."""
    remainder = 1.0
    for value in sorted(
        min(1.0, max(0.0, float(c))) for c in confidences
    ):
        remainder *= 1.0 - value
    return round(1.0 - remainder, 6)


@dataclass
class FusedCluster:
    """One deduplicated detection: all observations of one fire."""

    observations: List[SourceObservation] = field(
        default_factory=list
    )

    @property
    def sources(self) -> Tuple[str, ...]:
        return tuple(sorted({o.source for o in self.observations}))

    @property
    def confidence(self) -> float:
        # One vote per source: several pixels from the same instrument
        # are one observation of one fire, not independent evidence.
        best: Dict[str, float] = {}
        for obs in self.observations:
            best[obs.source] = max(
                best.get(obs.source, 0.0), obs.confidence
            )
        return fused_confidence(best.values())

    @property
    def confirmed(self) -> bool:
        return len(self.sources) >= 2

    @property
    def centroid(self) -> Tuple[float, float]:
        n = len(self.observations)
        return (
            sum(o.lon for o in self.observations) / n,
            sum(o.lat for o in self.observations) / n,
        )


class _UnionFind:
    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:  # path compression
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic orientation: smaller index wins.
            if ra > rb:
                ra, rb = rb, ra
            self.parent[rb] = ra


def fuse(
    observations: Sequence[SourceObservation],
    window_minutes: float = 30.0,
    window_degrees: float = 0.05,
) -> List[FusedCluster]:
    """Cluster detections within the spatio-temporal dedup window.

    Two observations belong to the same fire when they lie within
    ``window_degrees`` (Chebyshev distance, matching the engine's
    envelope ``anyInteract`` semantics) and ``window_minutes`` of each
    other; clusters are the transitive closure of that relation.  A
    uniform grid of cell size ``window_degrees`` limits candidate
    pairs to the 3x3 neighbourhood, keeping the pass linear in
    practice — the property the 100 K-detection benchmark measures.
    """
    ordered = sort_observations(list(observations))
    n = len(ordered)
    uf = _UnionFind(n)
    grid: Dict[Tuple[int, int], List[int]] = {}
    for index, obs in enumerate(ordered):
        cx = int(obs.lon // window_degrees)
        cy = int(obs.lat // window_degrees)
        grid.setdefault((cx, cy), []).append(index)
    window_seconds = window_minutes * 60.0
    for index, obs in enumerate(ordered):
        cx = int(obs.lon // window_degrees)
        cy = int(obs.lat // window_degrees)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for other in grid.get((cx + dx, cy + dy), ()):
                    if other <= index:
                        continue
                    peer = ordered[other]
                    if (
                        abs(peer.lon - obs.lon) <= window_degrees
                        and abs(peer.lat - obs.lat) <= window_degrees
                        and abs(
                            (
                                peer.timestamp - obs.timestamp
                            ).total_seconds()
                        )
                        <= window_seconds
                    ):
                        uf.union(index, other)
    clusters: Dict[int, FusedCluster] = {}
    for index, obs in enumerate(ordered):
        clusters.setdefault(
            uf.find(index), FusedCluster()
        ).observations.append(obs)
    # Canonical cluster order: by root index, which follows the sorted
    # observation order — stable across input permutations.
    return [clusters[root] for root in sorted(clusters)]


__all__ = ["FusedCluster", "fuse", "fused_confidence"]
