"""Simulated polar-orbiter fire source (MODIS/VIIRS-like).

Polar instruments trade revisit for resolution: the driver only has a
pass over Greece every ``revisit_minutes`` (a short window of
acquisition slots), but when it does, detections come at ~1 km pixels
with a per-detection confidence — exactly the FIRMS active-fire
product shape the related repos consume.  The simulation reuses the
MODIS ground-truth generator from :mod:`repro.seviri.modis` and
rescales its 0–100 confidence to the federation's [0, 1].
"""

from __future__ import annotations

import time
from datetime import datetime
from typing import List, Optional

from repro.datasets.geography import SyntheticGreece
from repro.seviri.fires import FireSeason
from repro.seviri.modis import simulate_modis_detections
from repro.sources.base import (
    KIND_FIRE,
    SourceBatch,
    SourceDriver,
    SourceObservation,
)


class PolarOrbiterDriver(SourceDriver):
    """Sparse-revisit, high-resolution active-fire detections."""

    kind = KIND_FIRE

    def __init__(
        self,
        greece: SyntheticGreece,
        name: str = "polar",
        satellite: str = "VIIRS-SIM",
        seed: int = 0,
        revisit_minutes: int = 90,
        pass_minutes: int = 20,
        detection_probability: float = 0.92,
        false_alarm_rate: float = 0.2,
    ) -> None:
        self.greece = greece
        self.name = name
        self.satellite = satellite
        self.seed = int(seed)
        self.revisit_minutes = max(1, int(revisit_minutes))
        self.pass_minutes = max(1, int(pass_minutes))
        self.detection_probability = detection_probability
        self.false_alarm_rate = false_alarm_rate

    def available(self, when: datetime) -> bool:
        """A pass covers the first ``pass_minutes`` of each revisit
        period (minute-of-day arithmetic keeps it deterministic)."""
        minute = when.hour * 60 + when.minute
        return minute % self.revisit_minutes < self.pass_minutes

    def acquire(
        self, when: datetime, season: Optional[FireSeason]
    ) -> SourceBatch:
        started = time.monotonic()
        observations: List[SourceObservation] = []
        if season is not None:
            detections = simulate_modis_detections(
                self.greece,
                season,
                when,
                satellite=self.satellite,
                detection_probability=self.detection_probability,
                false_alarm_rate=self.false_alarm_rate,
                seed=self.seed ^ int(when.timestamp()),
            )
            for det in detections:
                observations.append(
                    SourceObservation(
                        source=self.name,
                        kind=KIND_FIRE,
                        lon=det.lon,
                        lat=det.lat,
                        timestamp=det.timestamp,
                        confidence=min(
                            1.0, max(0.0, det.confidence / 100.0)
                        ),
                        extras={"satellite": det.satellite},
                    )
                )
        return SourceBatch(
            source=self.name,
            kind=KIND_FIRE,
            timestamp=when,
            observations=observations,
            seconds=time.monotonic() - started,
        )


__all__ = ["PolarOrbiterDriver"]
