"""Static heat sources — refineries and industrial flares.

The related FIRMS repos ("this-is-fine"'s industrial filtering) all
hit the same false-alarm family: a refinery flare is a *real* thermal
anomaly, detected acquisition after acquisition by every instrument,
yet it is never a wildfire.  Land-cover filtering alone cannot remove
it (the flare sits wherever it sits, often amid fire-consistent
scrub), so the pipeline adds a *temporal-persistence* rule: a hotspot
coinciding with a known static site that has produced detections in
earlier acquisitions is flagged ``noa:matchesStaticSource`` and
excluded from alerting.

This module supplies the simulation side: seeded site placement on
fire-consistent cover (so the land-cover rule does not delete them
first — exactly why the dedicated rule exists), constant-intensity
``industrial`` season events every fire-detecting source picks up,
and the static-site RDF catalogue the refinement rule joins against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import List

from repro.datasets.corine import FIRE_CONSISTENT_KEYS
from repro.datasets.geography import SyntheticGreece
from repro.geometry import Polygon
from repro.rdf import Graph, Literal, NOA, RDF, STRDF, XSD
from repro.seviri.fires import FireEvent, FireSeason


@dataclass(frozen=True)
class StaticSite:
    """One permanent industrial heat source."""

    site_id: int
    name: str
    lon: float
    lat: float
    radius_km: float = 1.2

    @property
    def uri(self):
        return NOA.term(f"StaticHeatSource_{self.site_id}")

    @property
    def footprint(self) -> Polygon:
        """Square exclusion footprint around the stack/flare."""
        half = max(self.radius_km, 0.1) / 111.0
        return Polygon(
            [
                (self.lon - half, self.lat - half),
                (self.lon + half, self.lat - half),
                (self.lon + half, self.lat + half),
                (self.lon - half, self.lat + half),
            ]
        )


@dataclass
class StaticHeatEvent(FireEvent):
    """A season event that burns at constant intensity forever.

    Unlike a wildfire's triangular profile, a flare neither grows nor
    decays — every acquisition in the window sees the same signal,
    which is precisely the persistence signature the refinement rule
    keys on.
    """

    steady_intensity: float = 0.55

    def intensity_at(self, when: datetime) -> float:
        return self.steady_intensity if self.active(when) else 0.0

    def radius_km_at(self, when: datetime) -> float:
        return self.max_radius_km if self.active(when) else 0.0


def simulate_static_sites(
    greece: SyntheticGreece, count: int = 3, seed: int = 0
) -> List[StaticSite]:
    """Seeded refinery placement on land with fire-consistent cover.

    Sites deliberately sit on cover the land-cover rule would *keep*
    — if CLC filtering could remove them, the temporal-persistence
    rule would have nothing to do.
    """
    rng = random.Random(seed * 104_729 + 7)
    minx, miny, maxx, maxy = greece.bbox
    sites: List[StaticSite] = []
    attempts = 0
    while len(sites) < count and attempts < count * 600:
        attempts += 1
        lon = rng.uniform(minx, maxx)
        lat = rng.uniform(miny, maxy)
        if not greece.is_land(lon, lat):
            continue
        if greece.land_cover_at(lon, lat) not in FIRE_CONSISTENT_KEYS:
            continue
        sites.append(
            StaticSite(
                site_id=len(sites),
                name=f"Refinery{len(sites)}",
                lon=lon,
                lat=lat,
            )
        )
    return sites


def static_site_events(
    sites: List[StaticSite], start: datetime, end: datetime
) -> List[StaticHeatEvent]:
    """Constant-intensity ``industrial`` events spanning the window."""
    margin = timedelta(hours=1)
    events = []
    for site in sites:
        events.append(
            StaticHeatEvent(
                event_id=9_000_000 + site.site_id,
                lon=site.lon,
                lat=site.lat,
                start=start - margin,
                peak=start + (end - start) / 2,
                end=end + margin,
                max_radius_km=site.radius_km,
                kind="industrial",
            )
        )
    return events


def attach_static_sites(
    season: FireSeason, sites: List[StaticSite]
) -> None:
    """Inject the static events into a season (idempotent)."""
    existing = {e.event_id for e in season.events}
    for event in static_site_events(sites, season.start, season.end):
        if event.event_id not in existing:
            season.events.append(event)


def load_static_sites(graph: Graph, sites: List[StaticSite]) -> int:
    """Insert the static-site catalogue triples (idempotent).

    A durable service replays previously committed triples from the
    WAL, so the loader only adds what is missing — double inserts on
    recovery would be no-ops anyway (the graph is a set), but the
    guard keeps the journal clean.
    """
    added = 0
    for site in sites:
        uri = site.uri
        added += graph.add(uri, RDF.type, NOA.StaticHeatSource)
        added += graph.add(
            uri,
            NOA.hasStaticSourceName,
            Literal(site.name, datatype=XSD.base + "string"),
        )
        added += graph.add(
            uri,
            STRDF.hasGeometry,
            Literal(
                site.footprint.wkt,
                datatype=STRDF.geometry.value,
            ),
        )
    return added


__all__ = [
    "StaticHeatEvent",
    "StaticSite",
    "attach_static_sites",
    "load_static_sites",
    "simulate_static_sites",
    "static_site_events",
]
