"""FIRMS-style CSV exchange behind the Data Vault.

Polar-orbiter active-fire products distribute as flat CSV (the NASA
FIRMS download the related repos parse: one detection per row with
longitude, latitude, acquisition time and confidence).  This module
gives the federation a file round-trip in that shape:

* :func:`write_firms_csv` — serialise a :class:`SourceBatch` to a
  ``*.firms.csv`` file (the file-mode archive of a polar pass);
* :class:`FirmsCsvDriver` — the Data Vault format driver that
  materialises an attached CSV as a SciQL array with one cell per
  detection and attributes ``lon`` / ``lat`` / ``confidence``, the
  same lazy attach-then-load lifecycle the HRIT imagery uses;
* :func:`read_firms_csv` — parse back into observations for ingest.
"""

from __future__ import annotations

import os
from datetime import datetime, timezone
from typing import List, Tuple, Union

import numpy as np

from repro.arraydb.array import Dimension, SciQLArray
from repro.arraydb.catalog import Catalog
from repro.arraydb.errors import VaultError
from repro.arraydb.types import DOUBLE
from repro.sources.base import (
    KIND_FIRE,
    SourceBatch,
    SourceObservation,
    sort_observations,
)

SUFFIX = ".firms.csv"
_HEADER = "latitude,longitude,acq_datetime,confidence,source"
_TIME_FMT = "%Y-%m-%dT%H:%M:%S"


def write_firms_csv(batch: SourceBatch, path: str) -> str:
    """Serialise a fire batch in FIRMS row order; returns ``path``."""
    lines = [_HEADER]
    for obs in sort_observations(batch.observations):
        lines.append(
            ",".join(
                (
                    f"{obs.lat:.6f}",
                    f"{obs.lon:.6f}",
                    obs.timestamp.strftime(_TIME_FMT),
                    f"{obs.confidence:.4f}",
                    obs.source,
                )
            )
        )
    with open(path, "w") as f:
        f.write("\n".join(lines) + "\n")
    return path


def read_firms_csv(path: str) -> List[SourceObservation]:
    """Parse a ``*.firms.csv`` back into fire observations."""
    observations: List[SourceObservation] = []
    with open(path) as f:
        header = f.readline().strip()
        if header != _HEADER:
            raise VaultError(
                f"not a FIRMS csv (header {header!r}): {path}"
            )
        for line in f:
            line = line.strip()
            if not line:
                continue
            lat, lon, stamp, confidence, source = line.split(",")
            observations.append(
                SourceObservation(
                    source=source,
                    kind=KIND_FIRE,
                    lon=float(lon),
                    lat=float(lat),
                    timestamp=datetime.strptime(
                        stamp, _TIME_FMT
                    ).replace(tzinfo=timezone.utc),
                    confidence=float(confidence),
                )
            )
    return observations


class FirmsCsvDriver:
    """Data Vault format driver for FIRMS-style detection CSVs."""

    format_name = "FIRMS-CSV"

    def can_handle(
        self, path: Union[str, Tuple[str, ...]]
    ) -> bool:
        if not isinstance(path, str):
            return bool(path) and self.can_handle(str(path[0]))
        if not path.endswith(SUFFIX) or not os.path.isfile(path):
            return False
        try:
            with open(path) as f:
                return f.readline().strip() == _HEADER
        except OSError:
            return False

    def load(self, path, catalog: Catalog, name: str) -> None:
        if not isinstance(path, str):
            path = str(path[0])
        observations = read_firms_csv(path)
        count = len(observations)
        array = SciQLArray(
            name,
            [Dimension("i", 0, max(count, 1))],
            [
                ("lon", DOUBLE),
                ("lat", DOUBLE),
                ("confidence", DOUBLE),
            ],
        )
        array.set_attribute(
            "lon",
            np.array(
                [o.lon for o in observations] or [0.0], dtype=float
            )[: max(count, 1)],
        )
        array.set_attribute(
            "lat",
            np.array(
                [o.lat for o in observations] or [0.0], dtype=float
            )[: max(count, 1)],
        )
        array.set_attribute(
            "confidence",
            np.array(
                [o.confidence for o in observations] or [0.0],
                dtype=float,
            )[: max(count, 1)],
        )
        catalog.create(array, replace=True)


__all__ = [
    "FirmsCsvDriver",
    "SUFFIX",
    "read_firms_csv",
    "write_firms_csv",
]
