"""Simulated weather-station network feeding the FWI family.

A fixed set of stations (seeded, always on land) reports temperature,
relative humidity and wind speed every acquisition slot.  Each report
carries a *danger contribution* — a toy Fire Weather Index term in
[0, ~1.2] combining dryness, heat and wind — which the subscription
engine folds into per-municipality fire-danger scores alongside
hotspot confidence (§ the FWI subscription family).

Reports are deterministic in ``(seed, station, when)``: polling the
weather source before or after the polar source changes nothing,
which the fusion differential suite relies on.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from datetime import datetime
from typing import List, Optional

from repro.datasets.geography import SyntheticGreece
from repro.seviri.fires import FireSeason
from repro.sources.base import (
    KIND_WEATHER,
    SourceBatch,
    SourceDriver,
    SourceObservation,
)


@dataclass(frozen=True)
class WeatherStation:
    station_id: int
    name: str
    lon: float
    lat: float
    #: Index into ``greece.municipalities`` or -1 when outside all.
    municipality_index: int


def simulate_stations(
    greece: SyntheticGreece, count: int = 12, seed: int = 0
) -> List[WeatherStation]:
    """Seeded station placement: uniform over land."""
    rng = random.Random(seed * 7_919 + 17)
    minx, miny, maxx, maxy = greece.bbox
    stations: List[WeatherStation] = []
    attempts = 0
    while len(stations) < count and attempts < count * 400:
        attempts += 1
        lon = rng.uniform(minx, maxx)
        lat = rng.uniform(miny, maxy)
        if not greece.is_land(lon, lat):
            continue
        municipality = greece.municipality_at(lon, lat)
        index = (
            greece.municipalities.index(municipality)
            if municipality is not None
            else -1
        )
        stations.append(
            WeatherStation(
                station_id=len(stations),
                name=f"WS{len(stations):02d}",
                lon=lon,
                lat=lat,
                municipality_index=index,
            )
        )
    return stations


def danger_contribution(
    temperature_c: float, relative_humidity: float, wind_speed_ms: float
) -> float:
    """Toy FWI term: dryness x heat x wind, clipped to [0, 1.2]."""
    dryness = max(0.0, (101.0 - relative_humidity) / 100.0)
    heat = max(0.0, min(1.0, (temperature_c - 10.0) / 30.0))
    wind = 1.0 + max(0.0, wind_speed_ms) / 12.0
    return round(min(1.2, dryness * (0.35 + 0.65 * heat) * wind), 4)


class WeatherStationDriver(SourceDriver):
    """In-situ observations: always available, never a revisit gap."""

    kind = KIND_WEATHER

    def __init__(
        self,
        greece: SyntheticGreece,
        name: str = "weather",
        stations: int = 12,
        seed: int = 0,
    ) -> None:
        self.greece = greece
        self.name = name
        self.seed = int(seed)
        self.stations = simulate_stations(
            greece, count=stations, seed=self.seed
        )

    def available(self, when: datetime) -> bool:
        return True

    def _report(
        self, station: WeatherStation, when: datetime
    ) -> SourceObservation:
        rng = random.Random(
            (self.seed * 1_000_003)
            ^ (station.station_id * 9_176_201)
            ^ int(when.timestamp())
        )
        hour = when.hour + when.minute / 60.0
        diurnal = math.sin((hour - 5.0) / 24.0 * 2.0 * math.pi)
        temperature = 24.0 + 9.0 * diurnal + rng.gauss(0.0, 1.5)
        humidity = min(
            100.0,
            max(8.0, 45.0 - 18.0 * diurnal + rng.gauss(0.0, 6.0)),
        )
        wind = max(0.0, rng.gauss(4.5, 2.5))
        contribution = danger_contribution(
            temperature, humidity, wind
        )
        return SourceObservation(
            source=self.name,
            kind=KIND_WEATHER,
            lon=station.lon,
            lat=station.lat,
            timestamp=when,
            confidence=contribution,
            extras={
                "station": station.name,
                "temperature_c": round(temperature, 2),
                "relative_humidity": round(humidity, 1),
                "wind_speed_ms": round(wind, 2),
                "municipality_index": station.municipality_index,
            },
        )

    def acquire(
        self, when: datetime, season: Optional[FireSeason]
    ) -> SourceBatch:
        started = time.monotonic()
        observations = [
            self._report(station, when) for station in self.stations
        ]
        return SourceBatch(
            source=self.name,
            kind=KIND_WEATHER,
            timestamp=when,
            observations=observations,
            seconds=time.monotonic() - started,
        )


__all__ = [
    "WeatherStation",
    "WeatherStationDriver",
    "danger_contribution",
    "simulate_stations",
]
