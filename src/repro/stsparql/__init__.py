"""stSPARQL query and update engine — our Strabon reimplementation.

The engine evaluates the stSPARQL dialect of the paper: SPARQL 1.1
SELECT/ASK queries and updates extended with the ``strdf:`` spatial
vocabulary — spatial predicates (``strdf:anyInteract``, ``strdf:contains``,
...), spatial constructors (``strdf:intersection``, ``strdf:union``,
``strdf:boundary``, ``strdf:buffer``) and the ``strdf:union`` spatial
aggregate, over geometry literals typed ``strdf:geometry`` / ``strdf:WKT``.

Entry point: :class:`repro.stsparql.engine.Strabon`.
"""

from repro.stsparql.engine import SnapshotView, Strabon
from repro.stsparql.errors import SparqlError, SparqlParseError, SparqlEvalError
from repro.stsparql.eval import SolutionSet
from repro.stsparql.builder import SelectBuilder, UpdateBuilder

__all__ = [
    "SelectBuilder",
    "SnapshotView",
    "SolutionSet",
    "SparqlError",
    "SparqlEvalError",
    "SparqlParseError",
    "Strabon",
    "UpdateBuilder",
]
