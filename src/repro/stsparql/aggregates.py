"""Aggregate functions, including the stSPARQL spatial aggregates."""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.geometry import Geometry, ops
from repro.geometry.envelope import Envelope
from repro.geometry.polygon import Polygon
from repro.perf import geometry_cache
from repro.rdf.namespace import STRDF
from repro.stsparql.errors import ExpressionError
from repro.stsparql.functions import as_geometry, as_number, as_string

Value = Any


def _distinct(values: List[Value], distinct: bool) -> List[Value]:
    if not distinct:
        return values
    # Hash-based dedup where possible; unhashable values (geometries)
    # fall back to the linear equality scan.
    out: List[Value] = []
    seen = set()
    unhashable: List[Value] = []
    for v in values:
        try:
            if v in seen:
                continue
            seen.add(v)
        except TypeError:
            if any(u == v for u in unhashable):
                continue
            unhashable.append(v)
        out.append(v)
    return out


def agg_count(values: List[Value], distinct: bool) -> Value:
    return len(_distinct(values, distinct))


def agg_sum(values: List[Value], distinct: bool) -> Value:
    nums = [as_number(v) for v in _distinct(values, distinct)]
    total = sum(nums)
    return int(total) if all(isinstance(n, int) for n in nums) else total


def agg_avg(values: List[Value], distinct: bool) -> Value:
    vals = _distinct(values, distinct)
    if not vals:
        raise ExpressionError("AVG over empty group")
    return sum(as_number(v) for v in vals) / len(vals)


def agg_min(values: List[Value], distinct: bool) -> Value:
    if not values:
        raise ExpressionError("MIN over empty group")
    try:
        return min(values)
    except TypeError as exc:
        raise ExpressionError(str(exc)) from exc


def agg_max(values: List[Value], distinct: bool) -> Value:
    if not values:
        raise ExpressionError("MAX over empty group")
    try:
        return max(values)
    except TypeError as exc:
        raise ExpressionError(str(exc)) from exc


def agg_sample(values: List[Value], distinct: bool) -> Value:
    if not values:
        raise ExpressionError("SAMPLE over empty group")
    return values[0]


def agg_group_concat(values: List[Value], distinct: bool) -> Value:
    return " ".join(as_string(v) for v in _distinct(values, distinct))


def agg_spatial_union(values: List[Value], distinct: bool) -> Value:
    """``strdf:union(?g)`` — dissolve a group of geometries into one.

    Memoised on the identity tuple of the group: RefineInCoast unions
    the same coastline geometries in its HAVING clause, again in its
    projection, and again on every acquisition.  Returning the same
    result object also lets the predicate memo downstream key on it.
    """
    geoms = [as_geometry(v) for v in values]
    if not geoms:
        raise ExpressionError("strdf:union over empty group")
    return geometry_cache.union_aggregate(
        geoms, lambda: ops.union_all(geoms)
    )


def agg_spatial_intersection(values: List[Value], distinct: bool) -> Value:
    """``strdf:intersection(?g)`` — common region of a group."""
    geoms = [as_geometry(v) for v in values]
    if not geoms:
        raise ExpressionError("strdf:intersection over empty group")
    result: Geometry = geoms[0]
    for g in geoms[1:]:
        result = ops.intersection(result, g)
        if result.is_empty:
            break
    return result


def agg_spatial_extent(values: List[Value], distinct: bool) -> Value:
    """``strdf:extent(?g)`` — bounding box of a group of geometries."""
    geoms = [as_geometry(v) for v in values]
    if not geoms:
        raise ExpressionError("strdf:extent over empty group")
    env = Envelope.union_all(g.envelope for g in geoms)
    return Polygon.from_envelope(env)


AGGREGATES: Dict[str, Callable[[List[Value], bool], Value]] = {
    "count": agg_count,
    "sum": agg_sum,
    "avg": agg_avg,
    "min": agg_min,
    "max": agg_max,
    "sample": agg_sample,
    "group_concat": agg_group_concat,
    STRDF.base + "union": agg_spatial_union,
    STRDF.base + "intersection": agg_spatial_intersection,
    STRDF.base + "extent": agg_spatial_extent,
}


def resolve_aggregate(name: str) -> Callable[[List[Value], bool], Value]:
    impl = AGGREGATES.get(name)
    if impl is None:
        raise ExpressionError(f"unknown aggregate {name!r}")
    return impl
