"""Abstract syntax tree for the stSPARQL dialect.

The parser produces these nodes; the evaluator consumes them directly (the
algebra is simple enough that a separate lowering step would add nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.rdf.term import Term, Variable

# -- expressions ---------------------------------------------------------


class Expression:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class TermExpr(Expression):
    """A constant RDF term or a variable reference."""

    term: Term


@dataclass(frozen=True)
class UnaryExpr(Expression):
    op: str  # "!" | "-" | "+"
    operand: Expression


@dataclass(frozen=True)
class BinaryExpr(Expression):
    op: str  # "||" "&&" "=" "!=" "<" "<=" ">" ">=" "+" "-" "*" "/"
    left: Expression
    right: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A built-in or extension function call.

    ``name`` is either a lowercase built-in keyword ("bound", "str", ...)
    or a full URI for extension functions like strdf:anyInteract.
    """

    name: str
    args: Tuple[Expression, ...]


@dataclass(frozen=True)
class Aggregate(Expression):
    """An aggregate call (COUNT/SUM/AVG/MIN/MAX/SAMPLE/GROUP_CONCAT or a
    spatial aggregate such as strdf:union)."""

    name: str
    arg: Optional[Expression]  # None only for COUNT(*)
    distinct: bool = False


@dataclass(frozen=True)
class ExistsExpr(Expression):
    pattern: "GroupGraphPattern"
    negated: bool = False


# -- graph patterns ------------------------------------------------------


@dataclass(frozen=True)
class TriplePattern:
    subject: Term
    predicate: Term
    object: Term

    def variables(self) -> List[Variable]:
        return [
            t
            for t in (self.subject, self.predicate, self.object)
            if isinstance(t, Variable)
        ]


class PatternElement:
    """Marker base class for group-pattern members."""

    __slots__ = ()


@dataclass(frozen=True)
class BGP(PatternElement):
    """A basic graph pattern: a conjunctive block of triple patterns."""

    triples: Tuple[TriplePattern, ...]


@dataclass(frozen=True)
class Filter(PatternElement):
    expression: Expression


@dataclass(frozen=True)
class Optional_(PatternElement):
    pattern: "GroupGraphPattern"


@dataclass(frozen=True)
class UnionPattern(PatternElement):
    left: "GroupGraphPattern"
    right: "GroupGraphPattern"


@dataclass(frozen=True)
class Bind(PatternElement):
    expression: Expression
    variable: Variable


@dataclass(frozen=True)
class MinusPattern(PatternElement):
    pattern: "GroupGraphPattern"


@dataclass(frozen=True)
class GroupGraphPattern(PatternElement):
    elements: Tuple[PatternElement, ...]


@dataclass(frozen=True)
class SubSelect(PatternElement):
    query: "SelectQuery"


# -- queries ---------------------------------------------------------------


@dataclass(frozen=True)
class Projection:
    """One SELECT item: a bare variable or ``(expr AS ?var)``."""

    variable: Variable
    expression: Optional[Expression] = None  # None = project the variable


@dataclass(frozen=True)
class OrderCondition:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    projections: Tuple[Projection, ...]  # empty = SELECT *
    pattern: GroupGraphPattern
    distinct: bool = False
    group_by: Tuple[Expression, ...] = ()
    having: Tuple[Expression, ...] = ()
    order_by: Tuple[OrderCondition, ...] = ()
    limit: Optional[int] = None
    offset: int = 0

    @property
    def select_star(self) -> bool:
        return not self.projections


@dataclass(frozen=True)
class AskQuery:
    pattern: GroupGraphPattern


@dataclass(frozen=True)
class ConstructQuery:
    """CONSTRUCT { template } WHERE { pattern } [solution modifiers]."""

    template: Tuple[TriplePattern, ...]
    pattern: GroupGraphPattern
    limit: Optional[int] = None
    offset: int = 0


# -- updates ---------------------------------------------------------------


@dataclass(frozen=True)
class UpdateRequest:
    """DELETE/INSERT ... WHERE, or the DATA forms (where_pattern None)."""

    delete_template: Tuple[TriplePattern, ...] = ()
    insert_template: Tuple[TriplePattern, ...] = ()
    where_pattern: Optional[GroupGraphPattern] = None


Query = Union[SelectQuery, AskQuery, ConstructQuery, UpdateRequest]
