"""A fluent stSPARQL query builder.

Section 3 of the paper mentions that "a visual query builder is currently
being developed ... to allow NOA personnel to express complex stSPARQL
queries easily".  This module is the programmatic counterpart: a fluent
API that assembles syntactically correct stSPARQL SELECT queries and
updates without string plumbing.

>>> from repro.stsparql.builder import SelectBuilder
>>> text = (
...     SelectBuilder()
...     .select("?h", "?hGeo")
...     .where("?h", "a", "noa:Hotspot")
...     .where("?h", "strdf:hasGeometry", "?hGeo")
...     .filter_spatial("anyInteract", "?hGeo", "?region")
...     .limit(10)
...     .build()
... )
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.rdf.namespace import WELL_KNOWN_PREFIXES

_DEFAULT_PREFIXES = ("noa", "strdf", "xsd", "clc", "coast", "gag", "gn")


def _term(value: str) -> str:
    """Pass variables, prefixed names, WKT literals and IRIs through;
    quote everything else as a plain literal."""
    value = str(value)
    if value.startswith(("?", "$", "<", '"')):
        return value
    if value == "a" or ":" in value:
        return value
    return f'"{value}"'


def wkt_literal(wkt: str, datatype: str = "strdf:WKT") -> str:
    """A geometry constant usable in filters."""
    return f'"{wkt}"^^{datatype}'


def datetime_literal(iso: str) -> str:
    return f'"{iso}"^^xsd:dateTime'


class _PatternMixin:
    """Shared WHERE-pattern assembly."""

    def __init__(self) -> None:
        self._pattern_lines: List[str] = []
        self._prefixes: List[str] = list(_DEFAULT_PREFIXES)

    def prefix(self, *names: str) -> "_PatternMixin":
        """Add extra well-known prefixes to the prologue."""
        for name in names:
            if name not in WELL_KNOWN_PREFIXES:
                raise ValueError(f"unknown prefix {name!r}")
            if name not in self._prefixes:
                self._prefixes.append(name)
        return self

    def where(self, subject: str, predicate: str, obj: str) -> "_PatternMixin":
        self._pattern_lines.append(
            f"  {_term(subject)} {_term(predicate)} {_term(obj)} ."
        )
        return self

    def optional(self, *triples: Tuple[str, str, str]) -> "_PatternMixin":
        inner = " ".join(
            f"{_term(s)} {_term(p)} {_term(o)} ." for s, p, o in triples
        )
        self._pattern_lines.append(f"  OPTIONAL {{ {inner} }}")
        return self

    def optional_group(self, builder_fn) -> "_PatternMixin":
        """OPTIONAL with a sub-pattern assembled by ``builder_fn(sub)``."""
        sub = _SubPattern()
        builder_fn(sub)
        body = "\n".join("  " + line for line in sub._pattern_lines)
        self._pattern_lines.append("  OPTIONAL {\n" + body + "\n  }")
        return self

    def filter(self, expression: str) -> "_PatternMixin":
        self._pattern_lines.append(f"  FILTER({expression}) .")
        return self

    def filter_spatial(
        self, function: str, left: str, right: str
    ) -> "_PatternMixin":
        """FILTER(strdf:<function>(left, right))."""
        self._pattern_lines.append(
            f"  FILTER(strdf:{function}({_term(left)}, {_term(right)})) ."
        )
        return self

    def filter_not_bound(self, variable: str) -> "_PatternMixin":
        self._pattern_lines.append(f"  FILTER(!bound({variable})) .")
        return self

    def filter_time_between(
        self, variable: str, start_iso: str, end_iso: str
    ) -> "_PatternMixin":
        self._pattern_lines.append(
            f'  FILTER( "{start_iso}" <= str({variable}) ) .'
        )
        self._pattern_lines.append(
            f'  FILTER( str({variable}) <= "{end_iso}" ) .'
        )
        return self

    def _prologue(self) -> str:
        return "".join(
            f"PREFIX {name}: <{WELL_KNOWN_PREFIXES[name]}>\n"
            for name in self._prefixes
        )

    def _pattern(self) -> str:
        return "{\n" + "\n".join(self._pattern_lines) + "\n}"


class _SubPattern(_PatternMixin):
    pass


class SelectBuilder(_PatternMixin):
    """Fluent SELECT query assembly."""

    def __init__(self) -> None:
        super().__init__()
        self._projections: List[str] = []
        self._distinct = False
        self._group_by: List[str] = []
        self._having: List[str] = []
        self._order_by: List[str] = []
        self._limit: Optional[int] = None
        self._offset: Optional[int] = None

    def select(self, *items: str) -> "SelectBuilder":
        self._projections.extend(items)
        return self

    def select_expression(self, expression: str, alias: str) -> "SelectBuilder":
        self._projections.append(f"( {expression} AS {alias} )")
        return self

    def distinct(self) -> "SelectBuilder":
        self._distinct = True
        return self

    def group_by(self, *variables: str) -> "SelectBuilder":
        self._group_by.extend(variables)
        return self

    def having(self, expression: str) -> "SelectBuilder":
        self._having.append(expression)
        return self

    def order_by(self, variable: str, descending: bool = False) -> "SelectBuilder":
        self._order_by.append(
            f"DESC({variable})" if descending else variable
        )
        return self

    def limit(self, n: int) -> "SelectBuilder":
        self._limit = int(n)
        return self

    def offset(self, n: int) -> "SelectBuilder":
        self._offset = int(n)
        return self

    def build(self) -> str:
        if not self._projections:
            raise ValueError("SELECT needs at least one projection")
        if not self._pattern_lines:
            raise ValueError("the WHERE pattern is empty")
        head = "SELECT "
        if self._distinct:
            head += "DISTINCT "
        head += " ".join(self._projections)
        parts = [self._prologue() + head, "WHERE " + self._pattern()]
        if self._group_by:
            parts.append("GROUP BY " + " ".join(self._group_by))
        for having in self._having:
            parts.append(f"HAVING ({having})")
        if self._order_by:
            parts.append("ORDER BY " + " ".join(self._order_by))
        if self._limit is not None:
            parts.append(f"LIMIT {self._limit}")
        if self._offset is not None:
            parts.append(f"OFFSET {self._offset}")
        return "\n".join(parts)

    def run(self, strabon):
        """Build and execute against a Strabon endpoint."""
        return strabon.select(self.build())


class UpdateBuilder(_PatternMixin):
    """Fluent DELETE/INSERT ... WHERE assembly."""

    def __init__(self) -> None:
        super().__init__()
        self._delete: List[str] = []
        self._insert: List[str] = []

    def delete(self, subject: str, predicate: str, obj: str) -> "UpdateBuilder":
        self._delete.append(
            f"{_term(subject)} {_term(predicate)} {_term(obj)}"
        )
        return self

    def insert(self, subject: str, predicate: str, obj: str) -> "UpdateBuilder":
        self._insert.append(
            f"{_term(subject)} {_term(predicate)} {_term(obj)}"
        )
        return self

    def build(self) -> str:
        if not self._delete and not self._insert:
            raise ValueError("an update needs a DELETE or INSERT template")
        if not self._pattern_lines:
            raise ValueError("the WHERE pattern is empty")
        parts = [self._prologue().rstrip()]
        if self._delete:
            parts.append(
                "DELETE { " + " . ".join(self._delete) + " }"
            )
        if self._insert:
            parts.append(
                "INSERT { " + " . ".join(self._insert) + " }"
            )
        parts.append("WHERE " + self._pattern())
        return "\n".join(parts)

    def run(self, strabon):
        return strabon.update(self.build())
