"""Vectorised columnar stSPARQL execution.

The interpreted :class:`~repro.stsparql.eval.Evaluator` carries bindings
as one dict per solution row; every join step copies dicts and every
filter re-evaluates its expression per row.  This module executes the
same plans over *columns*: each variable is an ``int64`` array of
dictionary identifiers backed by the RDF store's term dictionary
(:meth:`~repro.rdf.graph.TripleReader.term_id`), joins expand via index
arithmetic instead of dict copies, and filters are either evaluated as
numpy array expressions (numeric and datetime comparisons, Allen-style
temporal relations) or memoised per *distinct* binding combination so
each spatial predicate pair is computed once per batch.

Semantics are identical to the interpreted engine by construction:

* join order comes from the shared :meth:`Evaluator._order_patterns`
  selectivity planner,
* per-combination matching reuses the exact inference / R-tree
  restriction branches of :meth:`Evaluator._match_triple`,
* solution modifiers (projection, grouping, DISTINCT, ORDER BY,
  OFFSET/LIMIT) run on the decoded rows through the inherited
  implementations,
* anything the vector paths cannot express falls back to the inherited
  per-row code on the same evaluator state.

The differential harness in ``tests/stsparql/test_differential.py``
holds the two engines equal over a randomised query corpus.

Identifier space: graph dictionary ids are dense non-negative ints;
terms that only exist in bindings (parameters, computed values) are
interned locally from ``LOCAL_BASE`` upward; ``UNBOUND`` (-1) marks an
absent binding.  Equal terms always map to equal ids — the graph
dictionary is consulted first — so id equality is term equality.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple
from weakref import WeakKeyDictionary

import numpy as np

from repro.obs import get_metrics
from repro.perf import get_config
from repro.rdf.namespace import RDF, STRDF
from repro.rdf.temporal import Period
from repro.rdf.term import Term, Variable
from repro.stsparql import ast
from repro.stsparql.errors import ExpressionError, SparqlEvalError
from repro.stsparql.eval import (
    Evaluator,
    Row,
    SolutionSet,
    _contains_bound_call,
    _expr_variables,
    _pattern_variables,
    _spatial_filter_pairs,
)
from repro.stsparql.functions import (
    SPATIAL_PREDICATE_NAMES,
    as_geometry,
    as_string,
    effective_boolean,
    instant_key,
    to_term,
    to_value,
)

#: Column value marking an absent binding.
UNBOUND = -1
#: First identifier of the evaluator-local term dictionary.
LOCAL_BASE = 1 << 40

#: Sentinel for "evaluating this cell raises ExpressionError".
_ERR = object()

_metrics = get_metrics()

#: Temporal predicates with a direct array formula (Allen relations).
_TEMPORAL_VECTOR_NAMES = {
    STRDF.base + local: local
    for local in (
        "before",
        "after",
        "meets",
        "periodOverlaps",
        "periodContains",
        "during",
    )
}

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


class ColumnarUnsupported(Exception):
    """Raised internally when a plan cannot run columnar; triggers the
    per-row fallback (never escapes the public entry points)."""


class Batch:
    """A table of solution rows: one int64 id column per variable."""

    __slots__ = ("length", "columns")

    def __init__(self, length: int, columns: Dict[str, np.ndarray]) -> None:
        self.length = length
        self.columns = columns

    def take(self, idx: np.ndarray) -> "Batch":
        return Batch(
            int(len(idx)),
            {name: col[idx] for name, col in self.columns.items()},
        )

    def slice(self, start: int, stop: int) -> "Batch":
        stop = min(stop, self.length)
        return Batch(
            stop - start,
            {name: col[start:stop] for name, col in self.columns.items()},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Batch {list(self.columns)} x {self.length} rows>"


def _empty_column(length: int) -> np.ndarray:
    return np.full(length, UNBOUND, dtype=np.int64)


def _concat_batches(batches: Sequence[Batch]) -> Batch:
    """Stack batches, unioning columns (missing columns fill UNBOUND)."""
    names: List[str] = []
    for b in batches:
        for name in b.columns:
            if name not in names:
                names.append(name)
    total = sum(b.length for b in batches)
    columns = {
        name: np.concatenate(
            [
                b.columns.get(name, _empty_column(b.length))
                for b in batches
            ]
        )
        if batches
        else _empty_column(0)
        for name in names
    }
    return Batch(total, columns)


def _distinct_combos(
    batch: Batch, names: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray]:
    """``(combos, inverse)`` over the named columns.

    ``combos`` is a ``(k, len(names))`` matrix of distinct value rows,
    ``inverse`` maps each batch row to its combo index.
    """
    if not names:
        return (
            np.zeros((1, 0), dtype=np.int64),
            np.zeros(batch.length, dtype=np.intp),
        )
    mat = np.stack([batch.columns[name] for name in names], axis=1)
    combos, inverse = np.unique(mat, axis=0, return_inverse=True)
    return combos, inverse.reshape(-1)


#: Per-graph predicate join views, invalidated by graph generation.
_PAIR_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()

#: graph -> {term id: (term, is-geometry, envelope or None)}.  Term
#: ids are append-only for a graph's lifetime (deletion removes index
#: entries, never dictionary terms), so entries never invalidate.
_GEOM_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()


def _predicate_pairs(
    graph: Any, pi: int
) -> Tuple[np.ndarray, np.ndarray]:
    """All ``(subject, object)`` id pairs stored under predicate ``pi``.

    The arrays come straight off the POS index and are cached per graph
    *generation*, so repeated queries against an unmutated graph (or any
    snapshot, which is frozen by construction) skip the rebuild.
    """
    try:
        entry = _PAIR_CACHE.get(graph)
    except TypeError:  # pragma: no cover - non-weakrefable graph
        entry = None
    if entry is None or entry[0] != graph.generation:
        entry = (graph.generation, {})
        try:
            _PAIR_CACHE[graph] = entry
        except TypeError:  # pragma: no cover
            pass
    views = entry[1].get(pi)
    if views is None:
        rows = [
            (s, o) for s, _p, o in graph.triples_ids(None, pi, None)
        ]
        if rows:
            mat = np.asarray(rows, dtype=np.int64)
            views = (
                np.ascontiguousarray(mat[:, 0]),
                np.ascontiguousarray(mat[:, 1]),
            )
        else:
            empty = np.empty(0, dtype=np.int64)
            views = (empty, empty)
        entry[1][pi] = views
    return views


class ColumnarEvaluator(Evaluator):
    """Batch evaluator — same plans, same results, columnar execution."""

    engine_name = "columnar"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._chunk_rows = max(1, get_config().columnar_batch_rows)
        #: Terms absent from the graph dictionary, interned locally.
        self._local_ids: Dict[Term, int] = {}
        self._local_terms: List[Term] = []

    # -- id codec -------------------------------------------------------

    def _encode(self, term: Term) -> int:
        tid = self.graph.term_id(term)
        if tid is not None:
            return tid
        lid = self._local_ids.get(term)
        if lid is None:
            lid = LOCAL_BASE + len(self._local_terms)
            self._local_ids[term] = lid
            self._local_terms.append(term)
        return lid

    def _decode(self, tid: int) -> Term:
        if tid >= LOCAL_BASE:
            return self._local_terms[tid - LOCAL_BASE]
        return self.graph.term_for_id(tid)

    # -- public entry points --------------------------------------------

    def select(self, query: ast.SelectQuery) -> SolutionSet:
        batch = self._try_columnar(query.pattern)
        if batch is None:
            return super().select(query)
        rows = self._batch_to_rows(batch)
        return self._apply_modifiers(query, rows)

    def ask(self, query: ast.AskQuery) -> bool:
        batch = self._try_columnar(query.pattern)
        if batch is None:
            return super().ask(query)
        return bool(batch.length)

    def update_bindings(
        self, pattern: ast.GroupGraphPattern
    ) -> List[Row]:
        batch = self._try_columnar(pattern)
        if batch is None:
            return super().update_bindings(pattern)
        return self._batch_to_rows(batch)

    def _try_columnar(
        self, pattern: ast.GroupGraphPattern
    ) -> Optional[Batch]:
        if not hasattr(self.graph, "triples_ids"):
            self._count_fallback("graph")
            return None
        if _metrics.enabled:
            _metrics.gauge(
                "stsparql_columnar_dictionary_terms",
                "Interned terms in the store dictionary backing the "
                "columnar engine",
            ).set(self.graph.term_count())
        try:
            return self._eval_group_batch(pattern, self._seed_batch())
        except ColumnarUnsupported as exc:
            self._count_fallback(str(exc) or "unsupported")
            return None

    @staticmethod
    def _count_fallback(reason: str) -> None:
        if _metrics.enabled:
            _metrics.counter(
                "stsparql_columnar_fallbacks_total",
                "Requests the columnar engine handed to the per-row "
                "interpreter",
            ).inc()

    # -- batch <-> row conversion ---------------------------------------

    def _seed_batch(self) -> Batch:
        columns = {
            name: np.full(1, self._encode(term), dtype=np.int64)
            for name, term in self.initial.items()
        }
        return Batch(1, columns)

    def _batch_to_rows(self, batch: Batch) -> List[Row]:
        decode = self._decode
        cache: Dict[int, Term] = {}
        columns = [
            (name, col.tolist()) for name, col in batch.columns.items()
        ]
        rows: List[Row] = []
        for i in range(batch.length):
            row: Row = {}
            for name, values in columns:
                tid = values[i]
                if tid == UNBOUND:
                    continue
                term = cache.get(tid)
                if term is None:
                    term = decode(tid)
                    cache[tid] = term
                row[name] = term
            rows.append(row)
        return rows

    def _combo_row(
        self, names: Sequence[str], combo: np.ndarray
    ) -> Row:
        return {
            name: self._decode(int(tid))
            for name, tid in zip(names, combo)
            if tid != UNBOUND
        }

    # -- group graph patterns -------------------------------------------

    def _eval_group_batch(
        self, pattern: ast.GroupGraphPattern, batch: Batch
    ) -> Batch:
        elements = list(pattern.elements)
        group_filters = [
            e for e in elements if isinstance(e, ast.Filter)
        ]
        applied: Set[int] = set()
        for element in elements:
            self._check_deadline()
            if isinstance(element, ast.BGP):
                batch = self._bgp_batch(
                    element, batch, group_filters, applied
                )
            elif isinstance(element, ast.Filter):
                if id(element) in applied:
                    continue
                batch = self._filter_batch(element.expression, batch)
                applied.add(id(element))
            elif isinstance(element, ast.Optional_):
                batch = self._optional_batch(element.pattern, batch)
            elif isinstance(element, ast.UnionPattern):
                left = self._eval_group_batch(element.left, batch)
                right = self._eval_group_batch(element.right, batch)
                batch = _concat_batches([left, right])
            elif isinstance(element, ast.Bind):
                batch = self._bind_batch(element, batch)
            elif isinstance(element, ast.MinusPattern):
                batch = self._minus_batch(element.pattern, batch)
            elif isinstance(element, ast.GroupGraphPattern):
                batch = self._eval_group_batch(element, batch)
            elif isinstance(element, ast.SubSelect):
                batch = self._subselect_batch(element.query, batch)
            else:  # pragma: no cover - parser prevents this
                raise SparqlEvalError(f"unknown element {element!r}")
        return batch

    # -- BGP evaluation -------------------------------------------------

    def _bgp_batch(
        self,
        bgp: ast.BGP,
        batch: Batch,
        group_filters: List[ast.Filter],
        applied: Set[int],
    ) -> Batch:
        bound: Set[str] = set()
        if batch.length:
            bound = {
                name
                for name, col in batch.columns.items()
                if col[0] != UNBOUND
            }
        ordered = self._order_patterns(bgp, bound, group_filters)
        if batch.length == 0:
            return batch
        for pattern in ordered:
            batch = self._extend_batch(batch, pattern, group_filters)
            if batch.length:
                domain = {
                    name
                    for name, col in batch.columns.items()
                    if col[0] != UNBOUND
                }
                for f in group_filters:
                    if id(f) in applied:
                        continue
                    if _expr_variables(
                        f.expression
                    ) <= domain and not _contains_bound_call(f.expression):
                        batch = self._filter_batch(f.expression, batch)
                        applied.add(id(f))
            if not batch.length:
                break
        return batch

    def _extend_batch(
        self,
        batch: Batch,
        pattern: ast.TriplePattern,
        group_filters: List[ast.Filter],
    ) -> Batch:
        fast = self._vector_extend(batch, pattern)
        if fast is not None:
            return fast
        columns = batch.columns
        slots = (pattern.subject, pattern.predicate, pattern.object)
        combo_names = {
            t.name
            for t in slots
            if isinstance(t, Variable) and t.name in columns
        }
        # The R-tree restriction probe reads the *other* side of a
        # pending spatial filter from the row, so it is part of the key.
        if isinstance(pattern.object, Variable):
            obj = pattern.object.name
            for a, b in _spatial_filter_pairs(group_filters):
                partner = b if obj == a else (a if obj == b else None)
                if partner is not None and partner in columns:
                    combo_names.add(partner)
        names = sorted(combo_names)
        match_cache: Dict[Tuple[int, ...], Tuple] = {}
        pieces: List[Batch] = []
        chunk = self._chunk_rows
        for start in range(0, batch.length, chunk):
            pieces.append(
                self._extend_chunk(
                    batch.slice(start, start + chunk),
                    pattern,
                    names,
                    match_cache,
                    group_filters,
                )
            )
        if len(pieces) == 1:
            return pieces[0]
        return _concat_batches(pieces)

    def _vector_extend(
        self, batch: Batch, pattern: ast.TriplePattern
    ) -> Optional[Batch]:
        """Sorted-array index join for simple patterns.

        Handles a constant predicate whose subject/object slots are each
        a constant, a fully-bound column, or a fresh variable — the vast
        majority of patterns — without materialising per-combination
        rows: the predicate's ``(s, o)`` pairs come off the POS index as
        two id arrays and the join is ``searchsorted`` arithmetic.
        ``rdf:type`` under inference joins against the (row-independent)
        ``instances_of`` set the same way.  Returns None when the
        pattern needs the per-combination machinery (variable
        predicates, repeated variables, mixed bound/unbound columns,
        ``types_of`` inference).
        """
        subj, pred, obj = (
            pattern.subject,
            pattern.predicate,
            pattern.object,
        )
        if isinstance(pred, Variable):
            return None
        if (
            isinstance(subj, Variable)
            and isinstance(obj, Variable)
            and subj.name == obj.name
        ):
            return None
        graph = self.graph
        columns = batch.columns
        n = batch.length

        def role(term: Term) -> Optional[Tuple[str, Any]]:
            if not isinstance(term, Variable):
                return ("const", term)
            col = columns.get(term.name)
            if col is None:
                return ("fresh", term.name)
            bound = col != UNBOUND
            if bound.all():
                return ("bound", col)
            if not bound.any():
                return ("fresh", term.name)
            return None  # mixed bound-ness: per-combination path

        s_role = role(subj)
        o_role = role(obj)
        if s_role is None or o_role is None:
            return None

        empty = np.empty(0, dtype=np.int64)
        inference_type = (
            self.inference is not None and pred == RDF.type
        )
        if inference_type:
            if isinstance(obj, Variable):
                return None  # types_of(subject) is row-dependent
            instances = list(self.inference.instances_of(obj))
            if s_role[0] == "bound" and n * 8 < len(instances):
                # Tiny batch against a big closure: per-combination
                # membership probes beat materialising the relation.
                return None
            s_rel = np.fromiter(
                (self._encode(t) for t in instances),
                dtype=np.int64,
            )
            o_rel = None  # object is the constant class term
        else:
            pi = graph.term_id(pred)
            sid = (
                graph.term_id(s_role[1])
                if s_role[0] == "const"
                else None
            )
            oid = (
                graph.term_id(o_role[1])
                if o_role[0] == "const"
                else None
            )
            if (
                pi is None
                or (s_role[0] == "const" and sid is None)
                or (o_role[0] == "const" and oid is None)
            ):
                s_rel, o_rel = empty, empty
            elif sid is not None or oid is not None:
                # Const-anchored: only the matching triples come off
                # the index — O(matches), never O(predicate).
                rows = list(graph.triples_ids(sid, pi, oid))
                if rows:
                    mat = np.asarray(rows, dtype=np.int64)
                    s_rel = np.ascontiguousarray(mat[:, 0])
                    o_rel = np.ascontiguousarray(mat[:, 2])
                else:
                    s_rel, o_rel = empty, empty
            else:
                if (
                    s_role[0] == "bound" or o_role[0] == "bound"
                ) and n * 8 < graph.count_ids(None, pi, None):
                    # A bound column over a tiny batch: per-row index
                    # probes are O(batch) while the vector join would
                    # materialise and sort the whole relation.
                    return None
                s_rel, o_rel = _predicate_pairs(graph, pi)
            if o_role[0] == "const":
                o_rel = None  # already restricted by the index
        if s_role[0] == "const":
            if inference_type:
                # Inference instances are matched by id; _encode gives
                # equal terms equal ids even when the graph never
                # interned them.
                keep = s_rel == self._encode(s_role[1])
                s_rel = s_rel[keep]
            rel_size = len(s_rel)
            s_rel = None  # subject slot fully resolved
        else:
            rel_size = len(s_rel)

        # Remaining slots are fully-bound columns (membership checks)
        # or fresh variables (productions).
        checks: List[Tuple[np.ndarray, np.ndarray]] = []
        produces: List[Tuple[str, np.ndarray]] = []
        for slot_role, arr in ((s_role, s_rel), (o_role, o_rel)):
            if arr is None:
                continue
            if slot_role[0] == "bound":
                checks.append((slot_role[1], arr))
            else:
                produces.append((slot_role[1], arr))

        if checks:
            col, key = checks[0]
            order = np.argsort(key, kind="stable")
            key_sorted = key[order]
            left = np.searchsorted(key_sorted, col, side="left")
            right = np.searchsorted(key_sorted, col, side="right")
            counts = (right - left).astype(np.int64)
        else:
            counts = np.full(n, rel_size, dtype=np.int64)
        total = int(counts.sum())
        row_idx = np.repeat(np.arange(n), counts)
        offsets = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(
            offsets, counts
        )
        if checks:
            sel = order[left[row_idx] + within]
            for col, key in checks[1:]:
                ok = key[sel] == col[row_idx]
                row_idx, sel = row_idx[ok], sel[ok]
        else:
            sel = within
        out_cols = {
            name: c[row_idx] for name, c in batch.columns.items()
        }
        for name, key in produces:
            out_cols[name] = key[sel]
        if _metrics.enabled:
            _metrics.counter(
                "stsparql_columnar_batches_total",
                "Column chunks expanded by the columnar join operator",
            ).inc()
            _metrics.histogram(
                "stsparql_columnar_batch_rows",
                "Input rows per columnar join chunk",
            ).observe(float(n))
            _metrics.counter(
                "stsparql_columnar_vector_joins_total",
                "Patterns joined by sorted-array index arithmetic",
            ).inc()
        return Batch(int(len(row_idx)), out_cols)

    def _extend_chunk(
        self,
        batch: Batch,
        pattern: ast.TriplePattern,
        combo_names: Sequence[str],
        match_cache: Dict[Tuple[int, ...], Tuple],
        group_filters: List[ast.Filter],
    ) -> Batch:
        n = batch.length
        combos, inverse = _distinct_combos(batch, combo_names)
        results = []
        for combo in combos:
            key = tuple(int(v) for v in combo)
            res = match_cache.get(key)
            if res is None:
                row = self._combo_row(combo_names, combo)
                res = self._match_combo(pattern, row, group_filters)
                match_cache[key] = res
            results.append(res)
        counts = np.array(
            [results[i][0] for i in inverse], dtype=np.int64
        )
        total = int(counts.sum())
        row_idx = np.repeat(np.arange(n), counts)
        offsets = np.cumsum(counts) - counts
        within = np.arange(total) - np.repeat(offsets, counts)
        combo_of_out = inverse[row_idx]
        out_cols = {
            name: col[row_idx] for name, col in batch.columns.items()
        }
        for term in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(term, Variable) and term.name not in out_cols:
                out_cols[term.name] = _empty_column(total)
        for ci, (_count, produced) in enumerate(results):
            if not produced:
                continue
            mask = combo_of_out == ci
            if not mask.any():
                continue
            pos = within[mask]
            for name, arr in produced:
                out_cols[name][mask] = arr[pos]
        if _metrics.enabled:
            _metrics.counter(
                "stsparql_columnar_batches_total",
                "Column chunks expanded by the columnar join operator",
            ).inc()
            _metrics.histogram(
                "stsparql_columnar_batch_rows",
                "Input rows per columnar join chunk",
            ).observe(float(n))
        return Batch(total, out_cols)

    def _match_combo(
        self,
        pattern: ast.TriplePattern,
        row: Row,
        group_filters: List[ast.Filter],
    ) -> Tuple[int, List[Tuple[str, np.ndarray]]]:
        """All matches of ``pattern`` under one binding combination.

        Returns ``(count, [(new_var, id_array), ...])`` — the same
        candidate enumeration (inference, R-tree restriction, repeated
        variable consistency) as :meth:`Evaluator._match_triple`, run
        once per *distinct* combination instead of once per row.
        """
        graph = self.graph
        restriction = self._spatial_restriction(
            pattern, row, group_filters
        )
        if restriction is not None and _metrics.enabled:
            _metrics.histogram(
                "stsparql_columnar_candidates",
                "R-tree candidate-set sizes used by the columnar engine",
            ).observe(float(len(restriction)), site="bgp")
        slots = (pattern.subject, pattern.predicate, pattern.object)

        def resolve_term(term: Term) -> Optional[Term]:
            if isinstance(term, Variable):
                return row.get(term.name)
            return term

        s = resolve_term(pattern.subject)
        p = resolve_term(pattern.predicate)
        o = resolve_term(pattern.object)
        new_names: List[str] = []
        for term in slots:
            if (
                isinstance(term, Variable)
                and term.name not in row
                and term.name not in new_names
            ):
                new_names.append(term.name)
        use_inference = (
            self.inference is not None
            and p == RDF.type
            and o is not None
            and not isinstance(pattern.object, Variable)
        )
        candidates = None
        if use_inference:
            candidates = (
                (subj, RDF.type, o)
                for subj in self.inference.instances_of(o)
                if s is None or subj == s
            )
        elif (
            self.inference is not None
            and p == RDF.type
            and s is not None
            and o is None
        ):
            candidates = (
                (s, RDF.type, t) for t in self.inference.types_of(s)
            )
        elif restriction is not None and o is None:
            candidates = (
                triple
                for obj in restriction
                for triple in graph.triples(s, p, obj)
            )
        out: Dict[str, List[int]] = {name: [] for name in new_names}
        count = 0
        if candidates is None:
            # Plain index walk — stay in id space end to end.
            ids: List[Optional[int]] = []
            reachable = True
            for term in (s, p, o):
                if term is None:
                    ids.append(None)
                    continue
                tid = graph.term_id(term)
                if tid is None:
                    reachable = False
                    break
                ids.append(tid)
            if reachable:
                for triple in graph.triples_ids(*ids):
                    local: Dict[str, int] = {}
                    good = True
                    for slot_term, value in zip(slots, triple):
                        if (
                            isinstance(slot_term, Variable)
                            and slot_term.name not in row
                        ):
                            prev = local.get(slot_term.name)
                            if prev is None:
                                local[slot_term.name] = value
                            elif prev != value:
                                good = False
                                break
                    if good:
                        count += 1
                        for name in new_names:
                            out[name].append(local[name])
        else:
            encode = self._encode
            for t_s, t_p, t_o in candidates:
                local_t: Dict[str, Term] = {}
                good = True
                for slot_term, value in zip(slots, (t_s, t_p, t_o)):
                    if (
                        isinstance(slot_term, Variable)
                        and slot_term.name not in row
                    ):
                        prev_t = local_t.get(slot_term.name)
                        if prev_t is None:
                            local_t[slot_term.name] = value
                        elif prev_t != value:
                            good = False
                            break
                if good:
                    count += 1
                    for name in new_names:
                        out[name].append(encode(local_t[name]))
        produced = [
            (name, np.array(out[name], dtype=np.int64))
            for name in new_names
        ]
        return count, produced

    # -- filters --------------------------------------------------------

    def _filter_batch(
        self, expr: ast.Expression, batch: Batch
    ) -> Batch:
        if batch.length == 0:
            return batch
        vec = self._vector_filter(expr, batch)
        if vec is not None:
            res, valid = vec
            keep = res & valid
            if _metrics.enabled:
                _metrics.counter(
                    "stsparql_columnar_vectorised_filters_total",
                    "FILTER evaluations answered by array formulas",
                ).inc()
        else:
            keep = self._generic_filter_mask(expr, batch)
        return batch.take(np.flatnonzero(keep))

    def _generic_filter_mask(
        self, expr: ast.Expression, batch: Batch
    ) -> np.ndarray:
        """Per-row semantics, per-*distinct-combination* evaluation."""
        names = sorted(
            _expr_variables(expr) & set(batch.columns)
        )
        if not names:
            passes = self._filter_passes(expr, {})
            return np.full(batch.length, passes, dtype=bool)
        combos, inverse = _distinct_combos(batch, names)
        results = np.empty(len(combos), dtype=bool)
        for ci, combo in enumerate(combos):
            row = self._combo_row(names, combo)
            results[ci] = self._filter_passes(expr, row)
        if _metrics.enabled:
            distinct = len(combos)
            _metrics.counter(
                "stsparql_columnar_filter_memo_misses_total",
                "Distinct binding combinations evaluated per FILTER",
            ).inc(distinct)
            _metrics.counter(
                "stsparql_columnar_filter_memo_hits_total",
                "FILTER rows answered from the combination memo",
            ).inc(batch.length - distinct)
        return results[inverse]

    # -- vector filter expressions --------------------------------------

    def _vector_filter(
        self, expr: ast.Expression, batch: Batch
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(result, valid)`` boolean arrays, or None if not expressible.

        ``valid`` is False where the interpreted engine would raise
        ``ExpressionError`` (the enclosing FILTER then rejects the row);
        three-valued logic composes errors exactly like the per-row
        short-circuit code.
        """
        if isinstance(expr, ast.UnaryExpr) and expr.op == "!":
            inner = self._vector_filter(expr.operand, batch)
            if inner is None:
                return None
            res, valid = inner
            return ~res & valid, valid
        if isinstance(expr, ast.BinaryExpr):
            if expr.op in ("&&", "||"):
                left = self._vector_filter(expr.left, batch)
                if left is None:
                    return None
                right = self._vector_filter(expr.right, batch)
                if right is None:
                    return None
                lr, lv = left
                rr, rv = right
                if expr.op == "&&":
                    l_false = lv & ~lr
                    r_false = rv & ~rr
                    valid = l_false | r_false | (lv & rv)
                    return lr & rr & lv & rv, valid
                l_true = lv & lr
                r_true = rv & rr
                valid = l_true | r_true | (lv & rv)
                return l_true | r_true, valid
            if expr.op in _COMPARISON_OPS:
                return self._vector_compare(
                    expr.op, expr.left, expr.right, batch
                )
            return None
        if (
            isinstance(expr, ast.FunctionCall)
            and expr.name in _TEMPORAL_VECTOR_NAMES
            and len(expr.args) == 2
        ):
            return self._vector_temporal(expr, batch)
        if (
            isinstance(expr, ast.FunctionCall)
            and expr.name in SPATIAL_PREDICATE_NAMES
            and len(expr.args) == 2
        ):
            return self._vector_spatial(expr, batch)
        return None

    def _vector_spatial(
        self, expr: ast.FunctionCall, batch: Batch
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Spatial predicate over two bound columns, envelope pruned.

        Geometries resolve once per distinct term (memoised on the
        graph — term ids are stable for its lifetime) and one
        vectorised envelope comparison prunes the distinct pairs; only
        pairs whose envelopes interact reach the exact predicate (which
        itself hits the process-wide WKT / predicate memos).  Every
        predicate in ``SPATIAL_PREDICATE_NAMES`` implies envelope
        interaction, so a pruned pair is a definite False — unless a
        side is not a geometry at all, which the per-row engine treats
        as an error (``valid`` False here).
        """
        sides: List[Tuple[str, Any]] = []
        for arg in expr.args:
            if not isinstance(arg, ast.TermExpr):
                return None
            term = arg.term
            if isinstance(term, Variable):
                sides.append(("var", term.name))
            else:
                sides.append(("const", term))
        if sides[0] == sides[1]:
            return None  # same variable twice, or constant pair
        if all(kind == "const" for kind, _ in sides):
            return None  # row-independent: generic path evaluates once
        cols = []
        for kind, payload in sides:
            if kind == "var":
                col = batch.columns.get(payload)
                if col is None or (col == UNBOUND).any():
                    return None
                cols.append(col)
            else:
                cols.append(
                    np.full(
                        batch.length,
                        self._encode(payload),
                        dtype=np.int64,
                    )
                )
        mat = np.stack(cols, axis=1)
        combos, inverse = np.unique(mat, axis=0, return_inverse=True)
        inverse = inverse.reshape(-1)

        terms_a, ok_a, env_a, inv_a = self._side_geometries(
            combos[:, 0]
        )
        terms_b, ok_b, env_b, inv_b = self._side_geometries(
            combos[:, 1]
        )
        a = env_a[inv_a]
        b = env_b[inv_b]
        # One vectorised envelope test over the distinct pairs — NaN
        # envelopes (non-geometries, empty geometries) compare False
        # everywhere, so those pairs always prune.
        overlap = (
            (b[:, 0] <= a[:, 2])
            & (b[:, 2] >= a[:, 0])
            & (b[:, 1] <= a[:, 3])
            & (b[:, 3] >= a[:, 1])
        )
        res = np.zeros(len(combos), dtype=bool)
        # A pruned pair is a definite False only when both sides
        # really are geometries; the per-row engine errors otherwise.
        # Envelope-interacting pairs all have real geometries on both
        # sides, and the exact predicate applies its own error
        # semantics to them below.
        valid = ok_a[inv_a] & ok_b[inv_b]
        if _metrics.enabled:
            _metrics.histogram(
                "stsparql_columnar_spatial_exact_pairs",
                "Distinct pairs reaching the exact spatial predicate "
                "after envelope pruning",
            ).observe(float(np.count_nonzero(overlap)))
        for ci in np.nonzero(overlap)[0]:
            row = {}
            if sides[0][0] == "var":
                row[sides[0][1]] = terms_a[inv_a[ci]]
            if sides[1][0] == "var":
                row[sides[1][1]] = terms_b[inv_b[ci]]
            try:
                res[ci] = effective_boolean(
                    self._eval_expr(expr, row)
                )
            except ExpressionError:
                valid[ci] = False
        return res[inverse], valid[inverse]

    def _side_geometries(
        self, ids: np.ndarray
    ) -> Tuple[List[Any], np.ndarray, np.ndarray, np.ndarray]:
        """Distinct-term geometry lookup for one spatial-pair side.

        Returns ``(terms, ok, env, inverse)`` over the distinct ids:
        the decoded terms, whether each coerces to a geometry, and the
        envelopes as an ``(n, 4)`` minx/miny/maxx/maxy array (NaN rows
        for non-geometries and empty geometries).  Stored terms
        memoise on the graph itself — term ids are append-only for the
        graph's lifetime, so entries never invalidate.
        """
        uniq, inverse = np.unique(ids, return_inverse=True)
        inverse = inverse.reshape(-1)
        try:
            cache = _GEOM_CACHE.get(self.graph)
        except TypeError:
            cache = None
        if cache is None:
            cache = {}
            try:
                _GEOM_CACHE[self.graph] = cache
            except TypeError:
                pass
        terms: List[Any] = []
        ok = np.zeros(len(uniq), dtype=bool)
        env = np.full((len(uniq), 4), np.nan, dtype=np.float64)
        for i, raw in enumerate(uniq):
            tid = int(raw)
            entry = cache.get(tid) if tid < LOCAL_BASE else None
            if entry is None:
                term = self._decode(tid)
                try:
                    geom = as_geometry(to_value(term))
                except ExpressionError:
                    geom = None
                if geom is None or geom.is_empty:
                    box = None
                else:
                    e = geom.envelope
                    box = (e.minx, e.miny, e.maxx, e.maxy)
                entry = (term, geom is not None, box)
                if tid < LOCAL_BASE:
                    cache[tid] = entry
            terms.append(entry[0])
            ok[i] = entry[1]
            if entry[2] is not None:
                env[i] = entry[2]
        return terms, ok, env, inverse

    def _scalar_side(
        self, arg: ast.Expression, batch: Batch
    ) -> Optional[Tuple[List[Any], np.ndarray]]:
        """Distinct evaluation values of one comparison side.

        Returns ``(values, inverse)`` where ``values`` holds each
        distinct value (``_ERR`` marks cells the per-row engine would
        error on) and ``inverse`` maps rows to value indices.
        """
        if isinstance(arg, ast.TermExpr):
            term = arg.term
            if isinstance(term, Variable):
                col = batch.columns.get(term.name)
                if col is None:
                    return (
                        [_ERR],
                        np.zeros(batch.length, dtype=np.intp),
                    )
                uniq, inverse = np.unique(col, return_inverse=True)
                values: List[Any] = [
                    _ERR
                    if tid == UNBOUND
                    else to_value(self._decode(int(tid)))
                    for tid in uniq
                ]
                return values, inverse.reshape(-1)
            return (
                [to_value(term)],
                np.zeros(batch.length, dtype=np.intp),
            )
        if (
            isinstance(arg, ast.FunctionCall)
            and arg.name == "str"
            and len(arg.args) == 1
        ):
            inner = self._scalar_side(arg.args[0], batch)
            if inner is None:
                return None
            vals, inverse = inner
            out: List[Any] = []
            for v in vals:
                if v is _ERR:
                    out.append(_ERR)
                else:
                    try:
                        out.append(as_string(v))
                    except ExpressionError:
                        out.append(_ERR)
            return out, inverse
        return None

    def _vector_compare(
        self,
        op: str,
        left: ast.Expression,
        right: ast.Expression,
        batch: Batch,
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        lside = self._scalar_side(left, batch)
        if lside is None:
            return None
        rside = self._scalar_side(right, batch)
        if rside is None:
            return None
        lvals, linv = lside
        rvals, rinv = rside
        pool = [v for v in lvals + rvals if v is not _ERR]
        if not pool:
            zeros = np.zeros(batch.length, dtype=bool)
            return zeros, zeros
        keys = _comparison_keys(pool, lvals, rvals)
        if keys is None:
            return None
        lkeys, lok, rkeys, rok = keys
        lk = lkeys[linv]
        rk = rkeys[rinv]
        valid = lok[linv] & rok[rinv]
        if op == "=":
            res = lk == rk
        elif op == "!=":
            res = lk != rk
        elif op == "<":
            res = lk < rk
        elif op == "<=":
            res = lk <= rk
        elif op == ">":
            res = lk > rk
        else:
            res = lk >= rk
        return res, valid

    def _vector_temporal(
        self, expr: ast.FunctionCall, batch: Batch
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        local = _TEMPORAL_VECTOR_NAMES[expr.name]
        lside = self._scalar_side(expr.args[0], batch)
        if lside is None:
            return None
        rside = self._scalar_side(expr.args[1], batch)
        if rside is None:
            return None
        lvals, linv = lside
        rvals, rinv = rside
        from datetime import datetime

        instants: List[datetime] = []
        for v in rvals:
            if v is _ERR:
                continue
            if not isinstance(v, Period):
                return None
            instants.extend((v.start, v.end))
        allow_instant = local == "during"
        for v in lvals:
            if v is _ERR:
                continue
            if isinstance(v, Period):
                instants.extend((v.start, v.end))
            elif allow_instant and isinstance(v, datetime):
                instants.append(v)
            else:
                return None
        if not instants:
            zeros = np.zeros(batch.length, dtype=bool)
            return zeros, zeros
        aware = instants[0].tzinfo is not None
        if any((t.tzinfo is not None) != aware for t in instants):
            return None  # mixed awareness: defer to per-row semantics

        def side_arrays(vals: List[Any]):
            start = np.zeros(len(vals), dtype=np.int64)
            end = np.zeros(len(vals), dtype=np.int64)
            ok = np.zeros(len(vals), dtype=bool)
            is_instant = np.zeros(len(vals), dtype=bool)
            for i, v in enumerate(vals):
                if v is _ERR:
                    continue
                if isinstance(v, Period):
                    start[i] = instant_key(v.start)
                    end[i] = instant_key(v.end)
                elif isinstance(v, datetime):
                    start[i] = end[i] = instant_key(v)
                    is_instant[i] = True
                else:  # pragma: no cover - filtered above
                    continue
                ok[i] = True
            return start, end, ok, is_instant

        a_start, a_end, a_ok, a_instant = side_arrays(lvals)
        b_start, b_end, b_ok, _ = side_arrays(rvals)
        asx = a_start[linv]
        aex = a_end[linv]
        bsx = b_start[rinv]
        bex = b_end[rinv]
        valid = a_ok[linv] & b_ok[rinv]
        if local == "before":
            res = aex <= bsx
        elif local == "after":
            res = bex <= asx
        elif local == "meets":
            res = aex == bsx
        elif local == "periodOverlaps":
            res = (asx < bex) & (bsx < aex)
        elif local == "periodContains":
            res = (asx <= bsx) & (bex <= aex)
        else:  # during
            inst = a_instant[linv]
            res = np.where(
                inst,
                (bsx <= asx) & (asx < bex),
                (bsx <= asx) & (aex <= bex),
            )
        return res, valid

    # -- OPTIONAL / BIND / MINUS / subselect ----------------------------

    def _optional_batch(
        self, pattern: ast.GroupGraphPattern, batch: Batch
    ) -> Batch:
        if batch.length == 0:
            return batch
        relevant = _pattern_variables(pattern)
        names = sorted(n for n in relevant if n in batch.columns)
        combos, inverse = _distinct_combos(batch, names)
        subs: List[Batch] = []
        compat_idx: List[Optional[np.ndarray]] = []
        counts_per_combo = np.zeros(len(combos), dtype=np.int64)
        for ci, combo in enumerate(combos):
            seed_cols = {
                name: np.full(1, int(tid), dtype=np.int64)
                for name, tid in zip(names, combo)
                if tid != UNBOUND
            }
            sub = self._eval_group_batch(pattern, Batch(1, seed_cols))
            subs.append(sub)
            if sub.length == 0:
                compat_idx.append(None)
                counts_per_combo[ci] = 1  # the row passes through
                continue
            compat = np.ones(sub.length, dtype=bool)
            for name, tid in zip(names, combo):
                if tid == UNBOUND:
                    continue
                col = sub.columns.get(name)
                if col is not None:
                    compat &= (col == int(tid)) | (col == UNBOUND)
            idx = np.flatnonzero(compat)
            compat_idx.append(idx)
            counts_per_combo[ci] = len(idx)
        counts = counts_per_combo[inverse]
        total = int(counts.sum())
        row_idx = np.repeat(np.arange(batch.length), counts)
        offsets = np.cumsum(counts) - counts
        within = np.arange(total) - np.repeat(offsets, counts)
        combo_of_out = inverse[row_idx]
        out_cols = {
            name: col[row_idx] for name, col in batch.columns.items()
        }
        new_names: List[str] = []
        for sub in subs:
            for name in sub.columns:
                if name not in out_cols and name not in new_names:
                    new_names.append(name)
        for name in new_names:
            out_cols[name] = _empty_column(total)
        for ci, sub in enumerate(subs):
            idx = compat_idx[ci]
            if idx is None or len(idx) == 0:
                continue
            mask = combo_of_out == ci
            if not mask.any():
                continue
            pos = idx[within[mask]]
            for name, col in sub.columns.items():
                dest = out_cols[name]
                vals = col[pos]
                current = dest[mask]
                dest[mask] = np.where(
                    current != UNBOUND, current, vals
                )
        return Batch(total, out_cols)

    def _bind_batch(self, element: ast.Bind, batch: Batch) -> Batch:
        if batch.length == 0:
            return batch
        names = sorted(
            _expr_variables(element.expression) & set(batch.columns)
        )
        combos, inverse = _distinct_combos(batch, names)
        var = element.variable.name
        old = batch.columns.get(var)
        dest = (
            old.copy() if old is not None else _empty_column(batch.length)
        )
        for ci, combo in enumerate(combos):
            row = self._combo_row(names, combo)
            try:
                value = self._eval_expr(element.expression, row)
                tid = self._encode(to_term(value))
            except ExpressionError:
                continue  # keep the previous binding, like the per-row path
            dest[inverse == ci] = tid
        columns = dict(batch.columns)
        columns[var] = dest
        return Batch(batch.length, columns)

    def _minus_batch(
        self, pattern: ast.GroupGraphPattern, batch: Batch
    ) -> Batch:
        if batch.length == 0:
            return batch
        relevant = _pattern_variables(pattern)
        names = sorted(n for n in relevant if n in batch.columns)
        combos, inverse = _distinct_combos(batch, names)
        keep_combo = np.zeros(len(combos), dtype=bool)
        for ci, combo in enumerate(combos):
            seed_cols = {
                name: np.full(1, int(tid), dtype=np.int64)
                for name, tid in zip(names, combo)
                if tid != UNBOUND
            }
            sub = self._eval_group_batch(pattern, Batch(1, seed_cols))
            keep_combo[ci] = sub.length == 0
        return batch.take(np.flatnonzero(keep_combo[inverse]))

    def _subselect_batch(
        self, query: ast.SelectQuery, batch: Batch
    ) -> Batch:
        sub = self.select(query)
        if batch.length == 0:
            return batch
        encode = self._encode
        sub_cols = {
            name: np.array(
                [
                    encode(row[name]) if row.get(name) is not None
                    else UNBOUND
                    for row in sub.rows
                ],
                dtype=np.int64,
            )
            for name in sub.variables
        }
        shared = [v for v in sub.variables if v in batch.columns]
        combos, inverse = _distinct_combos(batch, shared)
        n_sub = len(sub.rows)
        compat_idx: List[np.ndarray] = []
        counts_per_combo = np.zeros(len(combos), dtype=np.int64)
        for ci, combo in enumerate(combos):
            compat = np.ones(n_sub, dtype=bool)
            for name, tid in zip(shared, combo):
                if tid == UNBOUND:
                    continue
                col = sub_cols[name]
                compat &= (col == int(tid)) | (col == UNBOUND)
            idx = np.flatnonzero(compat)
            compat_idx.append(idx)
            counts_per_combo[ci] = len(idx)
        counts = counts_per_combo[inverse]
        total = int(counts.sum())
        row_idx = np.repeat(np.arange(batch.length), counts)
        offsets = np.cumsum(counts) - counts
        within = np.arange(total) - np.repeat(offsets, counts)
        combo_of_out = inverse[row_idx]
        out_cols = {
            name: col[row_idx] for name, col in batch.columns.items()
        }
        for name in sub.variables:
            if name not in out_cols:
                out_cols[name] = _empty_column(total)
        for ci in range(len(combos)):
            idx = compat_idx[ci]
            if len(idx) == 0:
                continue
            mask = combo_of_out == ci
            if not mask.any():
                continue
            pos = idx[within[mask]]
            for name in sub.variables:
                dest = out_cols[name]
                vals = sub_cols[name][pos]
                current = dest[mask]
                dest[mask] = np.where(
                    current != UNBOUND, current, vals
                )
        return Batch(total, out_cols)


def _comparison_keys(
    pool: List[Any], lvals: List[Any], rvals: List[Any]
):
    """Numeric or datetime sort keys for both comparison sides.

    Returns ``(lkeys, lok, rkeys, rok)`` arrays or None when the value
    mix has no uniform vectorisable ordering (strings, mixed types,
    mixed timezone awareness) — those defer to the per-row semantics.
    """
    from datetime import datetime

    if all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in pool
    ):
        def keys(vals: List[Any]):
            arr = np.zeros(len(vals), dtype=np.float64)
            ok = np.zeros(len(vals), dtype=bool)
            for i, v in enumerate(vals):
                if v is _ERR:
                    continue
                arr[i] = float(v)
                ok[i] = True
            return arr, ok

        lk, lok = keys(lvals)
        rk, rok = keys(rvals)
        return lk, lok, rk, rok
    if all(isinstance(v, datetime) for v in pool):
        aware = pool[0].tzinfo is not None
        if any((v.tzinfo is not None) != aware for v in pool):
            return None

        def dkeys(vals: List[Any]):
            arr = np.zeros(len(vals), dtype=np.int64)
            ok = np.zeros(len(vals), dtype=bool)
            for i, v in enumerate(vals):
                if v is _ERR:
                    continue
                arr[i] = instant_key(v)
                ok[i] = True
            return arr, ok

        lk, lok = dkeys(lvals)
        rk, rok = dkeys(rvals)
        return lk, lok, rk, rok
    return None
