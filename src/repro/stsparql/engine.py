"""The Strabon facade: a geospatial RDF store with an stSPARQL endpoint.

Wraps a :class:`~repro.rdf.graph.Graph` with

* an stSPARQL query/update endpoint (:meth:`Strabon.query`,
  :meth:`Strabon.update`),
* a parsed-request **plan cache** keyed on request text: templated
  requests (the refinement operations) parse once and re-run with
  per-acquisition values supplied as *parameters* — pre-bound variables
  handed to the evaluator (``query(text, params={"__ts": ...})``),
* an R-tree over geometry literals, rebuilt lazily when the graph changes,
  used for index-assisted spatial joins (candidate sets are memoised in a
  bounded LRU keyed on probe-geometry identity),
* optional RDFS subclass inference (needed by the CLC taxonomy queries),
* simple per-query statistics (:attr:`Strabon.last_stats`).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.errors import SnapshotWriteError
from repro.geometry import Geometry
from repro.obs import get_metrics, get_tracer, is_enabled
from repro.geometry.rtree import RTree
from repro.perf import get_config
from repro.perf.lru import LRUCache
from repro.rdf.graph import Graph, GraphSnapshot
from repro.rdf.inference import RDFSInference
from repro.rdf.term import Literal, Term, Variable
from repro.rdf.turtle import parse_turtle
from repro.stsparql import ast
from repro.stsparql.errors import SparqlEvalError
from repro.stsparql.eval import Evaluator, Row, SolutionSet
from repro.stsparql.parser import parse

_log = logging.getLogger(__name__)
_tracer = get_tracer()
_metrics = get_metrics()


@dataclass
class QueryStats:
    """Timing and cardinality of the most recent operation."""

    operation: str = ""
    parse_seconds: float = 0.0
    eval_seconds: float = 0.0
    rows: int = 0
    triples_added: int = 0
    triples_removed: int = 0

    @property
    def total_seconds(self) -> float:
        return self.parse_seconds + self.eval_seconds


@dataclass
class UpdateResult:
    """Outcome of an update request."""

    removed: int = 0
    added: int = 0


def _resolve_engine(name: Optional[str]):
    """(read evaluator class, update evaluator class) for an engine name.

    ``auto`` — the default — serves read queries from the columnar
    engine but evaluates update WHERE clauses row-wise: update batches
    are small, mutate the graph between operations (discarding the
    generation-keyed columnar caches each time), and profit from
    pattern-time R-tree restriction inside OPTIONAL blocks, so
    vectorisation there costs more than it saves.  ``columnar`` and
    ``interpreted`` force one engine for everything.

    The columnar engine needs numpy; when it is unavailable the
    interpreted evaluator silently serves every name so the store
    stays functional on minimal installs.
    """
    if name is None:
        name = get_config().query_engine
    if name == "interpreted":
        return Evaluator, Evaluator
    try:
        from repro.stsparql.columnar import ColumnarEvaluator
    except ImportError:  # pragma: no cover - numpy is baked in
        return Evaluator, Evaluator
    if name == "auto":
        return ColumnarEvaluator, Evaluator
    return ColumnarEvaluator, ColumnarEvaluator


def _explain_doc(
    engine: str, operation: str, rows: int, plan: List[dict]
) -> dict:
    return {
        "engine": engine,
        "operation": operation,
        "rows": rows,
        "plan": plan,
    }


def _parse_via_cache(cache: LRUCache, text: str):
    """Parse ``text`` through a shared plan cache; returns (plan, hit).

    Parsed ASTs are immutable to the evaluator, so one plan may serve
    every execution of the same request text — including concurrent
    executions against different snapshots (the cache is thread-safe).
    """
    parsed = cache.get(text)
    hit = parsed is not None
    if not hit:
        parsed = parse(text)
        cache.put(text, parsed)
    if _metrics.enabled:
        if hit:
            _metrics.counter(
                "stsparql_plan_cache_hits_total",
                "stSPARQL requests answered from the plan cache",
            ).inc()
        else:
            _metrics.counter(
                "stsparql_plan_cache_misses_total",
                "stSPARQL requests parsed from text",
            ).inc()
    return parsed, hit


def _construct_graph(
    evaluator: Evaluator, query: ast.ConstructQuery
) -> Graph:
    """Evaluate a CONSTRUCT into a fresh (mutable) graph."""
    bindings = evaluator.update_bindings(query.pattern)
    if query.offset:
        bindings = bindings[query.offset:]
    if query.limit is not None:
        bindings = bindings[: query.limit]
    out = Graph()
    for s, p, o in _instantiate(query.template, bindings):
        out.add(s, p, o)
    return out


class Strabon:
    """A geospatial RDF store speaking stSPARQL."""

    def __init__(
        self,
        graph: Optional[Graph] = None,
        enable_inference: bool = True,
        enable_spatial_index: bool = True,
        query_engine: Optional[str] = None,
    ) -> None:
        self.graph = graph if graph is not None else Graph()
        #: Evaluator classes behind read and update requests ("auto" by
        #: default — columnar reads, row-wise update WHERE evaluation —
        #: forced via the constructor or ``perf.configure``).
        self._evaluator_cls, self._update_evaluator_cls = (
            _resolve_engine(query_engine)
        )
        self._inference = (
            RDFSInference(self.graph) if enable_inference else None
        )
        self._spatial_index_enabled = enable_spatial_index
        self._rtree: Optional[RTree] = None
        self._rtree_generation = -1
        perf = get_config()
        # Candidate-set memo keyed by probe-geometry object identity;
        # evaluators probe the same bound geometry once per joined row.
        # Bounded LRU: under sustained load the hot working set stays.
        self._candidate_cache = LRUCache(perf.candidate_cache_size)
        #: Parsed request plans keyed on request text.  The evaluator
        #: never mutates a parsed AST, so plans are shared safely.
        self.plan_cache = LRUCache(perf.plan_cache_size)
        self.last_stats = QueryStats()
        #: The read-only view over the most recent snapshot (reused while
        #: the graph generation is unchanged, so its R-tree and candidate
        #: cache are shared by every reader thread).
        self._last_view: Optional["SnapshotView"] = None

    # -- data loading --------------------------------------------------------

    def load_turtle(self, text: str) -> int:
        """Parse Turtle and add its triples; returns the number added."""
        incoming = parse_turtle(text)
        return self.graph.add_all(incoming.triples())

    def add(self, s: Term, p: Term, o: Term) -> bool:
        return self.graph.add(s, p, o)

    def size(self) -> int:
        return len(self.graph)

    def reset_derived(self) -> None:
        """Drop every structure derived from graph *content*.

        Called after crash recovery rebuilds the graph wholesale
        (checkpoint load + WAL replay): the R-tree, the candidate memo
        and the memoised snapshot view key on generation counters that
        restart in a recovered process, so they must be rebuilt from
        the recovered state rather than trusted.  The parsed-plan cache
        survives — it is keyed on query text alone.
        """
        self._rtree = None
        self._rtree_generation = -1
        self._candidate_cache.clear()
        self._last_view = None
        if self._inference is not None:
            self._inference = RDFSInference(self.graph)

    # -- spatial index ---------------------------------------------------------

    def _ensure_rtree(self) -> Optional[RTree]:
        if not self._spatial_index_enabled:
            return None
        if (
            self._rtree is None
            or self._rtree_generation != self.graph.generation
        ):
            entries = []
            for _, _, lit in self.graph.geometry_literals():
                geom = lit.value
                if isinstance(geom, Geometry) and not geom.is_empty:
                    entries.append((geom.envelope, lit))
            self._rtree = RTree.bulk_load(entries)
            self._rtree_generation = self.graph.generation
            self._candidate_cache.clear()
        return self._rtree

    def spatial_candidates(self, geom: Geometry) -> Optional[Set[Literal]]:
        """Geometry literals whose envelope intersects ``geom``'s.

        Returns None when the index is disabled (callers then fall back to
        a scan).
        """
        tree = self._ensure_rtree()
        if tree is None:
            return None
        key = id(geom)
        cached = self._candidate_cache.get(key)
        if cached is not None and cached[0] is geom:
            return cached[1]
        result = set(tree.search(geom.envelope))
        # The value keeps a strong reference to the probe geometry so
        # its id cannot be recycled while the entry is cached.
        self._candidate_cache.put(key, (geom, result))
        return result

    # -- querying ----------------------------------------------------------

    @property
    def engine_name(self) -> str:
        """Name of the engine answering read queries (under ``auto``
        update WHERE clauses may use a different one — see
        :func:`_resolve_engine`)."""
        return self._evaluator_cls.engine_name

    def _engine_name_for(self, operation: str) -> str:
        cls = (
            self._update_evaluator_cls
            if operation == "update"
            else self._evaluator_cls
        )
        return cls.engine_name

    def _evaluator(
        self,
        initial: Optional[Row] = None,
        cls=None,
        deadline: Optional[float] = None,
    ) -> Evaluator:
        """Build the evaluation plan: binds inference + spatial index."""
        with _tracer.span("stsparql.plan"):
            candidates = (
                self.spatial_candidates
                if self._spatial_index_enabled
                else None
            )
            evaluator = (cls or self._evaluator_cls)(
                self.graph,
                inference=self._inference,
                spatial_candidates=candidates,
                initial=initial,
            )
            evaluator.deadline = deadline
            return evaluator

    def _parse_cached(self, text: str):
        """Parse through the plan cache; returns (plan, was_cached)."""
        return _parse_via_cache(self.plan_cache, text)

    # -- snapshot serving --------------------------------------------------

    def snapshot_view(self) -> "SnapshotView":
        """A read-only endpoint over a frozen snapshot of the graph.

        The snapshot is copy-on-write (taking one is O(1)); the view
        shares this engine's parsed-plan cache, builds its own R-tree
        and candidate cache over the frozen state, and may be queried
        from any number of threads while this engine keeps mutating the
        live graph.  While the graph is unmutated, repeated calls return
        the *same* view, so derived indexes are built once per published
        generation.
        """
        snap = self.graph.snapshot()
        view = self._last_view
        if view is not None and view.snapshot is snap:
            return view
        view = SnapshotView(
            snap,
            plan_cache=self.plan_cache,
            enable_inference=self._inference is not None,
            enable_spatial_index=self._spatial_index_enabled,
        )
        self._last_view = view
        return view

    @staticmethod
    def _param_row(params: Optional[Dict[str, object]]) -> Optional[Row]:
        """Normalise a params mapping to an initial binding row."""
        if not params:
            return None
        from repro.stsparql.functions import to_term

        return {
            name.lstrip("?$"): to_term(value)
            for name, value in params.items()
        }

    def _dispatch(
        self,
        parsed,
        initial: Optional[Row] = None,
        explain_log: Optional[List[dict]] = None,
        deadline: Optional[float] = None,
        evaluator_cls=None,
    ):
        """Evaluate a parsed request; returns (result, operation, rows)."""
        if isinstance(parsed, (ast.SelectQuery, ast.AskQuery, ast.ConstructQuery)):
            evaluator = self._evaluator(
                initial, evaluator_cls, deadline=deadline
            )
            evaluator.explain_log = explain_log
            if isinstance(parsed, ast.SelectQuery):
                result: Union[SolutionSet, bool, Graph, UpdateResult] = (
                    evaluator.select(parsed)
                )
                return result, "select", len(result)  # type: ignore[arg-type]
            if isinstance(parsed, ast.AskQuery):
                return evaluator.ask(parsed), "ask", 1
            built = _construct_graph(evaluator, parsed)
            return built, "construct", len(built)
        return (
            self._apply_update(parsed, initial, explain_log, deadline),
            "update",
            0,
        )

    def query(
        self,
        text: str,
        params: Optional[Dict[str, object]] = None,
        explain: bool = False,
        query_engine: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Union[SolutionSet, bool, UpdateResult, dict]:
        """Parse and run any stSPARQL request (SELECT / ASK / update).

        ``params`` pre-binds variables (``{"__ts": Literal(...)}`` binds
        ``?__ts``) so callers can keep request text constant — and
        therefore plan-cache friendly — across executions.  Values may
        be RDF terms or plain Python values (converted like expression
        results).

        With ``explain=True`` the request still executes, but the
        return value is a JSON-style dict describing the execution:
        the engine, the operation, the row count and — per evaluated
        BGP — the selectivity-ordered join order with the cardinality
        estimates that drove it.

        ``query_engine`` forces an engine for *this request only*
        (``"interpreted"`` / ``"columnar"`` / ``"auto"``); ``timeout``
        is a cooperative wall-clock budget in seconds — a request that
        overruns it raises
        :class:`~repro.stsparql.errors.QueryTimeoutError` at the next
        operator boundary.  This keyword contract (``explain=``,
        ``query_engine=``, ``timeout=``) is shared verbatim with
        :meth:`SnapshotView.query` and the serving tier's
        :class:`~repro.serve.client.ServeClient`.
        """
        initial = self._param_row(params)
        explain_log: Optional[List[dict]] = [] if explain else None
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        evaluator_cls = (
            _resolve_engine(query_engine)[0]
            if query_engine is not None
            else None
        )
        if not is_enabled():
            return self._query_plain(
                text, initial, explain_log, deadline, evaluator_cls
            )
        with _tracer.span("stsparql.query") as span:
            t0 = time.perf_counter()
            with _tracer.span("stsparql.parse") as parse_span:
                parsed, was_cached = self._parse_cached(text)
                parse_span.set(cached=was_cached)
            t1 = time.perf_counter()
            with _tracer.span("stsparql.eval"):
                result, op, rows = self._dispatch(
                    parsed, initial, explain_log, deadline, evaluator_cls
                )
            t2 = time.perf_counter()
            stats = QueryStats(
                operation=op,
                parse_seconds=t1 - t0,
                eval_seconds=t2 - t1,
                rows=rows,
                triples_added=getattr(result, "added", 0),
                triples_removed=getattr(result, "removed", 0),
            )
            self.last_stats = stats
            span.set(
                operation=op,
                rows=rows,
                triples_added=stats.triples_added,
                triples_removed=stats.triples_removed,
            )
        if _metrics.enabled:
            _metrics.histogram(
                "stsparql_query_seconds",
                "Wall seconds per stSPARQL request (parse + eval)",
            ).observe(stats.total_seconds, operation=op)
            if stats.triples_added:
                _metrics.counter(
                    "stsparql_triples_added_total",
                    "Triples inserted by stSPARQL updates",
                ).inc(stats.triples_added)
            if stats.triples_removed:
                _metrics.counter(
                    "stsparql_triples_removed_total",
                    "Triples deleted by stSPARQL updates",
                ).inc(stats.triples_removed)
        if explain_log is not None:
            name = (
                evaluator_cls.engine_name
                if evaluator_cls is not None and op != "update"
                else self._engine_name_for(op)
            )
            return _explain_doc(name, op, rows, explain_log)
        return result

    def _query_plain(
        self,
        text: str,
        initial: Optional[Row] = None,
        explain_log: Optional[List[dict]] = None,
        deadline: Optional[float] = None,
        evaluator_cls=None,
    ):
        """The uninstrumented request path (observability disabled)."""
        t0 = time.perf_counter()
        parsed, _was_cached = self._parse_cached(text)
        t1 = time.perf_counter()
        result, op, rows = self._dispatch(
            parsed, initial, explain_log, deadline, evaluator_cls
        )
        t2 = time.perf_counter()
        self.last_stats = QueryStats(
            operation=op,
            parse_seconds=t1 - t0,
            eval_seconds=t2 - t1,
            rows=rows,
            triples_added=getattr(result, "added", 0),
            triples_removed=getattr(result, "removed", 0),
        )
        if explain_log is not None:
            name = (
                evaluator_cls.engine_name
                if evaluator_cls is not None and op != "update"
                else self._engine_name_for(op)
            )
            return _explain_doc(name, op, rows, explain_log)
        return result

    def select(
        self, text: str, params: Optional[Dict[str, object]] = None
    ) -> SolutionSet:
        result = self.query(text, params)
        if not isinstance(result, SolutionSet):
            raise SparqlEvalError("request was not a SELECT query")
        return result

    def ask(
        self, text: str, params: Optional[Dict[str, object]] = None
    ) -> bool:
        result = self.query(text, params)
        if not isinstance(result, bool):
            raise SparqlEvalError("request was not an ASK query")
        return result

    def update(
        self, text: str, params: Optional[Dict[str, object]] = None
    ) -> UpdateResult:
        result = self.query(text, params)
        if not isinstance(result, UpdateResult):
            raise SparqlEvalError("request was not an update")
        return result

    def construct(
        self, text: str, params: Optional[Dict[str, object]] = None
    ) -> Graph:
        result = self.query(text, params)
        if not isinstance(result, Graph):
            raise SparqlEvalError("request was not a CONSTRUCT query")
        return result

    # -- update machinery --------------------------------------------------

    def _apply_update(
        self,
        request: ast.UpdateRequest,
        initial: Optional[Row] = None,
        explain_log: Optional[List[dict]] = None,
        deadline: Optional[float] = None,
    ) -> UpdateResult:
        if request.where_pattern is None:
            # INSERT DATA / DELETE DATA — templates must be ground.
            removed = 0
            added = 0
            for tmpl in request.delete_template:
                triple = _ground(tmpl)
                removed += self.graph.remove(*triple)
            for tmpl in request.insert_template:
                triple = _ground(tmpl)
                if self.graph.add(*triple):
                    added += 1
            return UpdateResult(removed=removed, added=added)
        evaluator = self._evaluator(
            initial, self._update_evaluator_cls, deadline=deadline
        )
        evaluator.explain_log = explain_log
        bindings = evaluator.update_bindings(request.where_pattern)
        to_remove = _instantiate(request.delete_template, bindings)
        to_add = _instantiate(request.insert_template, bindings)
        removed = 0
        for s, p, o in to_remove:
            if (s, p, o) in self.graph:
                self.graph.remove(s, p, o)
                removed += 1
        added = 0
        for s, p, o in to_add:
            if self.graph.add(s, p, o):
                added += 1
        return UpdateResult(removed=removed, added=added)


class SnapshotView:
    """A read-only stSPARQL endpoint over a :class:`GraphSnapshot`.

    The scale-out read path of the serving layer: worker threads (or
    forked worker processes) evaluate cached plans against a frozen,
    generation-stamped snapshot while the live store keeps refining the
    next acquisition.  The view

    * shares the owning engine's parsed-plan LRU (thread-safe), so a
      request parsed by any reader — or by the writer — is a cache hit
      for every other one,
    * lazily builds **one** R-tree and candidate cache per snapshot,
      shared by all reader threads (the snapshot never changes, so no
      invalidation is ever needed),
    * refuses updates with :class:`~repro.errors.SnapshotWriteError`.
    """

    def __init__(
        self,
        snapshot: GraphSnapshot,
        plan_cache: Optional[LRUCache] = None,
        enable_inference: bool = True,
        enable_spatial_index: bool = True,
        query_engine: Optional[str] = None,
    ) -> None:
        perf = get_config()
        self.snapshot = snapshot
        # Read-only endpoint: only the read-path class is ever used.
        self._evaluator_cls, _ = _resolve_engine(query_engine)
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else LRUCache(perf.plan_cache_size)
        )
        self._inference = (
            RDFSInference(snapshot) if enable_inference else None
        )
        self._spatial_index_enabled = enable_spatial_index
        self._rtree: Optional[RTree] = None
        self._rtree_built = False
        self._candidate_cache = LRUCache(perf.candidate_cache_size)

    @property
    def generation(self) -> int:
        """The live-graph generation this view was frozen at."""
        return self.snapshot.generation

    def size(self) -> int:
        return len(self.snapshot)

    # -- frozen spatial index ---------------------------------------------

    def _ensure_rtree(self) -> Optional[RTree]:
        if not self._spatial_index_enabled:
            return None
        if not self._rtree_built:
            # Built at most once per snapshot; the build lock lives on
            # the snapshot so concurrent first readers serialise here.
            with self.snapshot.build_lock:
                if not self._rtree_built:
                    entries = []
                    for _, _, lit in self.snapshot.geometry_literals():
                        geom = lit.value
                        if isinstance(geom, Geometry) and not geom.is_empty:
                            entries.append((geom.envelope, lit))
                    self._rtree = RTree.bulk_load(entries)
                    if self._inference is not None:
                        # Materialise the subclass closure eagerly: the
                        # refresh is not itself thread-safe, but once
                        # built it is never invalidated on a frozen
                        # graph, so later readers only ever read it.
                        self._inference._refresh()
                    self._rtree_built = True
        return self._rtree

    def spatial_candidates(self, geom: Geometry) -> Optional[Set[Literal]]:
        """Geometry literals whose envelope intersects ``geom``'s."""
        tree = self._ensure_rtree()
        if tree is None:
            return None
        key = id(geom)
        cached = self._candidate_cache.get(key)
        if cached is not None and cached[0] is geom:
            return cached[1]
        result = set(tree.search(geom.envelope))
        self._candidate_cache.put(key, (geom, result))
        return result

    # -- read-only request execution --------------------------------------

    @property
    def engine_name(self) -> str:
        """Name of the execution engine answering requests."""
        return self._evaluator_cls.engine_name

    def _evaluator(
        self,
        initial: Optional[Row] = None,
        cls=None,
        deadline: Optional[float] = None,
    ) -> Evaluator:
        candidates = (
            self.spatial_candidates if self._spatial_index_enabled else None
        )
        evaluator = (cls or self._evaluator_cls)(
            self.snapshot,  # type: ignore[arg-type]
            inference=self._inference,
            spatial_candidates=candidates,
            initial=initial,
        )
        evaluator.deadline = deadline
        return evaluator

    def query(
        self,
        text: str,
        params: Optional[Dict[str, object]] = None,
        explain: bool = False,
        query_engine: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Union[SolutionSet, bool, Graph, dict]:
        """Run a read-only stSPARQL request against the snapshot.

        SELECT / ASK / CONSTRUCT only — an update request raises
        :class:`SnapshotWriteError` before touching anything.  With
        ``explain=True`` the executed plan is returned instead of the
        solutions; ``query_engine=`` forces an engine for this request;
        ``timeout=`` is a cooperative budget in seconds (the shared
        keyword contract of :meth:`Strabon.query`).
        """
        initial = Strabon._param_row(params)
        explain_log: Optional[List[dict]] = [] if explain else None
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        evaluator_cls = (
            _resolve_engine(query_engine)[0]
            if query_engine is not None
            else None
        )
        t0 = time.perf_counter()
        parsed, _hit = _parse_via_cache(self.plan_cache, text)
        if not isinstance(
            parsed, (ast.SelectQuery, ast.AskQuery, ast.ConstructQuery)
        ):
            raise SnapshotWriteError(
                "snapshot endpoints are read-only: send updates to the "
                "live Strabon store"
            )
        with _tracer.span(
            "stsparql.query", snapshot=True, generation=self.generation
        ) as span:
            evaluator = self._evaluator(
                initial, evaluator_cls, deadline=deadline
            )
            evaluator.explain_log = explain_log
            if isinstance(parsed, ast.SelectQuery):
                result: Union[SolutionSet, bool, Graph] = (
                    evaluator.select(parsed)
                )
                op, rows = "select", len(result)  # type: ignore[arg-type]
            elif isinstance(parsed, ast.AskQuery):
                result = evaluator.ask(parsed)
                op, rows = "ask", 1
            else:
                result = _construct_graph(evaluator, parsed)
                op, rows = "construct", len(result)
            span.set(operation=op, rows=rows)
        if _metrics.enabled:
            _metrics.histogram(
                "stsparql_query_seconds",
                "Wall seconds per stSPARQL request (parse + eval)",
            ).observe(
                time.perf_counter() - t0, operation=f"snapshot-{op}"
            )
        if explain_log is not None:
            name = (
                evaluator_cls.engine_name
                if evaluator_cls is not None
                else self.engine_name
            )
            return _explain_doc(name, op, rows, explain_log)
        return result

    def select(
        self, text: str, params: Optional[Dict[str, object]] = None
    ) -> SolutionSet:
        result = self.query(text, params)
        if not isinstance(result, SolutionSet):
            raise SparqlEvalError("request was not a SELECT query")
        return result

    def ask(
        self, text: str, params: Optional[Dict[str, object]] = None
    ) -> bool:
        result = self.query(text, params)
        if not isinstance(result, bool):
            raise SparqlEvalError("request was not an ASK query")
        return result

    def construct(
        self, text: str, params: Optional[Dict[str, object]] = None
    ) -> Graph:
        result = self.query(text, params)
        if not isinstance(result, Graph):
            raise SparqlEvalError("request was not a CONSTRUCT query")
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SnapshotView generation={self.generation} "
            f"over {len(self.snapshot)} triples>"
        )


def _ground(tmpl: ast.TriplePattern):
    for term in (tmpl.subject, tmpl.predicate, tmpl.object):
        if isinstance(term, Variable):
            raise SparqlEvalError(
                "INSERT/DELETE DATA templates must not contain variables"
            )
    return (tmpl.subject, tmpl.predicate, tmpl.object)


def _instantiate(
    templates, bindings: List[Row]
) -> List[tuple]:
    out: List[tuple] = []
    seen: Set[tuple] = set()
    for row in bindings:
        for tmpl in templates:
            triple = []
            ok = True
            for term in (tmpl.subject, tmpl.predicate, tmpl.object):
                if isinstance(term, Variable):
                    bound = row.get(term.name)
                    if bound is None:
                        ok = False
                        break
                    triple.append(bound)
                else:
                    triple.append(term)
            if ok:
                key = tuple(triple)
                if key not in seen:
                    seen.add(key)
                    out.append(key)
    return out
