"""stSPARQL error hierarchy (rooted in :mod:`repro.errors`)."""

from repro.errors import Permanent, ReproError, Transient


class SparqlError(ReproError):
    """Base class for all engine errors."""


class SparqlParseError(SparqlError, Permanent):
    """Raised when query text cannot be parsed."""


class SparqlEvalError(SparqlError, Permanent):
    """Raised when a query is structurally valid but cannot be evaluated."""


class QueryTimeoutError(SparqlError, Transient):
    """Raised when a request overran its ``timeout=`` budget.

    The deadline is cooperative: evaluators check it at group and BGP
    boundaries, so a timed-out query stops between operators, never
    mid-row.  Transient — the same request may fit the budget against a
    smaller snapshot or a warmer cache.
    """


class ExpressionError(Exception):
    """Internal: an expression evaluated to an error value.

    Follows SPARQL semantics — a FILTER over an error is false; a projected
    error leaves the variable unbound.  Never escapes the evaluator.
    """
