"""The stSPARQL evaluator.

Bindings are plain ``dict[str, Term]`` rows.  The evaluator walks group
graph patterns sequentially — joins flow bindings left to right, filters
are applied as soon as all their variables are in scope (and re-checked at
group end), OPTIONAL is a left join, subselects evaluate independently and
join on shared variables.

Spatial-join acceleration: when a triple pattern's object variable feeds a
pending spatial-predicate filter whose other argument is already bound to a
geometry, candidate objects are fetched from the engine's R-tree over
geometry literals instead of scanning every matching triple — this is the
Strabon behaviour the paper's Figure 8 measures.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.geometry import Geometry
from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF
from repro.rdf.term import Literal, Term, URI, Variable
from repro.stsparql import ast
from repro.stsparql.aggregates import resolve_aggregate
from repro.stsparql.errors import ExpressionError, SparqlEvalError
from repro.stsparql.functions import (
    SPATIAL_PREDICATE_NAMES,
    as_geometry,
    compare,
    effective_boolean,
    resolve,
    to_term,
    to_value,
)

Row = Dict[str, Term]
Value = Any


class SolutionSet:
    """An ordered bag of solution rows with a stable variable header."""

    def __init__(self, variables: Sequence[str], rows: List[Row]) -> None:
        self.variables = list(variables)
        self.rows = rows
        self._var_index: Optional[Dict[str, int]] = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    @property
    def variable_index(self) -> Dict[str, int]:
        """Header name -> position, built once per solution set."""
        index = self._var_index
        if index is None:
            index = {name: i for i, name in enumerate(self.variables)}
            self._var_index = index
        return index

    def column(self, name: str) -> List[Optional[Term]]:
        name = name.lstrip("?")
        if name not in self.variable_index:
            raise KeyError(
                f"no variable ?{name} in solution header {self.variables}"
            )
        return [row.get(name) for row in self.rows]

    def as_tuples(self) -> List[Tuple[Optional[Term], ...]]:
        variables = self.variables
        return [
            tuple(row.get(v) for v in variables) for row in self.rows
        ]

    def _canonical_rows(self) -> List[Tuple]:
        """Order-insensitive fingerprint: one sortable key per row."""
        names = sorted(self.variable_index)
        keys = []
        for row in self.rows:
            key = []
            for name in names:
                term = row.get(name)
                if term is None:
                    key.append(("", ""))
                else:
                    key.append((type(term).__name__, term.n3()))
            keys.append(tuple(key))
        keys.sort()
        return keys

    def __eq__(self, other: object) -> bool:
        """Same variables and the same multiset of rows.

        Row *order* is deliberately ignored — without ORDER BY it is an
        implementation detail, and the differential harness compares the
        interpreted and columnar engines through this.
        """
        if not isinstance(other, SolutionSet):
            return NotImplemented
        if set(self.variables) != set(other.variables):
            return False
        if len(self.rows) != len(other.rows):
            return False
        return self._canonical_rows() == other._canonical_rows()

    __hash__ = None  # mutable container

    def to_sparql_json(self) -> dict:
        """W3C SPARQL 1.1 Query Results JSON Format (a plain dict)."""
        bindings = []
        for row in self.rows:
            encoded = {}
            for name in self.variables:
                term = row.get(name)
                if term is None:
                    continue
                encoded[name] = _term_json(term)
            bindings.append(encoded)
        return {
            "head": {"vars": list(self.variables)},
            "results": {"bindings": bindings},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SolutionSet {self.variables} x {len(self.rows)} rows>"


class Evaluator:
    """Evaluates parsed queries against a graph.

    ``spatial_candidates`` (optional) is a callable mapping a geometry to
    the set of geometry literals whose envelope intersects it — supplied by
    the engine from its R-tree.

    ``initial`` (optional) pre-binds variables before evaluation — the
    parameter mechanism behind the engine's plan cache: templated
    requests keep a constant text (the cache key) and receive their
    per-acquisition values (timestamps, window bounds) as bindings.
    It is evaluator state rather than a per-call seed so subselects,
    which re-enter :meth:`select`, see the same parameters.
    """

    #: Reported by EXPLAIN output and engine metrics.
    engine_name = "interpreted"

    def __init__(
        self,
        graph: Graph,
        inference=None,
        spatial_candidates=None,
        initial: Optional[Row] = None,
    ) -> None:
        self.graph = graph
        self.inference = inference
        self.spatial_candidates = spatial_candidates
        self.initial: Row = dict(initial) if initial else {}
        #: When set (to a list) by the engine, every BGP evaluation
        #: appends its chosen join order and cardinality estimates.
        self.explain_log: Optional[List[dict]] = None
        #: Cooperative evaluation deadline (``time.perf_counter()``
        #: value) set by the engine's ``timeout=``; checked between
        #: operators, ``None`` means unbounded.
        self.deadline: Optional[float] = None

    def _seed(self) -> List[Row]:
        return [dict(self.initial)]

    def _check_deadline(self) -> None:
        if self.deadline is not None:
            import time

            if time.perf_counter() > self.deadline:
                from repro.stsparql.errors import QueryTimeoutError

                raise QueryTimeoutError(
                    "query exceeded its timeout budget"
                )

    # -- public entry points ------------------------------------------------

    def select(self, query: ast.SelectQuery) -> SolutionSet:
        rows = self._eval_group(query.pattern, self._seed())
        return self._apply_modifiers(query, rows)

    def ask(self, query: ast.AskQuery) -> bool:
        rows = self._eval_group(query.pattern, self._seed())
        return bool(rows)

    def update_bindings(
        self, pattern: ast.GroupGraphPattern
    ) -> List[Row]:
        return self._eval_group(pattern, self._seed())

    # -- solution modifiers ----------------------------------------------

    def _apply_modifiers(
        self, query: ast.SelectQuery, rows: List[Row]
    ) -> SolutionSet:
        uses_aggregates = query.group_by or any(
            _contains_aggregate(p.expression)
            for p in query.projections
            if p.expression is not None
        )
        if uses_aggregates:
            out_rows = self._evaluate_grouped(query, rows)
        else:
            out_rows = self._evaluate_plain(query, rows)
        variables = self._header(query, rows)
        return self._finalise(query, out_rows, variables)

    def _finalise(
        self,
        query: ast.SelectQuery,
        out_rows: List[Row],
        variables: List[str],
    ) -> SolutionSet:
        """DISTINCT / ORDER BY / OFFSET / LIMIT over projected rows."""
        if query.distinct:
            seen: Set[Tuple] = set()
            deduped: List[Row] = []
            for row in out_rows:
                key = tuple((v, row.get(v)) for v in variables)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            out_rows = deduped
        if query.order_by:
            out_rows = self._order(out_rows, query.order_by)
        if query.offset:
            out_rows = out_rows[query.offset:]
        if query.limit is not None:
            out_rows = out_rows[: query.limit]
        return SolutionSet(variables, out_rows)

    def _header(
        self, query: ast.SelectQuery, rows: List[Row]
    ) -> List[str]:
        if query.select_star:
            names: List[str] = []
            for row in rows:
                for name in row:
                    if name not in names:
                        names.append(name)
            return names
        return [p.variable.name for p in query.projections]

    def _evaluate_plain(
        self, query: ast.SelectQuery, rows: List[Row]
    ) -> List[Row]:
        if query.select_star:
            return rows
        out: List[Row] = []
        for row in rows:
            new_row: Row = {}
            for proj in query.projections:
                if proj.expression is None:
                    term = row.get(proj.variable.name)
                    if term is not None:
                        new_row[proj.variable.name] = term
                else:
                    try:
                        value = self._eval_expr(proj.expression, row)
                        new_row[proj.variable.name] = to_term(value)
                    except ExpressionError:
                        pass
            out.append(new_row)
        return out

    def _evaluate_grouped(
        self, query: ast.SelectQuery, rows: List[Row]
    ) -> List[Row]:
        groups: Dict[Tuple, List[Row]] = {}
        if query.group_by:
            for row in rows:
                key = []
                for expr in query.group_by:
                    try:
                        key.append(to_term(self._eval_expr(expr, row)))
                    except ExpressionError:
                        key.append(None)
                groups.setdefault(tuple(key), []).append(row)
        else:
            groups[()] = rows
        out: List[Row] = []
        for key, group_rows in groups.items():
            base: Row = dict(group_rows[0]) if group_rows else {}
            # Restrict the representative row to the grouping variables so
            # non-key variables never leak out of a group.
            rep: Row = {}
            for expr, term in zip(query.group_by, key):
                if isinstance(expr, ast.TermExpr) and isinstance(
                    expr.term, Variable
                ) and term is not None:
                    rep[expr.term.name] = term
            del base
            keep = True
            for having in query.having:
                try:
                    value = self._eval_expr(having, rep, group_rows)
                    if not effective_boolean(value):
                        keep = False
                        break
                except ExpressionError:
                    keep = False
                    break
            if not keep:
                continue
            new_row: Row = {}
            for proj in query.projections:
                if proj.expression is None:
                    term = rep.get(proj.variable.name)
                    if term is None and group_rows:
                        term = group_rows[0].get(proj.variable.name)
                    if term is not None:
                        new_row[proj.variable.name] = term
                else:
                    try:
                        value = self._eval_expr(
                            proj.expression, rep, group_rows
                        )
                        new_row[proj.variable.name] = to_term(value)
                    except ExpressionError:
                        pass
            out.append(new_row)
        return out

    def _order(
        self, rows: List[Row], conditions: Sequence[ast.OrderCondition]
    ) -> List[Row]:
        def key(row: Row):
            parts = []
            for cond in conditions:
                try:
                    value = self._eval_expr(cond.expression, row)
                    rank = _order_rank(value)
                except ExpressionError:
                    rank = (0, "")
                parts.append(rank)
            return parts

        ordered = sorted(rows, key=key)
        for i, cond in enumerate(conditions):
            if cond.descending:
                # Stable multi-key descending sort: resort on that key.
                ordered = sorted(
                    ordered,
                    key=lambda r, c=cond: _order_rank_safe(self, c, r),
                    reverse=True,
                )
        return ordered

    # -- graph patterns ----------------------------------------------------

    def _eval_group(
        self, pattern: ast.GroupGraphPattern, input_rows: List[Row]
    ) -> List[Row]:
        rows = input_rows
        deferred: List[ast.Filter] = []
        elements = list(pattern.elements)
        # Pre-collect filters so BGP evaluation can use them for pruning and
        # spatial index assists.
        group_filters = [e for e in elements if isinstance(e, ast.Filter)]
        applied: Set[int] = set()
        for element in elements:
            self._check_deadline()
            if isinstance(element, ast.BGP):
                rows = self._eval_bgp(
                    element, rows, group_filters, applied
                )
            elif isinstance(element, ast.Filter):
                if id(element) in applied:
                    continue
                rows = [
                    row
                    for row in rows
                    if self._filter_passes(element.expression, row)
                ]
                applied.add(id(element))
            elif isinstance(element, ast.Optional_):
                rows = self._eval_optional(element.pattern, rows)
            elif isinstance(element, ast.UnionPattern):
                left = self._eval_group(element.left, rows)
                right = self._eval_group(element.right, rows)
                rows = left + right
            elif isinstance(element, ast.Bind):
                new_rows: List[Row] = []
                for row in rows:
                    row = dict(row)
                    try:
                        value = self._eval_expr(element.expression, row)
                        row[element.variable.name] = to_term(value)
                    except ExpressionError:
                        pass
                    new_rows.append(row)
                rows = new_rows
            elif isinstance(element, ast.MinusPattern):
                rows = [
                    row
                    for row in rows
                    if not self._eval_group(element.pattern, [dict(row)])
                ]
            elif isinstance(element, ast.GroupGraphPattern):
                rows = self._eval_group(element, rows)
            elif isinstance(element, ast.SubSelect):
                rows = self._join_subselect(element.query, rows)
            else:  # pragma: no cover - parser prevents this
                raise SparqlEvalError(f"unknown element {element!r}")
        return rows

    def _eval_optional(
        self, pattern: ast.GroupGraphPattern, rows: List[Row]
    ) -> List[Row]:
        # Many input rows share the same bindings for the variables the
        # optional pattern actually mentions (e.g. one hotspot's geometry
        # repeated across its property rows), so memoise the subplan on
        # that projection.
        relevant = _pattern_variables(pattern)
        cache: Dict[Tuple, List[Row]] = {}
        out: List[Row] = []
        for row in rows:
            key = tuple(
                (name, row[name]) for name in sorted(relevant) if name in row
            )
            matches = cache.get(key)
            if matches is None:
                seed = {name: value for name, value in key}
                matches = self._eval_group(pattern, [seed])
                cache[key] = matches
            if matches:
                for match in matches:
                    merged = _merge(row, match)
                    if merged is not None:
                        out.append(merged)
            else:
                out.append(row)
        return out

    def _join_subselect(
        self, query: ast.SelectQuery, rows: List[Row]
    ) -> List[Row]:
        sub = self.select(query)
        out: List[Row] = []
        for row in rows:
            for sub_row in sub.rows:
                merged = _merge(row, sub_row)
                if merged is not None:
                    out.append(merged)
        return out

    def _filter_passes(self, expression: ast.Expression, row: Row) -> bool:
        try:
            return effective_boolean(self._eval_expr(expression, row))
        except ExpressionError:
            return False

    # -- BGP evaluation ----------------------------------------------------

    def _eval_bgp(
        self,
        bgp: ast.BGP,
        rows: List[Row],
        group_filters: List[ast.Filter],
        applied: Set[int],
    ) -> List[Row]:
        bound: Set[str] = set()
        for row in rows[:1]:
            bound |= set(row)
        ordered = self._order_patterns(bgp, bound, group_filters)
        for pattern in ordered:
            self._check_deadline()
            next_rows: List[Row] = []
            for row in rows:
                restriction = self._spatial_restriction(
                    pattern, row, group_filters
                )
                for match in self._match_triple(pattern, row, restriction):
                    next_rows.append(match)
            rows = next_rows
            # Early filter application for fully-bound filters.
            if rows:
                domain = set(rows[0])
                for f in group_filters:
                    if id(f) in applied:
                        continue
                    if _expr_variables(f.expression) <= domain and not (
                        _contains_bound_call(f.expression)
                    ):
                        rows = [
                            r
                            for r in rows
                            if self._filter_passes(f.expression, r)
                        ]
                        applied.add(id(f))
            if not rows:
                break
        return rows

    def _order_patterns(
        self,
        bgp: ast.BGP,
        bound: Set[str],
        group_filters: List[ast.Filter],
    ) -> List[ast.TriplePattern]:
        """Greedy selectivity ordering, shared by both engines.

        Repeatedly picks the cheapest remaining pattern given the
        variables bound so far (:meth:`_estimate`).  When the evaluator
        carries an ``explain_log``, the chosen order and the estimates
        that drove it are recorded there.
        """
        remaining = list(bgp.triples)
        spatial_pairs = _spatial_filter_pairs(group_filters)
        bound = set(bound)
        ordered: List[ast.TriplePattern] = []
        estimates: List[int] = []
        while remaining:
            best_idx = min(
                range(len(remaining)),
                key=lambda i: self._estimate(
                    remaining[i], bound, spatial_pairs
                ),
            )
            pattern = remaining.pop(best_idx)
            estimates.append(
                self._estimate(pattern, bound, spatial_pairs)
            )
            ordered.append(pattern)
            bound |= {v.name for v in pattern.variables()}
        if self.explain_log is not None:
            self.explain_log.append(
                {
                    "operator": "bgp",
                    "engine": self.engine_name,
                    "join_order": [
                        _pattern_text(p) for p in ordered
                    ],
                    "estimates": estimates,
                }
            )
        return ordered

    def _estimate(
        self,
        pattern: ast.TriplePattern,
        bound: Set[str],
        spatial_pairs: Sequence[Tuple[str, str]] = (),
    ) -> int:
        def resolved(term: Term) -> Optional[Term]:
            if isinstance(term, Variable):
                return None if term.name not in bound else term
            return term

        s = resolved(pattern.subject)
        p = resolved(pattern.predicate)
        o = resolved(pattern.object)
        score = 0
        if s is None:
            score += 4
        if p is None:
            score += 2
        if o is None:
            score += 1
        # Prefer patterns with constant predicate and some constant term;
        # a constant (p, o) pair gives the precise matching cardinality
        # (e.g. "?h noa:hasAcquisitionDateTime <t>" is very selective).
        if isinstance(pattern.predicate, URI):
            if o is not None and not isinstance(pattern.object, Variable):
                cardinality = self.graph.count(None, pattern.predicate, o)
            else:
                cardinality = self.graph.count(None, pattern.predicate, None)
            score = score * 1000 + min(cardinality, 999)
        else:
            score = score * 1000 + 999
        # An unbound object variable constrained by a spatial filter whose
        # other argument is already bound will be matched through the
        # R-tree — treat it as highly selective.
        if (
            self.spatial_candidates is not None
            and isinstance(pattern.object, Variable)
            and pattern.object.name not in bound
        ):
            for a, b in spatial_pairs:
                other = b if pattern.object.name == a else (
                    a if pattern.object.name == b else None
                )
                if other is not None and other in bound:
                    score -= 3000
                    break
        return score

    def _match_triple(
        self,
        pattern: ast.TriplePattern,
        row: Row,
        object_restriction: Optional[Set[Term]],
    ) -> Iterator[Row]:
        def resolve_term(term: Term) -> Optional[Term]:
            if isinstance(term, Variable):
                return row.get(term.name)
            return term

        s = resolve_term(pattern.subject)
        p = resolve_term(pattern.predicate)
        o = resolve_term(pattern.object)
        use_inference = (
            self.inference is not None
            and p == RDF.type
            and o is not None
            and not isinstance(pattern.object, Variable)
        )
        if use_inference:
            candidates: Iterable = (
                (subj, RDF.type, o)
                for subj in self.inference.instances_of(o)
                if s is None or subj == s
            )
        elif (
            self.inference is not None
            and p == RDF.type
            and s is not None
            and o is None
        ):
            candidates = (
                (s, RDF.type, t) for t in self.inference.types_of(s)
            )
        elif object_restriction is not None and o is None:
            candidates = (
                triple
                for obj in object_restriction
                for triple in self.graph.triples(s, p, obj)
            )
        else:
            candidates = self.graph.triples(s, p, o)
        for ts, tp, to in candidates:
            new_row = dict(row)
            ok = True
            for var_term, value in (
                (pattern.subject, ts),
                (pattern.predicate, tp),
                (pattern.object, to),
            ):
                if isinstance(var_term, Variable):
                    existing = new_row.get(var_term.name)
                    if existing is None:
                        new_row[var_term.name] = value
                    elif existing != value:
                        ok = False
                        break
            if ok:
                yield new_row

    def _spatial_restriction(
        self,
        pattern: ast.TriplePattern,
        row: Row,
        group_filters: List[ast.Filter],
    ) -> Optional[Set[Term]]:
        """R-tree candidates for the object var of ``pattern``, if a pending
        spatial filter constrains it against an already-bound geometry."""
        if self.spatial_candidates is None:
            return None
        if not isinstance(pattern.object, Variable):
            return None
        target = pattern.object.name
        if target in row:
            return None
        for f in group_filters:
            probe = _spatial_probe(f.expression, target, row)
            if probe is not None:
                try:
                    return self.spatial_candidates(probe)
                except Exception:
                    return None
        return None

    # -- expressions ---------------------------------------------------------

    def _eval_expr(
        self,
        expr: ast.Expression,
        row: Row,
        group_rows: Optional[List[Row]] = None,
    ) -> Value:
        if isinstance(expr, ast.TermExpr):
            term = expr.term
            if isinstance(term, Variable):
                bound_term = row.get(term.name)
                if bound_term is None:
                    raise ExpressionError(f"unbound variable ?{term.name}")
                return to_value(bound_term)
            return to_value(term)
        if isinstance(expr, ast.UnaryExpr):
            if expr.op == "!":
                return not effective_boolean(
                    self._eval_expr(expr.operand, row, group_rows)
                )
            value = self._eval_expr(expr.operand, row, group_rows)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ExpressionError("unary +/- on a non-number")
            return -value if expr.op == "-" else value
        if isinstance(expr, ast.BinaryExpr):
            return self._eval_binary(expr, row, group_rows)
        if isinstance(expr, ast.FunctionCall):
            return self._eval_function(expr, row, group_rows)
        if isinstance(expr, ast.Aggregate):
            if group_rows is None:
                raise ExpressionError(
                    f"aggregate {expr.name} outside a grouped query"
                )
            return self._eval_aggregate(expr, group_rows)
        if isinstance(expr, ast.ExistsExpr):
            exists = bool(self._eval_group(expr.pattern, [dict(row)]))
            return not exists if expr.negated else exists
        raise ExpressionError(f"unknown expression {expr!r}")

    def _eval_binary(
        self,
        expr: ast.BinaryExpr,
        row: Row,
        group_rows: Optional[List[Row]],
    ) -> Value:
        op = expr.op
        if op == "||":
            left_err: Optional[ExpressionError] = None
            try:
                if effective_boolean(self._eval_expr(expr.left, row, group_rows)):
                    return True
            except ExpressionError as exc:
                left_err = exc
            right = effective_boolean(self._eval_expr(expr.right, row, group_rows))
            if right:
                return True
            if left_err is not None:
                raise left_err
            return False
        if op == "&&":
            left_err = None
            try:
                if not effective_boolean(
                    self._eval_expr(expr.left, row, group_rows)
                ):
                    return False
            except ExpressionError as exc:
                left_err = exc
            right = effective_boolean(self._eval_expr(expr.right, row, group_rows))
            if not right:
                return False
            if left_err is not None:
                raise left_err
            return True
        left = self._eval_expr(expr.left, row, group_rows)
        right = self._eval_expr(expr.right, row, group_rows)
        if op in ("=", "!=", "<", "<=", ">", ">="):
            return compare(op, left, right)
        if op in ("+", "-", "*", "/"):
            lnum = _numeric(left)
            rnum = _numeric(right)
            if op == "+":
                return lnum + rnum
            if op == "-":
                return lnum - rnum
            if op == "*":
                return lnum * rnum
            if rnum == 0:
                raise ExpressionError("division by zero")
            return lnum / rnum
        raise ExpressionError(f"unknown operator {op!r}")

    def _eval_function(
        self,
        expr: ast.FunctionCall,
        row: Row,
        group_rows: Optional[List[Row]],
    ) -> Value:
        if expr.name == "bound":
            if len(expr.args) != 1 or not isinstance(
                expr.args[0], ast.TermExpr
            ) or not isinstance(expr.args[0].term, Variable):
                raise ExpressionError("bound() needs a single variable")
            return expr.args[0].term.name in row
        if expr.name == "coalesce":
            args: List[Value] = []
            for arg in expr.args:
                try:
                    args.append(self._eval_expr(arg, row, group_rows))
                except ExpressionError:
                    args.append(None)
            return resolve("coalesce")(args)
        impl = resolve(expr.name)
        values = [self._eval_expr(a, row, group_rows) for a in expr.args]
        try:
            return impl(values)
        except ExpressionError:
            raise
        except Exception as exc:
            raise ExpressionError(str(exc)) from exc

    def _eval_aggregate(
        self, expr: ast.Aggregate, group_rows: List[Row]
    ) -> Value:
        impl = resolve_aggregate(expr.name)
        if expr.arg is None:  # COUNT(*)
            return impl([1] * len(group_rows), expr.distinct)
        values: List[Value] = []
        for row in group_rows:
            try:
                values.append(self._eval_expr(expr.arg, row))
            except ExpressionError:
                continue
        return impl(values, expr.distinct)


# -- helpers ------------------------------------------------------------------


def _term_json(term: Term) -> dict:
    """Encode one RDF term per the SPARQL results JSON spec."""
    from repro.rdf.term import BNode

    if isinstance(term, URI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.label}
    assert isinstance(term, Literal)
    out: dict = {"type": "literal", "value": term.lexical}
    if term.language:
        out["xml:lang"] = term.language
    elif term.datatype:
        out["datatype"] = term.datatype
    return out


def _pattern_text(pattern: ast.TriplePattern) -> str:
    return " ".join(
        term.n3()
        for term in (pattern.subject, pattern.predicate, pattern.object)
    )


def _numeric(value: Value) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExpressionError(f"not a number: {value!r}")
    return value


def _merge(a: Row, b: Row) -> Optional[Row]:
    merged = dict(a)
    for key, value in b.items():
        existing = merged.get(key)
        if existing is None:
            merged[key] = value
        elif existing != value:
            return None
    return merged


def _pattern_variables(pattern: ast.GroupGraphPattern) -> Set[str]:
    """All variable names mentioned anywhere inside a group pattern."""
    out: Set[str] = set()

    def walk_pattern(p: ast.PatternElement) -> None:
        if isinstance(p, ast.BGP):
            for triple in p.triples:
                for var in triple.variables():
                    out.add(var.name)
        elif isinstance(p, ast.Filter):
            out.update(_expr_variables(p.expression))
        elif isinstance(p, ast.Optional_):
            walk_pattern(p.pattern)
        elif isinstance(p, ast.UnionPattern):
            walk_pattern(p.left)
            walk_pattern(p.right)
        elif isinstance(p, ast.Bind):
            out.update(_expr_variables(p.expression))
            out.add(p.variable.name)
        elif isinstance(p, ast.MinusPattern):
            walk_pattern(p.pattern)
        elif isinstance(p, ast.GroupGraphPattern):
            for element in p.elements:
                walk_pattern(element)
        elif isinstance(p, ast.SubSelect):
            for proj in p.query.projections:
                out.add(proj.variable.name)
            walk_pattern(p.query.pattern)

    walk_pattern(pattern)
    return out


def _expr_variables(expr: ast.Expression) -> Set[str]:
    out: Set[str] = set()

    def walk(e: ast.Expression) -> None:
        if isinstance(e, ast.TermExpr):
            if isinstance(e.term, Variable):
                out.add(e.term.name)
        elif isinstance(e, ast.UnaryExpr):
            walk(e.operand)
        elif isinstance(e, ast.BinaryExpr):
            walk(e.left)
            walk(e.right)
        elif isinstance(e, ast.FunctionCall):
            for a in e.args:
                walk(a)
        elif isinstance(e, ast.Aggregate) and e.arg is not None:
            walk(e.arg)
        elif isinstance(e, ast.ExistsExpr):
            out.update(_pattern_variables(e.pattern))

    walk(expr)
    return out


def _contains_aggregate(expr: ast.Expression) -> bool:
    if isinstance(expr, ast.Aggregate):
        return True
    if isinstance(expr, ast.UnaryExpr):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, ast.BinaryExpr):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, ast.FunctionCall):
        return any(_contains_aggregate(a) for a in expr.args)
    return False


def _contains_bound_call(expr: ast.Expression) -> bool:
    if isinstance(expr, ast.FunctionCall):
        if expr.name == "bound":
            return True
        return any(_contains_bound_call(a) for a in expr.args)
    if isinstance(expr, ast.UnaryExpr):
        return _contains_bound_call(expr.operand)
    if isinstance(expr, ast.BinaryExpr):
        return _contains_bound_call(expr.left) or _contains_bound_call(
            expr.right
        )
    return False


def _spatial_filter_pairs(
    group_filters: List[ast.Filter],
) -> List[Tuple[str, str]]:
    """(var, var) argument pairs of spatial-predicate filters in a group."""
    pairs: List[Tuple[str, str]] = []

    def walk(expr: ast.Expression) -> None:
        if isinstance(expr, ast.BinaryExpr) and expr.op == "&&":
            walk(expr.left)
            walk(expr.right)
            return
        if (
            isinstance(expr, ast.FunctionCall)
            and expr.name in SPATIAL_PREDICATE_NAMES
            and len(expr.args) == 2
        ):
            names = []
            for arg in expr.args:
                if isinstance(arg, ast.TermExpr) and isinstance(
                    arg.term, Variable
                ):
                    names.append(arg.term.name)
            if len(names) == 2:
                pairs.append((names[0], names[1]))

    for f in group_filters:
        walk(f.expression)
    return pairs


def _spatial_probe(
    expr: ast.Expression, target_var: str, row: Row
) -> Optional[Geometry]:
    """If ``expr`` (or a conjunct of it) is a spatial predicate over
    ``target_var`` and a bound/constant geometry, return that geometry."""
    if isinstance(expr, ast.BinaryExpr) and expr.op == "&&":
        return _spatial_probe(expr.left, target_var, row) or _spatial_probe(
            expr.right, target_var, row
        )
    if not isinstance(expr, ast.FunctionCall):
        return None
    if expr.name not in SPATIAL_PREDICATE_NAMES or len(expr.args) != 2:
        return None
    sides = []
    for arg in expr.args:
        if isinstance(arg, ast.TermExpr):
            sides.append(arg.term)
        else:
            return None
    names = [
        t.name if isinstance(t, Variable) else None for t in sides
    ]
    if target_var not in names:
        return None
    other = sides[1] if names[0] == target_var else sides[0]
    if isinstance(other, Variable):
        bound_term = row.get(other.name)
        if bound_term is None:
            return None
        other = bound_term
    try:
        return as_geometry(to_value(other))
    except ExpressionError:
        return None


def _order_rank(value: Value):
    if isinstance(value, bool):
        return (1, str(value))
    if isinstance(value, (int, float)):
        return (2, float(value))
    if isinstance(value, str):
        return (3, value)
    return (4, str(value))


def _order_rank_safe(evaluator: Evaluator, cond: ast.OrderCondition, row: Row):
    try:
        return _order_rank(evaluator._eval_expr(cond.expression, row))
    except ExpressionError:
        return (0, "")
