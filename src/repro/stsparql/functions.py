"""Scalar function library: SPARQL built-ins plus the strdf:* extension.

The evaluator works with Python-level *values* (numbers, strings, bools,
datetimes, :class:`~repro.geometry.Geometry` objects, URIs...).  This module
provides the conversions between RDF terms and values and a registry mapping
function names (lowercase built-ins or full extension URIs) to
implementations.

Errors follow SPARQL semantics: implementations raise
:class:`~repro.stsparql.errors.ExpressionError`, which makes the enclosing
FILTER false and a projected expression unbound.
"""

from __future__ import annotations

import math
import re
from datetime import date, datetime
from typing import Any, Callable, Dict, List

from repro.geometry import Geometry, dumps_wkt, ops, predicates
from repro.geometry.errors import GeometryError, WKTParseError
from repro.perf import geometry_cache
from repro.rdf.namespace import STRDF, XSD
from repro.rdf.term import BNode, Literal, Term, URI
from repro.stsparql.errors import ExpressionError

Value = Any
FunctionImpl = Callable[[List[Value]], Value]

GEOMETRY_DATATYPE = STRDF.base + "geometry"


# -- term <-> value conversion ----------------------------------------------


def to_value(term: Term) -> Value:
    """Convert a bound RDF term to an evaluation value."""
    if isinstance(term, Literal):
        return term.value
    return term


def to_term(value: Value) -> Term:
    """Convert an evaluation value back to an RDF term for binding."""
    from repro.rdf.temporal import PERIOD_DATATYPE, Period

    if isinstance(value, Term):
        return value
    if isinstance(value, Geometry):
        return Literal(dumps_wkt(value), datatype=GEOMETRY_DATATYPE)
    if isinstance(value, Period):
        return Literal(value.lexical(), datatype=PERIOD_DATATYPE)
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD.base + "boolean")
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD.base + "integer")
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD.base + "double")
    if isinstance(value, datetime):
        return Literal(value.isoformat(), datatype=XSD.base + "dateTime")
    if isinstance(value, date):
        return Literal(value.isoformat(), datatype=XSD.base + "date")
    if isinstance(value, str):
        return Literal(value)
    raise ExpressionError(f"cannot convert {type(value).__name__} to a term")


def effective_boolean(value: Value) -> bool:
    """SPARQL effective boolean value."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        if isinstance(value, float) and math.isnan(value):
            return False
        return value != 0
    if isinstance(value, str):
        return len(value) > 0
    raise ExpressionError(
        f"no effective boolean value for {type(value).__name__}"
    )


def as_geometry(value: Value) -> Geometry:
    """Coerce a value to a geometry (WKT strings accepted)."""
    if isinstance(value, Geometry):
        return value
    if isinstance(value, Literal):
        value = value.value
        if isinstance(value, Geometry):
            return value
    if isinstance(value, str):
        try:
            return geometry_cache.geometry_from_wkt(value)
        except WKTParseError as exc:
            raise ExpressionError(f"bad WKT: {exc}") from exc
    raise ExpressionError(f"not a geometry: {value!r}")


def as_number(value: Value) -> float:
    if isinstance(value, bool):
        raise ExpressionError("boolean is not a number")
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise ExpressionError(f"not a number: {value!r}")
    raise ExpressionError(f"not a number: {value!r}")


def as_string(value: Value) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, URI):
        return value.value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, (datetime, date)):
        return value.isoformat()
    if isinstance(value, Geometry):
        return dumps_wkt(value)
    if isinstance(value, Literal):
        return value.lexical
    raise ExpressionError(f"cannot stringify {type(value).__name__}")


def instant_key(value: datetime) -> int:
    """Total-order integer key for a datetime, in microseconds.

    Exact integer arithmetic (no float rounding), so equality of keys is
    equality of instants.  Aware datetimes are shifted to UTC first; the
    caller must not mix aware and naive values in one comparison — their
    keys live on different axes.
    """
    offset = value.utcoffset()
    if offset is not None:
        value = (value - offset).replace(tzinfo=None)
    return (
        value.toordinal() * 86400
        + value.hour * 3600
        + value.minute * 60
        + value.second
    ) * 1_000_000 + value.microsecond


# -- comparison --------------------------------------------------------------


def compare(op: str, left: Value, right: Value) -> bool:
    """Evaluate a SPARQL comparison operator on two values."""
    if op == "=":
        return _equal(left, right)
    if op == "!=":
        return not _equal(left, right)
    lo, hi = _orderable_pair(left, right)
    if op == "<":
        return lo < hi
    if op == "<=":
        return lo <= hi
    if op == ">":
        return lo > hi
    if op == ">=":
        return lo >= hi
    raise ExpressionError(f"unknown comparison {op!r}")


def _equal(left: Value, right: Value) -> bool:
    if isinstance(left, (int, float)) and isinstance(right, (int, float)) \
            and not isinstance(left, bool) and not isinstance(right, bool):
        return float(left) == float(right)
    if isinstance(left, Geometry) and isinstance(right, Geometry):
        return predicates.equals(left, right)
    if type(left) is type(right):
        return left == right
    if isinstance(left, Term) or isinstance(right, Term):
        return left == right
    # Mixed comparable types (str vs datetime etc.) — compare stringified.
    try:
        return as_string(left) == as_string(right)
    except ExpressionError:
        return False


def _orderable_pair(left: Value, right: Value):
    if isinstance(left, (int, float)) and isinstance(right, (int, float)) \
            and not isinstance(left, bool) and not isinstance(right, bool):
        return float(left), float(right)
    if isinstance(left, datetime) and isinstance(right, datetime):
        return left, right
    if isinstance(left, date) and isinstance(right, date):
        return left, right
    if isinstance(left, str) and isinstance(right, str):
        return left, right
    # Datetime vs ISO string — common in the paper's queries via str().
    if isinstance(left, (datetime, date)) and isinstance(right, str):
        return left.isoformat(), right
    if isinstance(left, str) and isinstance(right, (datetime, date)):
        return left, right.isoformat()
    raise ExpressionError(
        f"cannot order {type(left).__name__} and {type(right).__name__}"
    )


# -- spatial functions -------------------------------------------------------


# Precise spatial predicate evaluations are memoised process-wide on
# the identity of their geometry arguments (the refinement pipeline
# tests the same (hotspot, coastline/area) pairs across several
# operations per acquisition, and geometry objects are cached inside
# interned literals, so identity keys are stable across acquisitions).
# The memo lives in repro.perf.geometry_cache: a bounded LRU that keeps
# the hot working set under sustained load instead of clearing wholesale.


def _spatial_predicate(
    fn: Callable[[Geometry, Geometry], bool]
) -> FunctionImpl:
    name = fn.__name__

    def impl(args: List[Value]) -> Value:
        if len(args) != 2:
            raise ExpressionError("spatial predicate needs two arguments")
        a = as_geometry(args[0])
        b = as_geometry(args[1])
        return geometry_cache.predicate_result(
            name, a, b, lambda: fn(a, b)
        )

    return impl


def _spatial_binary(
    fn: Callable[[Geometry, Geometry], Geometry]
) -> FunctionImpl:
    name = fn.__name__

    def impl(args: List[Value]) -> Value:
        if len(args) != 2:
            raise ExpressionError("spatial constructor needs two arguments")
        a = as_geometry(args[0])
        b = as_geometry(args[1])
        return geometry_cache.binary_op_result(
            name, a, b, lambda: fn(a, b)
        )

    return impl


def _fn_boundary(args: List[Value]) -> Value:
    if len(args) != 1:
        raise ExpressionError("strdf:boundary needs one argument")
    return ops.boundary(as_geometry(args[0]))


def _fn_buffer(args: List[Value]) -> Value:
    if len(args) != 2:
        raise ExpressionError("strdf:buffer needs (geometry, radius)")
    try:
        return ops.buffer(as_geometry(args[0]), as_number(args[1]))
    except (ValueError, GeometryError) as exc:
        raise ExpressionError(str(exc)) from exc


def _fn_envelope(args: List[Value]) -> Value:
    from repro.geometry import Polygon

    if len(args) != 1:
        raise ExpressionError("strdf:envelope needs one argument")
    return Polygon.from_envelope(as_geometry(args[0]).envelope)


def _fn_convex_hull(args: List[Value]) -> Value:
    if len(args) != 1:
        raise ExpressionError("strdf:convexHull needs one argument")
    return ops.convex_hull(as_geometry(args[0]))


def _fn_area(args: List[Value]) -> Value:
    if len(args) != 1:
        raise ExpressionError("strdf:area needs one argument")
    return as_geometry(args[0]).area

def _fn_distance(args: List[Value]) -> Value:
    if len(args) != 2:
        raise ExpressionError("strdf:distance needs two arguments")
    try:
        return predicates.distance(as_geometry(args[0]), as_geometry(args[1]))
    except ValueError as exc:
        raise ExpressionError(str(exc)) from exc


def _fn_dimension(args: List[Value]) -> Value:
    if len(args) != 1:
        raise ExpressionError("strdf:dimension needs one argument")
    return as_geometry(args[0]).dimension


def _fn_geometry_type(args: List[Value]) -> Value:
    if len(args) != 1:
        raise ExpressionError("strdf:geometryType needs one argument")
    return as_geometry(args[0]).geom_type


#: Spatial reference systems strdf:transform understands.
_WGS84_IDS = frozenset(
    {"4326", "epsg:4326", "http://www.opengis.net/def/crs/EPSG/0/4326"}
)
_GREEK_GRID_IDS = frozenset(
    {"2100", "epsg:2100", "http://www.opengis.net/def/crs/EPSG/0/2100"}
)


def _fn_transform(args: List[Value]) -> Value:
    """``strdf:transform(geom, srid)``: WGS84 ↔ Greek Grid (EPSG:2100).

    Geometries in this store are WGS84 lon/lat; transforming to 2100
    projects them onto the HGRS 87 metric grid the NOA chain uses, and
    transforming a projected geometry back to 4326 inverts it (the source
    frame is inferred from the coordinate magnitudes).
    """
    from repro.geometry.projection import GreekGrid
    from repro.geometry.transform import transform_geometry

    if len(args) != 2:
        raise ExpressionError("strdf:transform needs (geometry, srid)")
    geom = as_geometry(args[0])
    target = as_string(args[1]).strip().lower()
    grid = GreekGrid()
    looks_projected = any(
        abs(x) > 360 or abs(y) > 360 for x, y in geom.coordinates()
    )
    if target in _GREEK_GRID_IDS:
        if looks_projected:
            return geom
        return transform_geometry(geom, grid.forward)
    if target in _WGS84_IDS:
        if not looks_projected:
            return geom
        return transform_geometry(geom, grid.inverse)
    raise ExpressionError(f"unsupported target SRS {target!r}")


def _fn_srid(args: List[Value]) -> Value:
    geom = as_geometry(args[0])
    looks_projected = any(
        abs(x) > 360 or abs(y) > 360 for x, y in geom.coordinates()
    )
    return (
        "http://www.opengis.net/def/crs/EPSG/0/2100"
        if looks_projected
        else "http://www.opengis.net/def/crs/EPSG/0/4326"
    )


_STRDF_FUNCTIONS: Dict[str, FunctionImpl] = {
    "anyInteract": _spatial_predicate(predicates.intersects),
    "intersects": _spatial_predicate(predicates.intersects),
    "contains": _spatial_predicate(predicates.contains),
    "containedBy": _spatial_predicate(predicates.within),
    "inside": _spatial_predicate(predicates.within),
    "within": _spatial_predicate(predicates.within),
    "disjoint": _spatial_predicate(predicates.disjoint),
    "touch": _spatial_predicate(predicates.touches),
    "touches": _spatial_predicate(predicates.touches),
    "overlap": _spatial_predicate(predicates.overlaps),
    "overlaps": _spatial_predicate(predicates.overlaps),
    "crosses": _spatial_predicate(predicates.crosses),
    "equals": _spatial_predicate(predicates.equals),
    "intersection": _spatial_binary(ops.intersection),
    "union": _spatial_binary(ops.union),
    "difference": _spatial_binary(ops.difference),
    "boundary": _fn_boundary,
    "buffer": _fn_buffer,
    "envelope": _fn_envelope,
    "convexHull": _fn_convex_hull,
    "area": _fn_area,
    "distance": _fn_distance,
    "dimension": _fn_dimension,
    "geometryType": _fn_geometry_type,
    "transform": _fn_transform,
    "srid": _fn_srid,
}

# -- stRDF temporal functions --------------------------------------------


def _as_period(value: Value):
    from repro.rdf.temporal import Period, PeriodError

    if isinstance(value, Period):
        return value
    if isinstance(value, Literal):
        value = value.value
        if isinstance(value, Period):
            return value
    if isinstance(value, str):
        try:
            return Period.parse(value)
        except PeriodError as exc:
            raise ExpressionError(str(exc)) from exc
    raise ExpressionError(f"not a period: {value!r}")


def _as_instant(value: Value) -> datetime:
    if isinstance(value, datetime):
        return value
    if isinstance(value, Literal):
        value = value.value
        if isinstance(value, datetime):
            return value
    if isinstance(value, str):
        try:
            return datetime.fromisoformat(value)
        except ValueError as exc:
            raise ExpressionError(str(exc)) from exc
    raise ExpressionError(f"not an instant: {value!r}")


def _fn_during(args: List[Value]) -> Value:
    """``strdf:during(instant-or-period, period)``."""
    if len(args) != 2:
        raise ExpressionError("strdf:during needs two arguments")
    period = _as_period(args[1])
    try:
        return period.contains_period(_as_period(args[0]))
    except ExpressionError:
        return period.contains_instant(_as_instant(args[0]))


def _temporal_relation(method: str) -> FunctionImpl:
    def impl(args: List[Value]) -> Value:
        if len(args) != 2:
            raise ExpressionError("temporal relation needs two arguments")
        a = _as_period(args[0])
        b = _as_period(args[1])
        return getattr(a, method)(b)

    return impl


def _fn_period_intersection(args: List[Value]) -> Value:
    a = _as_period(args[0])
    b = _as_period(args[1])
    got = a.intersection(b)
    if got is None:
        raise ExpressionError("periods do not intersect")
    return got


def _fn_period_union(args: List[Value]) -> Value:
    return _as_period(args[0]).union(_as_period(args[1]))


def _fn_period_start(args: List[Value]) -> Value:
    return _as_period(args[0]).start


def _fn_period_end(args: List[Value]) -> Value:
    return _as_period(args[0]).end


def _fn_period_make(args: List[Value]) -> Value:
    from repro.rdf.temporal import Period, PeriodError

    if len(args) != 2:
        raise ExpressionError("strdf:period needs (start, end)")
    try:
        return Period(_as_instant(args[0]), _as_instant(args[1]))
    except PeriodError as exc:
        raise ExpressionError(str(exc)) from exc


_TEMPORAL_FUNCTIONS: Dict[str, FunctionImpl] = {
    "during": _fn_during,
    "periodOverlaps": _temporal_relation("overlaps"),
    "before": _temporal_relation("before"),
    "after": _temporal_relation("after"),
    "meets": _temporal_relation("meets"),
    "periodContains": _temporal_relation("contains_period"),
    "periodIntersection": _fn_period_intersection,
    "periodUnion": _fn_period_union,
    "periodStart": _fn_period_start,
    "periodEnd": _fn_period_end,
    "period": _fn_period_make,
}


#: GeoSPARQL (OGC) function namespace — the paper's related work compares
#: stSPARQL with GeoSPARQL; we expose both vocabularies over the same
#: implementations so GeoSPARQL queries run unchanged.
GEOF = "http://www.opengis.net/def/function/geosparql/"

_GEOF_FUNCTIONS: Dict[str, FunctionImpl] = {
    "sfIntersects": _spatial_predicate(predicates.intersects),
    "sfContains": _spatial_predicate(predicates.contains),
    "sfWithin": _spatial_predicate(predicates.within),
    "sfTouches": _spatial_predicate(predicates.touches),
    "sfOverlaps": _spatial_predicate(predicates.overlaps),
    "sfCrosses": _spatial_predicate(predicates.crosses),
    "sfDisjoint": _spatial_predicate(predicates.disjoint),
    "sfEquals": _spatial_predicate(predicates.equals),
    "intersection": _spatial_binary(ops.intersection),
    "union": _spatial_binary(ops.union),
    "difference": _spatial_binary(ops.difference),
    "boundary": _fn_boundary,
    "buffer": _fn_buffer,
    "envelope": _fn_envelope,
    "convexHull": _fn_convex_hull,
    "distance": _fn_distance,
    "getSRID": _fn_srid,
}


# -- SPARQL built-ins ----------------------------------------------------------


def _fn_str(args: List[Value]) -> Value:
    if len(args) != 1:
        raise ExpressionError("str() needs one argument")
    return as_string(args[0])


def _fn_datatype(args: List[Value]) -> Value:
    value = args[0]
    if isinstance(value, Literal):
        return URI(value.datatype) if value.datatype else URI(XSD.base + "string")
    if isinstance(value, bool):
        return URI(XSD.base + "boolean")
    if isinstance(value, int):
        return URI(XSD.base + "integer")
    if isinstance(value, float):
        return URI(XSD.base + "double")
    if isinstance(value, datetime):
        return URI(XSD.base + "dateTime")
    if isinstance(value, Geometry):
        return URI(GEOMETRY_DATATYPE)
    if isinstance(value, str):
        return URI(XSD.base + "string")
    raise ExpressionError("datatype() of a non-literal")


def _fn_regex(args: List[Value]) -> Value:
    if len(args) not in (2, 3):
        raise ExpressionError("regex() needs 2 or 3 arguments")
    text = as_string(args[0])
    pattern = as_string(args[1])
    flags = 0
    if len(args) == 3 and "i" in as_string(args[2]):
        flags |= re.IGNORECASE
    try:
        return re.search(pattern, text, flags) is not None
    except re.error as exc:
        raise ExpressionError(f"bad regex: {exc}") from exc


def _fn_if(args: List[Value]) -> Value:
    if len(args) != 3:
        raise ExpressionError("if() needs three arguments")
    return args[1] if effective_boolean(args[0]) else args[2]


def _fn_coalesce(args: List[Value]) -> Value:
    for a in args:
        if a is not None:
            return a
    raise ExpressionError("coalesce() found no bound argument")


def _numeric_unary(fn: Callable[[float], float]) -> FunctionImpl:
    def impl(args: List[Value]) -> Value:
        if len(args) != 1:
            raise ExpressionError("function needs one argument")
        return fn(as_number(args[0]))

    return impl


def _fn_concat(args: List[Value]) -> Value:
    return "".join(as_string(a) for a in args)


def _fn_substr(args: List[Value]) -> Value:
    if len(args) not in (2, 3):
        raise ExpressionError("substr() needs 2 or 3 arguments")
    text = as_string(args[0])
    start = int(as_number(args[1])) - 1  # SPARQL is 1-based
    if len(args) == 3:
        return text[start : start + int(as_number(args[2]))]
    return text[start:]


def _fn_replace(args: List[Value]) -> Value:
    if len(args) != 3:
        raise ExpressionError("replace() needs three arguments")
    return re.sub(as_string(args[1]), as_string(args[2]), as_string(args[0]))


def _datetime_part(attr: str) -> FunctionImpl:
    def impl(args: List[Value]) -> Value:
        value = args[0]
        if isinstance(value, str):
            try:
                value = datetime.fromisoformat(value)
            except ValueError as exc:
                raise ExpressionError(str(exc)) from exc
        if not isinstance(value, (datetime, date)):
            raise ExpressionError("not a dateTime")
        got = getattr(value, attr, None)
        if got is None:
            raise ExpressionError(f"dateTime has no {attr}")
        return got

    return impl


def _type_check(kinds) -> FunctionImpl:
    def impl(args: List[Value]) -> Value:
        return isinstance(args[0], kinds)

    return impl


_BUILTINS: Dict[str, FunctionImpl] = {
    "str": _fn_str,
    "datatype": _fn_datatype,
    "lang": lambda args: (
        args[0].language or ""
        if isinstance(args[0], Literal)
        else ""
    ),
    "regex": _fn_regex,
    "abs": _numeric_unary(abs),
    "ceil": _numeric_unary(math.ceil),
    "floor": _numeric_unary(math.floor),
    "round": _numeric_unary(round),
    "sqrt": _numeric_unary(math.sqrt),
    "concat": _fn_concat,
    "strlen": lambda args: len(as_string(args[0])),
    "ucase": lambda args: as_string(args[0]).upper(),
    "lcase": lambda args: as_string(args[0]).lower(),
    "contains": lambda args: as_string(args[1]) in as_string(args[0]),
    "strstarts": lambda args: as_string(args[0]).startswith(as_string(args[1])),
    "strends": lambda args: as_string(args[0]).endswith(as_string(args[1])),
    "substr": _fn_substr,
    "replace": _fn_replace,
    "year": _datetime_part("year"),
    "month": _datetime_part("month"),
    "day": _datetime_part("day"),
    "hours": _datetime_part("hour"),
    "minutes": _datetime_part("minute"),
    "seconds": _datetime_part("second"),
    "uri": lambda args: URI(as_string(args[0])),
    "iri": lambda args: URI(as_string(args[0])),
    "isuri": _type_check(URI),
    "isiri": _type_check(URI),
    "isblank": _type_check(BNode),
    "isliteral": lambda args: not isinstance(args[0], (URI, BNode)),
    "isnumeric": lambda args: isinstance(args[0], (int, float))
    and not isinstance(args[0], bool),
    "if": _fn_if,
    "coalesce": _fn_coalesce,
    "sameterm": lambda args: to_term(args[0]) == to_term(args[1]),
}

_XSD_CASTS: Dict[str, FunctionImpl] = {
    XSD.base + "integer": lambda args: int(as_number(args[0])),
    XSD.base + "int": lambda args: int(as_number(args[0])),
    XSD.base + "double": lambda args: float(as_number(args[0])),
    XSD.base + "float": lambda args: float(as_number(args[0])),
    XSD.base + "decimal": lambda args: float(as_number(args[0])),
    XSD.base + "string": lambda args: as_string(args[0]),
    XSD.base + "boolean": lambda args: effective_boolean(args[0]),
    XSD.base + "dateTime": lambda args: datetime.fromisoformat(
        as_string(args[0])
    ),
}


def resolve(name: str) -> FunctionImpl:
    """Look up a function by lowercase built-in name or extension URI."""
    impl = _BUILTINS.get(name)
    if impl is not None:
        return impl
    if name.startswith(STRDF.base):
        local = name[len(STRDF.base):]
        impl = _STRDF_FUNCTIONS.get(local)
        if impl is not None:
            return impl
        impl = _TEMPORAL_FUNCTIONS.get(local)
        if impl is not None:
            return impl
    if name.startswith(GEOF):
        local = name[len(GEOF):]
        impl = _GEOF_FUNCTIONS.get(local)
        if impl is not None:
            return impl
    impl = _XSD_CASTS.get(name)
    if impl is not None:
        return impl
    raise ExpressionError(f"unknown function {name!r}")


#: Names of spatial predicates usable for index-assisted spatial joins.
SPATIAL_PREDICATE_NAMES = {
    STRDF.base + local: local
    for local in (
        "anyInteract",
        "intersects",
        "contains",
        "containedBy",
        "inside",
        "within",
        "overlap",
        "overlaps",
        "touch",
        "touches",
        "crosses",
        "equals",
    )
}
SPATIAL_PREDICATE_NAMES.update(
    {
        GEOF + local: local
        for local in (
            "sfIntersects",
            "sfContains",
            "sfWithin",
            "sfTouches",
            "sfOverlaps",
            "sfCrosses",
            "sfEquals",
        )
    }
)
