"""Tokenizer for the stSPARQL dialect."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.stsparql.errors import SparqlParseError

KEYWORDS = {
    "select",
    "distinct",
    "reduced",
    "where",
    "filter",
    "optional",
    "union",
    "prefix",
    "base",
    "ask",
    "construct",
    "group",
    "by",
    "having",
    "order",
    "asc",
    "desc",
    "limit",
    "offset",
    "as",
    "bind",
    "delete",
    "insert",
    "data",
    "minus",
    "exists",
    "not",
    "true",
    "false",
    "a",
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "sample",
    "group_concat",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>"{}|^`\\\s]*>)
  | (?P<var>[?$][A-Za-z_][\w]*)
  | (?P<string>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
  | (?P<lang>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<dtype>\^\^)
  | (?P<number>[-+]?(?:\d+\.\d+|\.\d+|\d+)(?:[eE][-+]?\d+)?)
  | (?P<pname>[A-Za-z_][\w.-]*:[\w][\w.-]*|[A-Za-z_][\w.-]*:|:[\w][\w.-]*)
  | (?P<word>[A-Za-z_][\w]*)
  | (?P<op>\|\||&&|!=|<=|>=|[{}()\[\].;,=<>!+\-*/])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # iri, var, string, lang, dtype, number, pname, keyword, word, op, eof
    value: str
    pos: int


def tokenize(text: str) -> List[Token]:
    """Tokenise stSPARQL query text.

    Keywords are recognised case-insensitively and emitted with a
    lowercase ``value``; everything else keeps its original spelling.
    """
    tokens: List[Token] = []
    pos = 0
    n = len(text)
    while pos < n:
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise SparqlParseError(
                f"unexpected character {text[pos]!r} at offset {pos}"
            )
        kind = m.lastgroup or ""
        value = m.group()
        if kind == "word":
            lowered = value.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, pos))
            else:
                tokens.append(Token("word", value, pos))
        elif kind not in ("ws", "comment"):
            tokens.append(Token(kind, value, pos))
        pos = m.end()
    tokens.append(Token("eof", "", pos))
    return tokens
