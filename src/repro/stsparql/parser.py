"""Recursive-descent parser for the stSPARQL dialect.

Accepts the query and update language used throughout the paper: SELECT
(with DISTINCT, expression projections, GROUP BY / HAVING with spatial
aggregates, ORDER BY, LIMIT/OFFSET, OPTIONAL, UNION, BIND, subqueries),
ASK, and the update forms DELETE/INSERT ... WHERE and INSERT/DELETE DATA.

The parser is deliberately lenient about stray ``.`` separators after
FILTERs — the queries printed in the paper use that style.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.rdf.namespace import RDF, WELL_KNOWN_PREFIXES, XSD
from repro.rdf.term import Literal, Term, URI, Variable
from repro.stsparql import ast
from repro.stsparql.errors import SparqlParseError
from repro.stsparql.lexer import Token, tokenize

_AGGREGATE_KEYWORDS = {
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "sample",
    "group_concat",
}

#: 1-argument strdf functions that act as *aggregates* in grouped queries.
SPATIAL_AGGREGATE_LOCALNAMES = {"union", "intersection", "extent"}

_BUILTIN_FUNCTIONS = {
    "bound",
    "str",
    "datatype",
    "lang",
    "langmatches",
    "regex",
    "abs",
    "ceil",
    "floor",
    "round",
    "sqrt",
    "concat",
    "strlen",
    "ucase",
    "lcase",
    "contains",
    "strstarts",
    "strends",
    "substr",
    "replace",
    "year",
    "month",
    "day",
    "hours",
    "minutes",
    "seconds",
    "uri",
    "iri",
    "isuri",
    "isiri",
    "isliteral",
    "isnumeric",
    "isblank",
    "if",
    "coalesce",
    "sameterm",
}


class Parser:
    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.idx = 0
        self.prefixes: Dict[str, str] = dict(WELL_KNOWN_PREFIXES)

    # -- token plumbing ----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        i = min(self.idx + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def next(self) -> Token:
        tok = self.tokens[self.idx]
        if tok.kind != "eof":
            self.idx += 1
        return tok

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value or kind
            raise SparqlParseError(
                f"expected {want!r} but found {tok.value!r} at offset {tok.pos}"
            )
        return tok

    def at_keyword(self, *words: str) -> bool:
        tok = self.peek()
        return tok.kind == "keyword" and tok.value in words

    # -- entry points ------------------------------------------------------

    def parse_query(self) -> ast.Query:
        self._parse_prologue()
        if self.at_keyword("select"):
            query = self._parse_select()
        elif self.at_keyword("ask"):
            query = self._parse_ask()
        elif self.at_keyword("construct"):
            query = self._parse_construct()
        elif self.at_keyword("delete", "insert"):
            query = self._parse_update()
        else:
            tok = self.peek()
            raise SparqlParseError(
                f"expected SELECT/ASK/CONSTRUCT/DELETE/INSERT, "
                f"found {tok.value!r}"
            )
        self.expect("eof")
        return query

    def _parse_prologue(self) -> None:
        while self.at_keyword("prefix", "base"):
            tok = self.next()
            if tok.value == "prefix":
                pname = self.expect("pname").value
                if not pname.endswith(":"):
                    raise SparqlParseError(f"bad PREFIX name {pname!r}")
                iri = self.expect("iri").value
                self.prefixes[pname[:-1]] = iri[1:-1]
            else:
                self.expect("iri")

    # -- SELECT / ASK --------------------------------------------------------

    def _parse_select(self) -> ast.SelectQuery:
        self.expect("keyword", "select")
        distinct = bool(self.accept("keyword", "distinct"))
        self.accept("keyword", "reduced")
        projections: List[ast.Projection] = []
        star = False
        while True:
            tok = self.peek()
            if tok.kind == "var":
                self.next()
                projections.append(ast.Projection(Variable(tok.value)))
            elif tok.kind == "op" and tok.value == "*" and not projections:
                self.next()
                star = True
                break
            elif tok.kind == "op" and tok.value == "(":
                self.next()
                expr = self._parse_expression()
                self.expect("keyword", "as")
                var = Variable(self.expect("var").value)
                self.expect("op", ")")
                projections.append(ast.Projection(var, expr))
            else:
                break
        if not star and not projections:
            raise SparqlParseError("SELECT needs projections or *")
        self.accept("keyword", "where")
        pattern = self._parse_group_graph_pattern()
        group_by: List[ast.Expression] = []
        having: List[ast.Expression] = []
        order_by: List[ast.OrderCondition] = []
        limit: Optional[int] = None
        offset = 0
        if self.at_keyword("group"):
            self.next()
            self.expect("keyword", "by")
            while True:
                tok = self.peek()
                if tok.kind == "var":
                    self.next()
                    group_by.append(ast.TermExpr(Variable(tok.value)))
                elif tok.kind == "op" and tok.value == "(":
                    self.next()
                    group_by.append(self._parse_expression())
                    self.expect("op", ")")
                else:
                    break
            if not group_by:
                raise SparqlParseError("GROUP BY needs at least one condition")
        if self.at_keyword("having"):
            self.next()
            while True:
                having.append(self._parse_constraint())
                if not (
                    self.peek().kind == "op"
                    and self.peek().value == "("
                    or self.peek().kind in ("pname", "iri")
                    or self.at_keyword(*_AGGREGATE_KEYWORDS)
                ):
                    break
        if self.at_keyword("order"):
            self.next()
            self.expect("keyword", "by")
            while True:
                tok = self.peek()
                if self.at_keyword("asc", "desc"):
                    kw = self.next().value
                    self.expect("op", "(")
                    expr = self._parse_expression()
                    self.expect("op", ")")
                    order_by.append(
                        ast.OrderCondition(expr, descending=kw == "desc")
                    )
                elif tok.kind == "var":
                    self.next()
                    order_by.append(
                        ast.OrderCondition(ast.TermExpr(Variable(tok.value)))
                    )
                else:
                    break
            if not order_by:
                raise SparqlParseError("ORDER BY needs at least one condition")
        if self.at_keyword("limit"):
            self.next()
            limit = int(self.expect("number").value)
        if self.at_keyword("offset"):
            self.next()
            offset = int(self.expect("number").value)
        if self.at_keyword("limit") and limit is None:
            self.next()
            limit = int(self.expect("number").value)
        return ast.SelectQuery(
            projections=tuple(projections),
            pattern=pattern,
            distinct=distinct,
            group_by=tuple(group_by),
            having=tuple(having),
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
        )

    def _parse_ask(self) -> ast.AskQuery:
        self.expect("keyword", "ask")
        self.accept("keyword", "where")
        return ast.AskQuery(self._parse_group_graph_pattern())

    def _parse_construct(self) -> ast.ConstructQuery:
        self.expect("keyword", "construct")
        template = self._parse_quad_template()
        self.expect("keyword", "where")
        pattern = self._parse_group_graph_pattern()
        limit = None
        offset = 0
        if self.at_keyword("limit"):
            self.next()
            limit = int(self.expect("number").value)
        if self.at_keyword("offset"):
            self.next()
            offset = int(self.expect("number").value)
        return ast.ConstructQuery(
            template=template, pattern=pattern, limit=limit, offset=offset
        )

    # -- updates ---------------------------------------------------------------

    def _parse_update(self) -> ast.UpdateRequest:
        delete_template: Tuple[ast.TriplePattern, ...] = ()
        insert_template: Tuple[ast.TriplePattern, ...] = ()
        where: Optional[ast.GroupGraphPattern] = None
        if self.at_keyword("delete"):
            self.next()
            if self.accept("keyword", "data"):
                return ast.UpdateRequest(
                    delete_template=self._parse_quad_template()
                )
            if self.at_keyword("where"):
                # DELETE WHERE { pattern } — template is the pattern itself.
                self.next()
                pattern = self._parse_group_graph_pattern()
                template = _pattern_as_template(pattern)
                return ast.UpdateRequest(
                    delete_template=template, where_pattern=pattern
                )
            delete_template = self._parse_quad_template()
        if self.at_keyword("insert"):
            self.next()
            if self.accept("keyword", "data"):
                return ast.UpdateRequest(
                    insert_template=self._parse_quad_template()
                )
            insert_template = self._parse_quad_template()
        self.expect("keyword", "where")
        where = self._parse_group_graph_pattern()
        return ast.UpdateRequest(
            delete_template=delete_template,
            insert_template=insert_template,
            where_pattern=where,
        )

    def _parse_quad_template(self) -> Tuple[ast.TriplePattern, ...]:
        self.expect("op", "{")
        triples = self._parse_triples_block()
        self.expect("op", "}")
        return tuple(triples)

    # -- graph patterns ----------------------------------------------------

    def _parse_group_graph_pattern(self) -> ast.GroupGraphPattern:
        self.expect("op", "{")
        elements: List[ast.PatternElement] = []
        pending_triples: List[ast.TriplePattern] = []

        def flush() -> None:
            if pending_triples:
                elements.append(ast.BGP(tuple(pending_triples)))
                pending_triples.clear()

        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.value == "}":
                self.next()
                break
            if tok.kind == "eof":
                raise SparqlParseError("unterminated group pattern")
            if self.at_keyword("filter"):
                self.next()
                flush()
                elements.append(ast.Filter(self._parse_constraint()))
                self.accept("op", ".")
                continue
            if self.at_keyword("optional"):
                self.next()
                flush()
                elements.append(
                    ast.Optional_(self._parse_group_graph_pattern())
                )
                self.accept("op", ".")
                continue
            if self.at_keyword("minus"):
                self.next()
                flush()
                elements.append(
                    ast.MinusPattern(self._parse_group_graph_pattern())
                )
                self.accept("op", ".")
                continue
            if self.at_keyword("bind"):
                self.next()
                flush()
                self.expect("op", "(")
                expr = self._parse_expression()
                self.expect("keyword", "as")
                var = Variable(self.expect("var").value)
                self.expect("op", ")")
                elements.append(ast.Bind(expr, var))
                self.accept("op", ".")
                continue
            if self.at_keyword("select"):
                # Bare subselect as the group body (WHERE { SELECT ... }).
                flush()
                sub = self._parse_select()
                elements.append(ast.SubSelect(sub))
                self.accept("op", ".")
                continue
            if tok.kind == "op" and tok.value == "{":
                flush()
                # Subselect or nested group (possibly in a UNION chain).
                if (
                    self.peek(1).kind == "keyword"
                    and self.peek(1).value == "select"
                ):
                    self.next()
                    sub = self._parse_select()
                    self.expect("op", "}")
                    elements.append(ast.SubSelect(sub))
                    self.accept("op", ".")
                    continue
                left: ast.PatternElement = self._parse_group_graph_pattern()
                while self.at_keyword("union"):
                    self.next()
                    right = self._parse_group_graph_pattern()
                    assert isinstance(left, (ast.GroupGraphPattern, ast.UnionPattern))
                    left_group = (
                        left
                        if isinstance(left, ast.GroupGraphPattern)
                        else ast.GroupGraphPattern((left,))
                    )
                    left = ast.UnionPattern(left_group, right)
                elements.append(left)
                self.accept("op", ".")
                continue
            # Otherwise: triples.
            triples = self._parse_triples_same_subject()
            pending_triples.extend(triples)
            if not self.accept("op", "."):
                tok = self.peek()
                if tok.kind == "op" and tok.value == "}":
                    continue
        flush()
        return ast.GroupGraphPattern(tuple(elements))

    def _parse_triples_block(self) -> List[ast.TriplePattern]:
        triples: List[ast.TriplePattern] = []
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.value == "}":
                break
            triples.extend(self._parse_triples_same_subject())
            if not self.accept("op", "."):
                break
        return triples

    def _parse_triples_same_subject(self) -> List[ast.TriplePattern]:
        subject = self._parse_graph_term()
        triples: List[ast.TriplePattern] = []
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_graph_term()
                triples.append(ast.TriplePattern(subject, predicate, obj))
                if self.accept("op", ","):
                    continue
                break
            if self.accept("op", ";"):
                tok = self.peek()
                if tok.kind == "op" and tok.value in (".", "}"):
                    break
                continue
            break
        return triples

    def _parse_verb(self) -> Term:
        if self.at_keyword("a"):
            self.next()
            return RDF.type
        tok = self.peek()
        if tok.kind == "var":
            self.next()
            return Variable(tok.value)
        return self._parse_iri()

    def _parse_graph_term(self) -> Term:
        tok = self.peek()
        if tok.kind == "var":
            self.next()
            return Variable(tok.value)
        if tok.kind == "iri":
            return self._parse_iri()
        if tok.kind == "pname":
            return self._parse_iri()
        if tok.kind == "string":
            return self._parse_rdf_literal()
        if tok.kind == "number":
            self.next()
            if re.search(r"[.eE]", tok.value):
                return Literal(tok.value, datatype=XSD.base + "double")
            return Literal(tok.value, datatype=XSD.base + "integer")
        if tok.kind == "keyword" and tok.value in ("true", "false"):
            self.next()
            return Literal(tok.value, datatype=XSD.base + "boolean")
        raise SparqlParseError(
            f"unexpected token {tok.value!r} at offset {tok.pos}"
        )

    def _parse_rdf_literal(self) -> Literal:
        raw = self.expect("string").value
        text = _unescape(raw[1:-1])
        if self.accept("dtype"):
            tok = self.peek()
            if tok.kind == "iri":
                self.next()
                return Literal(text, datatype=tok.value[1:-1])
            dt = self._parse_iri()
            return Literal(text, datatype=dt.value)
        lang = self.accept("lang")
        if lang:
            return Literal(text, language=lang.value[1:])
        return Literal(text)

    def _parse_iri(self) -> URI:
        tok = self.next()
        if tok.kind == "iri":
            return URI(tok.value[1:-1])
        if tok.kind == "pname":
            prefix, _, local = tok.value.partition(":")
            base = self.prefixes.get(prefix)
            if base is None:
                raise SparqlParseError(f"unknown prefix {prefix!r}")
            return URI(base + local)
        raise SparqlParseError(
            f"expected an IRI, found {tok.value!r} at offset {tok.pos}"
        )

    # -- expressions ---------------------------------------------------------

    def _parse_constraint(self) -> ast.Expression:
        tok = self.peek()
        if tok.kind == "op" and tok.value == "(":
            self.next()
            expr = self._parse_expression()
            self.expect("op", ")")
            return expr
        return self._parse_primary()

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        left = self._parse_and()
        while self.peek().kind == "op" and self.peek().value == "||":
            self.next()
            left = ast.BinaryExpr("||", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expression:
        left = self._parse_relational()
        while self.peek().kind == "op" and self.peek().value == "&&":
            self.next()
            left = ast.BinaryExpr("&&", left, self._parse_relational())
        return left

    def _parse_relational(self) -> ast.Expression:
        left = self._parse_additive()
        tok = self.peek()
        if tok.kind == "op" and tok.value in ("=", "!=", "<", "<=", ">", ">="):
            self.next()
            right = self._parse_additive()
            return ast.BinaryExpr(tok.value, left, right)
        return left

    def _parse_additive(self) -> ast.Expression:
        left = self._parse_multiplicative()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.value in ("+", "-"):
                self.next()
                left = ast.BinaryExpr(
                    tok.value, left, self._parse_multiplicative()
                )
            elif tok.kind == "number" and tok.value[0] in "+-":
                # The lexer folded the sign into the number.
                self.next()
                num = ast.TermExpr(_number_literal(tok.value.lstrip("+-")))
                op = "+" if tok.value[0] == "+" else "-"
                left = ast.BinaryExpr(op, left, num)
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expression:
        left = self._parse_unary()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.value in ("*", "/"):
                self.next()
                left = ast.BinaryExpr(tok.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expression:
        tok = self.peek()
        if tok.kind == "op" and tok.value in ("!", "-", "+"):
            self.next()
            return ast.UnaryExpr(tok.value, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        tok = self.peek()
        if tok.kind == "op" and tok.value == "(":
            self.next()
            expr = self._parse_expression()
            self.expect("op", ")")
            return expr
        if tok.kind == "var":
            self.next()
            return ast.TermExpr(Variable(tok.value))
        if tok.kind == "string":
            return ast.TermExpr(self._parse_rdf_literal())
        if tok.kind == "number":
            self.next()
            return ast.TermExpr(_number_literal(tok.value))
        if tok.kind == "keyword" and tok.value in ("true", "false"):
            self.next()
            return ast.TermExpr(
                Literal(tok.value, datatype=XSD.base + "boolean")
            )
        if tok.kind == "keyword" and tok.value in _AGGREGATE_KEYWORDS:
            return self._parse_aggregate()
        if self.at_keyword("not"):
            self.next()
            self.expect("keyword", "exists")
            return ast.ExistsExpr(
                self._parse_group_graph_pattern(), negated=True
            )
        if self.at_keyword("exists"):
            self.next()
            return ast.ExistsExpr(self._parse_group_graph_pattern())
        if tok.kind == "word" and tok.value.lower() in _BUILTIN_FUNCTIONS:
            self.next()
            name = tok.value.lower()
            args = self._parse_arg_list()
            return ast.FunctionCall(name, tuple(args))
        if tok.kind in ("pname", "iri"):
            uri = self._parse_iri()
            if self.peek().kind == "op" and self.peek().value == "(":
                args = self._parse_arg_list()
                local = uri.local_name()
                if (
                    uri.value.startswith(
                        WELL_KNOWN_PREFIXES["strdf"]
                    )
                    and local.lower() in SPATIAL_AGGREGATE_LOCALNAMES
                    and len(args) == 1
                ):
                    # strdf:union(?g) is a spatial aggregate in grouped
                    # queries and a (disallowed) unary call otherwise; the
                    # evaluator decides based on context.
                    return ast.Aggregate(uri.value, args[0])
                return ast.FunctionCall(uri.value, tuple(args))
            return ast.TermExpr(uri)
        raise SparqlParseError(
            f"unexpected token {tok.value!r} in expression at offset {tok.pos}"
        )

    def _parse_aggregate(self) -> ast.Expression:
        name = self.next().value
        self.expect("op", "(")
        distinct = bool(self.accept("keyword", "distinct"))
        if self.peek().kind == "op" and self.peek().value == "*":
            self.next()
            self.expect("op", ")")
            return ast.Aggregate(name, None, distinct)
        arg = self._parse_expression()
        self.expect("op", ")")
        return ast.Aggregate(name, arg, distinct)

    def _parse_arg_list(self) -> List[ast.Expression]:
        self.expect("op", "(")
        args: List[ast.Expression] = []
        if not (self.peek().kind == "op" and self.peek().value == ")"):
            args.append(self._parse_expression())
            while self.accept("op", ","):
                args.append(self._parse_expression())
        self.expect("op", ")")
        return args


def _number_literal(text: str) -> Literal:
    if re.search(r"[.eE]", text):
        return Literal(text, datatype=XSD.base + "double")
    return Literal(text, datatype=XSD.base + "integer")


_ESCAPES = {"t": "\t", "n": "\n", "r": "\r", '"': '"', "'": "'", "\\": "\\"}


def _unescape(text: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            out.append(_ESCAPES.get(text[i + 1], text[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _pattern_as_template(
    pattern: ast.GroupGraphPattern,
) -> Tuple[ast.TriplePattern, ...]:
    triples: List[ast.TriplePattern] = []
    for element in pattern.elements:
        if isinstance(element, ast.BGP):
            triples.extend(element.triples)
        else:
            raise SparqlParseError(
                "DELETE WHERE supports only plain triple patterns"
            )
    return tuple(triples)


def parse(text: str) -> ast.Query:
    """Parse stSPARQL text into an AST."""
    return Parser(text).parse_query()
