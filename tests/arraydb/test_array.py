"""SciQL dimensional arrays."""

import numpy as np
import pytest

from repro.arraydb.array import Dimension, SciQLArray
from repro.arraydb.errors import ArrayDBError
from repro.arraydb.types import DOUBLE, INTEGER


@pytest.fixture
def array():
    arr = SciQLArray(
        "img",
        [Dimension("x", 0, 3), Dimension("y", 0, 2)],
        [("v", DOUBLE)],
    )
    arr.set_attribute("v", np.arange(6, dtype=float).reshape(3, 2))
    return arr


class TestConstruction:
    def test_needs_dimensions(self):
        with pytest.raises(ArrayDBError):
            SciQLArray("a", [], [("v", DOUBLE)])

    def test_needs_attributes(self):
        with pytest.raises(ArrayDBError):
            SciQLArray("a", [Dimension("x", 0, 2)], [])

    def test_cells_start_null(self):
        arr = SciQLArray(
            "a", [Dimension("x", 0, 2)], [("v", DOUBLE)]
        )
        assert arr.attribute_nulls("v").all()

    def test_from_numpy(self):
        grid = np.ones((4, 5))
        arr = SciQLArray.from_numpy("a", grid)
        assert arr.shape == (4, 5)
        assert not arr.attribute_nulls("v").any()

    def test_nonzero_dimension_start(self):
        arr = SciQLArray(
            "a", [Dimension("x", 10, 13)], [("v", DOUBLE)]
        )
        assert arr.dimension("x").size == 3


class TestScan:
    def test_full_scan_dense(self, array):
        result = array.scan()
        assert result.num_rows == 6
        assert result.column_names == ["x", "y", "v"]
        rows = list(result.rows())
        assert rows[0] == (0, 0, 0.0)
        assert rows[-1] == (2, 1, 5.0)

    def test_sliced_scan(self, array):
        result = array.scan([(1, 3), (0, 1)])
        assert result.num_rows == 2
        assert [r[2] for r in result.rows()] == [2.0, 4.0]

    def test_slice_clipped_to_bounds(self, array):
        result = array.scan([(-5, 100), None])
        assert result.num_rows == 6

    def test_empty_slice(self, array):
        result = array.scan([(5, 9), None])
        assert result.num_rows == 0


class TestAssignment:
    def test_assign_cells(self, array):
        n = array.assign_cells(
            [np.array([0, 2]), np.array([1, 0])],
            "v",
            np.array([100.0, 200.0]),
        )
        assert n == 2
        assert array.attribute_grid("v")[0, 1] == 100.0
        assert array.attribute_grid("v")[2, 0] == 200.0

    def test_out_of_bounds_ignored(self, array):
        n = array.assign_cells(
            [np.array([0, 99]), np.array([0, 0])],
            "v",
            np.array([7.0, 8.0]),
        )
        assert n == 1

    def test_assign_respects_dimension_offsets(self):
        arr = SciQLArray(
            "a",
            [Dimension("x", 10, 12), Dimension("y", 0, 2)],
            [("v", DOUBLE)],
        )
        arr.assign_cells(
            [np.array([10]), np.array([1])], "v", np.array([5.0])
        )
        assert arr.attribute_grid("v")[0, 1] == 5.0

    def test_unknown_attribute(self, array):
        with pytest.raises(ArrayDBError):
            array.set_attribute("w", np.zeros((3, 2)))

    def test_shape_mismatch(self, array):
        with pytest.raises(ArrayDBError):
            array.set_attribute("v", np.zeros((2, 2)))


class TestMultiAttribute:
    def test_two_attributes(self):
        arr = SciQLArray(
            "a",
            [Dimension("x", 0, 2), Dimension("y", 0, 2)],
            [("t039", DOUBLE), ("t108", DOUBLE)],
        )
        arr.set_attribute("t039", np.full((2, 2), 300.0))
        arr.set_attribute("t108", np.full((2, 2), 290.0))
        result = arr.scan()
        assert result.column_names == ["x", "y", "t039", "t108"]
        assert all(r[2] - r[3] == 10.0 for r in result.rows())
