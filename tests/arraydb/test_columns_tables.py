"""Column and table storage layer."""

import numpy as np
import pytest

from repro.arraydb.column import Column, concat_columns
from repro.arraydb.errors import ArrayDBError
from repro.arraydb.table import ResultTable, Table
from repro.arraydb.types import (
    BOOLEAN,
    DOUBLE,
    INTEGER,
    VARCHAR,
    infer_type,
    parse_type,
)


class TestTypes:
    def test_parse_basic(self):
        assert parse_type("INTEGER") is INTEGER
        assert parse_type("float").name == "FLOAT"
        assert parse_type("VARCHAR(32)") is VARCHAR

    def test_parse_unknown_raises(self):
        with pytest.raises(ArrayDBError):
            parse_type("GEOGRAPHY")

    def test_infer(self):
        assert infer_type(1) is INTEGER
        assert infer_type(2.5) is DOUBLE
        assert infer_type(True) is BOOLEAN
        assert infer_type("x") is VARCHAR


class TestColumn:
    def test_from_values_with_nulls(self):
        col = Column.from_values("c", [1, None, 3], INTEGER)
        assert col.to_list() == [1, None, 3]
        assert col.is_null().tolist() == [False, True, False]

    def test_no_null_mask_when_dense(self):
        col = Column.from_values("c", [1, 2, 3], INTEGER)
        assert col.nulls is None

    def test_filter_and_take(self):
        col = Column.from_values("c", [10, 20, 30, 40], INTEGER)
        assert col.filter(np.array([True, False, True, False])).to_list() == [
            10,
            30,
        ]
        assert col.take(np.array([3, 0])).to_list() == [40, 10]

    def test_concat(self):
        a = Column.from_values("c", [1, 2], INTEGER)
        b = Column.from_values("c", [None, 4], INTEGER)
        merged = concat_columns("c", [a, b])
        assert merged.to_list() == [1, 2, None, 4]

    def test_string_column(self):
        col = Column.from_values("s", ["a", None, "c"])
        assert col.to_list() == ["a", None, "c"]


class TestTable:
    def test_insert_and_scan(self):
        t = Table("t", [("a", INTEGER), ("b", DOUBLE)])
        t.insert_rows([(1, 1.5), (2, 2.5)])
        t.insert_rows([(3, None)])
        scan = t.scan()
        assert scan.num_rows == 3
        assert list(scan.rows()) == [(1, 1.5), (2, 2.5), (3, None)]

    def test_row_width_validated(self):
        t = Table("t", [("a", INTEGER)])
        with pytest.raises(ArrayDBError):
            t.insert_rows([(1, 2)])

    def test_delete_where_mask(self):
        t = Table("t", [("a", INTEGER)])
        t.insert_rows([(i,) for i in range(5)])
        removed = t.delete_where(np.array([True, False, True, False, False]))
        assert removed == 2
        assert [r[0] for r in t.scan().rows()] == [1, 3, 4]

    def test_scan_cache_invalidation(self):
        t = Table("t", [("a", INTEGER)])
        t.insert_rows([(1,)])
        first = t.scan()
        t.insert_rows([(2,)])
        assert t.scan().num_rows == 2
        assert first.num_rows == 1  # old snapshot untouched

    def test_empty_schema_rejected(self):
        with pytest.raises(ArrayDBError):
            Table("t", [])


class TestResultTable:
    def test_ragged_rejected(self):
        a = Column.from_values("a", [1, 2])
        b = Column.from_values("b", [1])
        with pytest.raises(ArrayDBError):
            ResultTable([a, b])

    def test_to_dicts(self):
        rt = ResultTable(
            [
                Column.from_values("x", [1, 2]),
                Column.from_values("y", ["a", "b"]),
            ]
        )
        assert rt.to_dicts() == [
            {"x": 1, "y": "a"},
            {"x": 2, "y": "b"},
        ]

    def test_column_lookup_error(self):
        rt = ResultTable([Column.from_values("x", [1])])
        with pytest.raises(ArrayDBError):
            rt.column("nope")
