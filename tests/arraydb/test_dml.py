"""DML: INSERT, UPDATE, DELETE."""

import numpy as np
import pytest

from repro.arraydb import MonetDB


@pytest.fixture
def db():
    db = MonetDB()
    db.execute("CREATE TABLE t (a INTEGER, b FLOAT)")
    db.execute("INSERT INTO t VALUES (1, 10.0), (2, 20.0), (3, 30.0)")
    return db


class TestDelete:
    def test_delete_where(self, db):
        db.execute("DELETE FROM t WHERE a = 2")
        r = db.execute("SELECT a FROM t ORDER BY a")
        assert [d["a"] for d in r.to_dicts()] == [1, 3]

    def test_delete_all(self, db):
        db.execute("DELETE FROM t")
        assert db.execute("SELECT COUNT(*) AS n FROM t").to_dicts() == [
            {"n": 0}
        ]


class TestUpdate:
    def test_update_where(self, db):
        db.execute("UPDATE t SET b = b * 10 WHERE a >= 2")
        r = db.execute("SELECT b FROM t ORDER BY a")
        assert [d["b"] for d in r.to_dicts()] == [10.0, 200.0, 300.0]

    def test_update_all(self, db):
        db.execute("UPDATE t SET b = 0.0")
        r = db.execute("SELECT SUM(b) AS s FROM t")
        assert r.to_dicts() == [{"s": 0.0}]

    def test_update_array_attribute(self):
        db = MonetDB()
        db.execute(
            "CREATE ARRAY a (x INTEGER DIMENSION [0:3], v FLOAT)"
        )
        db.get_array("a").set_attribute("v", np.array([1.0, 2.0, 3.0]))
        db.execute("UPDATE a SET v = v + 100 WHERE x > 0")
        r = db.execute("SELECT v FROM a")
        assert [d["v"] for d in r.to_dicts()] == [1.0, 102.0, 103.0]


class TestInsertColumnsList:
    def test_named_columns_reordered(self, db):
        db.execute("INSERT INTO t (b, a) VALUES (40.0, 4)")
        r = db.execute("SELECT a, b FROM t WHERE a = 4")
        assert r.to_dicts() == [{"a": 4, "b": 40.0}]

    def test_missing_column_is_null(self, db):
        db.execute("INSERT INTO t (a) VALUES (9)")
        r = db.execute("SELECT b FROM t WHERE a = 9")
        assert r.to_dicts() == [{"b": None}]


class TestScript:
    def test_execute_script(self):
        db = MonetDB()
        results = db.execute_script(
            """
            CREATE TABLE s (v INTEGER);
            INSERT INTO s VALUES (1), (2);
            SELECT SUM(v) AS total FROM s;
            """
        )
        assert results[-1].to_dicts() == [{"total": 3}]
        assert db.last_stats.statement_count == 3
