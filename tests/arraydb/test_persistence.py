"""Catalog save/load round trips — and manifest tamper resistance."""

import json
import os

import numpy as np
import pytest

from repro.arraydb import MonetDB
from repro.arraydb.errors import ArrayDBError
from repro.arraydb.persistence import load_catalog, save_catalog


@pytest.fixture
def populated_db():
    db = MonetDB()
    db.execute("CREATE TABLE obs (station INTEGER, temp FLOAT, name VARCHAR)")
    db.execute(
        "INSERT INTO obs VALUES (1, 300.5, 'alpha'), (2, NULL, 'beta')"
    )
    db.execute(
        "CREATE ARRAY img (x INTEGER DIMENSION [2:5], "
        "y INTEGER DIMENSION [0:2], v FLOAT)"
    )
    db.execute("INSERT INTO img VALUES (2, 0, 1.5), (4, 1, 9.0)")
    return db


class TestRoundtrip:
    def test_table_roundtrip(self, populated_db, tmp_path):
        save_catalog(populated_db, str(tmp_path))
        restored = load_catalog(str(tmp_path))
        rows = restored.execute("SELECT * FROM obs ORDER BY station").to_dicts()
        assert rows == [
            {"station": 1, "temp": 300.5, "name": "alpha"},
            {"station": 2, "temp": None, "name": "beta"},
        ]

    def test_array_roundtrip(self, populated_db, tmp_path):
        save_catalog(populated_db, str(tmp_path))
        restored = load_catalog(str(tmp_path))
        arr = restored.get_array("img")
        assert arr.dimension("x").start == 2
        rows = restored.execute(
            "SELECT [x], [y], v FROM img WHERE v IS NOT NULL ORDER BY v"
        ).to_dicts()
        assert rows == [
            {"x": 2, "y": 0, "v": 1.5},
            {"x": 4, "y": 1, "v": 9.0},
        ]
        # Unset cells stay NULL after the round trip.
        total = restored.execute("SELECT COUNT(*) AS n FROM img").to_dicts()
        non_null = restored.execute(
            "SELECT COUNT(v) AS n FROM img"
        ).to_dicts()
        assert total == [{"n": 6}]
        assert non_null == [{"n": 2}]

    def test_queries_work_after_restore(self, populated_db, tmp_path):
        save_catalog(populated_db, str(tmp_path))
        restored = load_catalog(str(tmp_path))
        restored.execute("INSERT INTO obs VALUES (3, 290.0, 'gamma')")
        r = restored.execute("SELECT COUNT(*) AS n FROM obs")
        assert r.to_dicts() == [{"n": 3}]

    def test_empty_table_roundtrip(self, tmp_path):
        db = MonetDB()
        db.execute("CREATE TABLE empty (a INTEGER)")
        save_catalog(db, str(tmp_path))
        restored = load_catalog(str(tmp_path))
        assert restored.execute("SELECT COUNT(*) AS n FROM empty").to_dicts() \
            == [{"n": 0}]

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ArrayDBError):
            load_catalog(str(tmp_path))

    def test_loads_never_unpickle(self, populated_db, tmp_path, monkeypatch):
        """The loader must pass allow_pickle=False on every np.load."""
        save_catalog(populated_db, str(tmp_path))
        real_load = np.load
        seen = []

        def spying_load(*args, **kwargs):
            seen.append(kwargs.get("allow_pickle", "missing"))
            return real_load(*args, **kwargs)

        monkeypatch.setattr(np, "load", spying_load)
        load_catalog(str(tmp_path))
        assert seen and all(flag is False for flag in seen)

    def test_vault_attachment_remembered(self, tmp_path):
        from datetime import datetime, timezone

        from repro.seviri.hrit import HRITDriver, write_hrit_segments

        image_dir = tmp_path / "image"
        write_hrit_segments(
            str(image_dir),
            "MSG2",
            "IR_039",
            datetime(2010, 8, 22, tzinfo=timezone.utc),
            np.full((4, 4), 300.0),
            1,
        )
        db = MonetDB()
        db.vault.register_driver(HRITDriver())
        db.vault.attach(str(image_dir), name="scene")
        catalog_dir = tmp_path / "catalog"
        save_catalog(db, str(catalog_dir))

        restored = MonetDB()
        restored.vault.register_driver(HRITDriver())
        load_catalog(str(catalog_dir), db=restored)
        assert restored.vault.is_attached("scene")
        r = restored.execute("SELECT COUNT(*) AS n FROM scene")
        assert r.to_dicts() == [{"n": 16}]


class TestTamperedManifest:
    """The manifest is plain JSON anyone can edit — a tampered one must
    fail with a clean :class:`ArrayDBError`, never escape the catalog
    directory and never unpickle anything."""

    def _rewrite(self, directory, mutate):
        path = os.path.join(str(directory), "catalog.json")
        with open(path) as f:
            manifest = json.load(f)
        mutate(manifest)
        with open(path, "w") as f:
            json.dump(manifest, f)

    @pytest.mark.parametrize(
        "filename",
        [
            "/etc/passwd",
            "../outside.npz",
            "sub/dir.npz",
            "..",
            ".",
            "",
            None,
        ],
    )
    def test_escaping_file_names_rejected(
        self, populated_db, tmp_path, filename
    ):
        save_catalog(populated_db, str(tmp_path))
        self._rewrite(
            tmp_path,
            lambda m: m["objects"][0].__setitem__("file", filename),
        )
        with pytest.raises(ArrayDBError):
            load_catalog(str(tmp_path))

    def test_missing_bundle_is_a_clean_error(
        self, populated_db, tmp_path
    ):
        save_catalog(populated_db, str(tmp_path))
        self._rewrite(
            tmp_path,
            lambda m: m["objects"][0].__setitem__("file", "ghost.npz"),
        )
        with pytest.raises(ArrayDBError, match="ghost.npz"):
            load_catalog(str(tmp_path))

    def test_garbage_bundle_is_a_clean_error(
        self, populated_db, tmp_path
    ):
        save_catalog(populated_db, str(tmp_path))
        with open(tmp_path / "obs.npz", "wb") as f:
            f.write(b"this is not an npz archive")
        with pytest.raises(ArrayDBError, match="obs"):
            load_catalog(str(tmp_path))

    def test_pickled_payload_is_refused_not_executed(
        self, populated_db, tmp_path
    ):
        """A manifest pointing at a pickle bomb raises instead of
        executing it (np.load with allow_pickle=False refuses object
        arrays)."""
        save_catalog(populated_db, str(tmp_path))
        bomb = tmp_path / "obs.npz"

        class Boom:
            def __reduce__(self):
                return (os.system, ("true",))

        np.savez(bomb, values_station=np.array([Boom()], dtype=object))
        with pytest.raises(ArrayDBError):
            load_catalog(str(tmp_path))

    def test_unsupported_version_rejected(self, populated_db, tmp_path):
        save_catalog(populated_db, str(tmp_path))
        self._rewrite(
            tmp_path, lambda m: m.__setitem__("version", 99)
        )
        with pytest.raises(ArrayDBError, match="version"):
            load_catalog(str(tmp_path))
