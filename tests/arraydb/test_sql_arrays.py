"""SciQL array features: dimensions, slicing, structural grouping,
element access, INSERT INTO array SELECT — everything Figure 4 needs."""

import numpy as np
import pytest

from repro.arraydb import MonetDB
from repro.arraydb.errors import SQLRuntimeError
from repro.core.sciql_chain import figure4_query


@pytest.fixture
def db():
    db = MonetDB()
    db.execute(
        "CREATE ARRAY img (x INTEGER DIMENSION [0:4], "
        "y INTEGER DIMENSION [0:4], v FLOAT)"
    )
    db.get_array("img").set_attribute(
        "v", np.arange(16, dtype=float).reshape(4, 4)
    )
    return db


class TestArrayDDL:
    def test_create_and_scan(self, db):
        r = db.execute("SELECT COUNT(*) AS n FROM img")
        assert r.to_dicts() == [{"n": 16}]

    def test_dimension_projection(self, db):
        r = db.execute("SELECT [x], [y], v FROM img WHERE v = 5")
        assert r.to_dicts() == [{"x": 1, "y": 1, "v": 5.0}]

    def test_insert_values_into_array(self):
        db = MonetDB()
        db.execute(
            "CREATE ARRAY a (x INTEGER DIMENSION [0:2], v FLOAT)"
        )
        db.execute("INSERT INTO a VALUES (0, 1.5), (1, 2.5)")
        r = db.execute("SELECT v FROM a WHERE v IS NOT NULL")
        assert r.num_rows == 2

    def test_drop_array(self, db):
        db.execute("DROP ARRAY img")
        with pytest.raises(Exception):
            db.execute("SELECT * FROM img")


class TestSlicing:
    def test_crop_slice(self, db):
        r = db.execute("SELECT [x], [y], v FROM img[1:3][1:3]")
        assert r.num_rows == 4
        values = sorted(d["v"] for d in r.to_dicts())
        assert values == [5.0, 6.0, 9.0, 10.0]

    def test_slice_preserves_absolute_indices(self, db):
        r = db.execute("SELECT [x] FROM img[2:3][0:1]")
        assert r.to_dicts() == [{"x": 2}]


class TestElementAccess:
    def test_lookup_another_array(self, db):
        db.execute(
            "CREATE ARRAY lut (x INTEGER DIMENSION [0:4], "
            "y INTEGER DIMENSION [0:4], v FLOAT)"
        )
        db.get_array("lut").set_attribute("v", np.full((4, 4), 100.0))
        r = db.execute(
            "SELECT [x], [y], lut[x][y] + v AS total FROM img WHERE x = 0 AND y = 0"
        )
        assert r.to_dicts() == [{"x": 0, "y": 0, "total": 100.0}]

    def test_out_of_bounds_is_null(self, db):
        r = db.execute(
            "SELECT img[x + 10][y] AS far FROM img WHERE x = 0 AND y = 0"
        )
        assert r.to_dicts() == [{"far": None}]

    def test_computed_indices(self, db):
        # img[3 - x][y] mirrors the x axis.
        r = db.execute(
            "SELECT [x], img[3 - x][y] AS mirrored FROM img WHERE y = 0 AND x = 0"
        )
        assert r.to_dicts() == [{"x": 0, "mirrored": 12.0}]


class TestStructuralGrouping:
    def test_window_average_interior(self, db):
        r = db.execute(
            """SELECT [x], [y], AVG(v) AS m FROM img
               GROUP BY img[x-1:x+2][y-1:y+2]"""
        )
        grid = np.zeros((4, 4))
        for d in r.to_dicts():
            grid[d["x"], d["y"]] = d["m"]
        # Interior cell (1,1): mean of 3x3 block of 0..15 grid.
        block = np.arange(16).reshape(4, 4)[0:3, 0:3]
        assert grid[1, 1] == pytest.approx(block.mean())

    def test_window_average_corner_uses_inbounds_only(self, db):
        r = db.execute(
            """SELECT [x], [y], AVG(v) AS m FROM img
               GROUP BY img[x-1:x+2][y-1:y+2]"""
        )
        grid = {(d["x"], d["y"]): d["m"] for d in r.to_dicts()}
        corner_block = np.arange(16).reshape(4, 4)[0:2, 0:2]
        assert grid[(0, 0)] == pytest.approx(corner_block.mean())

    def test_window_count(self, db):
        r = db.execute(
            """SELECT [x], [y], COUNT(*) AS n FROM img
               GROUP BY img[x-1:x+2][y-1:y+2]"""
        )
        grid = {(d["x"], d["y"]): d["n"] for d in r.to_dicts()}
        assert grid[(0, 0)] == 4
        assert grid[(1, 1)] == 9
        assert grid[(0, 1)] == 6

    def test_window_min_max(self, db):
        r = db.execute(
            """SELECT [x], [y], MIN(v) AS lo, MAX(v) AS hi FROM img
               GROUP BY img[x-1:x+2][y-1:y+2]"""
        )
        grid = {(d["x"], d["y"]): (d["lo"], d["hi"]) for d in r.to_dicts()}
        assert grid[(1, 1)] == (0.0, 10.0)
        assert grid[(3, 3)] == (10.0, 15.0)

    def test_mixed_aggregate_and_value(self, db):
        r = db.execute(
            """SELECT [x], [y], v, AVG(v) AS m FROM img
               GROUP BY img[x-1:x+2][y-1:y+2]"""
        )
        first = r.to_dicts()[0]
        assert "v" in first and "m" in first

    def test_asymmetric_window(self, db):
        r = db.execute(
            """SELECT [x], [y], SUM(v) AS s FROM img
               GROUP BY img[x:x+2][y:y+1]"""
        )
        grid = {(d["x"], d["y"]): d["s"] for d in r.to_dicts()}
        base = np.arange(16).reshape(4, 4)
        assert grid[(0, 0)] == base[0, 0] + base[1, 0]

    def test_non_rectangular_input_rejected(self, db):
        with pytest.raises(SQLRuntimeError):
            db.execute(
                """SELECT [x], [y], AVG(v) AS m FROM (
                     SELECT [x], [y], v FROM img WHERE v <> 5
                   ) AS holes
                   GROUP BY holes[x-1:x+2][y-1:y+2]"""
            )


class TestInsertSelect:
    def test_array_to_array(self, db):
        db.execute(
            "CREATE ARRAY doubled (x INTEGER DIMENSION [0:4], "
            "y INTEGER DIMENSION [0:4], v FLOAT)"
        )
        db.execute("INSERT INTO doubled SELECT [x], [y], v * 2 FROM img")
        r = db.execute("SELECT MAX(v) AS m FROM doubled")
        assert r.to_dicts() == [{"m": 30.0}]

    def test_select_into_table(self, db):
        db.execute("CREATE TABLE flat (x INTEGER, y INTEGER, v FLOAT)")
        db.execute("INSERT INTO flat SELECT [x], [y], v FROM img WHERE v > 13")
        assert db.get_table("flat").num_rows == 2


class TestFigure4:
    def test_verbatim_query_runs(self):
        db = MonetDB()
        for name in ("hrit_T039_image_array", "hrit_T108_image_array"):
            db.execute(
                f"CREATE ARRAY {name} (x INTEGER DIMENSION [0:8], "
                "y INTEGER DIMENSION [0:8], v FLOAT)"
            )
        t039 = np.full((8, 8), 300.0)
        t108 = np.full((8, 8), 295.0)
        # Plant a fire pixel: hot in 3.9, slightly warm in 10.8.
        t039[4, 4] = 340.0
        t108[4, 4] = 296.5
        db.get_array("hrit_T039_image_array").set_attribute("v", t039)
        db.get_array("hrit_T108_image_array").set_attribute("v", t108)
        r = db.execute(figure4_query())
        conf = {(d["x"], d["y"]): d["confidence"] for d in r.to_dicts()}
        assert conf[(4, 4)] == 2
        assert conf[(0, 0)] == 0
        assert sum(1 for v in conf.values() if v > 0) == 1

    def test_potential_fire_class(self):
        db = MonetDB()
        for name in ("hrit_T039_image_array", "hrit_T108_image_array"):
            db.execute(
                f"CREATE ARRAY {name} (x INTEGER DIMENSION [0:8], "
                "y INTEGER DIMENSION [0:8], v FLOAT)"
            )
        t039 = np.full((8, 8), 300.0)
        t108 = np.full((8, 8), 295.0)
        # Milder anomaly: above 310 with diff in (8, 10] and moderate stddev.
        t039[4, 4] = 311.0
        t039[4, 5] = 304.0
        db.get_array("hrit_T039_image_array").set_attribute("v", t039)
        db.get_array("hrit_T108_image_array").set_attribute("v", t108)
        r = db.execute(figure4_query())
        conf = {(d["x"], d["y"]): d["confidence"] for d in r.to_dicts()}
        assert conf[(4, 4)] == 1
