"""Scalar SQL function coverage and the window-aggregate kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arraydb import MonetDB
from repro.arraydb.sql.functions import window_aggregate


@pytest.fixture
def db():
    db = MonetDB()
    db.execute("CREATE TABLE v (x FLOAT, s VARCHAR)")
    db.execute(
        "INSERT INTO v VALUES (4.0, 'Fire'), (-2.25, 'smoke'), (NULL, 'x')"
    )
    return db


def one(db, expr, where="s = 'Fire'"):
    return db.execute(f"SELECT {expr} AS r FROM v WHERE {where}").to_dicts()[
        0
    ]["r"]


class TestNumericFunctions:
    def test_sqrt(self, db):
        assert one(db, "SQRT(x)") == pytest.approx(2.0)

    def test_sqrt_negative_is_null(self, db):
        assert one(db, "SQRT(x)", "x < 0") is None

    def test_abs_floor_ceil_round(self, db):
        assert one(db, "ABS(x)", "x < 0") == pytest.approx(2.25)
        assert one(db, "FLOOR(x)", "x < 0") == -3.0
        assert one(db, "CEIL(x)", "x < 0") == -2.0
        assert one(db, "ROUND(x)", "x < 0") == -2.0

    def test_power_and_mod(self, db):
        assert one(db, "POWER(x, 2)") == pytest.approx(16.0)
        assert one(db, "MOD(x, 3)") == pytest.approx(1.0)

    def test_exp_ln(self, db):
        assert one(db, "LN(EXP(x))") == pytest.approx(4.0)

    def test_trig(self, db):
        assert one(db, "SIN(RADIANS(x * 0 + 90))") == pytest.approx(1.0)

    def test_least_greatest(self, db):
        assert one(db, "LEAST(x, 1.0)") == pytest.approx(1.0)
        assert one(db, "GREATEST(x, 1.0)") == pytest.approx(4.0)

    def test_sign(self, db):
        assert one(db, "SIGN(x)", "x < 0") == -1.0


class TestNullHandling:
    def test_coalesce(self, db):
        assert one(db, "COALESCE(x, -1.0)", "x IS NULL") == -1.0
        assert one(db, "COALESCE(x, -1.0)") == pytest.approx(4.0)

    def test_nullif(self, db):
        assert one(db, "NULLIF(x, 4.0)") is None
        assert one(db, "NULLIF(x, 5.0)") == pytest.approx(4.0)

    def test_null_propagates_through_arithmetic(self, db):
        assert one(db, "x + 1", "x IS NULL") is None


class TestStringFunctions:
    def test_upper_lower(self, db):
        assert one(db, "UPPER(s)") == "FIRE"
        assert one(db, "LOWER(s)") == "fire"

    def test_length(self, db):
        assert one(db, "LENGTH(s)", "s = 'smoke'") == 5

    def test_concat_operator(self, db):
        assert one(db, "s || '-front'") == "Fire-front"

    def test_like_patterns(self, db):
        r = db.execute("SELECT s FROM v WHERE s LIKE 'F_re'")
        assert r.to_dicts() == [{"s": "Fire"}]
        r = db.execute("SELECT s FROM v WHERE s LIKE '%ok%'")
        assert r.to_dicts() == [{"s": "smoke"}]

    def test_not_like(self, db):
        r = db.execute("SELECT COUNT(*) AS n FROM v WHERE s NOT LIKE '%o%'")
        assert r.to_dicts() == [{"n": 2}]


class TestWindowAggregateKernel:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=2, max_value=9),
        st.sampled_from(["avg", "sum", "count", "min", "max", "stddev"]),
        st.integers(min_value=-2, max_value=0),
        st.integers(min_value=1, max_value=3),
    )
    def test_matches_naive(self, nx, ny, agg, lo, hi):
        rng = np.random.default_rng(nx * 100 + ny)
        grid = rng.uniform(-5, 5, (nx, ny))
        fast, nulls = window_aggregate(agg, grid, None, [(lo, hi), (lo, hi)])
        assert nulls is None
        for i in range(nx):
            for j in range(ny):
                window = grid[
                    max(i + lo, 0) : min(i + hi, nx),
                    max(j + lo, 0) : min(j + hi, ny),
                ]
                expected = {
                    "avg": window.mean(),
                    "sum": window.sum(),
                    "count": window.size,
                    "min": window.min(),
                    "max": window.max(),
                    "stddev": window.std(),
                }[agg]
                # stddev uses the sum-of-squares formula (as the paper's
                # own SciQL query does), which loses precision for
                # near-constant windows.
                tolerance = 1e-6 if agg == "stddev" else 1e-9
                assert fast[i, j] == pytest.approx(
                    expected, abs=tolerance
                ), (agg, i, j)

    def test_null_cells_excluded(self):
        grid = np.ones((4, 4))
        grid[1, 1] = 100.0
        nulls = np.zeros((4, 4), dtype=bool)
        nulls[1, 1] = True
        avg, out_nulls = window_aggregate(
            "avg", grid, nulls, [(-1, 2), (-1, 2)]
        )
        assert avg[0, 0] == pytest.approx(1.0)
        assert out_nulls is None or not out_nulls[0, 0]

    def test_fully_null_window_is_null(self):
        grid = np.ones((3, 3))
        nulls = np.ones((3, 3), dtype=bool)
        _, out_nulls = window_aggregate(
            "avg", grid, nulls, [(-1, 2), (-1, 2)]
        )
        assert out_nulls is not None and out_nulls.all()
