"""SciQL parser: AST-level coverage."""

import pytest

from repro.arraydb.errors import SQLParseError
from repro.arraydb.sql import parse_script, parse_statement
from repro.arraydb.sql import ast


class TestDDL:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INTEGER, b VARCHAR(32), c DOUBLE)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert not stmt.is_array
        assert [c.name for c in stmt.columns] == ["a", "b", "c"]

    def test_create_array_with_ranges(self):
        stmt = parse_statement(
            "CREATE ARRAY img (x INTEGER DIMENSION [0:100], "
            "y INTEGER DIMENSION [10:20], v FLOAT)"
        )
        assert stmt.is_array
        dims = [c for c in stmt.columns if c.is_dimension]
        assert len(dims) == 2
        assert dims[1].dim_start is not None

    def test_create_array_paper_style(self):
        # The exact DDL shape from §3.1.2 (unbounded dimensions).
        stmt = parse_statement(
            "CREATE ARRAY hrit_T039_image_array "
            "(x INTEGER DIMENSION, y INTEGER DIMENSION, v FLOAT)"
        )
        assert stmt.is_array
        assert sum(c.is_dimension for c in stmt.columns) == 2

    def test_drop_if_exists(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, ast.DropObject)
        assert stmt.if_exists


class TestSelectGrammar:
    def test_dimension_projection(self):
        stmt = parse_statement("SELECT [x], [T039.y], v FROM a")
        first, second, third = stmt.items
        assert isinstance(first.expression, ast.DimensionRef)
        assert second.expression.qualifier == "T039"
        assert isinstance(third.expression, ast.ColumnRef)

    def test_structural_group(self):
        stmt = parse_statement(
            "SELECT [x], [y], AVG(v) FROM a GROUP BY a[x-1:x+2][y-1:y+2]"
        )
        group = stmt.structural_group
        assert group is not None
        assert group.source == "a"
        assert len(group.windows) == 2

    def test_value_group_not_structural(self):
        stmt = parse_statement("SELECT station FROM obs GROUP BY station")
        assert stmt.structural_group is None
        assert len(stmt.group_by) == 1

    def test_array_slice_in_from(self):
        stmt = parse_statement("SELECT v FROM img[0:10][20:30]")
        source = stmt.source
        assert isinstance(source, ast.TableRef)
        assert len(source.slices) == 2

    def test_element_access_expression(self):
        stmt = parse_statement("SELECT lut[x][y] FROM img")
        expr = stmt.items[0].expression
        assert isinstance(expr, ast.ArrayElement)
        assert expr.array_name == "lut"
        assert len(expr.indices) == 2

    def test_join_chain(self):
        stmt = parse_statement(
            "SELECT a.v FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        outer = stmt.source
        assert isinstance(outer, ast.Join)
        assert isinstance(outer.left, ast.Join)

    def test_subquery_with_stray_semicolon(self):
        # Figure 4 as printed has `) AS tmp1;` inside the FROM clause.
        stmt = parse_statement(
            "SELECT v FROM ( SELECT v FROM a ); AS tmp1"
        )
        assert isinstance(stmt.source, ast.SubqueryRef)
        assert stmt.source.alias == "tmp1"

    def test_case_expression(self):
        stmt = parse_statement(
            "SELECT CASE WHEN v > 1 THEN 2 WHEN v > 0 THEN 1 ELSE 0 END FROM a"
        )
        expr = stmt.items[0].expression
        assert isinstance(expr, ast.Case)
        assert len(expr.whens) == 2
        assert expr.default is not None

    def test_operator_precedence(self):
        stmt = parse_statement("SELECT a + b * c FROM t")
        expr = stmt.items[0].expression
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_comparison_and_logic(self):
        stmt = parse_statement(
            "SELECT v FROM t WHERE a > 1 AND b < 2 OR NOT c = 3"
        )
        where = stmt.where
        assert where.op == "or"

    def test_string_escaping(self):
        stmt = parse_statement("SELECT 'it''s fine' FROM t")
        assert stmt.items[0].expression.value == "it's fine"

    def test_script_parsing(self):
        statements = parse_script(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1);;"
            "SELECT * FROM t"
        )
        assert len(statements) == 3


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "CREATE TABLE (a INTEGER)",
            "SELECT * FROM t WHERE",
            "INSERT t VALUES (1)",
            "SELECT v FROM t GROUP",
            "SELECT CASE END FROM t",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(SQLParseError):
            parse_statement(bad)

    def test_trailing_garbage(self):
        with pytest.raises(SQLParseError):
            parse_statement("SELECT v FROM t extra garbage here ~~")
