"""SciQL SELECT evaluation over tables and arrays."""

import numpy as np
import pytest

from repro.arraydb import MonetDB
from repro.arraydb.errors import SQLParseError, SQLRuntimeError


@pytest.fixture
def db():
    db = MonetDB()
    db.execute("CREATE TABLE obs (station INTEGER, temp FLOAT, name VARCHAR)")
    db.execute(
        "INSERT INTO obs VALUES (1, 300.0, 'alpha'), (1, 310.0, 'beta'), "
        "(2, 295.5, 'gamma'), (3, NULL, 'delta')"
    )
    return db


class TestProjectionAndWhere:
    def test_select_star(self, db):
        r = db.execute("SELECT * FROM obs")
        assert r.num_rows == 4
        assert r.column_names == ["station", "temp", "name"]

    def test_expressions_and_aliases(self, db):
        r = db.execute("SELECT temp - 273.15 AS celsius FROM obs WHERE station = 1")
        assert [round(v["celsius"], 2) for v in r.to_dicts()] == [26.85, 36.85]

    def test_where_null_excluded(self, db):
        r = db.execute("SELECT station FROM obs WHERE temp > 0")
        assert r.num_rows == 3

    def test_is_null(self, db):
        r = db.execute("SELECT name FROM obs WHERE temp IS NULL")
        assert r.to_dicts() == [{"name": "delta"}]

    def test_is_not_null(self, db):
        assert db.execute(
            "SELECT name FROM obs WHERE temp IS NOT NULL"
        ).num_rows == 3

    def test_between(self, db):
        r = db.execute("SELECT name FROM obs WHERE temp BETWEEN 296 AND 305")
        assert r.to_dicts() == [{"name": "alpha"}]

    def test_in_list(self, db):
        r = db.execute("SELECT name FROM obs WHERE station IN (2, 3)")
        assert r.num_rows == 2

    def test_like(self, db):
        r = db.execute("SELECT name FROM obs WHERE name LIKE '%lph%'")
        assert r.to_dicts() == [{"name": "alpha"}]

    def test_case_expression(self, db):
        r = db.execute(
            """SELECT name, CASE WHEN temp > 305 THEN 'hot'
               WHEN temp > 299 THEN 'warm' ELSE 'cool' END AS label
               FROM obs WHERE temp IS NOT NULL ORDER BY temp"""
        )
        assert [d["label"] for d in r.to_dicts()] == ["cool", "warm", "hot"]

    def test_cast(self, db):
        r = db.execute("SELECT CAST(temp AS INTEGER) AS t FROM obs WHERE station = 2")
        assert r.to_dicts() == [{"t": 295}]

    def test_scalar_functions(self, db):
        r = db.execute(
            "SELECT SQRT(ABS(temp - 300.0)) AS s FROM obs WHERE station = 1"
        )
        got = [round(d["s"], 3) for d in r.to_dicts()]
        assert got == [0.0, pytest.approx(3.162, abs=1e-3)]

    def test_division_by_zero_is_null(self, db):
        r = db.execute("SELECT temp / (station - 1) AS ratio FROM obs WHERE station = 1")
        assert r.to_dicts()[0]["ratio"] is None


class TestAggregation:
    def test_global_aggregates(self, db):
        r = db.execute(
            "SELECT COUNT(*) AS n, COUNT(temp) AS nt, AVG(temp) AS m FROM obs"
        )
        row = r.to_dicts()[0]
        assert row["n"] == 4
        assert row["nt"] == 3  # NULL ignored
        assert row["m"] == pytest.approx((300 + 310 + 295.5) / 3)

    def test_group_by(self, db):
        r = db.execute(
            "SELECT station, MAX(temp) AS hi FROM obs GROUP BY station "
            "ORDER BY station"
        )
        assert [d["hi"] for d in r.to_dicts()] == [310.0, 295.5, None]

    def test_having(self, db):
        r = db.execute(
            "SELECT station FROM obs GROUP BY station HAVING COUNT(*) > 1"
        )
        assert r.to_dicts() == [{"station": 1}]

    def test_stddev(self, db):
        r = db.execute("SELECT STDDEV(temp) AS s FROM obs WHERE station = 1")
        assert r.to_dicts()[0]["s"] == pytest.approx(5.0)

    def test_aggregate_outside_group_rejected_in_where(self, db):
        with pytest.raises(SQLRuntimeError):
            db.execute("SELECT station FROM obs WHERE AVG(temp) > 1")


class TestOrderDistinctLimit:
    def test_order_by_desc(self, db):
        r = db.execute("SELECT name FROM obs WHERE temp IS NOT NULL ORDER BY temp DESC")
        assert [d["name"] for d in r.to_dicts()] == ["beta", "alpha", "gamma"]

    def test_distinct(self, db):
        r = db.execute("SELECT DISTINCT station FROM obs")
        assert r.num_rows == 3

    def test_limit_offset(self, db):
        r = db.execute("SELECT name FROM obs ORDER BY name LIMIT 2 OFFSET 1")
        assert [d["name"] for d in r.to_dicts()] == ["beta", "delta"]


class TestJoinsAndSubqueries:
    def test_equi_join(self, db):
        db.execute("CREATE TABLE stations (sid INTEGER, label VARCHAR)")
        db.execute("INSERT INTO stations VALUES (1, 'north'), (2, 'south')")
        r = db.execute(
            """SELECT o.name, s.label FROM obs AS o
               JOIN stations AS s ON o.station = s.sid ORDER BY o.name"""
        )
        assert [d["label"] for d in r.to_dicts()] == ["north", "north", "south"]

    def test_join_residual_condition(self, db):
        db.execute("CREATE TABLE limits (sid INTEGER, cutoff FLOAT)")
        db.execute("INSERT INTO limits VALUES (1, 305.0)")
        r = db.execute(
            """SELECT o.name FROM obs AS o
               JOIN limits AS l ON o.station = l.sid AND o.temp > l.cutoff"""
        )
        assert r.to_dicts() == [{"name": "beta"}]

    def test_subquery_in_from(self, db):
        r = db.execute(
            """SELECT hot.name FROM (
                 SELECT name, temp FROM obs WHERE temp > 299
               ) AS hot WHERE hot.temp < 305"""
        )
        assert r.to_dicts() == [{"name": "alpha"}]

    def test_nested_subqueries(self, db):
        r = db.execute(
            """SELECT COUNT(*) AS n FROM (
                 SELECT * FROM ( SELECT station FROM obs ) AS inner1
               ) AS outer1"""
        )
        assert r.to_dicts() == [{"n": 4}]


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT FROM obs",
            "SELECT * FROM obs WHERE",
            "SELECT * obs",
            "CREATE obs (a INTEGER)",
        ],
    )
    def test_rejects(self, db, bad):
        with pytest.raises(SQLParseError):
            db.execute(bad)

    def test_unknown_table(self, db):
        with pytest.raises(Exception):
            db.execute("SELECT * FROM nonexistent")
