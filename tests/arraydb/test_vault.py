"""Data Vault: attach / lazy load / evict semantics."""

import os
from datetime import datetime, timezone

import numpy as np
import pytest

from repro.arraydb import MonetDB
from repro.arraydb.errors import VaultError
from repro.seviri.hrit import HRITDriver, write_hrit_segments

TS = datetime(2010, 8, 22, 12, 0, tzinfo=timezone.utc)


@pytest.fixture
def image_dir(tmp_path):
    grid = np.linspace(280, 320, 64, dtype=float).reshape(8, 8)
    d = tmp_path / "img"
    write_hrit_segments(str(d), "MSG2", "IR_039", TS, grid, segment_count=3)
    return str(d), grid


@pytest.fixture
def db():
    db = MonetDB()
    db.vault.register_driver(HRITDriver())
    return db


class TestAttach:
    def test_attach_does_not_load(self, db, image_dir):
        path, _ = image_dir
        db.vault.attach(path, name="scene")
        assert db.vault.stats.loads == 0
        assert not db.catalog.exists("scene")

    def test_missing_file_rejected(self, db):
        with pytest.raises(VaultError):
            db.vault.attach("/no/such/path")

    def test_duplicate_name_rejected(self, db, image_dir):
        path, _ = image_dir
        db.vault.attach(path, name="scene")
        with pytest.raises(VaultError):
            db.vault.attach(path, name="scene")

    def test_unknown_format_rejected(self, db, tmp_path):
        odd = tmp_path / "data.xyz"
        odd.write_bytes(b"not an image")
        with pytest.raises(VaultError):
            db.vault.attach(str(odd))


class TestLazyLoad:
    def test_first_query_triggers_load(self, db, image_dir):
        path, grid = image_dir
        db.vault.attach(path, name="scene")
        r = db.execute("SELECT MAX(v) AS m FROM scene")
        assert r.to_dicts()[0]["m"] == pytest.approx(grid.max(), abs=0.02)
        assert db.vault.stats.loads == 1

    def test_second_query_hits_cache(self, db, image_dir):
        path, _ = image_dir
        db.vault.attach(path, name="scene")
        db.execute("SELECT COUNT(*) AS n FROM scene")
        db.execute("SELECT COUNT(*) AS n FROM scene")
        assert db.vault.stats.loads == 1
        assert db.vault.stats.cache_hits >= 1

    def test_evict_forces_reload(self, db, image_dir):
        path, _ = image_dir
        db.vault.attach(path, name="scene")
        db.execute("SELECT COUNT(*) AS n FROM scene")
        db.vault.evict("scene")
        assert not db.catalog.exists("scene")
        db.execute("SELECT COUNT(*) AS n FROM scene")
        assert db.vault.stats.loads == 2

    def test_load_all_eager(self, db, image_dir):
        path, _ = image_dir
        db.vault.attach(path, name="scene")
        assert db.vault.load_all() == 1
        assert db.catalog.exists("scene")

    def test_detach_drops_object(self, db, image_dir):
        path, _ = image_dir
        db.vault.attach(path, name="scene")
        db.vault.load_all()
        db.vault.detach("scene")
        assert not db.catalog.exists("scene")
        assert not db.vault.is_attached("scene")

    def test_single_segment_file_attachment(self, db, tmp_path):
        grid = np.full((6, 6), 300.0)
        paths = write_hrit_segments(
            str(tmp_path), "MSG1", "IR_108", TS, grid, segment_count=1
        )
        db.vault.attach(paths[0], name="single")
        r = db.execute("SELECT COUNT(*) AS n FROM single")
        assert r.to_dicts() == [{"n": 36}]
