"""Shared fixtures.

The synthetic geography and derived objects are session-scoped: they are
deterministic for a fixed seed, moderately expensive to build, and every
integration test can share them safely because tests never mutate them
(engines that do get mutated are function-scoped).
"""

from __future__ import annotations

from datetime import datetime, timezone

import pytest

from repro.datasets import SyntheticGreece, load_auxiliary_data
from repro.seviri.fires import FireSeason
from repro.seviri.geo import GeoReference, RawGrid, TargetGrid
from repro.seviri.scene import SceneGenerator
from repro.stsparql import Strabon

CRISIS_START = datetime(2007, 8, 24, tzinfo=timezone.utc)


@pytest.fixture(scope="session")
def greece() -> SyntheticGreece:
    return SyntheticGreece(seed=42, detail=2)


@pytest.fixture(scope="session")
def season(greece) -> FireSeason:
    return FireSeason(greece, CRISIS_START, days=2, seed=7)


@pytest.fixture(scope="session")
def georeference() -> GeoReference:
    return GeoReference(RawGrid(), TargetGrid())


@pytest.fixture(scope="session")
def scene_generator(greece) -> SceneGenerator:
    return SceneGenerator(greece)


@pytest.fixture(scope="session")
def noon_scene(scene_generator, season):
    return scene_generator.generate(
        datetime(2007, 8, 24, 13, 0, tzinfo=timezone.utc), season
    )


@pytest.fixture()
def strabon_with_aux(greece) -> Strabon:
    """A fresh endpoint preloaded with the auxiliary datasets."""
    endpoint = Strabon()
    load_auxiliary_data(endpoint, greece)
    return endpoint
