"""Product → stRDF annotation (§3.2.2 / Figure 5)."""

from datetime import datetime

import pytest

from repro.core.annotation import annotate_product, hotspot_triples, hotspot_uri
from repro.core.products import Hotspot, HotspotProduct
from repro.geometry import Polygon
from repro.rdf import Graph, Literal, NOA, RDF, STRDF

TS = datetime(2007, 8, 24, 18, 15)


@pytest.fixture
def product():
    hotspot = Hotspot(
        x=5,
        y=6,
        polygon=Polygon.square(21.54, 37.89, 0.05),
        confidence=1.0,
        timestamp=TS,
        sensor="MSG2",
        chain="cloud-masked",
    )
    return HotspotProduct(
        sensor="MSG2", timestamp=TS, chain="cloud-masked", hotspots=[hotspot]
    )


class TestAnnotation:
    def test_paper_example_shape(self, product):
        g = Graph()
        added, uris = annotate_product(g, product, product_index=0)
        assert added > 0
        node = uris[0]
        assert (node, RDF.type, NOA.Hotspot) in g
        acq = g.value(node, NOA.hasAcquisitionDateTime)
        assert acq.lexical == "2007-08-24T18:15:00"
        conf = g.value(node, NOA.hasConfidence)
        assert float(conf.lexical) == 1.0
        geom = g.value(node, STRDF.hasGeometry)
        assert geom.is_geometry
        sensor = g.value(node, NOA.isDerivedFromSensor)
        assert sensor.lexical == "MSG2"
        assert g.value(node, NOA.isProducedBy) == NOA.noa
        chain = g.value(node, NOA.isFromProcessingChain)
        assert chain.lexical == "cloud-masked"

    def test_shapefile_node_links(self, product):
        g = Graph()
        _, uris = annotate_product(g, product, product_index=7)
        shp = g.value(uris[0], NOA.isDerivedFromShapefile)
        assert shp is not None
        assert (shp, RDF.type, NOA.Shapefile) in g

    def test_distinct_products_distinct_uris(self, product):
        g = Graph()
        _, uris_a = annotate_product(g, product, product_index=0)
        _, uris_b = annotate_product(g, product, product_index=1)
        assert set(uris_a).isdisjoint(uris_b)

    def test_confirmation_annotation(self, product):
        product.hotspots[0].confirmed = True
        triples = hotspot_triples(hotspot_uri(0, 0), product.hotspots[0])
        objects = {o for _, p, o in triples if p == NOA.hasConfirmation}
        assert objects == {NOA.confirmed}

    def test_queryable_through_stsparql(self, product):
        from repro.stsparql import Strabon

        s = Strabon()
        annotate_product(s.graph, product, product_index=0)
        r = s.select(
            "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
            "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
            """SELECT ?h ?geo WHERE {
                 ?h a noa:Hotspot ; strdf:hasGeometry ?geo .
                 FILTER(strdf:anyInteract(
                   "POLYGON ((21 37, 22 37, 22 38.5, 21 38.5, 21 37))"^^strdf:WKT,
                   ?geo)) }"""
        )
        assert len(r) == 1
