"""The product archive (disk array + dissemination index)."""

from datetime import datetime, timedelta

import pytest

from repro.core.archive import ProductArchive
from repro.core.products import Hotspot, HotspotProduct
from repro.geometry import Envelope, Polygon

T0 = datetime(2007, 8, 24, 12, 0)


def product_at(when, sensor="MSG2", chain="sciql", lon=22.0, lat=38.0, n=2):
    hotspots = [
        Hotspot(
            x=i,
            y=0,
            polygon=Polygon.square(lon + 0.05 * i, lat, 0.04),
            confidence=1.0,
            timestamp=when,
            sensor=sensor,
            chain=chain,
        )
        for i in range(n)
    ]
    return HotspotProduct(
        sensor=sensor, timestamp=when, chain=chain, hotspots=hotspots
    )


class TestStoreAndLoad:
    def test_store_creates_shapefile_and_index(self, tmp_path):
        archive = ProductArchive(str(tmp_path))
        entry = archive.store(product_at(T0))
        assert entry.hotspot_count == 2
        assert (tmp_path / (entry.base_name + ".shp")).exists()
        assert (tmp_path / "products.json").exists()

    def test_roundtrip(self, tmp_path):
        archive = ProductArchive(str(tmp_path))
        original = product_at(T0, n=3)
        entry = archive.store(original)
        loaded = archive.load(entry)
        assert len(loaded) == 3
        assert loaded.timestamp == T0
        assert loaded.sensor == "MSG2"

    def test_index_survives_reopen(self, tmp_path):
        archive = ProductArchive(str(tmp_path))
        archive.store(product_at(T0))
        archive.store(product_at(T0 + timedelta(minutes=15)))
        reopened = ProductArchive(str(tmp_path))
        assert len(reopened) == 2

    def test_restore_same_product_overwrites(self, tmp_path):
        archive = ProductArchive(str(tmp_path))
        archive.store(product_at(T0, n=2))
        archive.store(product_at(T0, n=4))
        assert len(archive) == 1
        assert archive.entries()[0].hotspot_count == 4

    def test_empty_product(self, tmp_path):
        archive = ProductArchive(str(tmp_path))
        entry = archive.store(
            HotspotProduct(sensor="MSG1", timestamp=T0, chain="sciql")
        )
        assert entry.bbox is None
        assert len(archive.load(entry)) == 0


class TestQuery:
    @pytest.fixture
    def archive(self, tmp_path):
        archive = ProductArchive(str(tmp_path))
        archive.store(product_at(T0, sensor="MSG1"))
        archive.store(product_at(T0 + timedelta(hours=1), sensor="MSG2"))
        archive.store(
            product_at(
                T0 + timedelta(hours=2), sensor="MSG2", lon=25.0, lat=40.0
            )
        )
        return archive

    def test_time_window(self, archive):
        got = archive.query(
            start=T0 + timedelta(minutes=30),
            end=T0 + timedelta(minutes=90),
        )
        assert len(got) == 1

    def test_sensor_filter(self, archive):
        assert len(archive.query(sensor="MSG2")) == 2
        assert len(archive.query(sensor="MSG1")) == 1

    def test_region_filter(self, archive):
        north_east = Envelope(24.5, 39.5, 26.0, 41.0)
        got = archive.query(region=north_east)
        assert len(got) == 1

    def test_latest(self, archive):
        latest = archive.latest()
        assert latest.timestamp == T0 + timedelta(hours=2)
        assert archive.latest(sensor="MSG1").timestamp == T0

    def test_latest_empty(self, tmp_path):
        assert ProductArchive(str(tmp_path / "new")).latest() is None
