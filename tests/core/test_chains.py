"""The two processing chains: correctness and cross-equivalence.

The decisive integration test is `test_chains_agree`: the hand-coded
numpy chain and the in-DBMS SciQL chain must classify every pixel
identically — two independent implementations of §3.1.
"""

from datetime import datetime, timedelta, timezone

import numpy as np
import pytest

from repro.core.legacy import LegacyChain, classify_grids, window_mean_and_sq
from repro.core.sciql_chain import SciQLChain
from repro.seviri.hrit import write_hrit_segments

START = datetime(2007, 8, 24, tzinfo=timezone.utc)


class TestWindowStatistics:
    def test_mean_matches_manual(self):
        grid = np.arange(25, dtype=float).reshape(5, 5)
        valid = np.ones((5, 5), dtype=bool)
        mean, sq = window_mean_and_sq(grid, valid)
        assert mean[2, 2] == pytest.approx(grid[1:4, 1:4].mean())
        assert sq[2, 2] == pytest.approx((grid[1:4, 1:4] ** 2).mean())

    def test_border_uses_inbounds_cells(self):
        grid = np.arange(25, dtype=float).reshape(5, 5)
        valid = np.ones((5, 5), dtype=bool)
        mean, _ = window_mean_and_sq(grid, valid)
        assert mean[0, 0] == pytest.approx(grid[0:2, 0:2].mean())

    def test_invalid_cells_excluded(self):
        grid = np.ones((5, 5))
        grid[2, 2] = 1000.0
        valid = np.ones((5, 5), dtype=bool)
        valid[2, 2] = False
        mean, _ = window_mean_and_sq(grid, valid)
        assert mean[1, 1] == pytest.approx(1.0)


class TestClassifier:
    def _flat_scene(self, n=9):
        t039 = np.full((n, n), 300.0)
        t108 = np.full((n, n), 295.0)
        zenith = np.full((n, n), 40.0)  # full day
        return t039, t108, zenith

    def test_quiet_scene_all_zero(self):
        conf = classify_grids(*self._flat_scene())
        assert (conf == 0).all()

    def test_hot_anomaly_is_fire(self):
        t039, t108, zenith = self._flat_scene()
        t039[4, 4] = 340.0
        conf = classify_grids(t039, t108, zenith)
        assert conf[4, 4] == 2
        assert conf.sum() == 2

    def test_mild_anomaly_is_potential(self):
        t039, t108, zenith = self._flat_scene()
        t039[4, 4] = 311.0
        t039[4, 5] = 304.0
        conf = classify_grids(t039, t108, zenith)
        assert conf[4, 4] == 1

    def test_night_thresholds_more_sensitive(self):
        t039, t108, _ = self._flat_scene()
        # 309 K: below the day 310 K gate, above the night 303 K gate;
        # the window std (≈2.8) passes only the night potential gate.
        t039[4, 4] = 309.0
        day = classify_grids(t039, t108, np.full(t039.shape, 40.0))
        night = classify_grids(t039, t108, np.full(t039.shape, 110.0))
        assert day[4, 4] == 0
        assert night[4, 4] == 1

    def test_uniform_108_required(self):
        # High std in 10.8 (e.g. cloud edge) suppresses detection.
        t039, t108, zenith = self._flat_scene()
        t039[4, 4] = 340.0
        t108[4, 4] = 320.0  # big 10.8 anomaly -> std108 too high
        conf = classify_grids(t039, t108, zenith)
        assert conf[4, 4] == 0

    def test_nan_pixels_never_fire(self):
        t039, t108, zenith = self._flat_scene()
        t039[4, 4] = np.nan
        conf = classify_grids(t039, t108, zenith)
        assert conf[4, 4] == 0


class TestChainEquivalence:
    def test_chains_agree(self, georeference, scene_generator, season):
        when = START + timedelta(hours=14)
        scene = scene_generator.generate(when, season)
        legacy = LegacyChain(georeference).process(scene)
        sciql = SciQLChain(georeference).process(scene)
        as_grid = lambda product: {
            (h.x, h.y): h.confidence for h in product.hotspots
        }
        assert as_grid(legacy) == as_grid(sciql)
        assert legacy.timestamp == sciql.timestamp

    def test_chains_agree_at_night(
        self, georeference, scene_generator, season
    ):
        when = START + timedelta(hours=22)
        scene = scene_generator.generate(when, season)
        legacy = LegacyChain(georeference).process(scene)
        sciql = SciQLChain(georeference).process(scene)
        assert {(h.x, h.y) for h in legacy.hotspots} == {
            (h.x, h.y) for h in sciql.hotspots
        }

    def test_stage_timings_recorded(self, georeference, scene_generator):
        scene = scene_generator.generate(START + timedelta(hours=12))
        chain = LegacyChain(georeference)
        chain.process(scene)
        t = chain.timings
        assert t.total > 0
        assert t.classify > 0


class TestFileInput:
    def test_chain_from_hrit_files(
        self, tmp_path, georeference, scene_generator, season
    ):
        when = START + timedelta(hours=14)
        scene = scene_generator.generate(when, season)
        dir039 = str(tmp_path / "b039")
        dir108 = str(tmp_path / "b108")
        write_hrit_segments(dir039, "MSG2", "IR_039", when, scene.t039)
        write_hrit_segments(dir108, "MSG2", "IR_108", when, scene.t108)
        from_scene = LegacyChain(georeference).process(scene)
        from repro.seviri.hrit import segment_paths_for

        from_files = LegacyChain(georeference).process(
            (segment_paths_for(dir039), segment_paths_for(dir108))
        )
        # Centikelvin quantisation can flip borderline pixels; the two
        # products must agree on nearly every pixel.
        a = {(h.x, h.y) for h in from_scene.hotspots}
        b = {(h.x, h.y) for h in from_files.hotspots}
        assert len(a ^ b) <= max(2, len(a) // 5)
        assert from_files.timestamp.replace(tzinfo=None) == when.replace(
            tzinfo=None
        )

    def test_sciql_chain_via_vault(
        self, tmp_path, georeference, scene_generator, season
    ):
        when = START + timedelta(hours=14)
        scene = scene_generator.generate(when, season)
        dir039 = str(tmp_path / "v039")
        dir108 = str(tmp_path / "v108")
        write_hrit_segments(dir039, "MSG2", "IR_039", when, scene.t039)
        write_hrit_segments(dir108, "MSG2", "IR_108", when, scene.t108)
        chain = SciQLChain(georeference, use_vault=True)
        product = chain.process((dir039, dir108))
        assert chain.db.vault.stats.loads == 2
        direct = SciQLChain(georeference).process(scene)
        a = {(h.x, h.y) for h in product.hotspots}
        b = {(h.x, h.y) for h in direct.hotspots}
        assert len(a ^ b) <= max(2, len(a) // 5)
