"""Cloud fields and the cloud-masked chain."""

from datetime import datetime, timedelta, timezone

import numpy as np
import pytest

from repro.core.legacy import LegacyChain, classify_grids
from repro.core.sciql_chain import SciQLChain
from repro.core.thresholds import CLOUD_T108_MAX
from repro.seviri.scene import SceneGenerator

START = datetime(2007, 8, 24, tzinfo=timezone.utc)


class TestCloudScene:
    def test_clouds_cool_the_scene(self, greece, season):
        clear = SceneGenerator(greece, seed=5, clouds_per_scene=0.0)
        cloudy = SceneGenerator(greece, seed=5, clouds_per_scene=3.0)
        when = START + timedelta(hours=13)
        a = clear.generate(when, season)
        b = cloudy.generate(when, season)
        assert b.t108.min() < a.t108.min() - 20.0

    def test_cloudless_default(self, greece):
        gen = SceneGenerator(greece, seed=5)
        when = START + timedelta(hours=13)
        img = gen.generate(when)
        assert img.t108.min() > CLOUD_T108_MAX  # summer surface is warm

    def test_deterministic(self, greece, season):
        when = START + timedelta(hours=13)
        a = SceneGenerator(greece, seed=5, clouds_per_scene=2.0).generate(
            when, season
        )
        b = SceneGenerator(greece, seed=5, clouds_per_scene=2.0).generate(
            when, season
        )
        np.testing.assert_array_equal(a.t108, b.t108)


class TestCloudMaskClassifier:
    def _scene_with_cloud_edge_fire(self, n=11):
        t039 = np.full((n, n), 300.0)
        t108 = np.full((n, n), 295.0)
        zenith = np.full((n, n), 40.0)
        # A fire pixel right next to an opaque cloud bank.
        t039[5, 5] = 340.0
        t039[:, :4] = 250.0
        t108[:, :4] = 250.0
        return t039, t108, zenith

    def test_cloud_edge_fire_needs_mask(self):
        t039, t108, zenith = self._scene_with_cloud_edge_fire()
        masked = classify_grids(t039, t108, zenith, cloud_mask=True)
        assert masked[5, 5] == 2

    def test_cloudy_pixels_never_fire(self):
        t039, t108, zenith = self._scene_with_cloud_edge_fire()
        # Even an (unphysical) hot 3.9 signal inside the cloud region is
        # rejected by the mask.
        t039[5, 2] = 400.0
        masked = classify_grids(t039, t108, zenith, cloud_mask=True)
        assert masked[5, 2] == 0

    def test_fire_next_to_cloud_is_suppressed_without_mask(self):
        t039, t108, zenith = self._scene_with_cloud_edge_fire()
        t039[5, 4] = 340.0  # fire pixel adjacent to the cloud bank
        unmasked = classify_grids(t039, t108, zenith, cloud_mask=False)
        masked = classify_grids(t039, t108, zenith, cloud_mask=True)
        assert unmasked[5, 4] == 0  # cloud-edge std108 kills it
        assert masked[5, 4] == 2   # the mask recovers the detection


class TestChainParityWithClouds:
    def test_chains_agree_under_clouds(self, greece, season, georeference):
        gen = SceneGenerator(greece, seed=5, clouds_per_scene=3.0)
        when = START + timedelta(hours=14)
        scene = gen.generate(when, season)
        legacy = LegacyChain(georeference).process(scene)
        sciql = SciQLChain(georeference).process(scene)
        assert {(h.x, h.y, h.confidence) for h in legacy.hotspots} == {
            (h.x, h.y, h.confidence) for h in sciql.hotspots
        }

    def test_cloud_hides_fires(self, greece, season, georeference):
        when = START + timedelta(hours=14)
        clear = SceneGenerator(greece, seed=5, clouds_per_scene=0.0)
        cloudy = SceneGenerator(greece, seed=5, clouds_per_scene=4.0)
        chain = LegacyChain(georeference)
        n_clear = len(chain.process(clear.generate(when, season)))
        n_cloudy = len(chain.process(cloudy.generate(when, season)))
        assert n_cloudy <= n_clear
