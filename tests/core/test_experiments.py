"""The experiment harnesses (small configurations)."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.experiments import (
    format_figure6_result,
    format_figure8_result,
    format_table1_result,
    format_table2_result,
    run_figure6,
    run_figure8,
    run_table1,
    run_table2,
)
from repro.experiments.figure6 import Figure6Config
from repro.experiments.figure8 import Figure8Config
from repro.experiments.table1 import Table1Config
from repro.experiments.table2 import Table2Config

START = datetime(2007, 8, 24, tzinfo=timezone.utc)


@pytest.fixture(scope="module")
def table1_result(greece):
    return run_table1(greece, Table1Config(days=1))


class TestTable1:
    def test_row_structure(self, table1_result):
        assert table1_result.plain.chain == "Plain chain"
        assert table1_result.refined.chain == "After refinement"
        assert table1_result.plain.total_modis == \
            table1_result.refined.total_modis

    def test_rates_in_range(self, table1_result):
        for row in (table1_result.plain, table1_result.refined):
            assert 0 <= row.omission_error_pct <= 100
            assert 0 <= row.false_alarm_rate_pct <= 100

    def test_sea_false_alarms_eliminated(self, table1_result):
        assert table1_result.sea_hotspots_refined == 0

    def test_formatting(self, table1_result):
        text = format_table1_result(table1_result)
        assert "Plain chain" in text and "After refinement" in text
        assert "smoke false alarms" in text

    def test_overpasses_recorded(self, table1_result):
        assert len(table1_result.per_overpass) == 4  # one day


class TestTable2:
    def test_sequence(self, greece):
        result = run_table2(
            greece, Table2Config(image_count=4, use_files=False)
        )
        assert len(result.legacy.seconds) == 4
        assert len(result.sciql.seconds) == 4
        assert result.hotspot_agreement == 1.0
        assert result.legacy.min <= result.legacy.avg <= result.legacy.max
        text = format_table2_result(result)
        assert "Legacy C" in text and "SciQL" in text

    def test_with_files_includes_decode(self, greece):
        result = run_table2(
            greece, Table2Config(image_count=2, use_files=True)
        )
        assert result.hotspot_agreement == 1.0


class TestFigure8:
    def test_series(self, greece):
        result = run_figure8(
            greece,
            Figure8Config(
                start=START + timedelta(hours=13), hours=0.25
            ),
        )
        assert set(result.series) == {"MSG1", "MSG2"}
        assert len(result.series["MSG1"]) == 3  # 15 min / 5 min
        assert len(result.series["MSG2"]) == 1
        row = result.series["MSG1"][0]
        assert set(row.seconds_by_operation) == {
            "Store",
            "Municipalities",
            "Delete In Sea",
            "Invalid For Fires",
            "Refine In Coast",
            "Time Persistence",
        }
        slowest = result.slowest_operation("MSG1")
        assert slowest in row.seconds_by_operation
        assert "Figure 8" in format_figure8_result(result)


class TestFigure6:
    def test_layers(self, greece):
        result = run_figure6(
            greece,
            Figure6Config(start=START, acquisitions=2),
        )
        names = {s.name for s in result.layers}
        assert "hotspots" in names and "municipalities" in names
        assert result.map_document is not None
        assert "Figure 6" in format_figure6_result(result)
        assert result.layer("capitals").features == len(greece.prefectures)
