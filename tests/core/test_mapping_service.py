"""Map composition (Figure 6) and the end-to-end service (Figure 3)."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.core.config import RunOptions
from repro.core.mapping import MapComposer, region_wkt
from repro.core.products import Hotspot, HotspotProduct
from repro.core.refinement import RefinementPipeline
from repro.core.service import FireMonitoringService
from repro.geometry import Polygon

START = datetime(2007, 8, 24, tzinfo=timezone.utc)


@pytest.fixture
def endpoint_with_hotspots(strabon_with_aux, greece, season):
    pipeline = RefinementPipeline(strabon_with_aux)
    fire = season.forest_fires()[0]
    when = datetime(2007, 8, 24, 15, 0)
    hotspot = Hotspot(
        x=1,
        y=1,
        polygon=Polygon.square(fire.lon, fire.lat, 0.04),
        confidence=1.0,
        timestamp=when,
        sensor="MSG2",
    )
    pipeline.store(
        HotspotProduct(
            sensor="MSG2", timestamp=when, chain="sciql", hotspots=[hotspot]
        )
    )
    return strabon_with_aux, fire


class TestMapComposer:
    def test_all_layers_present(self, endpoint_with_hotspots, greece):
        endpoint, fire = endpoint_with_hotspots
        composer = MapComposer(endpoint)
        region = region_wkt(*greece.bbox)
        result = composer.compose(
            region=region,
            start="2007-08-24T00:00:00",
            end="2007-08-24T23:59:59",
        )
        layers = result["layers"]
        assert set(layers) == {
            "hotspots",
            "land_cover",
            "primary_roads",
            "capitals",
            "municipalities",
            "fire_stations",
        }
        assert len(layers["hotspots"]["features"]) == 1
        assert len(layers["capitals"]["features"]) == len(greece.prefectures)
        assert layers["land_cover"]["features"]

    def test_time_filter_excludes(self, endpoint_with_hotspots, greece):
        endpoint, _ = endpoint_with_hotspots
        composer = MapComposer(endpoint)
        result = composer.compose(
            region=region_wkt(*greece.bbox),
            start="2007-08-25T00:00:00",
            end="2007-08-25T23:59:59",
        )
        assert result["layers"]["hotspots"]["features"] == []

    def test_region_filter(self, endpoint_with_hotspots):
        endpoint, fire = endpoint_with_hotspots
        composer = MapComposer(endpoint)
        far_away = region_wkt(26.5, 41.0, 27.0, 41.4)
        got = composer.hotspots_query(
            far_away, "2007-08-24T00:00:00", "2007-08-24T23:59:59"
        )
        assert len(got) == 0

    def test_geojson_feature_shape(self, endpoint_with_hotspots, greece):
        endpoint, _ = endpoint_with_hotspots
        composer = MapComposer(endpoint)
        result = composer.compose(region=region_wkt(*greece.bbox))
        feature = result["layers"]["capitals"]["features"][0]
        assert feature["type"] == "Feature"
        assert feature["geometry"]["type"] == "Point"
        assert "nName" in feature["properties"]


class TestService:
    def test_teleios_acquisition(self, greece, season):
        service = FireMonitoringService(greece=greece, mode="teleios")
        outcome = service.run(
            [START + timedelta(hours=15)],
            RunOptions(season=season, on_error="raise"),
        )[0]
        assert outcome.raw_product is not None
        assert outcome.refined_count is not None
        assert len(outcome.refinement_timings) == 6
        assert outcome.within_budget

    def test_pre_teleios_has_no_refinement(self, greece, season):
        service = FireMonitoringService(greece=greece, mode="pre-teleios")
        outcome = service.run(
            [START + timedelta(hours=15)],
            RunOptions(season=season, on_error="raise"),
        )[0]
        assert outcome.refined_count is None
        assert outcome.refinement_timings == []

    def test_unknown_mode_rejected(self, greece):
        with pytest.raises(ValueError):
            FireMonitoringService(greece=greece, mode="quantum")

    def test_export_product(self, greece, season, tmp_path):
        service = FireMonitoringService(greece=greece, mode="pre-teleios")
        outcome = service.run(
            [START + timedelta(hours=15)],
            RunOptions(season=season, on_error="raise"),
        )[0]
        shp = service.export_product(
            outcome.raw_product, str(tmp_path / "prod")
        )
        assert shp.endswith(".shp")
        from repro.shapefile import read_shapefile

        assert len(read_shapefile(shp)) == len(outcome.raw_product)

    def test_timing_summary(self, greece, season):
        service = FireMonitoringService(greece=greece, mode="pre-teleios")
        service.run(
            [START + timedelta(hours=15)],
            RunOptions(season=season, on_error="raise"),
        )[0]
        service.run(
            [START + timedelta(hours=15, minutes=15)],
            RunOptions(season=season, on_error="raise"),
        )[0]
        summary = service.timing_summary()
        assert summary["acquisitions"] == 2.0
        assert summary["chain_avg_s"] > 0

    def test_refinement_removes_sea_false_alarms(self, greece, season):
        # Find an acquisition with smoke-over-sea false alarms; the
        # refined count must never exceed the raw count.
        service = FireMonitoringService(greece=greece, mode="teleios")
        outcome = service.run(
            [START + timedelta(hours=17)],
            RunOptions(season=season, on_error="raise"),
        )[0]
        assert outcome.refined_count <= len(outcome.raw_product)
