"""Hotspot products and shapefile round trips."""

from datetime import datetime

import pytest

from repro.core.products import Hotspot, HotspotProduct
from repro.geometry import Polygon
from repro.shapefile import read_shapefile, write_shapefile

TS = datetime(2007, 8, 24, 18, 15)


def make_product(n_fire=2, n_potential=1):
    hotspots = []
    for i in range(n_fire + n_potential):
        hotspots.append(
            Hotspot(
                x=10 + i,
                y=20,
                polygon=Polygon.square(21.0 + i * 0.04, 38.0, 0.04),
                confidence=1.0 if i < n_fire else 0.5,
                timestamp=TS,
                sensor="MSG2",
                chain="sciql",
            )
        )
    return HotspotProduct(
        sensor="MSG2", timestamp=TS, chain="sciql", hotspots=hotspots
    )


class TestProduct:
    def test_partition_by_confidence(self):
        p = make_product()
        assert len(p.fire_pixels()) == 2
        assert len(p.potential_pixels()) == 1
        assert len(p) == 3

    def test_shapefile_roundtrip(self, tmp_path):
        p = make_product()
        base = str(tmp_path / "prod")
        write_shapefile(p.to_shapefile(), base)
        back = HotspotProduct.from_shapefile(read_shapefile(base))
        assert len(back) == 3
        assert back.timestamp == TS
        assert back.hotspots[0].sensor == "MSG2"
        assert back.hotspots[0].confidence == 1.0
        assert back.hotspots[0].polygon.area == pytest.approx(
            0.04 * 0.04, rel=1e-6
        )

    def test_pixel_indices_roundtrip(self, tmp_path):
        p = make_product()
        base = str(tmp_path / "prod2")
        write_shapefile(p.to_shapefile(), base)
        back = HotspotProduct.from_shapefile(read_shapefile(base))
        assert [(h.x, h.y) for h in back.hotspots] == [
            (h.x, h.y) for h in p.hotspots
        ]

    def test_empty_product_shapefile(self, tmp_path):
        p = HotspotProduct(sensor="MSG2", timestamp=TS, chain="x")
        base = str(tmp_path / "empty")
        write_shapefile(p.to_shapefile(), base)
        back = HotspotProduct.from_shapefile(read_shapefile(base))
        assert len(back) == 0
