"""The six refinement operations (§3.2.4 / Figure 8)."""

from datetime import datetime, timedelta

import pytest

from repro.core.products import Hotspot, HotspotProduct
from repro.core.refinement import RefinementPipeline
from repro.geometry import Polygon
from repro.rdf import NOA, STRDF

TS = datetime(2007, 8, 24, 15, 0)


def hotspot_at(lon, lat, when=TS, confidence=1.0, size=0.05):
    return Hotspot(
        x=0,
        y=0,
        polygon=Polygon.square(lon, lat, size),
        confidence=confidence,
        timestamp=when,
        sensor="MSG2",
        chain="sciql",
    )


def product_with(hotspots, when=TS):
    return HotspotProduct(
        sensor="MSG2", timestamp=when, chain="sciql", hotspots=hotspots
    )


@pytest.fixture
def pipeline(strabon_with_aux):
    return RefinementPipeline(strabon_with_aux)


def surviving(pipeline, when=TS):
    return {
        row["h"] for row in pipeline.surviving_hotspots(when)
    }


class TestDeleteInSea:
    def test_sea_hotspot_removed(self, pipeline, greece):
        sea = hotspot_at(20.55, 34.55)  # far SW corner: open sea
        c = greece.mainland.representative_point()
        land = hotspot_at(c.x, c.y)
        pipeline.store(product_with([sea, land]))
        before = surviving(pipeline)
        assert len(before) == 2
        timing = pipeline.delete_in_sea(TS)
        assert timing.detail["removed"] > 0
        assert len(surviving(pipeline)) == 1

    def test_land_hotspot_kept(self, pipeline, greece):
        c = greece.mainland.representative_point()
        pipeline.store(product_with([hotspot_at(c.x, c.y)]))
        pipeline.delete_in_sea(TS)
        assert len(surviving(pipeline)) == 1


class TestInvalidForFires:
    def test_urban_hotspot_removed(self, pipeline, greece):
        capital = greece.prefectures[0].capital
        urban = hotspot_at(capital.x, capital.y, size=0.02)
        pipeline.store(product_with([urban]))
        cover = greece.land_cover_at(capital.x, capital.y)
        assert cover == "continuousUrbanFabric"
        pipeline.invalid_for_fires(TS)
        # The urban pixel survives only if it also touches forest cover.
        remaining = surviving(pipeline)
        if remaining:
            # Acceptable: capital core adjacent to forest; check op ran.
            assert pipeline.timings[-1].operation == "Invalid For Fires"
        else:
            assert len(remaining) == 0

    def test_forest_hotspot_kept(self, pipeline, greece, season):
        fire = season.forest_fires()[0]
        pipeline.store(product_with([hotspot_at(fire.lon, fire.lat)]))
        timing = pipeline.invalid_for_fires(TS)
        assert len(surviving(pipeline)) == 1
        assert timing.detail["removed"] == 0


class TestRefineInCoast:
    def test_partially_sea_geometry_clipped(self, pipeline, greece):
        # Find a coastal point: walk west from a land point until sea.
        c = greece.mainland.representative_point()
        lon = c.x
        while greece.is_land(lon, c.y):
            lon -= 0.02
        straddling = hotspot_at(lon + 0.01, c.y, size=0.2)
        pipeline.store(product_with([straddling]))
        original_area = straddling.polygon.area
        pipeline.refine_in_coast(TS)
        rows = pipeline.surviving_hotspots(TS)
        assert len(rows) == 1
        refined = rows.rows[0]["hGeo"].value
        assert 0 < refined.area < original_area

    def test_inland_geometry_untouched(self, pipeline, greece):
        c = greece.mainland.representative_point()
        inland = hotspot_at(c.x, c.y, size=0.02)
        pipeline.store(product_with([inland]))
        pipeline.refine_in_coast(TS)
        rows = pipeline.surviving_hotspots(TS)
        assert rows.rows[0]["hGeo"].value.area == pytest.approx(
            inland.polygon.area, rel=1e-9
        )


class TestTimePersistence:
    def test_repeated_detection_confirmed(self, pipeline, greece):
        c = greece.mainland.representative_point()
        for k in range(4):
            when = TS - timedelta(minutes=15 * (3 - k))
            pipeline.store(product_with([hotspot_at(c.x, c.y, when)], when))
        timing = pipeline.time_persistence(TS)
        assert timing.detail["confirmed"] == 1
        rows = pipeline.surviving_hotspots(TS)
        confirmation = rows.rows[0].get("confirmation")
        assert confirmation == NOA.confirmed

    def test_isolated_detection_unconfirmed(self, pipeline, greece):
        c = greece.mainland.representative_point()
        pipeline.store(product_with([hotspot_at(c.x, c.y)]))
        pipeline.time_persistence(TS)
        rows = pipeline.surviving_hotspots(TS)
        assert rows.rows[0].get("confirmation") == NOA.unconfirmed

    def test_old_detections_outside_window_ignored(self, pipeline, greece):
        c = greece.mainland.representative_point()
        stale = TS - timedelta(hours=5)
        for k in range(4):
            when = stale - timedelta(minutes=15 * k)
            pipeline.store(product_with([hotspot_at(c.x, c.y, when)], when))
        pipeline.store(product_with([hotspot_at(c.x, c.y)]))
        timing = pipeline.time_persistence(TS)
        assert timing.detail["confirmed"] == 0


class TestFullPipeline:
    def test_refine_acquisition_runs_all_ops(self, pipeline, greece, season):
        fire = season.forest_fires()[0]
        product = product_with(
            [hotspot_at(fire.lon, fire.lat), hotspot_at(20.55, 34.55)]
        )
        timings = pipeline.refine_acquisition(product)
        assert [t.operation for t in timings] == list(
            RefinementPipeline.OPERATIONS
        )
        assert all(t.seconds >= 0 for t in timings)
        # Sea false alarm eliminated, forest detection kept.
        assert len(surviving(pipeline)) == 1

    def test_timings_accumulate(self, pipeline, greece, season):
        fire = season.forest_fires()[0]
        pipeline.refine_acquisition(product_with([hotspot_at(fire.lon, fire.lat)]))
        assert len(pipeline.timings) == 6
