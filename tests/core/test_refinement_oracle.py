"""Oracle test: the stSPARQL refinement pipeline vs direct geometry.

The six refinement operations are expressed as stSPARQL updates running
through the full stack (parser → algebra → spatial functions → triple
store).  This test recomputes what each operation *should* do with plain
geometry calls — no RDF, no query engine — and checks the pipeline
agrees, on a real chain product from the simulated crisis.
"""

from datetime import datetime, timedelta, timezone

import pytest

from repro.core.legacy import LegacyChain
from repro.core.refinement import RefinementPipeline
from repro.datasets.corine import (
    FIRE_CONSISTENT_KEYS,
    FIRE_INCONSISTENT_KEYS,
)
from repro.geometry import ops, predicates

START = datetime(2007, 8, 24, tzinfo=timezone.utc)


@pytest.fixture(scope="module")
def chain_product(georeference, scene_generator, season):
    chain = LegacyChain(georeference)
    scene = scene_generator.generate(START + timedelta(hours=16), season)
    product = chain.process(scene)
    assert len(product) > 3, "scenario must produce a non-trivial product"
    return product


def oracle_survivors(greece, product):
    """Direct-geometry reimplementation of delete-in-sea +
    invalid-for-fires, returning the surviving hotspot indexes."""
    survivors = []
    for i, hotspot in enumerate(product.hotspots):
        geom = hotspot.polygon
        touches_land = any(
            predicates.intersects(geom, land)
            for land in greece.land_polygons
        )
        if not touches_land:
            continue  # delete-in-sea
        touches_bad = any(
            predicates.intersects(geom, area.polygon)
            for area in greece.land_cover
            if area.code in FIRE_INCONSISTENT_KEYS
        )
        touches_good = any(
            predicates.intersects(geom, area.polygon)
            for area in greece.land_cover
            if area.code in FIRE_CONSISTENT_KEYS
        )
        if touches_bad and not touches_good:
            continue  # invalid-for-fires
        survivors.append(i)
    return survivors


class TestPipelineMatchesOracle:
    def test_deletion_operations(
        self, greece, strabon_with_aux, chain_product
    ):
        pipeline = RefinementPipeline(strabon_with_aux)
        pipeline.store(chain_product)
        pipeline.delete_in_sea(chain_product.timestamp)
        pipeline.invalid_for_fires(chain_product.timestamp)
        survivors = pipeline.surviving_hotspots(chain_product.timestamp)
        expected = oracle_survivors(greece, chain_product)
        assert len(survivors) == len(expected)

    def test_coast_clipping_areas(
        self, greece, strabon_with_aux, chain_product
    ):
        pipeline = RefinementPipeline(strabon_with_aux)
        pipeline.store(chain_product)
        pipeline.delete_in_sea(chain_product.timestamp)
        pipeline.refine_in_coast(chain_product.timestamp)
        rows = pipeline.surviving_hotspots(chain_product.timestamp)
        # Build the oracle per original geometry: survivors' areas must be
        # the land-clipped areas.
        by_area = sorted(
            round(row["hGeo"].value.area, 10) for row in rows
        )
        expected_areas = []
        for hotspot in chain_product.hotspots:
            geom = hotspot.polygon
            touching = [
                land
                for land in greece.land_polygons
                if predicates.intersects(geom, land)
            ]
            if not touching:
                continue  # deleted in sea
            land_union = ops.union_all(touching)
            if predicates.overlaps(geom, land_union):
                clipped = ops.intersection(geom, land_union)
                expected_areas.append(round(clipped.area, 10))
            else:
                expected_areas.append(round(geom.area, 10))
        assert len(by_area) == len(expected_areas)
        for got, want in zip(by_area, sorted(expected_areas)):
            assert got == pytest.approx(want, rel=1e-6)

    def test_municipality_associations(
        self, greece, strabon_with_aux, chain_product
    ):
        pipeline = RefinementPipeline(strabon_with_aux)
        pipeline.store(chain_product)
        timing = pipeline.municipalities(chain_product.timestamp)
        expected_pairs = 0
        for hotspot in chain_product.hotspots:
            for mun in greece.municipalities:
                if predicates.intersects(hotspot.polygon, mun.polygon):
                    expected_pairs += 1
        assert timing.detail["added"] == expected_pairs
