"""ASCII situation-map rendering."""

from datetime import datetime

import pytest

from repro.core.products import Hotspot
from repro.core.render import (
    GLYPH_CAPITAL,
    GLYPH_COAST,
    GLYPH_FIRE,
    GLYPH_POTENTIAL,
    GLYPH_SEA,
    render_situation_map,
)
from repro.geometry import Polygon


def hotspot_at(greece, confidence):
    c = greece.mainland.representative_point()
    return Hotspot(
        x=0,
        y=0,
        polygon=Polygon.square(c.x, c.y, 0.05),
        confidence=confidence,
        timestamp=datetime(2007, 8, 24, 15, 0),
        sensor="MSG2",
    )


class TestRender:
    def test_dimensions(self, greece):
        text = render_situation_map(greece, width=40, height=12)
        lines = text.split("\n")
        assert len(lines) == 13  # 12 rows + legend
        assert all(len(line) == 40 for line in lines[:-1])

    def test_contains_sea_and_coast(self, greece):
        text = render_situation_map(greece, width=60, height=20)
        assert GLYPH_SEA in text
        assert GLYPH_COAST in text

    def test_capitals_drawn(self, greece):
        text = render_situation_map(greece, width=70, height=26)
        assert GLYPH_CAPITAL in text

    def test_hotspots_drawn(self, greece):
        fire = hotspot_at(greece, 1.0)
        potential = hotspot_at(greece, 0.5)
        text = render_situation_map(
            greece,
            [potential, fire],
            width=70,
            height=26,
            show_infrastructure=False,
        )
        assert GLYPH_FIRE in text

    def test_custom_bbox_zoom(self, greece):
        c = greece.mainland.representative_point()
        text = render_situation_map(
            greece,
            [],
            width=30,
            height=10,
            bbox=(c.x - 0.5, c.y - 0.5, c.x + 0.5, c.y + 0.5),
            show_infrastructure=False,
        )
        # Zoomed into the interior: mostly land, little or no sea.
        sea_cells = text.split("\n")[0:10]
        assert sum(line.count(GLYPH_SEA) for line in sea_cells) < 100

    def test_offmap_hotspots_ignored(self, greece):
        off = Hotspot(
            x=0,
            y=0,
            polygon=Polygon.square(50.0, 50.0, 0.05),
            confidence=1.0,
            timestamp=datetime(2007, 8, 24),
            sensor="MSG2",
        )
        text = render_situation_map(
            greece, [off], width=40, height=12, show_infrastructure=False
        )
        map_rows = text.split("\n")[:-1]  # drop the legend line
        assert all(GLYPH_FIRE not in row for row in map_rows)
