"""The redesigned service API: config objects, run(), lifecycle."""

from __future__ import annotations

import os
from datetime import timedelta

import pytest

from repro.core import (
    FireMonitoringService,
    RunOptions,
    ServiceConfig,
)
from repro.errors import ConfigurationError, ServiceStateError
from tests.conftest import CRISIS_START

WHEN = CRISIS_START + timedelta(hours=12)


@pytest.fixture()
def service(greece):
    with FireMonitoringService(greece=greece) as svc:
        yield svc


class TestConfigObjects:
    def test_legacy_kwargs_funnel_into_config(self, greece):
        with FireMonitoringService(
            greece=greece, mode="pre-teleios", use_files=True
        ) as svc:
            assert svc.config.mode == "pre-teleios"
            assert svc.config.use_files is True

    def test_explicit_config_wins(self, greece):
        config = ServiceConfig(mode="pre-teleios")
        with FireMonitoringService(greece=greece, config=config) as svc:
            assert svc.config is config
            assert svc.mode == "pre-teleios"

    def test_invalid_mode_is_configuration_error(self, greece):
        with pytest.raises(ConfigurationError):
            FireMonitoringService(greece=greece, mode="turbo")
        # ConfigurationError is a ValueError: pre-redesign callers that
        # caught ValueError keep working.
        with pytest.raises(ValueError):
            FireMonitoringService(greece=greece, mode="turbo")

    def test_invalid_run_options_rejected(self):
        with pytest.raises(ConfigurationError):
            RunOptions(on_error="explode").validate()

    def test_merged_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="pipelinedd"):
            RunOptions().merged(pipelinedd=True)
        merged = RunOptions().merged(pipelined=True, chain_workers=2)
        assert merged.pipelined is True
        assert merged.chain_workers == 2
        assert RunOptions().pipelined is False  # original untouched


class TestRun:
    def test_run_returns_ordered_outcomes(self, service, season):
        whens = [WHEN, WHEN + timedelta(minutes=15)]
        outcomes = service.run(whens, RunOptions(season=season))
        assert [o.timestamp for o in outcomes] == whens
        assert all(o.status == "ok" for o in outcomes)
        assert service.outcomes == outcomes

    def test_keyword_overrides_merge_into_options(self, service, season):
        outcomes = service.run([WHEN], season=season, on_error="raise")
        assert len(outcomes) == 1 and outcomes[0].ok

    def test_unknown_override_raises(self, service, season):
        with pytest.raises(ConfigurationError):
            service.run([WHEN], season=season, retries=5)

    def test_mixed_request_kinds(self, service, season):
        scene = service.scene_generator.generate(
            WHEN + timedelta(minutes=30), season
        )
        outcomes = service.run([WHEN, scene], RunOptions(season=season))
        assert [o.timestamp for o in outcomes] == [WHEN, scene.timestamp]


class TestLifecycle:
    def test_close_removes_owned_workdir(self, greece):
        svc = FireMonitoringService(greece=greece)
        workdir = svc.workdir
        assert os.path.isdir(workdir)
        svc.close()
        assert not os.path.exists(workdir)
        svc.close()  # idempotent

    def test_close_preserves_caller_workdir(self, greece, tmp_path):
        workdir = str(tmp_path / "mine")
        os.makedirs(workdir)
        svc = FireMonitoringService(
            greece=greece, config=ServiceConfig(workdir=workdir)
        )
        svc.close()
        assert os.path.isdir(workdir)

    def test_run_after_close_raises(self, greece, season):
        svc = FireMonitoringService(greece=greece)
        svc.close()
        with pytest.raises(ServiceStateError):
            svc.run([WHEN], RunOptions(season=season))

    def test_context_manager_closes(self, greece):
        with FireMonitoringService(greece=greece) as svc:
            workdir = svc.workdir
        assert not os.path.exists(workdir)

    def test_thematic_map_requires_teleios(self, greece):
        with FireMonitoringService(greece=greece, mode="pre-teleios") as svc:
            with pytest.raises(ServiceStateError):
                svc.thematic_map()


class TestShimsRemoved:
    def test_deprecated_entry_points_are_gone(self, service):
        # The DeprecationWarning shims completed their cycle; run() is
        # the only batch entry point.
        for name in (
            "process_acquisition",
            "process_scene",
            "process_ready",
            "process_scenes",
            "process_acquisitions",
        ):
            assert not hasattr(service, name)

    def test_run_covers_scene_requests(self, service, season):
        scenes = [
            service.scene_generator.generate(
                WHEN + timedelta(minutes=15 * k), season
            )
            for k in range(2)
        ]
        outcomes = service.run(scenes, RunOptions(on_error="raise"))
        assert [o.timestamp for o in outcomes] == [
            s.timestamp for s in scenes
        ]

    def test_run_raise_semantics_replace_the_shims(self, service, season):
        # The legacy entry points propagated failures; migrated callers
        # get the same behaviour with on_error="raise".
        from repro.faults import FaultInjected, FaultPlan, inject

        plan = FaultPlan().raise_in("stage.chain", times=99)
        with inject(plan):
            with pytest.raises(FaultInjected):
                service.run(
                    [WHEN],
                    RunOptions(season=season, on_error="raise"),
                )
