"""End-to-end integration: a mixed MSG1/MSG2 monitoring window."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.core.config import RunOptions
from repro.core.service import FireMonitoringService
from repro.seviri.acquisition import AcquisitionSchedule
from repro.seviri.sensors import MSG1, MSG2

START = datetime(2007, 8, 24, tzinfo=timezone.utc)


@pytest.mark.slow
class TestMonitoringWindow:
    def test_interleaved_sensors_with_archive(self, greece, season):
        service = FireMonitoringService(
            greece=greece, mode="teleios", archive_products=True
        )
        schedule = AcquisitionSchedule(
            START.date(), days=1, sensors=(MSG1, MSG2), include_modis=False
        )
        window_start = START + timedelta(hours=14)
        window_end = window_start + timedelta(minutes=30)
        acquisitions = [
            a
            for a in schedule.msg_acquisitions()
            if window_start <= a.timestamp < window_end
        ]
        # 30 minutes: 6 MSG1 (5-min) + 2 MSG2 (15-min).
        assert len(acquisitions) == 8
        for acq in acquisitions:
            outcome = service.run(
                [acq.timestamp],
                RunOptions(
                    season=season,
                    sensor_name=acq.sensor.name,
                    on_error="raise",
                ),
            )[0]
            assert outcome.within_budget
            assert outcome.refined_count is not None
        assert len(service.archive) == 8
        by_sensor = {
            entry.sensor for entry in service.archive.entries()
        }
        assert by_sensor == {"MSG1", "MSG2"}
        summary = service.timing_summary()
        assert summary["acquisitions"] == 8.0
        # The endpoint has accumulated every acquisition's hotspots.
        all_hotspots = service.refinement.surviving_hotspots()
        assert len(all_hotspots) >= sum(
            o.refined_count for o in service.outcomes[-1:]
        )

    def test_time_persistence_confirms_repeats(self, greece, season):
        service = FireMonitoringService(greece=greece, mode="teleios")
        when = START + timedelta(hours=14)
        last = None
        options = RunOptions(
            season=season, sensor_name="MSG1", on_error="raise"
        )
        for k in range(4):
            last = service.run(
                [when + timedelta(minutes=5 * k)], options
            )[0]
        confirmed = [
            row
            for row in service.refinement.surviving_hotspots(
                last.timestamp
            )
            if row.get("confirmation") is not None
            and row["confirmation"].local_name() == "confirmed"
        ]
        # After 4 repeats at 5-minute cadence, persisting fires confirm.
        assert confirmed
