"""Threshold interpolation (§3.1.3)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.thresholds import (
    DAY_THRESHOLDS,
    NIGHT_THRESHOLDS,
    day_weight,
    interpolate_thresholds,
    threshold_grids,
)


class TestInterpolation:
    def test_full_day_below_70(self):
        assert interpolate_thresholds(50.0) == DAY_THRESHOLDS

    def test_full_night_above_90(self):
        assert interpolate_thresholds(110.0) == NIGHT_THRESHOLDS

    def test_midpoint_is_mean(self):
        got = interpolate_thresholds(80.0)
        assert got.t039_min == pytest.approx(
            (DAY_THRESHOLDS.t039_min + NIGHT_THRESHOLDS.t039_min) / 2
        )

    def test_figure4_constants(self):
        # The day set must match the constants hard-coded in Figure 4.
        assert DAY_THRESHOLDS.t039_min == 310.0
        assert DAY_THRESHOLDS.diff_fire == 10.0
        assert DAY_THRESHOLDS.diff_potential == 8.0
        assert DAY_THRESHOLDS.std039_fire == 4.0
        assert DAY_THRESHOLDS.std039_potential == 2.5
        assert DAY_THRESHOLDS.std108_max == 2.0

    @given(st.floats(min_value=0, max_value=180))
    def test_monotone_between_night_and_day(self, zenith):
        got = interpolate_thresholds(zenith)
        lo = min(DAY_THRESHOLDS.t039_min, NIGHT_THRESHOLDS.t039_min)
        hi = max(DAY_THRESHOLDS.t039_min, NIGHT_THRESHOLDS.t039_min)
        assert lo <= got.t039_min <= hi

    @given(st.floats(min_value=70, max_value=90))
    def test_linear_in_twilight(self, zenith):
        got = interpolate_thresholds(zenith)
        w = (90.0 - zenith) / 20.0
        expected = (
            NIGHT_THRESHOLDS.diff_fire
            + (DAY_THRESHOLDS.diff_fire - NIGHT_THRESHOLDS.diff_fire) * w
        )
        assert got.diff_fire == pytest.approx(expected)


class TestGrids:
    def test_day_weight_vectorised(self):
        z = np.array([50.0, 80.0, 100.0])
        w = day_weight(z)
        np.testing.assert_allclose(w, [1.0, 0.5, 0.0])

    def test_threshold_grids_keys(self):
        grids = threshold_grids(np.array([[60.0, 95.0]]))
        assert set(grids) == {
            "t039_min",
            "diff_fire",
            "diff_potential",
            "std039_fire",
            "std039_potential",
            "std108_max",
        }
        assert grids["t039_min"][0, 0] == DAY_THRESHOLDS.t039_min
        assert grids["t039_min"][0, 1] == NIGHT_THRESHOLDS.t039_min
