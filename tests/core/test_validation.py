"""The Table 1 cross-validation protocol."""

from datetime import datetime, timedelta

import pytest

from repro.core.products import Hotspot, HotspotProduct
from repro.core.validation import (
    CrossValidator,
    ValidationRow,
    format_table1,
)
from repro.geometry import Polygon
from repro.seviri.modis import ModisDetection

T0 = datetime(2007, 8, 24, 12, 0)


def msg_product(cells, when=T0):
    hotspots = [
        Hotspot(
            x=int(lon * 100),
            y=int(lat * 100),
            polygon=Polygon.square(lon, lat, 0.036),
            confidence=1.0,
            timestamp=when,
            sensor="MSG2",
        )
        for lon, lat in cells
    ]
    return HotspotProduct(
        sensor="MSG2", timestamp=when, chain="plain", hotspots=hotspots
    )


def modis_point(lon, lat, when=T0):
    return ModisDetection(
        lon=lon, lat=lat, timestamp=when, confidence=80.0, satellite="Terra"
    )


class TestCounting:
    def test_perfect_agreement(self):
        validator = CrossValidator()
        row = validator.validate(
            "plain",
            {T0: [modis_point(22.0, 38.0)]},
            [msg_product([(22.0, 38.0)])],
        )
        assert row.omission_error_pct == 0.0
        assert row.false_alarm_rate_pct == 0.0

    def test_msg_false_alarm(self):
        validator = CrossValidator()
        row = validator.validate(
            "plain",
            {T0: [modis_point(22.0, 38.0)]},
            [msg_product([(22.0, 38.0), (25.0, 40.0)])],
        )
        assert row.total_msg == 2
        assert row.msg_detected_by_modis == 1
        assert row.false_alarm_rate_pct == pytest.approx(50.0)

    def test_msg_omission(self):
        validator = CrossValidator()
        row = validator.validate(
            "plain",
            {T0: [modis_point(22.0, 38.0), modis_point(25.0, 40.0)]},
            [msg_product([(22.0, 38.0)])],
        )
        assert row.omission_error_pct == pytest.approx(50.0)

    def test_700m_tolerance(self):
        validator = CrossValidator()
        # Point just outside the pixel polygon but within 700 m.
        near = modis_point(22.0 + 0.018 + 0.005, 38.0)
        far = modis_point(22.0 + 0.018 + 0.02, 38.2)
        row = validator.validate(
            "plain",
            {T0: [near, far]},
            [msg_product([(22.0, 38.0)])],
        )
        assert row.modis_detected_by_msg == 1

    def test_empty_inputs(self):
        validator = CrossValidator()
        row = validator.validate("plain", {}, [])
        assert row.omission_error_pct == 0.0
        assert row.false_alarm_rate_pct == 0.0


class TestMergeWindow:
    def test_products_merged_within_window(self):
        validator = CrossValidator(merge_window_minutes=30)
        products = [
            msg_product([(22.0, 38.0)], T0 - timedelta(minutes=10)),
            msg_product([(23.0, 38.5)], T0 + timedelta(minutes=10)),
            msg_product([(25.0, 40.0)], T0 + timedelta(minutes=40)),  # out
        ]
        samples = validator.build_samples({T0: []}, products)
        assert len(samples) == 1
        assert len(samples[0].msg_hotspots) == 2

    def test_duplicate_pixels_counted_once(self):
        validator = CrossValidator(merge_window_minutes=30)
        products = [
            msg_product([(22.0, 38.0)], T0 - timedelta(minutes=5)),
            msg_product([(22.0, 38.0)], T0 + timedelta(minutes=5)),
        ]
        samples = validator.build_samples({T0: []}, products)
        assert len(samples[0].msg_hotspots) == 1


class TestReporting:
    def test_table_format(self):
        rows = [
            ValidationRow("Plain chain", 2542, 2219, 2710, 2000),
            ValidationRow("After refinement", 2542, 2287, 3262, 2301),
        ]
        text = format_table1(rows)
        assert "Plain chain" in text
        assert "12.71" in text  # the paper's omission error
        assert "26.20" in text  # the paper's false alarm rate

    def test_paper_rates_reproduce_from_counts(self):
        # Sanity-check our formulas against the paper's own numbers.
        plain = ValidationRow("plain", 2542, 2219, 2710, 2000)
        assert plain.omission_error_pct == pytest.approx(12.71, abs=0.01)
        assert plain.false_alarm_rate_pct == pytest.approx(26.20, abs=0.01)
        refined = ValidationRow("refined", 2542, 2287, 3262, 2301)
        assert refined.omission_error_pct == pytest.approx(10.03, abs=0.01)
        assert refined.false_alarm_rate_pct == pytest.approx(29.46, abs=0.01)
