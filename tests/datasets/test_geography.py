"""Synthetic Greece structural invariants."""

import pytest

from repro.datasets import SyntheticGreece
from repro.datasets.corine import LEVEL3_KEYS
from repro.geometry import predicates


class TestLandmasses:
    def test_mainland_is_large(self, greece):
        assert greece.mainland.area > 5.0

    def test_islands_disjoint_from_mainland(self, greece):
        for island in greece.islands:
            assert not predicates.intersects(island, greece.mainland)

    def test_is_land_consistency(self, greece):
        c = greece.mainland.representative_point()
        assert greece.is_land(c.x, c.y)
        assert not greece.is_land(20.51, 34.51)  # far SW corner: open sea

    def test_determinism(self):
        a = SyntheticGreece(seed=5, detail=1)
        b = SyntheticGreece(seed=5, detail=1)
        assert a.mainland.wkt == b.mainland.wkt
        assert len(a.municipalities) == len(b.municipalities)

    def test_different_seeds_differ(self):
        a = SyntheticGreece(seed=5, detail=1)
        b = SyntheticGreece(seed=6, detail=1)
        assert a.mainland.wkt != b.mainland.wkt


class TestAdministrative:
    def test_prefectures_on_land(self, greece):
        for pref in greece.prefectures:
            p = pref.polygon.representative_point()
            assert greece.is_land(p.x, p.y)

    def test_capitals_inside_prefectures(self, greece):
        for pref in greece.prefectures:
            assert pref.polygon.contains_point(
                (pref.capital.x, pref.capital.y)
            )

    def test_municipalities_have_parents(self, greece):
        named = [
            m
            for m in greece.municipalities
            if m.prefecture != "Unassigned"
        ]
        assert len(named) >= len(greece.municipalities) * 0.8

    def test_municipality_lookup(self, greece):
        mun = greece.municipalities[0]
        c = mun.polygon.representative_point()
        found = greece.municipality_at(c.x, c.y)
        assert found is not None

    def test_populations_positive(self, greece):
        assert all(p.population > 0 for p in greece.prefectures)
        assert all(m.population > 0 for m in greece.municipalities)


class TestLandCover:
    def test_classes_valid(self, greece):
        assert {a.code for a in greece.land_cover} <= LEVEL3_KEYS

    def test_cover_at_land_point(self, greece):
        c = greece.mainland.representative_point()
        assert greece.land_cover_at(c.x, c.y) in LEVEL3_KEYS

    def test_cover_at_sea_is_none(self, greece):
        assert greece.land_cover_at(20.51, 34.51) is None

    def test_urban_cores_near_capitals(self, greece):
        for pref in greece.prefectures:
            code = greece.land_cover_at(pref.capital.x, pref.capital.y)
            assert code == "continuousUrbanFabric"

    def test_coverage_fraction(self, greece):
        total_cover = sum(a.polygon.area for a in greece.land_cover)
        land = sum(p.area for p in greece.land_polygons)
        # Voronoi partition of land + urban overlays: near-complete cover.
        assert total_cover > 0.9 * land


class TestInfrastructure:
    def test_every_municipality_has_fire_station(self, greece):
        stations = [a for a in greece.amenities if a.kind == "FireStation"]
        assert len(stations) >= len(greece.municipalities)

    def test_roads_connect_capitals(self, greece):
        primaries = [r for r in greece.roads if r.highway_class == "Primary"]
        assert len(primaries) == len(greece.prefectures) - 1

    def test_placenames_include_capitals(self, greece):
        capitals = [
            p for p in greece.placenames if p.feature_code == "P.PPLA"
        ]
        assert len(capitals) == len(greece.prefectures)
