"""RDF conversion of the auxiliary datasets (§3.2.3 vocabularies)."""

import pytest

from repro.datasets.corine import (
    CLC_TAXONOMY,
    FIRE_CONSISTENT_KEYS,
    FIRE_INCONSISTENT_KEYS,
)
from repro.rdf import CLC, COAST, GAG, GN, LGDO, RDF, RDFS, STRDF
from repro.rdf.term import Literal


class TestCoastline:
    def test_one_instance_per_landmass(self, strabon_with_aux, greece):
        r = strabon_with_aux.select(
            "PREFIX coast: <http://teleios.di.uoa.gr/ontologies/coastlineOntology.owl#>\n"
            "SELECT ?c WHERE { ?c a coast:Coastline }"
        )
        assert len(r) == len(greece.land_polygons)

    def test_geometries_valid(self, strabon_with_aux):
        for _, _, lit in strabon_with_aux.graph.triples(
            None, STRDF.hasGeometry, None
        ):
            assert isinstance(lit, Literal)
            if lit.is_geometry:
                assert not isinstance(lit.value, str)


class TestCorine:
    def test_taxonomy_loaded(self, strabon_with_aux):
        assert (
            CLC.ConiferousForest,
            RDFS.subClassOf,
            CLC.Forests,
        ) in strabon_with_aux.graph
        assert (
            CLC.Forests,
            RDFS.subClassOf,
            CLC.ForestsAndSemiNaturalAreas,
        ) in strabon_with_aux.graph

    def test_every_area_has_landuse_and_geometry(self, strabon_with_aux):
        r = strabon_with_aux.select(
            "PREFIX clc: <http://teleios.di.uoa.gr/ontologies/clcOntology.owl#>\n"
            "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
            "SELECT ?a WHERE { ?a a clc:Area ; clc:hasLandUse ?lu ; "
            "strdf:hasGeometry ?g }"
        )
        count = strabon_with_aux.graph.count(None, CLC.hasLandUse, None)
        assert len(r) == count

    def test_level1_query_reaches_level3_instances(self, strabon_with_aux):
        r = strabon_with_aux.select(
            "PREFIX clc: <http://teleios.di.uoa.gr/ontologies/clcOntology.owl#>\n"
            "SELECT DISTINCT ?lu WHERE { ?lu a clc:ForestsAndSemiNaturalAreas }"
        )
        locals_ = {row["lu"].local_name() for row in r}
        assert locals_ <= FIRE_CONSISTENT_KEYS | {"beachesDunesSands"}
        assert "coniferousForest" in locals_

    def test_consistent_and_inconsistent_disjoint(self):
        assert not (FIRE_CONSISTENT_KEYS & FIRE_INCONSISTENT_KEYS)

    def test_taxonomy_covers_all_keys(self):
        for key, (l3, l2, l1) in CLC_TAXONOMY.items():
            assert l3 and l2 and l1


class TestGag:
    def test_municipalities_typed_dhmos(self, strabon_with_aux, greece):
        r = strabon_with_aux.select(
            "PREFIX gag: <http://teleios.di.uoa.gr/ontologies/gagOntology.owl#>\n"
            "SELECT ?m WHERE { ?m a gag:Dhmos }"
        )
        assert len(r) == len(greece.municipalities)

    def test_paper_query5_shape(self, strabon_with_aux):
        r = strabon_with_aux.select(
            """
PREFIX gag: <http://teleios.di.uoa.gr/ontologies/gagOntology.owl#>
PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
SELECT ?municipality ?mYpesCode ?mContainer ?mLabel
  ( strdf:boundary(?mGeo) as ?mBoundary )
WHERE {
  ?municipality a gag:Dhmos ;
      noa:hasYpesCode ?mYpesCode ;
      gag:isPartOf ?mContainer ;
      rdfs:label ?mLabel ;
      strdf:hasGeometry ?mGeo . }
"""
        )
        assert len(r) > 0
        first = r.rows[0]
        assert first["mBoundary"].value.length > 0


class TestLinkedGeoDataAndGeoNames:
    def test_fire_stations_present(self, strabon_with_aux):
        r = strabon_with_aux.select(
            "PREFIX lgdo: <http://linkedgeodata.org/ontology/>\n"
            "SELECT ?n WHERE { ?n a lgdo:FireStation }"
        )
        assert len(r) > 10

    def test_roads_typed_by_class(self, strabon_with_aux, greece):
        r = strabon_with_aux.select(
            "PREFIX lgdo: <http://linkedgeodata.org/ontology/>\n"
            "SELECT ?w WHERE { ?w a lgdo:Primary }"
        )
        primaries = [
            rd for rd in greece.roads if rd.highway_class == "Primary"
        ]
        assert len(r) == len(primaries)

    def test_geonames_capitals_have_ppla_code(self, strabon_with_aux, greece):
        r = strabon_with_aux.select(
            "PREFIX gn: <http://www.geonames.org/ontology#>\n"
            "SELECT ?f ?name WHERE { ?f a gn:Feature ; "
            "gn:featureCode gn:P.PPLA ; gn:name ?name }"
        )
        assert len(r) == len(greece.prefectures)

    def test_country_code_gr(self, strabon_with_aux):
        r = strabon_with_aux.select(
            "PREFIX gn: <http://www.geonames.org/ontology#>\n"
            'SELECT ?f WHERE { ?f gn:countryCode "GR" }'
        )
        assert len(r) > 0
