"""Fixtures for the durability suite.

The crash matrix forks one child per cell, and every child rebuilds a
full service from scratch, so the geography here is deliberately the
cheapest deterministic one (``detail=1``) rather than the session-wide
``detail=2`` fixture the integration tests share.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

import pytest

from repro.datasets import SyntheticGreece
from repro.seviri.fires import FireSeason

CRISIS_START = datetime(2007, 8, 24, tzinfo=timezone.utc)

#: Acquisitions per crash-matrix run (the crash lands during the
#: second one's commit cycle; the third exercises resume).
N_ACQUISITIONS = 3


@pytest.fixture(scope="package")
def durable_greece() -> SyntheticGreece:
    return SyntheticGreece(seed=42, detail=1)


@pytest.fixture(scope="package")
def durable_season(durable_greece) -> FireSeason:
    return FireSeason(durable_greece, CRISIS_START, days=1, seed=7)


@pytest.fixture(scope="package")
def acquisition_requests():
    base = CRISIS_START + timedelta(hours=13)
    return [base + timedelta(minutes=15 * k) for k in range(N_ACQUISITIONS)]
