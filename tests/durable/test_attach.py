"""Zero-copy checkpoint attach (`repro.durable.attach`)."""

from __future__ import annotations

import os
import struct

import pytest

from repro.durable import (
    CheckpointReader,
    DurableStore,
    attach_checkpoint,
    write_checkpoint,
)
from repro.errors import DurabilityError
from repro.rdf.graph import Graph
from repro.rdf.term import Literal, URI
from repro.serve import ReadWorkerPool


def _uri(n: int) -> URI:
    return URI(f"http://example.org/{n}")


def _graph(n: int, generation: int = 0) -> Graph:
    graph = Graph()
    for k in range(n):
        graph.add(_uri(k), _uri(10_000), Literal(f"v{k}"))
        graph.add(
            _uri(k),
            _uri(10_001),
            Literal(
                f"POINT ({20.6 + 0.01 * k} {34.6 + 0.01 * k})",
                datatype="http://strdf.di.uoa.gr/ontology#WKT",
            ),
        )
    for _ in range(generation):
        # Bump the graph's generation with a no-net-change mutation.
        graph.add(_uri(0), _uri(10_002), Literal("tmp"))
        graph.remove(_uri(0), _uri(10_002), None)
    return graph


@pytest.fixture()
def ckpt(tmp_path):
    return str(tmp_path / "graph.ckpt")


class TestAttach:
    def test_header_fields_without_materialising(self, ckpt):
        graph = _graph(25)
        count = write_checkpoint(
            graph.snapshot(), ckpt, last_seq=7
        )
        with CheckpointReader(ckpt) as reader:
            assert reader.triple_count == count == len(graph)
            assert reader.last_seq == 7
            assert reader.generation == graph.generation
            # Attach alone never decodes the body.
            assert not reader.materialised

    def test_snapshot_round_trips_and_is_stamped(self, ckpt):
        graph = _graph(10, generation=3)
        write_checkpoint(graph.snapshot(), ckpt)
        with attach_checkpoint(ckpt) as reader:
            snapshot = reader.snapshot()
            assert reader.materialised
            assert set(snapshot.triples()) == set(graph.triples())
            assert snapshot.generation == graph.generation
            # Memoised: the second call is the same object.
            assert reader.snapshot() is snapshot

    def test_write_accepts_plain_iterables(self, ckpt):
        triples = [
            (_uri(k), _uri(10_000), Literal(f"v{k}")) for k in range(4)
        ]
        assert write_checkpoint(triples, ckpt, generation=9) == 4
        with attach_checkpoint(ckpt) as reader:
            assert reader.generation == 9
            assert set(reader.snapshot().triples()) == set(triples)

    def test_durable_store_checkpoint_is_attachable(self, ckpt, tmp_path):
        # The serving tier attaches the exact files DurableStore
        # installs — one on-disk format, two readers.
        graph = _graph(8)
        store = DurableStore(
            str(tmp_path / "durable"), graph=graph, fsync="never"
        )
        try:
            store.commit()
            store.checkpoint()
            path = os.path.join(
                str(tmp_path / "durable"), DurableStore.CHECKPOINT_NAME
            )
            with attach_checkpoint(path, verify=True) as reader:
                assert set(reader.snapshot().triples()) == set(
                    graph.triples()
                )
        finally:
            store.close()


class TestCorruption:
    def test_crc_check_is_opt_in_and_catches_damage(self, ckpt):
        write_checkpoint(_graph(6).snapshot(), ckpt)
        with open(ckpt, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)[0]
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last ^ 0xFF]))
        # O(1) attach does not scan the body...
        reader = CheckpointReader(ckpt)
        reader.close()
        # ...but verify=True does.
        with pytest.raises(DurabilityError, match="CRC"):
            CheckpointReader(ckpt, verify=True)

    def test_bad_magic_rejected(self, ckpt):
        write_checkpoint(_graph(2).snapshot(), ckpt)
        with open(ckpt, "r+b") as fh:
            fh.write(b"NOTACKPT")
        with pytest.raises(DurabilityError, match="magic"):
            CheckpointReader(ckpt)

    def test_truncated_body_rejected(self, ckpt):
        write_checkpoint(_graph(5).snapshot(), ckpt)
        size = os.path.getsize(ckpt)
        with open(ckpt, "r+b") as fh:
            fh.truncate(size - 3)
        with pytest.raises(DurabilityError, match="length"):
            CheckpointReader(ckpt)

    def test_trailing_bytes_detected_on_materialise(self, ckpt):
        graph = _graph(3)
        write_checkpoint(graph.snapshot(), ckpt)
        # Lie about the triple count: body decodes short.
        header_size = struct.calcsize("<8sIQQIQ")
        with open(ckpt, "r+b") as fh:
            fh.seek(header_size)
            fh.write(struct.pack("<Q", len(graph) - 1))
        reader = CheckpointReader(ckpt)
        with pytest.raises(DurabilityError, match="trailing"):
            reader.snapshot()

    def test_closed_reader_refuses(self, ckpt):
        write_checkpoint(_graph(2).snapshot(), ckpt)
        reader = CheckpointReader(ckpt)
        reader.close()
        with pytest.raises(DurabilityError, match="closed"):
            reader.snapshot()


class TestPoolAttach:
    QUERY = (
        "SELECT ?s ?v WHERE { ?s <http://example.org/10000> ?v }"
    )

    def _expected(self, graph: Graph):
        with ReadWorkerPool(
            graph.snapshot(), workers=1, kind="thread"
        ) as pool:
            return pool.map([self.QUERY])[0]

    @pytest.mark.parametrize("kind", ["thread", "process"])
    def test_from_checkpoint_answers_match_in_memory(
        self, ckpt, kind
    ):
        graph = _graph(12)
        write_checkpoint(graph.snapshot(), ckpt)
        expected = self._expected(graph)
        with ReadWorkerPool.from_checkpoint(
            ckpt, workers=2, kind=kind
        ) as pool:
            results = pool.map([self.QUERY] * 4)
        for result in results:
            assert (
                result["results"]["bindings"]
                == expected["results"]["bindings"]
            )

    def test_pool_requires_a_source(self):
        with pytest.raises(ValueError, match="snapshot or a checkpoint"):
            ReadWorkerPool(None, workers=1, kind="thread")
