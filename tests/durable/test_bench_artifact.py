"""The BENCH_durable.json artifact — tier-1 smoke contract.

Thresholds sit well below what the benchmark actually produces so the
committed artifact keeps passing on noisy hosts; the precise gating is
done by ``benchmarks/check_regression.py`` against the baselines.
"""

from __future__ import annotations

import json
import os

import pytest

BENCH_DURABLE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "benchmarks",
    "out",
    "BENCH_durable.json",
)


@pytest.fixture(scope="module")
def artifact():
    if not os.path.exists(BENCH_DURABLE):
        pytest.skip(
            "benchmarks/out/BENCH_durable.json not generated yet"
        )
    with open(BENCH_DURABLE) as f:
        return json.load(f)


def test_schema_has_every_required_section(artifact):
    assert artifact["schema"] == "bench-durable/1"
    for section in ("wal", "recovery", "compaction"):
        assert section in artifact, f"missing section {section!r}"


def test_wal_throughput_was_measured_per_policy(artifact):
    wal = artifact["wal"]
    for policy in ("never", "commit"):
        assert wal[policy]["batches_per_s"] > 10
        assert wal[policy]["ops_per_s"] > 100
        assert wal[policy]["wal_mb"] > 0


def test_recovery_scales_with_log_length(artifact):
    points = artifact["recovery"]["points"]
    assert len(points) >= 3
    lengths = [p["wal_batches"] for p in points]
    assert lengths == sorted(lengths)
    assert all(p["seconds"] > 0 for p in points)
    assert all(p["triples_per_s"] > 1000 for p in points)
    assert artifact["recovery"]["longest_seconds"] == points[-1]["seconds"]


def test_compaction_earns_its_keep(artifact):
    compaction = artifact["compaction"]
    assert compaction["ratio"] > 2.0
    assert compaction["wal_mb_before"] > compaction["checkpoint_mb"]
    assert compaction["live_triples"] > 0
