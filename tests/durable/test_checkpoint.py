"""DurableStore: journal hooks, commit, compaction, recovery."""

from __future__ import annotations

import os
import random

import pytest

from repro.durable import DurableStore
from repro.errors import DurabilityError
from repro.rdf.graph import Graph
from repro.rdf.term import Literal, URI


def _uri(n: int) -> URI:
    return URI(f"http://example.org/{n}")


def _triple(n: int, value: str = "v"):
    return (_uri(n), _uri(1000), Literal(f"{value}{n}"))


def _triple_set(graph: Graph):
    return set(graph.triples())


@pytest.fixture()
def store_dir(tmp_path):
    return str(tmp_path / "durable")


def test_journal_records_only_effective_mutations(store_dir):
    graph = Graph()
    store = DurableStore(store_dir, graph=graph, fsync="never")
    try:
        graph.add(*_triple(1))
        graph.add(*_triple(1))  # duplicate: no state transition
        assert store.pending_ops == 1
        graph.remove(_uri(2), None, None)  # nothing matched
        assert store.pending_ops == 1
        graph.remove(_uri(1), None, None)
        assert store.pending_ops == 2
    finally:
        store.close()


def test_commit_recover_roundtrip(store_dir):
    graph = Graph()
    store = DurableStore(store_dir, graph=graph, fsync="never")
    for n in range(10):
        graph.add(*_triple(n))
    store.commit(meta={"batch": 1})
    graph.remove(_uri(3), None, None)
    graph.add(
        _uri(3),
        _uri(1000),
        Literal(
            "POINT (21.73 38.24)",
            datatype="http://strdf.di.uoa.gr/ontology#WKT",
        ),
    )
    store.commit(meta={"batch": 2})
    expected = _triple_set(graph)
    store.close()

    recovered_graph = Graph()
    recovered = DurableStore(store_dir, graph=recovered_graph, fsync="never")
    try:
        assert recovered.recovery is not None
        assert recovered.recovery.replayed_records == 2
        assert recovered.recovery.last_meta == {"batch": 2}
        assert _triple_set(recovered_graph) == expected
    finally:
        recovered.close()


def test_clear_is_durable(store_dir):
    graph = Graph()
    store = DurableStore(store_dir, graph=graph, fsync="never")
    for n in range(5):
        graph.add(*_triple(n))
    store.commit()
    store.checkpoint()  # bake the 5 triples into the checkpoint
    graph.clear()
    graph.add(*_triple(99))
    store.commit()
    store.close()

    recovered_graph = Graph()
    recovered = DurableStore(store_dir, graph=recovered_graph, fsync="never")
    try:
        assert _triple_set(recovered_graph) == {_triple(99)}
    finally:
        recovered.close()


def test_checkpoint_refuses_uncommitted_journal(store_dir):
    graph = Graph()
    store = DurableStore(store_dir, graph=graph, fsync="never")
    try:
        graph.add(*_triple(1))
        with pytest.raises(DurabilityError):
            store.checkpoint()
        store.commit()
        store.checkpoint()  # fine once drained
    finally:
        store.close()


def test_compaction_shrinks_the_wal_and_preserves_state(store_dir):
    graph = Graph()
    store = DurableStore(
        store_dir, graph=graph, fsync="never", checkpoint_interval=4
    )
    checkpoints = 0
    for n in range(12):
        graph.add(*_triple(n))
        store.commit()
        if store.maybe_checkpoint():
            checkpoints += 1
    assert checkpoints == 3
    assert store.batches_since_checkpoint == 0
    wal_bytes_after = store.wal.size_bytes()
    expected = _triple_set(graph)
    last_seq = store.wal.last_seq
    store.close()

    # The WAL holds only the header after compaction, but numbering
    # carried over, and recovery needs no replay at all.
    recovered_graph = Graph()
    recovered = DurableStore(store_dir, graph=recovered_graph, fsync="never")
    try:
        assert recovered.recovery.replayed_records == 0
        assert recovered.recovery.checkpoint_seq == last_seq
        assert recovered.wal.size_bytes() == wal_bytes_after
        assert _triple_set(recovered_graph) == expected
    finally:
        recovered.close()


def test_corrupt_checkpoint_is_a_hard_error(store_dir):
    graph = Graph()
    store = DurableStore(store_dir, graph=graph, fsync="never")
    graph.add(*_triple(1))
    store.commit()
    store.checkpoint()
    store.close()
    path = os.path.join(store_dir, DurableStore.CHECKPOINT_NAME)
    with open(path, "r+b") as fh:
        fh.seek(-1, os.SEEK_END)
        byte = fh.read(1)
        fh.seek(-1, os.SEEK_END)
        fh.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(DurabilityError):
        DurableStore(store_dir, graph=Graph(), fsync="never")


def test_stale_wal_without_checkpoint_is_discarded(store_dir):
    # A crash during the very first baseline checkpoint can leave a WAL
    # with no checkpoint beside it: nothing was ever committed.
    os.makedirs(store_dir)
    from repro.durable.wal import WriteAheadLog

    stale = WriteAheadLog(
        os.path.join(store_dir, DurableStore.WAL_NAME), fsync="never"
    )
    stale.append(b"pre-commit garbage")
    stale.close()
    graph = Graph()
    store = DurableStore(store_dir, graph=graph, fsync="never")
    try:
        assert store.recovery is None
        assert store.wal.last_seq == 0
        assert len(graph) == 0
    finally:
        store.close()


@pytest.mark.parametrize("seed", range(5))
def test_randomized_mutation_history_recovers_exactly(store_dir, seed):
    """Seeded random add/remove/commit/checkpoint interleavings: the
    recovered graph always equals the live one at the last commit."""
    rng = random.Random(seed)
    graph = Graph()
    store = DurableStore(
        store_dir,
        graph=graph,
        fsync="never",
        checkpoint_interval=rng.randrange(1, 5),
    )
    live = set()
    for _ in range(rng.randrange(5, 15)):
        for _ in range(rng.randrange(1, 10)):
            n = rng.randrange(30)
            if rng.random() < 0.7:
                graph.add(*_triple(n))
                live.add(_triple(n))
            else:
                graph.remove(_uri(n), None, None)
                live = {t for t in live if t[0] != _uri(n)}
        store.commit()
        store.maybe_checkpoint()
    assert _triple_set(graph) == live
    store.close()

    recovered_graph = Graph()
    recovered = DurableStore(store_dir, graph=recovered_graph, fsync="never")
    try:
        assert _triple_set(recovered_graph) == live
    finally:
        recovered.close()
