"""Property-style round-trip tests for the durable binary codec.

Randomized with the stdlib ``random`` module under fixed seeds (no
extra dependencies): each seed derives a reproducible batch of
operations over URIs, blank nodes, and plain / typed / language-tagged
literals — including non-ASCII lexical forms and WKT geometry literals,
the two shapes the wildfire store actually persists.
"""

from __future__ import annotations

import random

import pytest

from repro.durable.codec import (
    OP_ADD,
    OP_CLEAR,
    OP_REMOVE,
    decode_ops,
    decode_term,
    encode_ops,
    encode_term,
)
from repro.errors import DurabilityError
from repro.rdf.term import BNode, Literal, URI

#: Deliberately awkward strings: Greek toponyms (the paper's domain),
#: combining marks, astral-plane emoji, embedded quotes and newlines.
_TEXT_POOL = [
    "",
    "hotspot",
    "Πελοπόννησος",
    "Ηλεία 2007 — πύρινο μέτωπο",
    "naïve café́",
    "🔥" * 3,
    'quote " backslash \\ newline \n tab \t',
    " line separator ",
    "a" * 257,
]

_DATATYPES = [
    "http://www.w3.org/2001/XMLSchema#dateTime",
    "http://strdf.di.uoa.gr/ontology#WKT",
    "http://www.w3.org/2001/XMLSchema#float",
]

_LANGS = ["el", "en-GB", "grc"]

_WKT_POOL = [
    "POINT (21.73 38.24)",
    "POLYGON ((21.52 37.91, 21.57 37.91, 21.56 37.88, 21.52 37.91))",
    "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))",
    "GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))",
]


def _random_text(rng: random.Random) -> str:
    if rng.random() < 0.7:
        return rng.choice(_TEXT_POOL)
    return "".join(
        chr(rng.choice([rng.randrange(32, 127), rng.randrange(0x370, 0x3FF)]))
        for _ in range(rng.randrange(0, 24))
    )


def _random_term(rng: random.Random):
    roll = rng.random()
    if roll < 0.35:
        return URI(
            f"http://teleios.di.uoa.gr/noa#{_random_text(rng)}"
        )
    if roll < 0.45:
        return BNode(f"b{rng.randrange(1000)}")
    if roll < 0.60:
        return Literal(_random_text(rng))
    if roll < 0.80:
        if rng.random() < 0.4:
            # Geometry literal: the shape checkpoints must preserve.
            return Literal(
                rng.choice(_WKT_POOL),
                datatype="http://strdf.di.uoa.gr/ontology#WKT",
            )
        return Literal(_random_text(rng), datatype=rng.choice(_DATATYPES))
    return Literal(_random_text(rng), language=rng.choice(_LANGS))


def _random_triple(rng: random.Random):
    subject = (
        URI(f"http://example.org/s/{rng.randrange(100)}")
        if rng.random() < 0.8
        else BNode(f"s{rng.randrange(100)}")
    )
    predicate = URI(f"http://example.org/p/{rng.randrange(20)}")
    return (subject, predicate, _random_term(rng))


def _random_batch(rng: random.Random):
    ops = []
    for _ in range(rng.randrange(0, 40)):
        roll = rng.random()
        if roll < 0.7:
            ops.append((OP_ADD, _random_triple(rng)))
        elif roll < 0.95:
            ops.append((OP_REMOVE, _random_triple(rng)))
        else:
            ops.append((OP_CLEAR, None))
    return ops


def _key(term):
    if isinstance(term, URI):
        return ("uri", term.value)
    if isinstance(term, BNode):
        return ("bnode", term.label)
    return ("lit", term.lexical, term.datatype, term.language)


@pytest.mark.parametrize("seed", range(25))
def test_ops_roundtrip_randomized(seed):
    rng = random.Random(seed)
    ops = _random_batch(rng)
    decoded = decode_ops(encode_ops(ops))
    assert len(decoded) == len(ops)
    for (op_in, triple_in), (op_out, triple_out) in zip(ops, decoded):
        assert op_in == op_out
        if op_in == OP_CLEAR:
            assert triple_out is None
        else:
            assert tuple(map(_key, triple_in)) == tuple(
                map(_key, triple_out)
            )


@pytest.mark.parametrize("seed", range(25))
def test_term_roundtrip_randomized(seed):
    rng = random.Random(1000 + seed)
    for _ in range(50):
        term = _random_term(rng)
        out = bytearray()
        encode_term(out, term)
        decoded, end = decode_term(bytes(out), 0)
        assert end == len(out)
        assert _key(decoded) == _key(term)
        # The wire form itself is stable: re-encoding the decoded term
        # produces identical bytes (the codec is canonical).
        again = bytearray()
        encode_term(again, decoded)
        assert bytes(again) == bytes(out)


def test_geometry_literal_survives_lexically():
    wkt = "POLYGON ((21.52 37.91, 21.57 37.91, 21.56 37.88, 21.52 37.91))"
    term = Literal(wkt, datatype="http://strdf.di.uoa.gr/ontology#WKT")
    out = bytearray()
    encode_term(out, term)
    decoded, _ = decode_term(bytes(out), 0)
    assert decoded.lexical == wkt
    assert decoded.datatype == term.datatype


@pytest.mark.parametrize("seed", range(10))
def test_truncation_never_passes_silently(seed):
    """Every strict prefix of an encoded batch must raise, not return
    garbage — this is what the WAL relies on when CRCs are bypassed."""
    rng = random.Random(2000 + seed)
    ops = _random_batch(rng)
    if not ops:
        ops = [(OP_ADD, _random_triple(rng))]
    encoded = encode_ops(ops)
    for cut in sorted(rng.sample(range(len(encoded)), min(12, len(encoded)))):
        with pytest.raises(DurabilityError):
            decode_ops(encoded[:cut])


def test_trailing_bytes_are_corruption():
    encoded = encode_ops([(OP_CLEAR, None)])
    with pytest.raises(DurabilityError):
        decode_ops(encoded + b"\x00")


def test_unknown_opcode_and_kind_raise():
    with pytest.raises(DurabilityError):
        decode_ops(b"\x01\x00\x00\x00\x7f")
    with pytest.raises(DurabilityError):
        decode_term(b"\x63", 0)
    with pytest.raises(DurabilityError):
        encode_ops([(99, None)])
