"""The crash matrix: every registered crashpoint × both run modes.

Each cell forks a child that arms exactly one crashpoint, builds a
fresh durable service and feeds it the acquisition stream; the child
aborts with ``os._exit(CRASH_EXIT)`` the instant execution reaches the
armed point mid-commit.  The parent then recovers from the on-disk
state with :meth:`FireMonitoringService.open` and requires the result
to be *indistinguishable* from a never-crashed oracle service at the
same acquisition cursor — triple-for-triple and byte-for-byte in the
served ``/hotspots`` GeoJSON — and that replaying the full request
stream resumes (skipping the committed prefix) to the oracle's final
state.

Crash-hit counts select *which* pass through a point aborts: service
construction writes a baseline graph checkpoint and an initial
``service.json``, so points on those paths crash on a later pass — the
one inside acquisition 2's commit cycle (``checkpoint_interval=2``
makes acquisition 2 trigger periodic compaction too).
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.core.config import RunOptions, ServiceConfig
from repro.core.service import FireMonitoringService
from repro.durable import CRASH_EXIT, CRASHPOINTS, crashpoints
from repro.obs import flightrec
from repro.serve.hotspots import query_hotspots

from tests.durable.conftest import N_ACQUISITIONS

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash matrix requires fork()"
)

#: Which pass through each point aborts (see module docstring).
CRASH_HITS = {
    "wal.append.torn": 2,
    "wal.append.pre-sync": 2,
    "commit.post-wal": 2,
    "service-checkpoint.torn": 3,
    "service-checkpoint.pre-rename": 3,
    "commit.pre-publish": 2,
    "commit.post-publish": 2,
    "graph-checkpoint.torn": 2,
    "graph-checkpoint.pre-rename": 2,
    "graph-checkpoint.post-rename": 2,
}

#: Acquisitions durably committed when the crash lands.  A torn WAL
#: append dies *before* its record is complete, so acquisition 2 rolls
#: back to the cursor.  Every other point leaves acquisition 2's record
#: intact in the file — including ``pre-sync``, because an injected
#: process abort (unlike a kernel crash) never loses written-but-
#: unfsynced page-cache data — so acquisition 2 survives.
EXPECTED_CURSOR = {name: 2 for name in CRASH_HITS}
EXPECTED_CURSOR["wal.append.torn"] = 1


def _service_config(state_dir: str) -> ServiceConfig:
    return ServiceConfig(
        state_dir=state_dir,
        # "never": an injected process abort keeps everything written
        # (fsync only matters for kernel/power loss), and the matrix
        # runs 20 cells — skipping fsyncs keeps it fast.
        wal_fsync="never",
        checkpoint_interval=2,
    )


def _run_options(season, pipelined: bool) -> RunOptions:
    # Thread workers keep the pipelined stage-two on the process that
    # will be aborted — os._exit must not orphan a process pool.
    return RunOptions(
        season=season,
        pipelined=pipelined,
        worker_kind="thread",
        on_error="raise",
    )


def _capture(service):
    """(triple count, canonical /hotspots GeoJSON) of the latest
    published snapshot.  The ``snapshot`` provenance block is dropped:
    sequence numbers deliberately advance across restarts and the
    graph generation is process-local, so byte-identity is defined
    over the *content* readers consume."""
    collection = query_hotspots(service.publisher.require_latest())
    collection.pop("snapshot", None)
    return (
        len(service.strabon.graph),
        json.dumps(collection, sort_keys=True),
    )


def _crashing_child(state_dir, point, hits, greece, season, requests,
                    pipelined):
    crashpoints.arm(point, hits=hits)
    service = FireMonitoringService(
        greece=greece, config=_service_config(state_dir)
    )
    service.run(requests, _run_options(season, pipelined))
    os._exit(0)  # the armed point never fired: the cell is broken


@pytest.fixture(scope="module")
def oracle(durable_greece, durable_season, acquisition_requests):
    """Per-cursor states of a service that never crashes (and never
    touches disk): ``oracle[k]`` is the capture after ``k``
    acquisitions."""
    service = FireMonitoringService(greece=durable_greece, mode="teleios")
    try:
        states = [_capture(service)]
        options = RunOptions(season=durable_season, on_error="raise")
        for when in acquisition_requests:
            outcomes = service.run([when], options)
            assert [o.status for o in outcomes] == ["ok"]
            states.append(_capture(service))
        return states
    finally:
        service.close()


@pytest.mark.parametrize("pipelined", [False, True],
                         ids=["serial", "pipelined"])
@pytest.mark.parametrize("point", sorted(CRASHPOINTS))
def test_crash_recover_resume(point, pipelined, tmp_path, oracle,
                              durable_greece, durable_season,
                              acquisition_requests):
    assert set(CRASH_HITS) == set(CRASHPOINTS), (
        "every registered crashpoint must have a matrix row"
    )
    state_dir = str(tmp_path / "state")
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(
        target=_crashing_child,
        args=(state_dir, point, CRASH_HITS[point], durable_greece,
              durable_season, acquisition_requests, pipelined),
    )
    child.start()
    child.join(timeout=300)
    assert child.exitcode == CRASH_EXIT, (
        f"child for {point!r} exited {child.exitcode}, "
        f"expected injected crash {CRASH_EXIT}"
    )

    # Dying at *any* armed point leaves a parseable flight-recorder
    # dump whose tail names the crash site.
    dumps = flightrec.list_dumps(os.path.join(state_dir, "flightrec"))
    assert dumps, f"crash at {point!r} left no flight-recorder dump"
    payload = flightrec.load_dump(dumps[-1])
    assert payload["reason"] == f"crashpoint:{point}"
    assert payload["events"], "dump carries no events"
    last = payload["events"][-1]
    assert last["kind"] == "crash"
    assert last["name"] == point

    cursor = EXPECTED_CURSOR[point]
    service = FireMonitoringService.open(state_dir, greece=durable_greece)
    try:
        durability = service.health()["durability"]
        assert durability["recovered"] is True
        assert durability["committed_acquisitions"] == cursor

        # Recovery surfaces the dump: health() names the crash site.
        report = durability["flight_recorder"]
        assert report is not None
        assert report["reason"] == f"crashpoint:{point}"
        assert report["last_event"]["kind"] == "crash"
        assert report["last_event"]["name"] == point
        assert report["events"] >= 1
        assert _capture(service) == oracle[cursor], (
            f"recovered state after {point!r} differs from the "
            f"never-crashed oracle at cursor {cursor}"
        )

        # Resume: replay the *full* stream; the committed prefix must
        # be skipped, the remainder processed, and the final state must
        # match the oracle's.
        outcomes = service.run(
            acquisition_requests, _run_options(durable_season, pipelined)
        )
        assert len(outcomes) == N_ACQUISITIONS - cursor
        durability = service.health()["durability"]
        assert durability["committed_acquisitions"] == N_ACQUISITIONS
        assert durability["resume_skipped"] == cursor
        assert _capture(service) == oracle[N_ACQUISITIONS], (
            f"resumed run after {point!r} diverged from the oracle"
        )
    finally:
        service.close()
