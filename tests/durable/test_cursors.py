"""Durable subscriber state: NotificationLog and CursorStore."""

from __future__ import annotations

import os

import pytest

from repro.durable import CursorStore, NotificationBatch, NotificationLog


def _batch(sequence, wal_seq=None, subjects=()):
    return NotificationBatch(
        sequence=sequence,
        wal_seq=wal_seq,
        notifications=tuple(
            {"subscription": "sub-1", "subject": s, "kind": "filter"}
            for s in subjects
        ),
    )


class TestNotificationLog:
    def test_append_replay_round_trip(self, tmp_path):
        path = str(tmp_path / "notify.wal")
        with NotificationLog(path) as log:
            log.append(_batch(2, wal_seq=1, subjects=("a", "b")))
            log.append(_batch(3, wal_seq=2, subjects=("c",)))
            assert len(log) == 2
            assert log.last_sequence == 3
            assert log.last_wal_seq == 2
        with NotificationLog(path) as log:
            batches = log.batches
            assert [b.sequence for b in batches] == [2, 3]
            assert batches[0].wal_seq == 1
            assert [
                d["subject"] for d in batches[0].notifications
            ] == ["a", "b"]

    def test_sequences_must_strictly_increase(self, tmp_path):
        with NotificationLog(str(tmp_path / "n.wal")) as log:
            log.append(_batch(2))
            with pytest.raises(ValueError, match="not after"):
                log.append(_batch(2))
            with pytest.raises(ValueError, match="not after"):
                log.append(_batch(1))
            log.append(_batch(5))  # gaps are fine; regressions are not
            assert log.last_sequence == 5

    def test_after_is_the_resume_set(self, tmp_path):
        with NotificationLog(str(tmp_path / "n.wal")) as log:
            for seq in (2, 3, 4):
                log.append(_batch(seq, subjects=(f"s{seq}",)))
            assert [b.sequence for b in log.after(0)] == [2, 3, 4]
            assert [b.sequence for b in log.after(2)] == [3, 4]
            assert [b.sequence for b in log.after(3)] == [4]
            assert log.after(4) == []
            assert log.after(99) == []

    def test_last_wal_seq_skips_none(self, tmp_path):
        with NotificationLog(str(tmp_path / "n.wal")) as log:
            assert log.last_wal_seq is None
            log.append(_batch(2, wal_seq=7))
            log.append(_batch(3, wal_seq=None))
            # The repaired batch carries no wal_seq; the recovery
            # anchor is still the newest batch that does.
            assert log.last_wal_seq == 7

    def test_compact_drops_fully_acknowledged_batches(self, tmp_path):
        path = str(tmp_path / "n.wal")
        with NotificationLog(path) as log:
            for seq in (2, 3, 4, 5):
                log.append(_batch(seq, subjects=(f"s{seq}",)))
            size_before = os.path.getsize(path)
            assert log.compact(3) == 2
            assert log.compact(3) == 0  # idempotent
            assert [b.sequence for b in log.batches] == [4, 5]
            assert os.path.getsize(path) < size_before
        with NotificationLog(path) as log:
            assert [b.sequence for b in log.batches] == [4, 5]

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = str(tmp_path / "n.wal")
        with NotificationLog(path) as log:
            log.append(_batch(2, subjects=("kept",)))
            log.append(_batch(3, subjects=("torn",)))
        # Chop bytes off the last record: a crash mid-append.
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)
        with NotificationLog(path) as log:
            assert [b.sequence for b in log.batches] == [2]
            # The log stays appendable after repair.
            log.append(_batch(3, subjects=("again",)))
            assert log.last_sequence == 3


class TestCursorStore:
    def test_ack_is_monotonic_and_persistent(self, tmp_path):
        path = str(tmp_path / "cursors.json")
        store = CursorStore(path)
        assert store.get("sub-1") == 0
        assert store.ack("sub-1", 4) == 4
        assert store.ack("sub-1", 2) == 4  # stale ack ignored
        assert store.ack("sub-1", 4) == 4  # replayed ack ignored
        assert CursorStore(path).get("sub-1") == 4

    def test_negative_ack_rejected(self, tmp_path):
        store = CursorStore(str(tmp_path / "c.json"))
        with pytest.raises(ValueError):
            store.ack("sub-1", -1)

    def test_forget_drops_cursor(self, tmp_path):
        path = str(tmp_path / "c.json")
        store = CursorStore(path)
        store.ack("sub-1", 3)
        store.forget("sub-1")
        store.forget("sub-never")  # unknown id is a no-op
        assert store.get("sub-1") == 0
        assert CursorStore(path).all() == {}

    def test_min_cursor_is_the_compaction_horizon(self, tmp_path):
        store = CursorStore(str(tmp_path / "c.json"))
        assert store.min_cursor() == 0
        store.ack("fast", 9)
        store.ack("slow", 3)
        assert store.min_cursor() == 3
        store.forget("slow")
        assert store.min_cursor() == 9

    def test_file_appears_atomically(self, tmp_path):
        path = str(tmp_path / "c.json")
        store = CursorStore(path)
        store.ack("sub-1", 1)
        # Only the final file, never a temp sibling, is left behind.
        siblings = os.listdir(str(tmp_path))
        assert siblings == ["c.json"]
