"""End-to-end serving-layer recovery.

A durable service is killed mid-season (injected abort after
acquisition 2's publish), reopened with
:meth:`FireMonitoringService.open`, and served over real HTTP: the
``/health`` document must report the recovery, and a polling reader
that saw sequence numbers before the crash must never observe one
again — numbering resumes strictly above the pre-crash maximum and
stays monotonic while the resumed ingest completes.
"""

from __future__ import annotations

import multiprocessing
import os
import threading

import pytest

from repro.core.config import RunOptions, ServiceConfig
from repro.core.service import FireMonitoringService
from repro.durable import CRASH_EXIT, crashpoints
from repro.serve import fetch_json, serve_in_thread

from tests.durable.conftest import N_ACQUISITIONS

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="recovery e2e requires fork()"
)


def _crash_after_two(state_dir, greece, season, requests):
    # The second pass through commit.post-publish = right after
    # acquisition 2's snapshot reached readers.
    crashpoints.arm("commit.post-publish", hits=2)
    service = FireMonitoringService(
        greece=greece,
        config=ServiceConfig(state_dir=state_dir, wal_fsync="never"),
    )
    service.run(requests, RunOptions(season=season, on_error="raise"))
    os._exit(0)  # crashpoint never fired


def test_recovered_service_serves_monotonic_sequences(
    tmp_path, durable_greece, durable_season, acquisition_requests
):
    state_dir = str(tmp_path / "state")
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(
        target=_crash_after_two,
        args=(state_dir, durable_greece, durable_season,
              acquisition_requests),
    )
    child.start()
    child.join(timeout=300)
    assert child.exitcode == CRASH_EXIT

    # Sequences the crashed process exposed to readers: the initial
    # aux-only publish (1) plus one per committed acquisition -> 3.
    pre_crash_max = 3

    service = FireMonitoringService.open(state_dir, greece=durable_greece)
    try:
        with serve_in_thread(service) as handle:
            host, port = handle.address
            health = fetch_json(host, port, "/health")
            durability = health["durability"]
            assert durability["recovered"] is True
            assert durability["committed_acquisitions"] == 2
            assert durability["last_committed_timestamp"] is not None
            assert durability["recovery"]["checkpoint_triples"] > 0
            assert health["snapshot"]["sequence"] > pre_crash_max

            # Resume the season on a writer thread while a reader
            # polls: no sequence it sees may ever move backwards.
            errors = []

            def ingest():
                try:
                    service.run(
                        acquisition_requests,
                        RunOptions(
                            season=durable_season, on_error="raise"
                        ),
                    )
                except Exception as error:  # pragma: no cover
                    errors.append(repr(error))

            writer = threading.Thread(target=ingest, daemon=True)
            sequences = []
            writer.start()
            while writer.is_alive():
                collection = fetch_json(host, port, "/hotspots")
                sequences.append(collection["snapshot"]["sequence"])
            writer.join()
            final = fetch_json(host, port, "/hotspots")
            sequences.append(final["snapshot"]["sequence"])

            assert not errors
            assert all(s > pre_crash_max for s in sequences)
            assert sequences == sorted(sequences)

            health = fetch_json(host, port, "/health")
            durability = health["durability"]
            assert durability["committed_acquisitions"] == N_ACQUISITIONS
            assert durability["resume_skipped"] == 2
            assert len(final["features"]) > 0
    finally:
        service.close()

    # A second cold open resumes without reprocessing anything: the
    # whole stream is recognized as committed.
    reopened = FireMonitoringService.open(state_dir, greece=durable_greece)
    try:
        outcomes = reopened.run(
            acquisition_requests,
            RunOptions(season=durable_season, on_error="raise"),
        )
        assert outcomes == []
        durability = reopened.health()["durability"]
        assert durability["committed_acquisitions"] == N_ACQUISITIONS
        assert durability["resume_skipped"] == N_ACQUISITIONS
    finally:
        reopened.close()
