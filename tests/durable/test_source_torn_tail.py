"""Torn WAL tails across a *federated* commit (ISSUE 10 satellite).

With the multi-source federation enabled, one acquisition's commit
batch interleaves ops from two sources — SEVIRI hotspot stars plus the
polar detections and weather-station stars the federation contributed.
A torn tail must roll the whole interleaved batch back **atomically**:
recovery may not keep one source's half of the acquisition and lose
the other's.  Each cell tears the WAL mid-append at a different
acquisition, recovers, and diffs the result — triples, served GeoJSON
(fused confidences, source lists, static flags included) and
per-source detection counts — against a never-crashed federated
oracle at the same cursor, then resumes to the oracle's final state.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.core.annotation import source_uri
from repro.core.config import RunOptions, ServiceConfig
from repro.core.service import FireMonitoringService
from repro.durable import CRASH_EXIT, crashpoints
from repro.rdf import NOA
from repro.serve.hotspots import query_hotspots
from repro.seviri.fires import FireSeason

from tests.durable.conftest import CRISIS_START, N_ACQUISITIONS

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash cells require fork()"
)

SEASON_SEED = 7

#: Tear the WAL during acquisition 2 (cursor rolls back to 1) and
#: during acquisition 3 (rolls back to 2) — both mid-season commits
#: carry interleaved two-source batches.
TORN_CELLS = {2: 1, 3: 2}


def _sources_config(state_dir):
    return ServiceConfig(
        state_dir=state_dir,
        wal_fsync="never",
        sources={"seed": SEASON_SEED, "polar_revisit_minutes": 15},
    )


def _make_season(greece):
    # Fresh per service: the federation's prepare() injects static-
    # site events into the season it is handed.
    return FireSeason(greece, CRISIS_START, days=1, seed=SEASON_SEED)


def _run_options(season, pipelined):
    return RunOptions(
        season=season,
        pipelined=pipelined,
        worker_kind="thread",
        on_error="raise",
    )


def _capture(service):
    """(triples, canonical /hotspots GeoJSON, per-source detections).

    The per-source detection census is the atomicity probe: a torn
    interleaved batch must never leave one source's detections behind
    while dropping the other's.
    """
    collection = query_hotspots(service.publisher.require_latest())
    collection.pop("snapshot", None)
    graph = service.strabon.graph
    census = {}
    for name in ("polar", "weather"):
        census[name] = sum(
            1
            for _ in graph.subjects(NOA.fromSource, source_uri(name))
        )
    return (
        len(graph),
        json.dumps(collection, sort_keys=True),
        census,
    )


def _torn_child(state_dir, hits, greece, requests, pipelined):
    crashpoints.arm("wal.append.torn", hits=hits)
    service = FireMonitoringService(
        greece=greece, config=_sources_config(state_dir)
    )
    service.run(
        requests, _run_options(_make_season(greece), pipelined)
    )
    os._exit(0)  # the armed point never fired: the cell is broken


@pytest.fixture(scope="module")
def federated_oracle(durable_greece, acquisition_requests):
    """Per-cursor captures of a federated service that never crashes
    (and never touches disk)."""
    service = FireMonitoringService(
        greece=durable_greece,
        config=ServiceConfig(
            sources={
                "seed": SEASON_SEED,
                "polar_revisit_minutes": 15,
            }
        ),
    )
    try:
        season = _make_season(durable_greece)
        states = [_capture(service)]
        for when in acquisition_requests:
            outcomes = service.run(
                [when], RunOptions(season=season, on_error="raise")
            )
            assert [o.status for o in outcomes] == ["ok"]
            states.append(_capture(service))
        # The run must actually interleave both sources, or the cells
        # below prove nothing about cross-source atomicity.
        final_census = states[-1][2]
        assert final_census["polar"] > 0
        assert final_census["weather"] > 0
        return states
    finally:
        service.close()


@pytest.mark.parametrize(
    "pipelined", [False, True], ids=["serial", "pipelined"]
)
@pytest.mark.parametrize("hits", sorted(TORN_CELLS))
def test_torn_two_source_batch_rolls_back_atomically(
    hits,
    pipelined,
    tmp_path,
    federated_oracle,
    durable_greece,
    acquisition_requests,
):
    state_dir = str(tmp_path / "state")
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(
        target=_torn_child,
        args=(
            state_dir,
            hits,
            durable_greece,
            acquisition_requests,
            pipelined,
        ),
    )
    child.start()
    child.join(timeout=300)
    assert child.exitcode == CRASH_EXIT

    cursor = TORN_CELLS[hits]
    service = FireMonitoringService.open(
        state_dir, greece=durable_greece
    )
    try:
        durability = service.health()["durability"]
        assert durability["recovered"] is True
        assert durability["committed_acquisitions"] == cursor

        recovered = _capture(service)
        oracle = federated_oracle[cursor]
        assert recovered[2] == oracle[2], (
            "torn interleaved batch rolled back one source but not "
            f"the other: {recovered[2]} != {oracle[2]}"
        )
        assert recovered == oracle

        # Resume the full stream: committed prefix skipped, the torn
        # acquisition re-acquired from *both* sources, final state
        # byte-identical to the never-crashed oracle.
        outcomes = service.run(
            acquisition_requests,
            _run_options(_make_season(durable_greece), pipelined),
        )
        assert len(outcomes) == N_ACQUISITIONS - cursor
        assert [o.status for o in outcomes] == ["ok"] * len(outcomes)
        assert _capture(service) == federated_oracle[N_ACQUISITIONS]
    finally:
        service.close()
