"""The write-ahead log: framing, replay, torn tails, numbering."""

from __future__ import annotations

import os
import random
import struct

import pytest

from repro.durable.wal import (
    _FRAME,
    _HEADER,
    REC_BATCH,
    WriteAheadLog,
    batch_payload,
    split_batch_payload,
)
from repro.errors import DurabilityError


@pytest.fixture()
def wal_path(tmp_path):
    return str(tmp_path / "wal.log")


def test_append_replay_roundtrip(wal_path):
    payloads = [b"", b"alpha", b"\x00" * 100, "Ηλεία".encode("utf-8")]
    with WriteAheadLog(wal_path, fsync="never") as wal:
        seqs = [wal.append(p) for p in payloads]
    assert seqs == [1, 2, 3, 4]
    reopened = WriteAheadLog(wal_path, fsync="never")
    try:
        records = reopened.replayed
        assert [r.payload for r in records] == payloads
        assert [r.seq for r in records] == seqs
        assert all(r.kind == REC_BATCH for r in records)
        assert reopened.last_seq == 4
        assert reopened.truncated_bytes == 0
        # Appends continue the numbering after a replayed open.
        assert reopened.append(b"next") == 5
    finally:
        reopened.close()


@pytest.mark.parametrize("seed", range(8))
def test_torn_tail_is_truncated_at_any_cut(wal_path, seed):
    """Chopping the file anywhere inside the last record loses exactly
    that record; everything before it replays intact."""
    rng = random.Random(seed)
    payloads = [
        bytes(rng.getrandbits(8) for _ in range(rng.randrange(1, 60)))
        for _ in range(4)
    ]
    with WriteAheadLog(wal_path, fsync="never") as wal:
        offsets = [wal.size_bytes()]
        for p in payloads:
            wal.append(p)
            offsets.append(wal.size_bytes())
    # Cut somewhere strictly inside the final record.
    cut = rng.randrange(offsets[-2] + 1, offsets[-1])
    with open(wal_path, "r+b") as fh:
        fh.truncate(cut)
    reopened = WriteAheadLog(wal_path, fsync="never")
    try:
        assert [r.payload for r in reopened.replayed] == payloads[:-1]
        assert reopened.truncated_bytes == cut - offsets[-2]
        assert reopened.last_seq == len(payloads) - 1
        assert os.path.getsize(wal_path) == offsets[-2]
        # The tail is reusable: the lost sequence number is reissued.
        assert reopened.append(b"replacement") == len(payloads)
    finally:
        reopened.close()


def test_corrupt_middle_record_stops_replay_conservatively(wal_path):
    with WriteAheadLog(wal_path, fsync="never") as wal:
        wal.append(b"first")
        start_second = wal.size_bytes()
        wal.append(b"second")
        wal.append(b"third")
    # Flip one payload byte of the middle record.
    with open(wal_path, "r+b") as fh:
        fh.seek(start_second + _FRAME.size)
        byte = fh.read(1)
        fh.seek(start_second + _FRAME.size)
        fh.write(bytes([byte[0] ^ 0xFF]))
    reopened = WriteAheadLog(wal_path, fsync="never")
    try:
        # Nothing at or after the first bad CRC is trusted.
        assert [r.payload for r in reopened.replayed] == [b"first"]
        assert reopened.last_seq == 1
    finally:
        reopened.close()


def test_bad_magic_raises(wal_path):
    with open(wal_path, "wb") as fh:
        fh.write(b"NOTAWAL!" + b"\x00" * 12)
    with pytest.raises(DurabilityError):
        WriteAheadLog(wal_path, fsync="never")


def test_headerless_stub_is_a_torn_tail(wal_path):
    # Crash after create but before the header landed.
    with open(wal_path, "wb") as fh:
        fh.write(b"REPR")
    wal = WriteAheadLog(wal_path, fsync="never")
    try:
        assert wal.replayed == []
        assert wal.truncated_bytes == 4
        assert wal.append(b"fresh") == 1
    finally:
        wal.close()


def test_reset_carries_numbering_in_the_header(wal_path):
    with WriteAheadLog(wal_path, fsync="never") as wal:
        for _ in range(3):
            wal.append(b"x")
        wal.reset()
        assert wal.base_seq == 3
        assert wal.size_bytes() == _HEADER.size
        assert wal.append(b"after") == 4
    reopened = WriteAheadLog(wal_path, fsync="never")
    try:
        assert reopened.base_seq == 3
        assert [r.seq for r in reopened.replayed] == [4]
    finally:
        reopened.close()


def test_invalid_fsync_policy_rejected(wal_path):
    with pytest.raises(DurabilityError):
        WriteAheadLog(wal_path, fsync="sometimes")


def test_fsync_policies_all_produce_identical_files(tmp_path):
    files = {}
    for policy in ("always", "commit", "never"):
        path = str(tmp_path / f"{policy}.log")
        with WriteAheadLog(path, fsync=policy) as wal:
            wal.append(b"one")
            wal.append(b"two")
            wal.sync()
        with open(path, "rb") as fh:
            files[policy] = fh.read()
    assert files["always"] == files["commit"] == files["never"]


def test_garbage_length_field_stops_replay(wal_path):
    with WriteAheadLog(wal_path, fsync="never") as wal:
        wal.append(b"good")
        end = wal.size_bytes()
    # Append a frame claiming a multi-GB payload.
    with open(wal_path, "r+b") as fh:
        fh.seek(end)
        fh.write(_FRAME.pack((1 << 30) + 1, 2, REC_BATCH, 0))
    reopened = WriteAheadLog(wal_path, fsync="never")
    try:
        assert [r.payload for r in reopened.replayed] == [b"good"]
        assert reopened.truncated_bytes == _FRAME.size
    finally:
        reopened.close()


@pytest.mark.parametrize("seed", range(6))
def test_batch_payload_roundtrip_randomized(seed):
    rng = random.Random(seed)
    meta = {
        "committed": rng.randrange(1000),
        "timestamp": "2007-08-24T13:00:00+00:00",
        "status": rng.choice(["ok", "degraded", "Πλήρης"]),
    }
    ops = bytes(rng.getrandbits(8) for _ in range(rng.randrange(0, 200)))
    out_meta, out_ops = split_batch_payload(batch_payload(meta, ops))
    assert out_meta == meta
    assert out_ops == ops
    # Empty metadata round-trips to an empty dict.
    assert split_batch_payload(batch_payload(None, b"ops"))[0] == {}


def test_batch_payload_truncation_raises():
    payload = batch_payload({"k": "v"}, b"tail")
    with pytest.raises(DurabilityError):
        split_batch_payload(payload[:2])
    (meta_len,) = struct.unpack_from("<I", payload, 0)
    with pytest.raises(DurabilityError):
        split_batch_payload(payload[: 4 + meta_len - 1])
