"""Dead-letter box: quarantine moves, sidecars, re-readable records."""

from __future__ import annotations

import json
import os

from repro.faults import DeadLetterBox


def _write(path, data=b"payload"):
    with open(path, "wb") as f:
        f.write(data)
    return path


def test_quarantine_moves_file_and_writes_sidecar(tmp_path):
    box = DeadLetterBox(str(tmp_path / "dead"))
    victim = _write(str(tmp_path / "seg_00.hsim"))
    record = box.quarantine(
        victim,
        reason="undecodable-segment",
        site="prepare.IR_108",
        error=ValueError("bad magic"),
    )
    assert not os.path.exists(victim)
    assert os.path.exists(record.quarantined_path)
    assert record.quarantined_path.startswith(box.directory)
    sidecar = record.quarantined_path + ".reason.json"
    with open(sidecar) as f:
        payload = json.load(f)
    assert payload["reason"] == "undecodable-segment"
    assert payload["site"] == "prepare.IR_108"
    assert payload["error"] == "ValueError: bad magic"
    assert payload["original_path"] == victim


def test_records_reread_from_disk(tmp_path):
    directory = str(tmp_path / "dead")
    box = DeadLetterBox(directory)
    box.quarantine(_write(str(tmp_path / "a.hsim")), reason="r1")
    box.quarantine(_write(str(tmp_path / "b.hsim")), reason="r2")
    # A fresh box over the same directory sees both records: what a
    # forked worker quarantined is visible to the parent process.
    fresh = DeadLetterBox(directory)
    records = fresh.records()
    assert len(fresh) == len(records) == 2
    assert sorted(r.reason for r in records) == ["r1", "r2"]


def test_name_collisions_get_serial_suffixes(tmp_path):
    box = DeadLetterBox(str(tmp_path / "dead"))
    quarantined = set()
    for i in range(3):
        run_dir = tmp_path / f"run{i}"
        run_dir.mkdir()
        victim = _write(str(run_dir / "seg.hsim"))
        record = box.quarantine(victim, reason="dup")
        quarantined.add(record.quarantined_path)
    assert len(quarantined) == 3
    assert len(box) == 3


def test_empty_box(tmp_path):
    box = DeadLetterBox(str(tmp_path / "dead"))
    assert len(box) == 0
    assert box.records() == []
