"""The fault matrix: every fault class against a crisis-day batch.

The contract under test (the crisis-day contract): with
``on_error="degrade"`` no exception escapes
:meth:`FireMonitoringService.run`, outcomes come back in request order,
acquisitions hit by a fault carry non-``ok`` statuses that say what was
sacrificed, and two runs with the same seeds produce identical outcomes
— serial or pipelined.

Timing-derived message fragments ("12.3s left of the 300s window") are
not run-deterministic, so cross-run comparisons normalise digits out of
the error strings.  The per-class tests use distinct acquisition
indexes: a kill-worker fault bumps the attempt number of its in-flight
scenes on respawn, which would mask an attempt-1 data fault aimed at
the same index in pipelined mode (a documented quirk — see DESIGN.md,
"Failure semantics").
"""

from __future__ import annotations

import re
from datetime import timedelta

import pytest

from repro.core import (
    FaultPolicy,
    FireMonitoringService,
    RunOptions,
    ServiceConfig,
)
from repro.faults import FaultInjected, FaultPlan, inject
from tests.conftest import CRISIS_START

N = 6


def _whens():
    return [
        CRISIS_START + timedelta(hours=12, minutes=15 * k)
        for k in range(N)
    ]


def _policy(**kwargs):
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("retry_base_delay_s", 0.001)
    kwargs.setdefault("retry_max_delay_s", 0.005)
    return FaultPolicy(**kwargs)


_DIGITS = re.compile(r"\d+(?:\.\d+)?")


def _signature(outcomes):
    """What must be identical across same-seed runs."""
    return [
        (
            outcome.status,
            outcome.timestamp,
            outcome.refined_count,
            None
            if outcome.raw_product is None
            else len(outcome.raw_product),
            tuple(_DIGITS.sub("#", e) for e in outcome.errors),
        )
        for outcome in outcomes
    ]


@pytest.fixture()
def run_batch(greece, season):
    """Run the 6-acquisition crisis batch under a fault plan.

    Returns ``(service, outcomes)``; every service is closed (workdir
    removed) at teardown.
    """
    services = []

    def _run(
        plan,
        *,
        pipelined=False,
        policy=None,
        on_error="degrade",
        worker_kind="process",
    ):
        service = FireMonitoringService(
            greece=greece, config=ServiceConfig(use_files=True)
        )
        services.append(service)
        options = RunOptions(
            season=season,
            pipelined=pipelined,
            chain_workers=2,
            queue_depth=1,
            worker_kind=worker_kind if pipelined else None,
            fault_policy=policy if policy is not None else _policy(),
            on_error=on_error,
        )
        with inject(plan):
            outcomes = service.run(_whens(), options)
        return service, outcomes

    yield _run
    for service in services:
        service.close()


def _assert_in_order(outcomes):
    assert [o.timestamp for o in outcomes] == _whens()


@pytest.mark.parametrize("pipelined", [False, True])
def test_corrupt_segment_quarantines_and_degrades(run_batch, pipelined):
    plan = FaultPlan(seed=7).corrupt_segment(index=1)
    service, outcomes = run_batch(plan, pipelined=pipelined)
    _assert_in_order(outcomes)
    hit = outcomes[1]
    assert hit.status == "degraded"
    assert hit.raw_product is not None
    text = " ".join(hit.errors)
    assert "quarantined" in text
    assert "single-band" in text
    for other in outcomes[:1] + outcomes[2:]:
        assert other.ok, other.errors
    records = service.dead_letters.records()
    assert len(records) == 1
    assert records[0].reason == "undecodable-segment"
    assert records[0].site.startswith("prepare.")


@pytest.mark.parametrize("pipelined", [False, True])
def test_dropped_detection_band_suppresses_hotspots(run_batch, pipelined):
    plan = FaultPlan(seed=7).drop_band(index=2, band="IR_039")
    _service, outcomes = run_batch(plan, pipelined=pipelined)
    _assert_in_order(outcomes)
    hit = outcomes[2]
    assert hit.status == "degraded"
    assert "IR_039" in " ".join(hit.errors)
    # Without the 3.9 um band fire detection is suppressed: the product
    # exists (the acquisition completed) but finds nothing.
    assert hit.raw_product is not None
    assert len(hit.raw_product) == 0
    assert hit.refined_count == 0
    for other in outcomes[:2] + outcomes[3:]:
        assert other.ok, other.errors


@pytest.mark.parametrize("worker_kind", ["process", "thread"])
def test_killed_worker_is_transparent(run_batch, worker_kind):
    baseline_sig = _signature(run_batch(None, pipelined=False)[1])
    plan = FaultPlan(seed=7).kill_worker(index=4)
    _service, outcomes = run_batch(
        plan, pipelined=True, worker_kind=worker_kind
    )
    _assert_in_order(outcomes)
    assert all(o.ok for o in outcomes)
    # The respawned worker re-ran the scene: same products, same
    # refinement, indistinguishable from an unfaulted run.
    assert _signature(outcomes) == baseline_sig


@pytest.mark.parametrize("pipelined", [False, True])
def test_stage_timeout_skips_refinement(run_batch, pipelined):
    plan = FaultPlan(seed=7).delay("stage.chain", seconds=2.5, index=3)
    _service, outcomes = run_batch(
        plan, pipelined=pipelined, policy=_policy(window_seconds=2.0)
    )
    _assert_in_order(outcomes)
    hit = outcomes[3]
    assert hit.status == "degraded"
    assert hit.stage_one_seconds > 2.0
    assert any("refinement skipped" in e for e in hit.errors)
    assert hit.raw_product is not None  # the product still shipped


def test_transient_faults_are_retried_to_success(run_batch):
    plan = FaultPlan(seed=7).raise_in("stage.chain", index=3, times=2)
    _service, outcomes = run_batch(plan, policy=_policy(max_attempts=3))
    _assert_in_order(outcomes)
    assert all(o.ok for o in outcomes)


@pytest.mark.parametrize("pipelined", [False, True])
def test_retry_exhaustion_yields_error_outcome(run_batch, pipelined):
    plan = FaultPlan(seed=7).raise_in("stage.chain", index=3, times=5)
    _service, outcomes = run_batch(
        plan, pipelined=pipelined, policy=_policy(max_attempts=2)
    )
    _assert_in_order(outcomes)
    hit = outcomes[3]
    assert hit.status == "error"
    assert hit.raw_product is None
    assert any("FaultInjected" in e for e in hit.errors)
    for other in outcomes[:3] + outcomes[4:]:
        assert other.ok, other.errors


def test_on_error_raise_propagates(run_batch):
    plan = FaultPlan(seed=7).raise_in("stage.chain", index=3, times=5)
    with pytest.raises(FaultInjected):
        run_batch(plan, policy=_policy(max_attempts=2), on_error="raise")


def _combined_plan():
    return (
        FaultPlan(seed=7)
        .corrupt_segment(index=1)
        .drop_band(index=2, band="IR_039")
        .raise_in("stage.chain", index=3, times=2)
        .delay("refine.municipalities", seconds=0.05, index=4)
        .kill_worker(index=5)
    )


def test_combined_plan_is_deterministic_everywhere(run_batch):
    """One fault of each class at once: two serial runs and two
    pipelined runs all produce the same outcomes."""
    signatures = [
        _signature(run_batch(_combined_plan(), pipelined=pipelined)[1])
        for pipelined in (False, False, True, True)
    ]
    assert signatures[0] == signatures[1] == signatures[2] == signatures[3]
    statuses = [sig[0] for sig in signatures[0]]
    assert statuses == ["ok", "degraded", "degraded", "ok", "ok", "ok"]
