"""Fault-plan semantics: stateless matching and derived randomness."""

from __future__ import annotations

import pytest

from repro.errors import TransientError
from repro.faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    active_plan,
    inject,
    trip,
)


class TestSpecMatching:
    def test_kind_site_index_attempt(self):
        spec = FaultSpec("raise", "stage.chain", index=3, times=2)
        assert spec.matches("raise", "stage.chain", 3, 1)
        assert spec.matches("raise", "stage.chain", 3, 2)
        assert not spec.matches("raise", "stage.chain", 3, 3)
        assert not spec.matches("raise", "stage.chain", 4, 1)
        assert not spec.matches("raise", "refine.store", 3, 1)
        assert not spec.matches("delay", "stage.chain", 3, 1)

    def test_site_patterns(self):
        spec = FaultSpec("raise", "refine.*")
        assert spec.matches("raise", "refine.store", None, 1)
        assert spec.matches("raise", "refine.municipalities", 7, 1)
        assert not spec.matches("raise", "stage.chain", None, 1)

    def test_wildcard_index_hits_every_acquisition(self):
        spec = FaultSpec("delay", "*")
        assert spec.matches("delay", "anything", 0, 1)
        assert spec.matches("delay", "anything", 99, 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("explode")

    def test_invalid_times_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("raise", times=0)


class TestPlan:
    def test_builders_assign_distinct_spec_ids(self):
        plan = (
            FaultPlan(seed=1)
            .corrupt_segment(index=0)
            .drop_band(index=1)
            .kill_worker(index=2)
        )
        ids = [s.spec_id for s in plan.specs]
        assert len(set(ids)) == len(ids) == 3

    def test_match_is_pure(self):
        plan = FaultPlan().raise_in("stage.chain", index=1)
        for _ in range(3):
            assert len(plan.match("raise", "stage.chain", 1, 1)) == 1
        assert plan.match("raise", "stage.chain", 2, 1) == []

    def test_without_consumes_specs(self):
        plan = FaultPlan(seed=3).kill_worker(index=1).kill_worker(index=2)
        fired = plan.match("kill-worker", "pipeline.worker", 1, 1)
        rest = plan.without([s.spec_id for s in fired])
        assert rest.match("kill-worker", "pipeline.worker", 1, 1) == []
        assert len(rest.match("kill-worker", "pipeline.worker", 2, 1)) == 1
        assert rest.seed == plan.seed

    def test_rng_deterministic_and_key_dependent(self):
        plan = FaultPlan(seed=11)
        a = plan.rng_for("corrupt-segment", (1, 2)).random()
        b = plan.rng_for("corrupt-segment", (1, 2)).random()
        c = plan.rng_for("corrupt-segment", (1, 3)).random()
        d = FaultPlan(seed=12).rng_for("corrupt-segment", (1, 2)).random()
        assert a == b
        assert a != c
        assert a != d

    def test_describe_mentions_every_spec(self):
        plan = FaultPlan().drop_band(index=2, band="IR_108").kill_worker()
        text = plan.describe()
        assert "drop-band" in text and "IR_108" in text
        assert "kill-worker" in text
        assert FaultPlan().describe() == "no faults"


class TestActivePlanAndTrip:
    def test_inject_installs_and_restores(self):
        assert active_plan() is None
        plan = FaultPlan()
        with inject(plan):
            assert active_plan() is plan
            inner = FaultPlan()
            with inject(inner):
                assert active_plan() is inner
            assert active_plan() is plan
        assert active_plan() is None

    def test_trip_noop_without_plan(self):
        trip("stage.chain", 0, 1)  # must not raise

    def test_trip_raises_for_matching_spec(self):
        plan = FaultPlan().raise_in("stage.chain", index=2, message="boom")
        with inject(plan):
            trip("stage.chain", 1, 1)  # different index: silent
            with pytest.raises(FaultInjected, match="boom"):
                trip("stage.chain", 2, 1)
            trip("stage.chain", 2, 2)  # times=1: attempt 2 passes

    def test_injected_fault_is_transient(self):
        assert issubclass(FaultInjected, TransientError)
