"""Resilience primitives: RetryPolicy, Timeout, CircuitBreaker."""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    PermanentError,
    StageTimeoutError,
    TransientError,
    is_transient,
)
from repro.faults import CircuitBreaker, RetryPolicy, Timeout


class TestRetryPolicy:
    def test_delays_deterministic_per_seed_and_key(self):
        policy = RetryPolicy(max_attempts=4, seed=9)
        first = list(policy.delays(key=("stage-one", 3)))
        again = list(policy.delays(key=("stage-one", 3)))
        other_key = list(policy.delays(key=("stage-one", 4)))
        other_seed = list(
            RetryPolicy(max_attempts=4, seed=10).delays(key=("stage-one", 3))
        )
        assert len(first) == 3
        assert first == again
        assert first != other_key
        assert first != other_seed

    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, max_delay=0.4, jitter=0.0
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_retries_transient_until_success(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=3, sleep=sleeps.append)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("flap")
            return "done"

        assert policy.call(flaky, site="test") == "done"
        assert calls["n"] == 3
        assert len(sleeps) == 2

    def test_permanent_fails_fast(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=5, sleep=sleeps.append)
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise PermanentError("corrupt")

        with pytest.raises(PermanentError):
            policy.call(broken, site="test")
        assert calls["n"] == 1
        assert sleeps == []

    def test_unmarked_errors_are_not_retried(self):
        policy = RetryPolicy(max_attempts=5, sleep=lambda _s: None)
        calls = {"n": 0}

        def oops():
            calls["n"] += 1
            raise KeyError("unmarked")

        with pytest.raises(KeyError):
            policy.call(oops, site="test")
        assert calls["n"] == 1

    def test_exhaustion_raises_last_error(self):
        policy = RetryPolicy(max_attempts=2, sleep=lambda _s: None)

        def always():
            raise TransientError("still down")

        with pytest.raises(TransientError, match="still down"):
            policy.call(always, site="test")

    def test_on_retry_hook_sees_attempt_and_error(self):
        seen = []
        policy = RetryPolicy(max_attempts=3, sleep=lambda _s: None)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 2:
                raise TransientError("flap")
            return 1

        policy.call(
            flaky,
            site="test",
            on_retry=lambda attempt, error: seen.append(
                (attempt, type(error).__name__)
            ),
        )
        assert seen == [(1, "TransientError")]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestTimeout:
    def test_fast_body_passes_through(self):
        assert Timeout(5.0, name="fast").call(lambda: 42) == 42

    def test_body_error_propagates(self):
        def boom():
            raise PermanentError("inner")

        with pytest.raises(PermanentError, match="inner"):
            Timeout(5.0, name="err").call(boom)

    def test_overrun_raises_transient_stage_timeout(self):
        with pytest.raises(StageTimeoutError) as exc:
            Timeout(0.05, name="slow").call(time.sleep, 2.0)
        assert is_transient(exc.value)

    def test_validation(self):
        with pytest.raises(ValueError):
            Timeout(0.0)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            name="test",
            failure_threshold=kwargs.pop("failure_threshold", 2),
            recovery_seconds=kwargs.pop("recovery_seconds", 10.0),
            clock=lambda: clock["now"],
        )
        return breaker, clock

    def test_opens_after_consecutive_failures(self):
        breaker, _clock = self._breaker()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker, _clock = self._breaker()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        breaker, clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock["now"] = 11.0
        assert breaker.state == "half-open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock["now"] = 11.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock["now"] = 22.0
        assert breaker.state == "half-open"

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
