"""Low-level geometric primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import algorithms as alg

finite = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)
pt = st.tuples(finite, finite)


class TestOrientation:
    def test_ccw(self):
        assert alg.orientation((0, 0), (1, 0), (1, 1)) == 1

    def test_cw(self):
        assert alg.orientation((0, 0), (1, 1), (1, 0)) == -1

    def test_collinear(self):
        assert alg.orientation((0, 0), (1, 1), (2, 2)) == 0

    @given(pt, pt, pt)
    def test_antisymmetric(self, a, b, c):
        assert alg.orientation(a, b, c) == -alg.orientation(a, c, b)


class TestSegments:
    def test_proper_cross(self):
        assert alg.segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))
        assert alg.segments_properly_cross((0, 0), (2, 2), (0, 2), (2, 0))

    def test_touch_at_endpoint(self):
        assert alg.segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))
        assert not alg.segments_properly_cross((0, 0), (1, 1), (1, 1), (2, 0))

    def test_parallel_disjoint(self):
        assert not alg.segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_collinear_overlap(self):
        assert alg.segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_intersection_point(self):
        got = alg.segment_intersection_point((0, 0), (2, 2), (0, 2), (2, 0))
        assert got == pytest.approx((1.0, 1.0))

    def test_intersection_point_none_when_disjoint(self):
        assert (
            alg.segment_intersection_point((0, 0), (1, 0), (0, 1), (1, 1))
            is None
        )


class TestRings:
    def test_signed_area_ccw_positive(self):
        assert alg.ring_signed_area([(0, 0), (2, 0), (2, 2), (0, 2)]) == 4.0

    def test_signed_area_cw_negative(self):
        assert alg.ring_signed_area([(0, 0), (0, 2), (2, 2), (2, 0)]) == -4.0

    def test_closed_ring_same_area(self):
        open_ring = [(0, 0), (2, 0), (2, 2), (0, 2)]
        closed = open_ring + [open_ring[0]]
        assert alg.ring_signed_area(open_ring) == alg.ring_signed_area(closed)

    def test_point_in_ring(self):
        ring = [(0, 0), (4, 0), (4, 4), (0, 4)]
        assert alg.point_in_ring((2, 2), ring) == 1
        assert alg.point_in_ring((0, 2), ring) == 0
        assert alg.point_in_ring((9, 9), ring) == -1

    def test_point_in_concave_ring(self):
        u_shape = [(0, 0), (6, 0), (6, 5), (4, 5), (4, 2), (2, 2), (2, 5), (0, 5)]
        assert alg.point_in_ring((3, 1), u_shape) == 1
        assert alg.point_in_ring((3, 4), u_shape) == -1  # inside the notch

    def test_ring_centroid_square(self):
        got = alg.ring_centroid([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert got == pytest.approx((1.0, 1.0))

    def test_is_convex(self):
        assert alg.is_convex_ring([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert not alg.is_convex_ring(
            [(0, 0), (4, 0), (4, 4), (2, 1), (0, 4)]
        )

    def test_ring_is_simple(self):
        assert alg.ring_is_simple([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert not alg.ring_is_simple([(0, 0), (2, 2), (2, 0), (0, 2)])

    @given(st.floats(min_value=0.1, max_value=10), pt)
    def test_square_area_invariant(self, size, center):
        cx, cy = center
        h = size / 2
        ring = [
            (cx - h, cy - h),
            (cx + h, cy - h),
            (cx + h, cy + h),
            (cx - h, cy + h),
        ]
        assert alg.ring_signed_area(ring) == pytest.approx(size * size, rel=1e-9)


class TestDistancesAndHull:
    def test_point_segment_distance_perpendicular(self):
        assert alg.point_segment_distance((1, 1), (0, 0), (2, 0)) == 1.0

    def test_point_segment_distance_past_end(self):
        assert alg.point_segment_distance((4, 0), (0, 0), (2, 0)) == 2.0

    def test_segment_segment_distance(self):
        d = alg.segment_segment_distance((0, 0), (1, 0), (0, 2), (1, 2))
        assert d == 2.0

    def test_convex_hull_triangle(self):
        hull = alg.convex_hull([(0, 0), (4, 0), (2, 3), (2, 1)])
        assert len(hull) == 3

    @given(st.lists(pt, min_size=3, max_size=30))
    def test_hull_contains_all_points(self, points):
        hull = alg.convex_hull(points)
        if len(hull) < 3 or abs(alg.ring_signed_area(hull)) < 1e-9:
            return  # Degenerate (collinear) input.
        for p in points:
            assert alg.point_in_ring(p, hull) >= 0

    def test_polyline_length(self):
        assert alg.polyline_length([(0, 0), (3, 0), (3, 4)]) == 7.0
