"""Envelope behaviour."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Envelope

coords = st.floats(
    min_value=-180, max_value=180, allow_nan=False, allow_infinity=False
)


def env(a, b, c, d):
    return Envelope(min(a, c), min(b, d), max(a, c), max(b, d))


class TestConstruction:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Envelope(1, 0, 0, 1)

    def test_point_envelope_allowed(self):
        e = Envelope(1, 2, 1, 2)
        assert e.area == 0
        assert e.center == (1, 2)

    def test_of_coords(self):
        e = Envelope.of_coords([(3, 1), (0, 5), (2, 2)])
        assert e.as_tuple() == (0, 1, 3, 5)

    def test_of_coords_empty_rejected(self):
        with pytest.raises(ValueError):
            Envelope.of_coords([])

    def test_union_all(self):
        e = Envelope.union_all(
            [Envelope(0, 0, 1, 1), Envelope(2, -1, 3, 0.5)]
        )
        assert e.as_tuple() == (0, -1, 3, 1)


class TestRelations:
    def test_intersects_overlap(self):
        assert Envelope(0, 0, 2, 2).intersects(Envelope(1, 1, 3, 3))

    def test_intersects_touching_edge(self):
        assert Envelope(0, 0, 1, 1).intersects(Envelope(1, 0, 2, 1))

    def test_disjoint(self):
        assert not Envelope(0, 0, 1, 1).intersects(Envelope(2, 2, 3, 3))

    def test_contains(self):
        assert Envelope(0, 0, 4, 4).contains(Envelope(1, 1, 2, 2))
        assert not Envelope(1, 1, 2, 2).contains(Envelope(0, 0, 4, 4))

    def test_contains_point_boundary(self):
        assert Envelope(0, 0, 1, 1).contains_point(1.0, 0.5)

    def test_intersection(self):
        got = Envelope(0, 0, 2, 2).intersection(Envelope(1, 1, 3, 3))
        assert got is not None
        assert got.as_tuple() == (1, 1, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert Envelope(0, 0, 1, 1).intersection(Envelope(5, 5, 6, 6)) is None

    def test_distance(self):
        d = Envelope(0, 0, 1, 1).distance(Envelope(4, 5, 6, 7))
        assert d == pytest.approx(math.hypot(3, 4))

    def test_distance_zero_when_intersecting(self):
        assert Envelope(0, 0, 2, 2).distance(Envelope(1, 1, 3, 3)) == 0.0

    def test_expand(self):
        assert Envelope(0, 0, 1, 1).expand(0.5).as_tuple() == (
            -0.5,
            -0.5,
            1.5,
            1.5,
        )


class TestProperties:
    @given(coords, coords, coords, coords)
    def test_union_commutative(self, a, b, c, d):
        e1 = env(a, b, c, d)
        e2 = env(c, d, a, b)
        assert e1.union(e2) == e2.union(e1)

    @given(coords, coords, coords, coords, coords, coords, coords, coords)
    def test_intersects_symmetric(self, a, b, c, d, e, f, g, h):
        e1 = env(a, b, c, d)
        e2 = env(e, f, g, h)
        assert e1.intersects(e2) == e2.intersects(e1)

    @given(coords, coords, coords, coords, coords, coords, coords, coords)
    def test_intersection_inside_both(self, a, b, c, d, e, f, g, h):
        e1 = env(a, b, c, d)
        e2 = env(e, f, g, h)
        inter = e1.intersection(e2)
        if inter is not None:
            assert e1.contains(inter)
            assert e2.contains(inter)

    @given(coords, coords, coords, coords)
    def test_corners_inside(self, a, b, c, d):
        e = env(a, b, c, d)
        for x, y in e.corners():
            assert e.contains_point(x, y)
