"""GeoJSON encoding/decoding."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    loads_wkt,
)
from repro.geometry.errors import GeometryError
from repro.geometry.geojson import (
    feature,
    feature_collection,
    from_geojson,
    to_geojson,
)

finite = st.floats(
    min_value=-180, max_value=180, allow_nan=False, allow_infinity=False
).map(lambda v: round(v, 6))


class TestEncoding:
    def test_point(self):
        assert to_geojson(Point(21.5, 38.0)) == {
            "type": "Point",
            "coordinates": [21.5, 38.0],
        }

    def test_polygon_with_hole(self):
        donut = loads_wkt(
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
            "(4 4, 6 4, 6 6, 4 6, 4 4))"
        )
        encoded = to_geojson(donut)
        assert encoded["type"] == "Polygon"
        assert len(encoded["coordinates"]) == 2

    def test_json_serialisable(self):
        geom = MultiPolygon(
            [Polygon.square(0, 0, 2), Polygon.square(5, 5, 2)]
        )
        text = json.dumps(to_geojson(geom))
        assert "MultiPolygon" in text

    def test_collection(self):
        gc = GeometryCollection([Point(1, 2), LineString([(0, 0), (1, 1)])])
        encoded = to_geojson(gc)
        assert encoded["type"] == "GeometryCollection"
        assert len(encoded["geometries"]) == 2


class TestDecoding:
    def test_unknown_type_raises(self):
        with pytest.raises(GeometryError):
            from_geojson({"type": "Circle", "coordinates": [0, 0, 1]})

    def test_z_coordinates_dropped(self):
        got = from_geojson(
            {"type": "LineString", "coordinates": [[0, 0, 5], [1, 1, 6]]}
        )
        assert got.coords == ((0.0, 0.0), (1.0, 1.0))

    @pytest.mark.parametrize(
        "wkt",
        [
            "POINT (21.7 38.2)",
            "LINESTRING (0 0, 1 1, 2 0)",
            "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))",
            "MULTIPOINT ((1 2), (3 4))",
            "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))",
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))",
            "GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))",
        ],
    )
    def test_roundtrip_all_types(self, wkt):
        geom = loads_wkt(wkt)
        back = from_geojson(json.loads(json.dumps(to_geojson(geom))))
        assert back.geom_type == geom.geom_type
        assert back.area == pytest.approx(geom.area)
        assert back.length == pytest.approx(geom.length)

    @given(finite, finite)
    def test_point_roundtrip_property(self, x, y):
        back = from_geojson(to_geojson(Point(x, y)))
        assert back == Point(x, y)


class TestFeatures:
    def test_feature_wrapper(self):
        f = feature(Point(1, 2), {"name": "Patras"})
        assert f["type"] == "Feature"
        assert f["properties"]["name"] == "Patras"

    def test_feature_collection(self):
        fc = feature_collection([feature(Point(1, 2), {})])
        assert fc["type"] == "FeatureCollection"
        assert len(fc["features"]) == 1
