"""Constructive operations: intersection, union, difference, boundary,
buffer — the machinery behind strdf:intersection / strdf:union /
strdf:boundary."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import (
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    loads_wkt,
    ops,
)

finite = st.floats(
    min_value=-20, max_value=20, allow_nan=False, allow_infinity=False
)
side = st.floats(min_value=0.5, max_value=8)


class TestIntersection:
    def test_overlapping_squares(self):
        got = ops.intersection(Polygon.square(0, 0, 2), Polygon.square(1, 1, 2))
        assert got.area == pytest.approx(1.0)

    def test_disjoint_is_empty(self):
        got = ops.intersection(Polygon.square(0, 0, 1), Polygon.square(9, 9, 1))
        assert got.is_empty

    def test_contained_returns_inner(self):
        inner = Polygon.square(0, 0, 2)
        got = ops.intersection(Polygon.square(0, 0, 10), inner)
        assert got.area == pytest.approx(inner.area)

    def test_concave_with_convex(self):
        # A U-shaped polygon clipped by a square.
        u_shape = Polygon(
            [(0, 0), (6, 0), (6, 5), (4, 5), (4, 2), (2, 2), (2, 5), (0, 5)]
        )
        clip = Polygon([(0, 3), (6, 3), (6, 6), (0, 6)])
        got = ops.intersection(u_shape, clip)
        # Two prongs of the U: each 2 x 2.
        assert got.area == pytest.approx(8.0)

    def test_point_in_polygon(self):
        got = ops.intersection(Point(0.5, 0.5), Polygon.square(0.5, 0.5, 1))
        assert isinstance(got, Point)

    def test_point_outside_polygon_empty(self):
        got = ops.intersection(Point(5, 5), Polygon.square(0, 0, 1))
        assert got.is_empty

    def test_line_clipped_by_polygon(self):
        line = LineString([(-2, 0), (2, 0)])
        poly = Polygon.square(0, 0, 2)
        got = ops.intersection(line, poly)
        assert got.length == pytest.approx(2.0)

    def test_hotspot_coast_clip(self):
        # The RefineInCoast core computation.
        hotspot = loads_wkt(
            "POLYGON ((21.9 37.5, 22.1 37.5, 22.1 37.7, 21.9 37.7, 21.9 37.5))"
        )
        coast = loads_wkt(
            "POLYGON ((21 37, 22 37, 22 38.5, 21 38.5, 21 37))"
        )
        got = ops.intersection(hotspot, coast)
        assert got.area == pytest.approx(0.02, rel=1e-6)


class TestUnion:
    def test_overlapping_dissolved(self):
        got = ops.union(Polygon.square(0, 0, 2), Polygon.square(1, 1, 2))
        assert got.area == pytest.approx(7.0)

    def test_disjoint_kept_as_parts(self):
        got = ops.union(Polygon.square(0, 0, 2), Polygon.square(9, 9, 2))
        assert isinstance(got, MultiPolygon)
        assert got.area == pytest.approx(8.0)

    def test_contained_collapses(self):
        got = ops.union(Polygon.square(0, 0, 10), Polygon.square(0, 0, 2))
        assert got.area == pytest.approx(100.0)

    def test_union_all_chain(self):
        squares = [Polygon.square(i * 1.5, 0, 2) for i in range(4)]
        got = ops.union_all(squares)
        # Overlapping chain: total span 2 + 3*1.5 = 6.5 wide, 2 tall.
        assert got.area == pytest.approx(13.0)

    def test_union_all_empty(self):
        assert ops.union_all([]).is_empty

    def test_union_with_empty_operand(self):
        square = Polygon.square(0, 0, 2)
        assert ops.union(square, ops.EMPTY).area == pytest.approx(4.0)


class TestDifference:
    def test_partial_overlap(self):
        got = ops.difference(Polygon.square(0, 0, 2), Polygon.square(1, 1, 2))
        assert got.area == pytest.approx(3.0)

    def test_hole_punched(self):
        got = ops.difference(Polygon.square(0, 0, 10), Polygon.square(0, 0, 2))
        assert got.area == pytest.approx(96.0)
        assert not got.intersects(Point(0, 0))

    def test_disjoint_unchanged(self):
        square = Polygon.square(0, 0, 2)
        got = ops.difference(square, Polygon.square(9, 9, 1))
        assert got.area == pytest.approx(square.area)

    def test_swallowed_is_empty(self):
        got = ops.difference(Polygon.square(0, 0, 2), Polygon.square(0, 0, 10))
        assert got.is_empty

    def test_line_minus_polygon(self):
        line = LineString([(-2, 0), (2, 0)])
        got = ops.difference(line, Polygon.square(0, 0, 2))
        assert got.length == pytest.approx(2.0)


class TestBoundaryAndBuffer:
    def test_polygon_boundary_is_ring(self):
        got = ops.boundary(Polygon.square(0, 0, 2))
        assert isinstance(got, LineString)
        assert got.length == pytest.approx(8.0)

    def test_polygon_with_hole_boundary(self):
        donut = loads_wkt(
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
            "(4 4, 6 4, 6 6, 4 6, 4 4))"
        )
        got = ops.boundary(donut)
        assert isinstance(got, MultiLineString)
        assert got.length == pytest.approx(48.0)

    def test_open_line_boundary_is_endpoints(self):
        got = ops.boundary(LineString([(0, 0), (1, 0), (1, 1)]))
        assert isinstance(got, MultiPoint)
        assert len(got) == 2

    def test_point_boundary_empty(self):
        assert ops.boundary(Point(1, 1)).is_empty

    def test_point_buffer_area(self):
        got = ops.buffer(Point(0, 0), 1.0, resolution=64)
        assert got.area == pytest.approx(math.pi, rel=0.01)

    def test_buffer_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            ops.buffer(Point(0, 0), -1.0)

    def test_convex_hull(self):
        got = ops.convex_hull(
            MultiPoint([Point(0, 0), Point(2, 0), Point(1, 3), Point(1, 1)])
        )
        assert isinstance(got, Polygon)
        assert got.area == pytest.approx(3.0)


class TestBooleanProperties:
    @settings(max_examples=40, deadline=None)
    @given(finite, finite, side, finite, finite, side)
    def test_inclusion_exclusion(self, ax, ay, asz, bx, by, bsz):
        a = Polygon.square(ax, ay, asz)
        b = Polygon.square(bx, by, bsz)
        inter = ops.intersection(a, b).area
        union = ops.union(a, b).area
        assert union == pytest.approx(a.area + b.area - inter, rel=1e-6, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(finite, finite, side, finite, finite, side)
    def test_difference_partition(self, ax, ay, asz, bx, by, bsz):
        a = Polygon.square(ax, ay, asz)
        b = Polygon.square(bx, by, bsz)
        inter = ops.intersection(a, b).area
        diff = ops.difference(a, b).area
        assert diff + inter == pytest.approx(a.area, rel=1e-6, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(finite, finite, side, finite, finite, side)
    def test_intersection_commutative_area(self, ax, ay, asz, bx, by, bsz):
        a = Polygon.square(ax, ay, asz)
        b = Polygon.square(bx, by, bsz)
        assert ops.intersection(a, b).area == pytest.approx(
            ops.intersection(b, a).area, rel=1e-6, abs=1e-9
        )
