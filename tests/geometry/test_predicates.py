"""Spatial predicate semantics (the strdf:* relations)."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    LineString,
    MultiPolygon,
    Point,
    Polygon,
    loads_wkt,
    predicates as P,
)

finite = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
)


@pytest.fixture
def unit_square():
    return Polygon.square(0.5, 0.5, 1.0)


class TestIntersects:
    def test_point_in_polygon(self, unit_square):
        assert P.intersects(Point(0.5, 0.5), unit_square)

    def test_point_on_boundary(self, unit_square):
        assert P.intersects(Point(0.0, 0.5), unit_square)

    def test_point_outside(self, unit_square):
        assert not P.intersects(Point(2, 2), unit_square)

    def test_polygon_polygon_overlap(self):
        assert P.intersects(Polygon.square(0, 0, 2), Polygon.square(1, 1, 2))

    def test_polygon_polygon_touching_edge(self):
        assert P.intersects(Polygon.square(0, 0, 2), Polygon.square(2, 0, 2))

    def test_polygon_containing_other(self):
        assert P.intersects(Polygon.square(0, 0, 10), Polygon.square(0, 0, 2))

    def test_line_crossing_polygon(self, unit_square):
        line = LineString([(-1, 0.5), (2, 0.5)])
        assert P.intersects(line, unit_square)

    def test_line_outside_polygon(self, unit_square):
        assert not P.intersects(LineString([(5, 5), (6, 6)]), unit_square)

    def test_line_line_crossing(self):
        a = LineString([(0, 0), (2, 2)])
        b = LineString([(0, 2), (2, 0)])
        assert P.intersects(a, b)

    def test_multipolygon_any_part(self):
        mp = MultiPolygon([Polygon.square(0, 0, 1), Polygon.square(10, 10, 1)])
        assert P.intersects(mp, Point(10, 10))

    def test_hole_excludes_point(self):
        donut = loads_wkt(
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
            "(4 4, 6 4, 6 6, 4 6, 4 4))"
        )
        assert not P.intersects(donut, Point(5, 5))
        assert P.intersects(donut, Point(1, 1))


class TestContains:
    def test_polygon_contains_point(self, unit_square):
        assert P.contains(unit_square, Point(0.5, 0.5))

    def test_polygon_covers_boundary_point(self, unit_square):
        # Our contains() is covers(): boundary points count.
        assert P.contains(unit_square, Point(0, 0))

    def test_polygon_contains_smaller(self):
        assert P.contains(Polygon.square(0, 0, 10), Polygon.square(0, 0, 2))

    def test_not_contains_overlapping(self):
        assert not P.contains(Polygon.square(0, 0, 2), Polygon.square(1, 1, 2))

    def test_within_is_converse(self):
        inner, outer = Polygon.square(0, 0, 2), Polygon.square(0, 0, 10)
        assert P.within(inner, outer)
        assert not P.within(outer, inner)

    def test_polygon_contains_line(self):
        poly = Polygon.square(0, 0, 10)
        assert P.contains(poly, LineString([(-2, -2), (2, 2)]))
        assert not P.contains(poly, LineString([(0, 0), (20, 0)]))

    def test_region_contains_hotspot_pixel(self):
        # The Query 1 region filter from the paper.
        region = loads_wkt(
            "POLYGON((21.027 38.36, 23.77 38.36, 23.77 36.05, "
            "21.027 36.05, 21.027 38.36))"
        )
        pixel = loads_wkt(
            "POLYGON ((21.52 37.91,21.57 37.91,21.56 37.88,"
            "21.52 37.87,21.52 37.91))"
        )
        assert P.contains(region, pixel)

    def test_hole_breaks_containment(self):
        donut = loads_wkt(
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
            "(4 4, 6 4, 6 6, 4 6, 4 4))"
        )
        assert not P.contains(donut, Polygon.square(5, 5, 3))
        assert P.contains(donut, Polygon.square(1.5, 1.5, 1))


class TestTouchOverlapCross:
    def test_touches_edge_adjacent_squares(self):
        assert P.touches(Polygon.square(0, 0, 2), Polygon.square(2, 0, 2))

    def test_touches_false_for_overlap(self):
        assert not P.touches(Polygon.square(0, 0, 2), Polygon.square(1, 0, 2))

    def test_touches_point_on_boundary(self, unit_square):
        assert P.touches(Point(0, 0.5), unit_square)

    def test_overlaps_partial(self):
        assert P.overlaps(Polygon.square(0, 0, 2), Polygon.square(1, 1, 2))

    def test_overlaps_false_for_containment(self):
        assert not P.overlaps(Polygon.square(0, 0, 10), Polygon.square(0, 0, 2))

    def test_overlaps_false_for_different_dims(self, unit_square):
        assert not P.overlaps(unit_square, LineString([(0, 0), (1, 1)]))

    def test_crosses_line_polygon(self, unit_square):
        assert P.crosses(LineString([(-1, 0.5), (2, 0.5)]), unit_square)

    def test_crosses_false_line_inside(self):
        poly = Polygon.square(0, 0, 10)
        assert not P.crosses(LineString([(-1, 0), (1, 0)]), poly)

    def test_equals_same_ring_rotated(self):
        a = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        b = Polygon([(2, 0), (2, 2), (0, 2), (0, 0)])
        assert P.equals(a, b)

    def test_disjoint(self):
        assert P.disjoint(Polygon.square(0, 0, 1), Polygon.square(5, 5, 1))


class TestDistance:
    def test_distance_touching_is_zero(self):
        assert P.distance(Polygon.square(0, 0, 2), Polygon.square(2, 0, 2)) == 0

    def test_point_to_polygon(self):
        assert P.distance(Point(5, 0), Polygon.square(0, 0, 2)) == pytest.approx(4.0)

    def test_point_to_point(self):
        assert P.distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_modis_tolerance_scenario(self):
        # A MODIS point 700 m from a hotspot pixel edge (Table 1 protocol).
        pixel = Polygon.square(0, 0, 0.036)  # ~4 km
        point = Point(0.018 + 0.0063, 0.0)
        assert P.distance(point, pixel) <= 0.0064


class TestProperties:
    @given(finite, finite, st.floats(min_value=0.5, max_value=5),
           finite, finite, st.floats(min_value=0.5, max_value=5))
    def test_intersects_symmetric(self, ax, ay, asz, bx, by, bsz):
        a = Polygon.square(ax, ay, asz)
        b = Polygon.square(bx, by, bsz)
        assert P.intersects(a, b) == P.intersects(b, a)

    @given(finite, finite, st.floats(min_value=0.5, max_value=5))
    def test_self_relations(self, x, y, size):
        square = Polygon.square(x, y, size)
        assert P.intersects(square, square)
        assert P.contains(square, square)
        assert P.equals(square, square)
        assert not P.disjoint(square, square)

    @given(finite, finite, st.floats(min_value=0.5, max_value=5),
           finite, finite)
    def test_point_membership_consistency(self, cx, cy, size, px, py):
        square = Polygon.square(cx, cy, size)
        point = Point(px, py)
        if P.contains(square, point):
            assert P.intersects(square, point)
            assert P.distance(square, point) == 0
