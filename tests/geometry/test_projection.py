"""Transverse Mercator / Greek Grid projection."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import GreekGrid, TransverseMercator
from repro.geometry.projection import GRS80, WGS84

lon = st.floats(min_value=19.0, max_value=29.0, allow_nan=False)
lat = st.floats(min_value=34.0, max_value=42.0, allow_nan=False)


class TestGreekGrid:
    def test_athens_reference(self):
        # Athens (23.7275 E, 37.9838 N) should land near the published
        # EPSG:2100 coordinates (~476 km E, ~4204 km N).
        e, n = GreekGrid().forward(23.7275, 37.9838)
        assert e == pytest.approx(476070, abs=50)
        assert n == pytest.approx(4204050, abs=50)

    def test_central_meridian_easting(self):
        e, _ = GreekGrid().forward(24.0, 38.0)
        assert e == pytest.approx(500000.0, abs=1e-3)

    def test_scale_factor_at_centre(self):
        gg = GreekGrid()
        # Distance between two close points on the central meridian should
        # be ~k0 times the ellipsoidal distance.
        _, n1 = gg.forward(24.0, 38.0)
        _, n2 = gg.forward(24.0, 38.001)
        ellipsoidal = 0.001 * 111132.0  # metres per degree latitude approx
        assert (n2 - n1) / ellipsoidal == pytest.approx(0.9996, abs=2e-3)

    @given(lon, lat)
    def test_roundtrip(self, lon_deg, lat_deg):
        gg = GreekGrid()
        e, n = gg.forward(lon_deg, lat_deg)
        lon_back, lat_back = gg.inverse(e, n)
        # Third-order Krüger series: sub-centimetre accuracy (1e-7 deg).
        assert lon_back == pytest.approx(lon_deg, abs=1e-7)
        assert lat_back == pytest.approx(lat_deg, abs=1e-7)

    @given(lat)
    def test_easting_monotonic_in_longitude(self, lat_deg):
        gg = GreekGrid()
        e1, _ = gg.forward(22.0, lat_deg)
        e2, _ = gg.forward(25.0, lat_deg)
        assert e2 > e1


class TestEllipsoids:
    def test_grs80_flattening(self):
        assert GRS80.flattening == pytest.approx(1 / 298.257222101)

    def test_semi_minor(self):
        assert WGS84.semi_minor == pytest.approx(6356752.3142, abs=0.01)

    def test_custom_projection(self):
        tm = TransverseMercator(
            central_meridian_deg=0.0, false_easting=0.0, ellipsoid=WGS84
        )
        e, n = tm.forward(0.0, 0.0)
        assert e == pytest.approx(0.0, abs=1e-6)
        assert n == pytest.approx(0.0, abs=1e-6)
