"""R-tree index: correctness against brute force."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Envelope, RTree

finite = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
)


def rand_env(a, b, w, h):
    return Envelope(a, b, a + abs(w), b + abs(h))


env_strategy = st.builds(
    rand_env,
    finite,
    finite,
    st.floats(min_value=0, max_value=10),
    st.floats(min_value=0, max_value=10),
)


class TestBasics:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert list(tree.search(Envelope(0, 0, 1, 1))) == []
        assert tree.nearest(0, 0) == []

    def test_single_item(self):
        tree = RTree()
        tree.insert(Envelope(0, 0, 1, 1), "a")
        assert list(tree.search(Envelope(0.5, 0.5, 2, 2))) == ["a"]
        assert list(tree.search(Envelope(5, 5, 6, 6))) == []

    def test_min_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)

    def test_grid_search(self):
        tree = RTree(max_entries=4)
        for i in range(10):
            for j in range(10):
                tree.insert(Envelope(i, j, i + 0.5, j + 0.5), (i, j))
        hits = set(tree.search(Envelope(2.25, 2.25, 4.25, 4.25)))
        assert hits == {(i, j) for i in (2, 3, 4) for j in (2, 3, 4)}

    def test_bulk_load_matches_incremental(self):
        items = [
            (Envelope(i, i % 7, i + 1, i % 7 + 1), i) for i in range(100)
        ]
        bulk = RTree.bulk_load(items)
        incremental = RTree()
        for env, payload in items:
            incremental.insert(env, payload)
        probe = Envelope(10, 0, 20, 8)
        assert set(bulk.search(probe)) == set(incremental.search(probe))

    def test_items_roundtrip(self):
        items = [(Envelope(i, 0, i + 1, 1), i) for i in range(25)]
        tree = RTree.bulk_load(items)
        assert sorted(p for _, p in tree.items()) == list(range(25))


class TestNearest:
    def test_nearest_single(self):
        tree = RTree.bulk_load(
            [(Envelope(i, 0, i, 0), i) for i in range(10)]
        )
        assert tree.nearest(3.2, 0) == [3]

    def test_nearest_k_ordering(self):
        tree = RTree.bulk_load(
            [(Envelope(i, 0, i, 0), i) for i in range(10)]
        )
        got = tree.nearest(0.1, 0, k=3)
        assert got == [0, 1, 2]

    def test_nearest_more_than_size(self):
        tree = RTree.bulk_load([(Envelope(0, 0, 1, 1), "only")])
        assert tree.nearest(9, 9, k=5) == ["only"]


class TestAgainstBruteForce:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(env_strategy, min_size=0, max_size=60), env_strategy)
    def test_search_equals_bruteforce(self, envs, probe):
        items = [(e, i) for i, e in enumerate(envs)]
        tree = RTree.bulk_load(items)
        expected = {i for e, i in items if e.intersects(probe)}
        assert set(tree.search(probe)) == expected

    @settings(max_examples=30, deadline=None)
    @given(st.lists(env_strategy, min_size=1, max_size=40), finite, finite)
    def test_nearest_equals_bruteforce(self, envs, x, y):
        items = [(e, i) for i, e in enumerate(envs)]
        tree = RTree.bulk_load(items)
        probe = Envelope(x, y, x, y)
        best = min(items, key=lambda item: item[0].distance(probe))
        got = tree.nearest(x, y, k=1)[0]
        got_env = envs[got]
        assert got_env.distance(probe) == pytest.approx(
            best[0].distance(probe)
        )

    @settings(max_examples=20, deadline=None)
    @given(st.lists(env_strategy, min_size=0, max_size=50))
    def test_incremental_insert_consistency(self, envs):
        tree = RTree(max_entries=5)
        for i, e in enumerate(envs):
            tree.insert(e, i)
        assert len(tree) == len(envs)
        everything = Envelope(-200, -200, 200, 200)
        assert set(tree.search(everything)) == set(range(len(envs)))
