"""Coordinate-wise geometry transformation."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    GeometryCollection,
    GreekGrid,
    LineString,
    MultiPolygon,
    Point,
    Polygon,
    loads_wkt,
)
from repro.geometry.transform import transform_geometry

lon = st.floats(min_value=20.5, max_value=27.0, allow_nan=False)
lat = st.floats(min_value=34.5, max_value=41.5, allow_nan=False)


def shift(dx, dy):
    return lambda x, y: (x + dx, y + dy)


class TestTransform:
    def test_point(self):
        got = transform_geometry(Point(1, 2), shift(10, 20))
        assert got == Point(11, 22)

    def test_polygon_with_hole(self):
        donut = loads_wkt(
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
            "(4 4, 6 4, 6 6, 4 6, 4 4))"
        )
        got = transform_geometry(donut, shift(100, 0))
        assert got.area == pytest.approx(donut.area)
        assert len(got.holes) == 1
        assert got.envelope.minx == pytest.approx(100.0)

    def test_collection(self):
        gc = GeometryCollection(
            [Point(0, 0), LineString([(0, 0), (1, 1)])]
        )
        got = transform_geometry(gc, shift(5, 5))
        assert isinstance(got, GeometryCollection)
        assert got.geoms[0] == Point(5, 5)

    def test_multipolygon(self):
        mp = MultiPolygon(
            [Polygon.square(0, 0, 2), Polygon.square(10, 10, 2)]
        )
        got = transform_geometry(mp, shift(1, 1))
        assert got.area == pytest.approx(8.0)

    def test_identity_preserves_equality(self):
        poly = Polygon.square(5, 5, 3)
        got = transform_geometry(poly, lambda x, y: (x, y))
        assert got == poly

    @given(lon, lat)
    def test_projection_roundtrip_on_points(self, x, y):
        grid = GreekGrid()
        projected = transform_geometry(Point(x, y), grid.forward)
        back = transform_geometry(projected, grid.inverse)
        assert back.x == pytest.approx(x, abs=1e-7)
        assert back.y == pytest.approx(y, abs=1e-7)

    def test_projected_pixel_area_plausible(self):
        # A 0.04 x 0.04 degree pixel at 38N is roughly 3.5 x 4.45 km.
        pixel = Polygon.square(23.0, 38.0, 0.04)
        grid = GreekGrid()
        projected = transform_geometry(pixel, grid.forward)
        area_km2 = projected.area / 1e6
        assert area_km2 == pytest.approx(15.6, rel=0.1)
