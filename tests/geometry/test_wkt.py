"""WKT parsing and serialisation."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    WKTParseError,
    dumps_wkt,
    loads_wkt,
)

finite = st.floats(
    min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
).map(lambda v: round(v, 6))


class TestParsing:
    def test_point(self):
        g = loads_wkt("POINT (21.73 38.24)")
        assert isinstance(g, Point)
        assert (g.x, g.y) == (21.73, 38.24)

    def test_point_case_insensitive(self):
        assert isinstance(loads_wkt("point(1 2)"), Point)

    def test_linestring(self):
        g = loads_wkt("LINESTRING (0 0, 1 1, 2 0)")
        assert isinstance(g, LineString)
        assert len(g.coords) == 3

    def test_polygon_from_paper(self):
        g = loads_wkt(
            "POLYGON ((21.52 37.91,21.57 37.91,21.56 37.88,"
            "21.56 37.88,21.52 37.87,21.52 37.91))"
        )
        assert isinstance(g, Polygon)
        assert g.area > 0

    def test_polygon_with_hole(self):
        g = loads_wkt(
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
            "(2 2, 4 2, 4 4, 2 4, 2 2))"
        )
        assert isinstance(g, Polygon)
        assert len(g.holes) == 1
        assert g.area == pytest.approx(96.0)

    def test_multipoint_both_syntaxes(self):
        a = loads_wkt("MULTIPOINT ((1 2), (3 4))")
        b = loads_wkt("MULTIPOINT (1 2, 3 4)")
        assert isinstance(a, MultiPoint) and isinstance(b, MultiPoint)
        assert len(a) == len(b) == 2

    def test_multipolygon(self):
        g = loads_wkt(
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), "
            "((5 5, 6 5, 6 6, 5 6, 5 5)))"
        )
        assert isinstance(g, MultiPolygon)
        assert len(g) == 2

    def test_geometrycollection(self):
        g = loads_wkt(
            "GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))"
        )
        assert isinstance(g, GeometryCollection)
        assert len(g) == 2

    def test_empty_keyword(self):
        assert loads_wkt("MULTIPOLYGON EMPTY").is_empty
        assert loads_wkt("POINT EMPTY").is_empty
        assert loads_wkt("GEOMETRYCOLLECTION EMPTY").is_empty

    def test_z_ordinate_dropped(self):
        g = loads_wkt("POINT (1 2 3)")
        assert isinstance(g, Point)
        assert (g.x, g.y) == (1.0, 2.0)

    def test_scientific_notation(self):
        g = loads_wkt("POINT (1e2 -2.5E-1)")
        assert (g.x, g.y) == (100.0, -0.25)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "POINT",
            "POINT (1)",
            "POINT (1 2",
            "TRIANGLE (0 0, 1 1, 2 2)",
            "POINT (1 2) extra",
            "POLYGON ((0 0, 1 1))",
        ],
    )
    def test_bad_input_raises(self, bad):
        with pytest.raises(WKTParseError):
            loads_wkt(bad)


class TestSerialisation:
    def test_point_roundtrip(self):
        g = Point(21.5, -4.25)
        assert loads_wkt(dumps_wkt(g)) == g

    def test_integers_have_no_decimal_zeros(self):
        assert dumps_wkt(Point(1.0, 2.0)) == "POINT (1 2)"

    def test_multipolygon_roundtrip(self):
        g = MultiPolygon(
            [Polygon.square(0, 0, 2), Polygon.square(10, 10, 2)]
        )
        back = loads_wkt(dumps_wkt(g))
        assert isinstance(back, MultiPolygon)
        assert back.area == pytest.approx(g.area)

    def test_empty_serialisation(self):
        assert dumps_wkt(MultiPoint([])) == "MULTIPOINT EMPTY"


class TestRoundtripProperties:
    @given(finite, finite)
    def test_point_roundtrip(self, x, y):
        g = Point(x, y)
        assert loads_wkt(dumps_wkt(g)) == g

    @given(st.lists(st.tuples(finite, finite), min_size=2, max_size=8))
    def test_linestring_roundtrip(self, coords):
        g = LineString(coords)
        back = loads_wkt(dumps_wkt(g))
        assert isinstance(back, LineString)
        assert back.coords == g.coords

    @given(finite, finite, st.floats(min_value=0.1, max_value=10))
    def test_square_roundtrip_preserves_area(self, cx, cy, side):
        g = Polygon.square(cx, cy, side)
        back = loads_wkt(dumps_wkt(g))
        assert back.area == pytest.approx(g.area, rel=1e-9)
