"""Property-style WKT fixpoint tests (seeded stdlib ``random``).

For any generated geometry ``g``: serialising, parsing and serialising
again must reach a fixpoint after one round —
``dumps(loads(dumps(g))) == dumps(g)`` — and the reparsed geometry must
be structurally identical to the first parse.  Constructors are allowed
one normalisation pass (ring orientation), which is why the property is
stated on the serialised text rather than on the raw input.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.geometry import (
    GeometryCollection,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    dumps_wkt,
    loads_wkt,
)


def _coord(rng: random.Random):
    # Mix of integers (exercise the ".0"-stripping in the serialiser),
    # short decimals, and full-precision doubles (exercise repr
    # round-tripping).
    roll = rng.random()
    if roll < 0.3:
        return float(rng.randrange(-180, 181))
    if roll < 0.6:
        return round(rng.uniform(-180, 180), 6)
    return rng.uniform(-180, 180)


def _point(rng):
    return Point(_coord(rng), _coord(rng))


def _linestring(rng):
    return LineString(
        [(_coord(rng), _coord(rng)) for _ in range(rng.randrange(2, 8))]
    )


def _polygon(rng):
    # A star-convex shell (random radii sorted by angle) is always a
    # valid simple ring; a small square hole near the centroid stays
    # inside it.
    cx, cy = _coord(rng), _coord(rng)
    n = rng.randrange(3, 9)
    angles = sorted(rng.uniform(0, 2 * math.pi) for _ in range(n))
    if len(set(angles)) < 3:
        angles = [k * 2 * math.pi / n for k in range(n)]
    shell = [
        (cx + rng.uniform(2.0, 4.0) * math.cos(a),
         cy + rng.uniform(2.0, 4.0) * math.sin(a))
        for a in angles
    ]
    holes = None
    if rng.random() < 0.4:
        h = rng.uniform(0.1, 0.5)
        holes = [[(cx - h, cy - h), (cx + h, cy - h),
                  (cx + h, cy + h), (cx - h, cy + h)]]
    return Polygon(shell, holes)


def _geometry(rng, depth=0):
    makers = [_point, _linestring, _polygon]
    if depth == 0:
        makers += [_multipoint, _multilinestring, _multipolygon,
                   _collection]
    return rng.choice(makers)(rng)


def _multipoint(rng):
    return MultiPoint([_point(rng) for _ in range(rng.randrange(1, 5))])


def _multilinestring(rng):
    return MultiLineString(
        [_linestring(rng) for _ in range(rng.randrange(1, 4))]
    )


def _multipolygon(rng):
    return MultiPolygon(
        [_polygon(rng) for _ in range(rng.randrange(1, 4))]
    )


def _collection(rng):
    return GeometryCollection(
        [_geometry(rng, depth=1) for _ in range(rng.randrange(1, 4))]
    )


def _structure(geom):
    """A comparable structural key: type + exact coordinates."""
    if isinstance(geom, Point):
        return ("POINT", geom.x, geom.y)
    if isinstance(geom, Polygon):
        return (
            "POLYGON",
            tuple(tuple(ring.coords) for ring in geom.rings),
        )
    if isinstance(geom, LineString):
        return ("LINESTRING", tuple(geom.coords))
    if isinstance(geom, (MultiPoint, MultiLineString, MultiPolygon,
                         GeometryCollection)):
        return (
            geom.geom_type,
            tuple(_structure(g) for g in geom.geoms),
        )
    raise TypeError(type(geom).__name__)


@pytest.mark.parametrize("seed", range(40))
def test_wkt_parse_serialize_parse_fixpoint(seed):
    rng = random.Random(seed)
    for _ in range(10):
        geom = _geometry(rng)
        text1 = dumps_wkt(geom)
        parsed1 = loads_wkt(text1)
        text2 = dumps_wkt(parsed1)
        assert text2 == text1
        parsed2 = loads_wkt(text2)
        assert _structure(parsed2) == _structure(parsed1)
        assert type(parsed1) is type(geom)


@pytest.mark.parametrize(
    "text",
    [
        "MULTIPOINT EMPTY",
        "MULTILINESTRING EMPTY",
        "MULTIPOLYGON EMPTY",
        "GEOMETRYCOLLECTION EMPTY",
    ],
)
def test_empty_forms_are_fixpoints(text):
    assert dumps_wkt(loads_wkt(text)) == text


def test_full_precision_floats_roundtrip_exactly():
    rng = random.Random(4242)
    for _ in range(200):
        p = Point(rng.uniform(-1e3, 1e3), rng.uniform(-1e3, 1e3))
        q = loads_wkt(dumps_wkt(p))
        assert (q.x, q.y) == (p.x, p.y)
