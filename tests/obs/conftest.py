"""Fixtures for the observability tests.

The ``repro.obs`` tracer and registry are process-global singletons, so
any test that enables them must guarantee they end up disabled and empty
again — otherwise instrumentation state would leak into the rest of the
suite (which assumes the default off state).
"""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture()
def observability():
    """Globally enabled observability, guaranteed clean on teardown."""
    obs.reset()
    obs.enable()
    try:
        yield obs
    finally:
        obs.disable()
        obs.reset()
