"""Budget accounting and Table 2 regeneration from spans."""

from __future__ import annotations

import io
from datetime import datetime, timezone
from types import SimpleNamespace

import pytest

from repro.obs import (
    AcquisitionBudget,
    Tracer,
    read_spans_jsonl,
    table2_from_spans,
    write_spans_jsonl,
)

WHEN = datetime(2007, 8, 24, 13, 0, tzinfo=timezone.utc)


def test_record_and_miss_ratio():
    budget = AcquisitionBudget(window_seconds=300.0)
    good = budget.record(WHEN, chain_seconds=2.0, refinement_seconds=1.0)
    bad = budget.record(WHEN, chain_seconds=250.0,
                        refinement_seconds=100.0)
    assert good.within_budget
    assert good.total_seconds == 3.0
    assert good.headroom_seconds == 297.0
    assert not bad.within_budget
    assert bad.headroom_seconds == -50.0
    assert len(budget) == 2
    assert budget.misses() == 1
    assert budget.miss_ratio() == 0.5


def test_rolling_window_limits_miss_ratio():
    budget = AcquisitionBudget(window_seconds=10.0, rolling_window=2)
    budget.record(WHEN, chain_seconds=100.0)  # miss, but rolls out
    budget.record(WHEN, chain_seconds=1.0)
    budget.record(WHEN, chain_seconds=1.0)
    assert budget.misses() == 1  # all-time
    assert budget.miss_ratio() == 0.0  # last two only
    assert budget.miss_ratio(last=3) == pytest.approx(1 / 3)


def test_record_outcome_duck_types_service_outcomes():
    budget = AcquisitionBudget()
    outcome = SimpleNamespace(
        timestamp=WHEN,
        sensor="MSG2",
        chain_seconds=1.5,
        refinement_seconds=0.5,
    )
    entry = budget.record_outcome(outcome)
    assert entry.sensor == "MSG2"
    assert entry.total_seconds == 2.0


def test_summary_and_report():
    budget = AcquisitionBudget(window_seconds=300.0)
    empty = budget.report()
    assert "no acquisitions recorded" in empty
    budget.record(WHEN, chain_seconds=4.0, refinement_seconds=2.0)
    budget.record(WHEN, chain_seconds=400.0)
    summary = budget.summary()
    assert summary["acquisitions"] == 2.0
    assert summary["chain_avg_s"] == pytest.approx(202.0)
    assert summary["total_avg_s"] == pytest.approx(203.0)
    assert summary["total_max_s"] == 400.0
    assert summary["headroom_min_s"] == -100.0
    assert summary["deadline_miss_ratio"] == 0.5
    report = budget.report()
    assert "300 s window, 2 acquisition(s)" in report
    assert "deadline misses: 1/2" in report
    budget.reset()
    assert len(budget) == 0


def test_invalid_window_rejected():
    with pytest.raises(ValueError):
        AcquisitionBudget(window_seconds=0.0)


def _chain_trace(tracer: Tracer, chain: str) -> None:
    with tracer.span("chain.process", chain=chain):
        for stage in ("decode", "crop", "georeference", "classify",
                      "vectorize"):
            with tracer.span(f"chain.{stage}"):
                pass


def test_table2_from_spans_groups_by_chain_and_stage():
    tracer = Tracer(enabled=True)
    _chain_trace(tracer, "sciql")
    _chain_trace(tracer, "sciql")
    _chain_trace(tracer, "legacy")
    # Unrelated spans must not disturb the table.
    with tracer.span("acquisition"):
        with tracer.span("stsparql.query"):
            pass
    breakdown = table2_from_spans(tracer.spans())
    assert breakdown.acquisition_count == 3
    assert set(breakdown.chains) == {"sciql", "legacy"}
    sciql = breakdown.chains["sciql"]
    assert sciql["TOTAL"].count == 2
    for stage in ("decode", "crop", "georeference", "classify",
                  "vectorize"):
        assert sciql[stage].count == 2
        assert sciql[stage].min <= sciql[stage].avg <= sciql[stage].max
    assert breakdown.chains["legacy"]["TOTAL"].count == 1
    text = breakdown.format()
    assert "3 acquisition(s)" in text
    assert "sciql" in text and "legacy" in text
    # Stages render in the paper's §3.1 order, TOTAL last.
    legacy_rows = [line for line in text.splitlines()
                   if line.startswith("legacy")]
    assert [row.split()[1] for row in legacy_rows] == [
        "decode", "crop", "georeference", "classify", "vectorize",
        "TOTAL",
    ]


def test_table2_from_reloaded_jsonl_records():
    tracer = Tracer(enabled=True)
    _chain_trace(tracer, "sciql")
    buffer = io.StringIO()
    write_spans_jsonl(tracer.spans(), buffer)
    buffer.seek(0)
    records = read_spans_jsonl(buffer)
    breakdown = table2_from_spans(records)
    assert breakdown.acquisition_count == 1
    assert breakdown.chains["sciql"]["classify"].count == 1
