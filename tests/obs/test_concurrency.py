"""Concurrent use of the obs layer by the pipelined executor's workers.

Spans opened on different threads must build independent, uncorrupted
trees (each thread has its own span stack), and metrics must not lose
samples under contention.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer

WORKERS = 4
PER_WORKER = 200


def test_span_trees_stay_per_thread():
    tracer = Tracer(enabled=True)
    barrier = threading.Barrier(WORKERS)
    errors = []

    def worker(tag: str) -> None:
        try:
            barrier.wait()
            for i in range(PER_WORKER):
                with tracer.span("outer", worker=tag, i=i) as outer:
                    with tracer.span("inner", worker=tag) as inner:
                        # Parentage must point at *this* thread's outer
                        # span, never at another thread's.
                        assert inner.parent_id == outer.span_id
                assert tracer.current() is None
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(f"w{n}",))
        for n in range(WORKERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors

    spans = tracer.spans()
    assert len(spans) == WORKERS * PER_WORKER * 2
    by_id = {s.span_id: s for s in spans}
    assert len(by_id) == len(spans)  # unique ids across threads
    for span in spans:
        if span.name == "inner":
            parent = by_id[span.parent_id]
            assert parent.name == "outer"
            assert parent.attributes["worker"] == (
                span.attributes["worker"]
            )
        else:
            assert span.parent_id is None
        assert span.status == "ok"


def test_metrics_lose_no_samples_under_contention():
    registry = MetricsRegistry(enabled=True)
    counter = registry.counter("work_total")
    histogram = registry.histogram("work_seconds")
    barrier = threading.Barrier(WORKERS)

    def worker(tag: str) -> None:
        barrier.wait()
        for i in range(PER_WORKER):
            counter.inc(worker=tag)
            histogram.observe(i * 0.001, worker=tag)
            histogram.observe(i * 0.001, stage="shared")

    threads = [
        threading.Thread(target=worker, args=(f"w{n}",))
        for n in range(WORKERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert counter.total() == WORKERS * PER_WORKER
    for n in range(WORKERS):
        assert counter.value(worker=f"w{n}") == PER_WORKER
        assert histogram.count(worker=f"w{n}") == PER_WORKER
    # The label set shared by every thread kept every sample too.
    assert histogram.count(stage="shared") == WORKERS * PER_WORKER
    assert histogram.total_count(stage="shared") == (
        WORKERS * PER_WORKER
    )


def test_mixed_span_and_metric_traffic_with_failures():
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry(enabled=True)

    def worker(fail: bool) -> None:
        for i in range(50):
            try:
                with tracer.span("acq", fail=fail):
                    registry.histogram("latency").observe(0.01)
                    if fail:
                        raise RuntimeError("worker error")
            except RuntimeError:
                pass

    threads = [
        threading.Thread(target=worker, args=(fail,))
        for fail in (False, True)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    spans = tracer.spans()
    assert len(spans) == 100
    assert sum(1 for s in spans if s.status == "error") == 50
    assert tracer.failure_counts.get("acq") == 50
    assert registry.histogram("latency").count() == 100
