"""Exporters: JSON-lines round-trip, Prometheus text, span tree."""

from __future__ import annotations

import io

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    prometheus_text,
    read_spans_jsonl,
    tree_report,
    write_spans_jsonl,
)


def _sample_spans():
    tracer = Tracer(enabled=True)
    with tracer.span("acquisition", mode="teleios"):
        with tracer.span("chain.process", chain="sciql"):
            with tracer.span("chain.decode"):
                pass
        with pytest.raises(RuntimeError):
            with tracer.span("refinement"):
                raise RuntimeError("strabon down")
    return tracer.spans()


def test_jsonl_round_trip_through_file_object():
    spans = _sample_spans()
    buffer = io.StringIO()
    written = write_spans_jsonl(spans, buffer)
    assert written == len(spans) == 4
    buffer.seek(0)
    records = read_spans_jsonl(buffer)
    assert records == [s.to_dict() for s in spans]


def test_jsonl_round_trip_through_path(tmp_path):
    spans = _sample_spans()
    path = tmp_path / "spans.jsonl"
    write_spans_jsonl(spans, str(path))
    records = read_spans_jsonl(str(path))
    assert [r["name"] for r in records] == [s.name for s in spans]
    # The error span survives serialisation intact.
    failed = [r for r in records if r["status"] == "error"]
    assert len(failed) == 1
    assert failed[0]["name"] == "refinement"
    assert "strabon down" in failed[0]["error"]


def test_prometheus_text_renders_all_kinds():
    registry = MetricsRegistry()
    registry.counter("requests_total", "Requests seen").inc(
        3, operation="select"
    )
    registry.gauge("queue_depth").set(2)
    hist = registry.histogram("latency_seconds", "Request latency")
    for v in (0.1, 0.2, 0.3):
        hist.observe(v, stage="chain")
    text = prometheus_text(registry)
    assert "# HELP requests_total Requests seen\n" in text
    assert "# TYPE requests_total counter\n" in text
    assert 'requests_total{operation="select"} 3\n' in text
    assert "# TYPE queue_depth gauge\n" in text
    assert "queue_depth 2\n" in text
    # Histograms export as Prometheus summaries with quantile labels.
    assert "# TYPE latency_seconds summary\n" in text
    assert 'latency_seconds{quantile="0.5",stage="chain"} 0.2\n' in text
    assert 'latency_seconds{quantile="0.95"' in text
    assert 'latency_seconds_sum{stage="chain"}' in text
    assert 'latency_seconds_count{stage="chain"} 3\n' in text


def test_prometheus_text_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("c").inc(path='a"b\\c')
    text = prometheus_text(registry)
    assert 'c{path="a\\"b\\\\c"} 1' in text


def test_prometheus_text_escapes_adversarial_label_values():
    """Newlines, quotes and backslashes must never break the line
    format — one sample per line, however hostile the label value."""
    registry = MetricsRegistry()
    hostile = 'evil"} 9999\nfake_metric{x="y'
    registry.counter("c", "hostile labels").inc(path=hostile)
    registry.gauge("g").set(1, reason="back\\slash\nnew\"line")
    text = prometheus_text(registry)
    # The injected newline is escaped, so no forged sample line exists.
    assert "\nfake_metric" not in text
    assert 'c{path="evil\\"} 9999\\nfake_metric{x=\\"y"} 1\n' in text
    assert 'g{reason="back\\\\slash\\nnew\\"line"} 1\n' in text
    # Every non-comment line still parses as `name{...} value`.
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        assert line.rsplit(" ", 1)[1].replace(".", "").lstrip("-")


def test_prometheus_text_escapes_help_text():
    registry = MetricsRegistry()
    registry.counter(
        "c", "first line\nsecond \\ line"
    ).inc()
    text = prometheus_text(registry)
    assert "# HELP c first line\\nsecond \\\\ line\n" in text


def test_prometheus_histogram_count_carries_exemplar():
    registry = MetricsRegistry()
    hist = registry.histogram("latency_seconds", "Request latency")
    hist.observe(0.1, stage="total")
    hist.observe(0.2, exemplar="deadbeef01234567", stage="total")
    text = prometheus_text(registry)
    assert (
        'latency_seconds_count{stage="total"} 2 '
        '# {trace_id="deadbeef01234567"} 0.2\n'
    ) in text
    # Series without exemplars render the plain count line.
    hist.observe(0.3, stage="chain")
    text = prometheus_text(registry)
    assert 'latency_seconds_count{stage="chain"} 1\n' in text


def test_histogram_exemplars_are_bounded_and_resettable():
    registry = MetricsRegistry()
    hist = registry.histogram("h")
    for k in range(20):
        hist.observe(float(k), exemplar=f"{k:016x}")
    entries = hist.exemplars()
    assert len(entries) == hist.max_exemplars
    assert entries[-1]["trace_id"] == f"{19:016x}"
    hist.reset()
    assert hist.exemplars() == []


def test_tree_report_indents_children_and_marks_errors():
    spans = _sample_spans()
    report = tree_report(spans)
    lines = report.splitlines()
    assert len(lines) == 4
    # Root first, children indented by depth, recording order preserved.
    assert "acquisition" in lines[0]
    assert "[mode=teleios]" in lines[0]
    assert lines[1].split("ms  ")[1].startswith("  chain.process")
    assert lines[2].split("ms  ")[1].startswith("    chain.decode")
    assert "!refinement" in lines[3]
    assert "<RuntimeError: strabon down>" in lines[3]


def test_tree_report_treats_orphans_as_roots_and_caps_output():
    spans = _sample_spans()
    records = [s.to_dict() for s in spans]
    # Drop the root: its children become top-level entries.
    orphans = [r for r in records if r["name"] != "acquisition"]
    report = tree_report(orphans, include_attributes=False)
    top_level = [
        line for line in report.splitlines()
        if not line.split("ms  ")[1].startswith(" ")
    ]
    assert len(top_level) == 2
    assert len(tree_report(records, max_spans=1).splitlines()) == 1
