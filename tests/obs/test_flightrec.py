"""Flight recorder: ring semantics, atomic dumps, dump loading."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import Tracer
from repro.obs.flightrec import (
    DUMP_SCHEMA,
    FlightRecorder,
    get_flight_recorder,
    latest_dump,
    list_dumps,
    load_dump,
)


def test_record_appends_bounded_ring():
    recorder = FlightRecorder(capacity=3)
    for k in range(5):
        recorder.record("acquisition", f"event-{k}")
    events = recorder.events()
    assert len(events) == 3
    assert [e["name"] for e in events] == ["event-2", "event-3", "event-4"]
    assert all(e["kind"] == "acquisition" for e in events)


def test_record_carries_trace_id_and_detail():
    recorder = FlightRecorder()
    event = recorder.record(
        "error", "serve.hotspots", trace_id="abc123", error="boom"
    )
    assert event["trace_id"] == "abc123"
    assert event["detail"] == {"error": "boom"}
    # No detail kwargs -> no detail key (keeps dumps compact).
    bare = recorder.record("degradation", "decode-failed")
    assert "detail" not in bare


def test_record_span_summarises_a_finished_span():
    tracer = Tracer(enabled=True)
    recorder = FlightRecorder()
    with pytest.raises(ValueError):
        with tracer.span("chain.decode") as span:
            raise ValueError("bad segment")
    recorder.record_span(span)
    (event,) = recorder.events()
    assert event["kind"] == "span"
    assert event["name"] == "chain.decode"
    assert event["trace_id"] == span.trace_id
    assert event["detail"]["status"] == "error"
    assert "bad segment" in event["detail"]["error"]


def test_dump_without_destination_returns_none():
    recorder = FlightRecorder()
    recorder.record("crash", "somewhere")
    assert recorder.dump("no directory configured") is None


def test_dump_and_load_round_trip(tmp_path):
    recorder = FlightRecorder()
    recorder.configure(str(tmp_path / "flightrec"))
    recorder.record("acquisition", "2007-08-25T12:00:00Z")
    recorder.record("crash", "commit.post-wal", pid=os.getpid())
    path = recorder.dump("crashpoint:commit.post-wal")
    assert path is not None
    payload = load_dump(path)
    assert payload["schema"] == DUMP_SCHEMA
    assert payload["reason"] == "crashpoint:commit.post-wal"
    assert payload["pid"] == os.getpid()
    assert payload["events"][-1]["kind"] == "crash"
    assert payload["events"][-1]["name"] == "commit.post-wal"
    # The dump is complete JSON on disk with no temp residue.
    assert not [
        n for n in os.listdir(recorder.dump_dir) if ".tmp." in n
    ]


def test_load_dump_rejects_foreign_schema(tmp_path):
    path = tmp_path / "flightrec-1-1.json"
    path.write_text(json.dumps({"schema": "something/else"}))
    with pytest.raises(ValueError):
        load_dump(str(path))


def test_list_and_latest_dumps(tmp_path):
    recorder = FlightRecorder()
    recorder.configure(str(tmp_path))
    recorder.record("crash", "first")
    first = recorder.dump("crash", path=str(tmp_path / "flightrec-1-9.json"))
    recorder.clear()
    recorder.record("crash", "second")
    second = recorder.dump(
        "crash", path=str(tmp_path / "flightrec-2-9.json")
    )
    assert list_dumps(str(tmp_path)) == [first, second]
    newest = latest_dump(str(tmp_path))
    assert newest["path"] == second
    assert newest["events"][-1]["name"] == "second"
    # Unreadable newest dump -> fall back to the previous one.
    with open(second, "w") as f:
        f.write("{ torn")
    assert latest_dump(str(tmp_path))["path"] == first
    assert latest_dump(str(tmp_path / "missing")) is None


def test_reset_after_fork_clears_ring_but_keeps_dump_dir(tmp_path):
    recorder = FlightRecorder()
    recorder.configure(str(tmp_path))
    recorder.record("acquisition", "parent-history")
    recorder.reset_after_fork()
    assert recorder.events() == []
    assert recorder.dump_dir == str(tmp_path)


def test_global_recorder_is_always_on():
    recorder = get_flight_recorder()
    marker = "test-marker-event"
    recorder.record("test", marker)
    try:
        assert any(e["name"] == marker for e in recorder.events())
    finally:
        recorder.clear()
