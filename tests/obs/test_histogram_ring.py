"""Histogram memory stays bounded: per-label ring buffers.

Long-running pipelined services observe one sample per acquisition per
stage, forever; retained samples must cap at ``max_observations`` while
lifetime counts and percentiles stay meaningful.
"""

from __future__ import annotations

from repro.obs.metrics import Histogram, MetricsRegistry


class SmallRing(Histogram):
    max_observations = 64


def test_retained_samples_cap_at_max_observations():
    histogram = SmallRing("latency_seconds")
    for i in range(1000):
        histogram.observe(float(i))
    assert histogram.count() == 64
    assert histogram.total_count() == 1000
    # Newest samples win: the window is exactly the last 64.
    assert histogram.percentile(0) == 936.0
    assert histogram.percentile(100) == 999.0


def test_cap_applies_per_label_set():
    histogram = SmallRing("stage_seconds")
    for i in range(200):
        histogram.observe(float(i), stage="chain")
    for i in range(10):
        histogram.observe(float(i), stage="refine")
    assert histogram.count(stage="chain") == 64
    assert histogram.total_count(stage="chain") == 200
    assert histogram.count(stage="refine") == 10
    assert histogram.total_count(stage="refine") == 10


def test_percentiles_stable_across_displacement():
    """A stationary stream keeps its percentiles after wrapping."""
    histogram = SmallRing("stationary_seconds")
    # Repeating 0..15: every window of 64 holds 4 full periods, so the
    # percentiles are identical before and after displacement.
    for i in range(64):
        histogram.observe(float(i % 16))
    p50_before = histogram.percentile(50)
    p95_before = histogram.percentile(95)
    for i in range(10_000):
        histogram.observe(float(i % 16))
    assert histogram.percentile(50) == p50_before
    assert histogram.percentile(95) == p95_before
    summary = histogram.summary()
    assert summary["count"] == 64
    assert summary["min"] == 0.0 and summary["max"] == 15.0


def test_reset_clears_lifetime_counts_too():
    histogram = SmallRing("resettable_seconds")
    for _ in range(100):
        histogram.observe(1.0)
    histogram.reset()
    assert histogram.count() == 0
    assert histogram.total_count() == 0


def test_default_capacity_is_a_backstop_not_a_cap():
    registry = MetricsRegistry()
    histogram = registry.histogram("acquisition_stage_seconds")
    assert histogram.max_observations == 100_000
    for i in range(500):
        histogram.observe(float(i), stage="total")
    # Benchmark-scale traffic is far below the ring size: exact.
    assert histogram.count(stage="total") == 500
    assert histogram.total_count(stage="total") == 500
