"""End-to-end instrumentation: the pipeline under the global tracer.

Covers the acceptance criteria of the observability PR: service outcomes
still populate their public timing fields with tracing on *and* off, the
recorded span tree covers every pipeline layer, ingestion through the
SEVIRI monitor is counted, and a zero-hotspot acquisition still renders
a budget report.
"""

from __future__ import annotations

import os
from datetime import datetime, timezone

import pytest

from repro.core.config import RunOptions
from repro.core.service import FireMonitoringService
from repro.obs import table2_from_spans, tree_report
from repro.seviri.hrit import write_hrit_segments
from repro.seviri.monitor import SeviriMonitor

WHEN = datetime(2007, 8, 24, 13, 0, tzinfo=timezone.utc)


@pytest.fixture()
def teleios(greece, tmp_path):
    return FireMonitoringService(
        greece=greece, mode="teleios", workdir=str(tmp_path)
    )


def test_outcome_fields_populated_with_tracing_disabled(
    teleios, season, noon_scene
):
    outcome = teleios.run([noon_scene], RunOptions(on_error="raise"))[0]
    assert outcome.chain_seconds > 0.0
    assert len(outcome.refinement_timings) == 6
    assert all(t.seconds >= 0.0 for t in outcome.refinement_timings)
    assert outcome.refined_count is not None
    assert len(teleios.budget) == 1
    # Nothing was recorded: observability defaults to off.
    from repro import obs

    assert obs.get_tracer().spans() == []
    assert obs.get_metrics().collect() == []


def test_span_tree_covers_every_pipeline_layer(
    observability, teleios, noon_scene
):
    outcome = teleios.run([noon_scene], RunOptions(on_error="raise"))[0]
    teleios.export_product(outcome.raw_product)
    spans = observability.get_tracer().spans()
    names = {s.name for s in spans}
    # Chain, annotation, refinement, store backends, dissemination.
    assert {
        "acquisition",
        "chain.process",
        "chain.decode",
        "chain.crop",
        "chain.georeference",
        "chain.classify",
        "chain.vectorize",
        "refinement",
        "refine.store",
        "annotation",
        "stsparql.query",
        "stsparql.parse",
        "stsparql.eval",
        "arraydb.execute",
        "disseminate.shapefile",
    } <= names
    by_id = {s.span_id: s for s in spans}
    # Parentage: chain stages under chain.process, which sits under the
    # acquisition root; refinement operations under "refinement".
    root = next(s for s in spans if s.name == "acquisition")
    assert root.parent_id is None
    chain_root = next(s for s in spans if s.name == "chain.process")
    assert by_id[chain_root.parent_id].name == "acquisition"
    for stage in ("decode", "crop", "georeference", "classify",
                  "vectorize"):
        span = next(s for s in spans if s.name == f"chain.{stage}")
        assert span.parent_id == chain_root.span_id
    # Stage two (refinement + surviving query + archive) is delimited
    # by "stage.refine", which sits under the acquisition root.
    refinement = next(s for s in spans if s.name == "refinement")
    stage2 = by_id[refinement.parent_id]
    assert stage2.name == "stage.refine"
    assert by_id[stage2.parent_id].name == "acquisition"
    store = next(s for s in spans if s.name == "refine.store")
    assert store.parent_id == refinement.span_id
    # Outcome timing is the sum of the stage spans, so it fits inside
    # the chain root span (which adds only inter-stage overhead).
    assert 0.0 < outcome.chain_seconds <= chain_root.duration
    assert chain_root.duration - outcome.chain_seconds < 0.05
    assert root.attributes["raw_hotspots"] == len(outcome.raw_product)
    # The tree report renders the whole acquisition without error.
    report = tree_report(spans)
    assert "acquisition" in report and "disseminate.shapefile" in report


def test_metrics_and_table2_from_an_instrumented_run(
    observability, teleios, noon_scene
):
    teleios.run([noon_scene], RunOptions(on_error="raise"))[0]
    metrics = observability.get_metrics()
    stage_hist = metrics.get("chain_stage_seconds")
    assert stage_hist is not None
    for stage in ("decode", "crop", "georeference", "classify",
                  "vectorize"):
        assert stage_hist.count(chain="sciql", stage=stage) == 1
    acq_hist = metrics.get("acquisition_stage_seconds")
    assert acq_hist.count(stage="total") == 1
    assert metrics.get("stsparql_query_seconds").count(
        operation="update"
    ) > 0
    assert metrics.get("arraydb_statement_seconds") is not None
    breakdown = table2_from_spans(observability.get_tracer().spans())
    assert breakdown.acquisition_count == 1
    assert set(breakdown.chains) == {"sciql"}
    assert breakdown.chains["sciql"]["TOTAL"].count == 1


def test_monitor_ingestion_spans_and_counters(
    observability, noon_scene, georeference, tmp_path
):
    incoming = str(tmp_path / "incoming")
    archive = str(tmp_path / "archive")
    os.makedirs(incoming)
    write_hrit_segments(
        incoming, noon_scene.sensor_name, "IR_039", WHEN, noon_scene.t039
    )
    write_hrit_segments(
        incoming, noon_scene.sensor_name, "IR_108", WHEN, noon_scene.t108
    )
    # One irrelevant band the monitor must filter out.
    write_hrit_segments(
        incoming, noon_scene.sensor_name, "VIS006", WHEN, noon_scene.t108
    )
    with SeviriMonitor(incoming, archive) as monitor:
        registered = monitor.scan()
        ready = monitor.dispatch_ready()
    assert registered > 0
    assert len(ready) == 1
    names = {s.name for s in observability.get_tracer().spans()}
    assert {"monitor.scan", "monitor.dispatch"} <= names
    metrics = observability.get_metrics()
    assert metrics.get("monitor_segments_received_total").total() == \
        registered
    assert metrics.get("monitor_segments_dropped_total").value(
        reason="irrelevant_band"
    ) > 0
    assert metrics.get("monitor_acquisitions_assembled_total").total() == 1
    assert metrics.get("monitor_scan_seconds").count() == 1


def test_vault_load_spans_from_file_based_chain(
    observability, teleios, noon_scene
):
    teleios.use_files = True
    teleios.run([noon_scene], RunOptions(on_error="raise"))[0]
    spans = observability.get_tracer().spans()
    vault_loads = [s for s in spans if s.name == "vault.load"]
    assert vault_loads, "file-based ingestion must traverse the vault"
    assert all(
        s.attributes.get("format") or s.attributes.get("name")
        for s in vault_loads
    )
    metrics = observability.get_metrics()
    assert metrics.get("vault_loads_total").total() >= 1


def test_zero_hotspot_acquisition_still_reports_budget(
    observability, teleios
):
    # No fire season: a quiet acquisition with nothing to refine.
    outcome = teleios.run([WHEN], RunOptions(season=None, on_error="raise"))[0]
    assert len(outcome.raw_product) == 0
    assert outcome.refined_count == 0
    report = teleios.budget_report()
    assert "1 acquisition(s)" in report
    assert "deadline misses: 0/1" in report
    assert teleios.budget.miss_ratio() == 0.0


def test_failed_acquisition_closes_spans_and_counts_failure(
    observability, teleios, noon_scene, monkeypatch
):
    def explode(*args, **kwargs):
        raise RuntimeError("chain crashed")

    monkeypatch.setattr(teleios.chain, "process", explode)
    with pytest.raises(RuntimeError, match="chain crashed"):
        teleios.run([noon_scene], RunOptions(on_error="raise"))[0]
    tracer = observability.get_tracer()
    (span,) = [s for s in tracer.spans() if s.name == "acquisition"]
    assert span.status == "error"
    assert span.end is not None
    assert tracer.failure_counts.get("acquisition") == 1
    metrics = observability.get_metrics()
    assert metrics.get("span_failures_total").value(
        span="acquisition"
    ) == 1
