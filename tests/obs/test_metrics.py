"""Metrics registry: counters, gauges, histogram percentiles, labels."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import _percentile


def test_counter_labels_value_and_total():
    registry = MetricsRegistry()
    counter = registry.counter("segments_total", "help text")
    counter.inc(reason="unparseable")
    counter.inc(2, reason="irrelevant_band")
    counter.inc()
    assert counter.value(reason="unparseable") == 1
    assert counter.value(reason="irrelevant_band") == 2
    assert counter.value() == 1
    assert counter.total() == 4


def test_counter_rejects_negative_increment():
    counter = MetricsRegistry().counter("c")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_inc_dec():
    gauge = MetricsRegistry().gauge("queue_depth")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec()
    assert gauge.value() == 6.0


def test_histogram_exact_percentiles():
    histogram = MetricsRegistry().histogram("latency_s")
    for v in range(1, 101):  # 1..100
        histogram.observe(float(v))
    assert histogram.count() == 100
    # Linear interpolation over sorted values (0-indexed ranks).
    assert histogram.percentile(50) == pytest.approx(50.5)
    assert histogram.percentile(95) == pytest.approx(95.05)
    assert histogram.percentile(0) == 1.0
    assert histogram.percentile(100) == 100.0
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["sum"] == pytest.approx(5050.0)
    assert summary["min"] == 1.0
    assert summary["max"] == 100.0
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["p95"] == pytest.approx(95.05)


def test_histogram_label_sets_are_independent():
    histogram = MetricsRegistry().histogram("chain_stage_seconds")
    histogram.observe(0.1, chain="sciql", stage="classify")
    histogram.observe(0.3, chain="sciql", stage="classify")
    histogram.observe(9.0, chain="legacy", stage="classify")
    assert histogram.count(chain="sciql", stage="classify") == 2
    assert histogram.count(chain="legacy", stage="classify") == 1
    assert histogram.percentile(
        50, chain="sciql", stage="classify"
    ) == pytest.approx(0.2)
    labelled = dict(
        (tuple(sorted(labels.items())), summary["count"])
        for labels, summary in histogram.samples()
    )
    assert labelled == {
        (("chain", "legacy"), ("stage", "classify")): 1,
        (("chain", "sciql"), ("stage", "classify")): 2,
    }


def test_percentile_edge_cases():
    assert _percentile([], 50) == 0.0
    assert _percentile([7.0], 95) == 7.0
    with pytest.raises(ValueError):
        _percentile([1.0, 2.0], 101)


def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    a = registry.counter("hits", "first help")
    b = registry.counter("hits")
    assert a is b
    assert b.help == "first help"
    assert registry.names() == ["hits"]
    assert registry.get("hits") is a
    assert registry.get("missing") is None


def test_registry_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("mixed")
    with pytest.raises(TypeError, match="already registered"):
        registry.histogram("mixed")


def test_disabled_registry_updates_are_noops():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("c")
    gauge = registry.gauge("g")
    histogram = registry.histogram("h")
    counter.inc(5)
    gauge.set(3)
    histogram.observe(1.0)
    assert counter.value() == 0.0
    assert gauge.value() == 0.0
    assert histogram.count() == 0
    registry.enable()
    counter.inc(5)
    assert counter.value() == 5.0


def test_reset_clears_values_but_keeps_instruments():
    registry = MetricsRegistry()
    counter = registry.counter("kept")
    counter.inc(3)
    registry.reset()
    assert registry.get("kept") is counter
    assert counter.value() == 0.0


def test_collect_snapshots_every_instrument():
    registry = MetricsRegistry()
    registry.counter("b_counter", "counts").inc(2)
    registry.histogram("a_hist").observe(1.5, stage="chain")
    collected = registry.collect()
    assert [m["name"] for m in collected] == ["a_hist", "b_counter"]
    assert collected[0]["kind"] == "histogram"
    (labels, summary) = collected[0]["samples"][0]
    assert labels == {"stage": "chain"}
    assert summary["count"] == 1
    assert collected[1]["samples"] == [({}, 2.0)]
