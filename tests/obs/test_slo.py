"""SLO burn-rate engine: window math, multi-window alerting, status."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    ACQUISITION_SLO,
    SERVING_SLO,
    SLO,
    SloEngine,
    default_service_slos,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_engine(**slo_kwargs):
    clock = FakeClock()
    slo = SLO(
        name="test",
        objective=slo_kwargs.pop("objective", 0.9),
        short_window_s=slo_kwargs.pop("short_window_s", 300.0),
        long_window_s=slo_kwargs.pop("long_window_s", 3600.0),
        burn_rate_threshold=slo_kwargs.pop("burn_rate_threshold", 2.0),
        **slo_kwargs,
    )
    return SloEngine(slos=[slo], clock=clock), slo, clock


def test_objective_must_be_a_fraction():
    with pytest.raises(ValueError):
        SLO(name="bad", objective=1.0)
    with pytest.raises(ValueError):
        SLO(name="bad", objective=0.0)


def test_default_slos_cover_acquisition_and_serving():
    names = {s.name for s in default_service_slos()}
    assert names == {ACQUISITION_SLO.name, SERVING_SLO.name}


def test_unknown_slo_raises():
    engine = SloEngine(slos=[])
    with pytest.raises(KeyError):
        engine.record("nope", True)
    with pytest.raises(KeyError):
        engine.burn_rate("nope", 60.0)


def test_burn_rate_is_bad_fraction_over_budget():
    engine, slo, clock = make_engine(objective=0.9)
    # 2 bad out of 10 -> bad_fraction 0.2, budget 0.1 -> burn rate 2.0.
    for k in range(10):
        engine.record("test", good=k >= 2)
    assert engine.burn_rate("test", slo.short_window_s) == pytest.approx(
        2.0
    )
    # An empty window is no evidence of burning.
    clock.advance(slo.short_window_s + 1)
    assert engine.burn_rate("test", slo.short_window_s) == 0.0


def test_events_age_out_of_the_window():
    engine, slo, clock = make_engine()
    engine.record("test", good=False)
    clock.advance(slo.short_window_s + 1)
    engine.record("test", good=True)
    # The old bad event left the short window; only the good one counts.
    assert engine.burn_rate("test", slo.short_window_s) == 0.0
    # It still counts against the long window.
    assert engine.burn_rate("test", slo.long_window_s) > 0.0


def test_alert_requires_both_windows_burning():
    engine, slo, clock = make_engine(objective=0.9)
    # All-bad events burn both windows immediately (rate 1/0.1 = 10).
    alerts = [engine.record("test", good=False) for _ in range(3)]
    fired = [a for a in alerts if a is not None]
    assert len(fired) == 1
    assert fired[0]["state"] == "burning"
    assert fired[0]["slo"] == "test"
    assert fired[0]["short_burn_rate"] >= slo.burn_rate_threshold
    assert engine.is_burning("test")
    assert list(engine.alerts) == fired


def test_long_window_burning_alone_does_not_alert():
    """The sticky long window alone never pages — both must burn."""
    engine, slo, clock = make_engine(objective=0.5, burn_rate_threshold=1.5)
    for _ in range(4):
        engine.record("test", good=False)
    assert engine.is_burning("test")
    # The bad events age out of the short window; the long window still
    # burns (4 bad / 5 events = 1.6 >= 1.5), but the quiet short window
    # resolves the alert — and keeps it resolved.
    clock.advance(slo.short_window_s + 1)
    alert = engine.record("test", good=True)
    assert alert is not None and alert["state"] == "recovered"
    assert engine.burn_rate("test", slo.long_window_s) >= 1.5
    assert not engine.is_burning("test")
    # More good events never re-fire off the long window alone.
    assert engine.record("test", good=True) is None


def test_alert_callbacks_fire_and_exceptions_are_swallowed():
    engine, slo, clock = make_engine()
    seen = []

    def bad_callback(alert):
        raise RuntimeError("broken alert sink")

    engine.on_alert.append(bad_callback)
    engine.on_alert.append(seen.append)
    for _ in range(3):
        engine.record("test", good=False, trace_id="abc123")
    assert len(seen) == 1
    assert seen[0]["trace_id"] == "abc123"


def test_budget_remaining_depletes_with_bad_events():
    engine, slo, clock = make_engine(objective=0.9)
    assert engine.budget_remaining("test") == 1.0
    for _ in range(9):
        engine.record("test", good=True)
    engine.record("test", good=False)
    # 1 bad, budget (1-0.9)*10 = 1 -> fully spent.
    assert engine.budget_remaining("test") == pytest.approx(0.0)


def test_status_reports_every_slo():
    engine, slo, clock = make_engine(objective=0.9)
    for _ in range(9):
        engine.record("test", good=True)
    engine.record("test", good=False)
    status = engine.status()
    entry = status["test"]
    assert entry["objective"] == 0.9
    assert entry["events"] == 10
    assert entry["bad_events"] == 1
    # 1 bad in 10 spends the budget at exactly rate 1 — no alert.
    assert entry["short_burn_rate"] == pytest.approx(1.0)
    assert entry["burning"] is False
    assert 0.0 <= entry["budget_remaining"] <= 1.0


def test_metrics_exported_only_when_registry_enabled():
    disabled = MetricsRegistry()
    disabled.enabled = False
    engine = SloEngine(
        slos=[SLO(name="test", objective=0.9)],
        clock=FakeClock(),
        metrics=disabled,
    )
    engine.record("test", good=True)
    assert disabled.collect() == []

    enabled = MetricsRegistry()
    enabled.enabled = True
    engine = SloEngine(
        slos=[SLO(name="test", objective=0.9)],
        clock=FakeClock(),
        metrics=enabled,
    )
    engine.record("test", good=False)
    names = {m["name"] for m in enabled.collect()}
    assert "slo_events_total" in names
    assert "slo_burn_rate" in names
