"""The BENCH_obs.json snapshot schema — tier-1 smoke contract."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import (
    AcquisitionBudget,
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    build_snapshot,
    validate_snapshot,
    write_snapshot,
)

BENCH_SNAPSHOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "benchmarks",
    "out",
    "BENCH_obs.json",
)


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    chain = registry.histogram("chain_stage_seconds")
    for stage, value in (
        ("decode", 0.01), ("crop", 0.02), ("georeference", 0.05),
        ("classify", 0.20), ("vectorize", 0.01),
    ):
        chain.observe(value, chain="sciql", stage=stage)
    registry.histogram("refine_operation_seconds").observe(
        0.1, operation="Store hotspots"
    )
    registry.histogram("acquisition_stage_seconds").observe(
        0.4, stage="total"
    )
    # Histograms outside the stage map must not leak into the snapshot.
    registry.histogram("monitor_scan_seconds").observe(0.001)
    return registry


def test_build_snapshot_shapes_stages_and_deadline():
    budget = AcquisitionBudget()
    budget.record(None, chain_seconds=0.3, refinement_seconds=0.1)
    document = build_snapshot(_populated_registry(), budget)
    validate_snapshot(document)
    assert document["schema"] == SNAPSHOT_SCHEMA
    assert "chain/sciql/classify" in document["stages"]
    assert "refine/Store hotspots" in document["stages"]
    assert "acquisition/total" in document["stages"]
    assert not any(k.startswith("monitor") for k in document["stages"])
    stage = document["stages"]["chain/sciql/classify"]
    assert stage == {
        "count": 1, "p50_s": 0.2, "p95_s": 0.2, "max_s": 0.2,
    }
    deadline = document["deadline"]
    assert deadline["window_seconds"] == 300.0
    assert deadline["acquisitions"] == 1
    assert deadline["miss_ratio"] == 0.0
    assert deadline["total_avg_s"] == pytest.approx(0.4)


def test_build_snapshot_without_budget_is_still_valid():
    document = build_snapshot(_populated_registry())
    validate_snapshot(document)
    assert document["deadline"]["acquisitions"] == 0


def test_validate_snapshot_rejects_malformed_documents():
    good = build_snapshot(_populated_registry(), AcquisitionBudget())
    for mutate in (
        lambda d: d.pop("schema"),
        lambda d: d.update(schema="other/v9"),
        lambda d: d.update(stages=[]),
        lambda d: d["stages"].update(bad={"count": 1}),
        lambda d: d["stages"]["chain/sciql/decode"].update(p50_s="fast"),
        lambda d: d["stages"]["chain/sciql/decode"].update(count=1.5),
        lambda d: d["stages"]["chain/sciql/decode"].update(max_s=-1.0),
        lambda d: d.pop("deadline"),
        lambda d: d["deadline"].pop("miss_ratio"),
        lambda d: d["deadline"].update(miss_ratio=1.5),
    ):
        document = json.loads(json.dumps(good))
        mutate(document)
        with pytest.raises(ValueError):
            validate_snapshot(document)
    with pytest.raises(ValueError):
        validate_snapshot("not a dict")


def test_write_snapshot_round_trips(tmp_path):
    path = tmp_path / "BENCH_obs.json"
    budget = AcquisitionBudget()
    budget.record(None, chain_seconds=1.0)
    document = write_snapshot(
        str(path), _populated_registry(), budget
    )
    with open(path) as f:
        reloaded = json.load(f)
    assert reloaded == document
    validate_snapshot(reloaded)


def test_committed_bench_snapshot_matches_schema():
    """The snapshot the benchmark suite emits must satisfy the contract."""
    if not os.path.exists(BENCH_SNAPSHOT):
        pytest.skip("benchmarks/out/BENCH_obs.json not generated yet")
    with open(BENCH_SNAPSHOT) as f:
        document = json.load(f)
    validate_snapshot(document)
    assert any(k.startswith("chain/") for k in document["stages"])
