"""Span primitive: nesting, decorator, no-op mode, exception safety."""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.obs import NULL_SPAN, Tracer


def test_nested_spans_link_parent_and_child():
    tracer = Tracer(enabled=True)
    with tracer.span("outer") as outer:
        with tracer.span("middle") as middle:
            with tracer.span("inner") as inner:
                pass
    finished = tracer.spans()
    # Completion order: innermost closes first.
    assert [s.name for s in finished] == ["inner", "middle", "outer"]
    assert outer.parent_id is None
    assert middle.parent_id == outer.span_id
    assert inner.parent_id == middle.span_id
    assert all(s.end is not None for s in finished)
    assert all(s.duration >= 0.0 for s in finished)


def test_sibling_spans_share_a_parent():
    tracer = Tracer(enabled=True)
    with tracer.span("root") as root:
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
    assert first.parent_id == root.span_id
    assert second.parent_id == root.span_id


def test_span_attributes_at_open_and_via_set():
    tracer = Tracer(enabled=True)
    with tracer.span("work", chain="sciql") as span:
        span.set(hotspots=3, name="override-safe")
    assert span.attributes == {
        "chain": "sciql",
        "hotspots": 3,
        "name": "override-safe",
    }


def test_decorator_records_a_span():
    tracer = Tracer(enabled=True)

    @tracer.trace("compute.answer")
    def answer() -> int:
        return 42

    assert answer() == 42
    names = [s.name for s in tracer.spans()]
    assert names == ["compute.answer"]


def test_decorator_defaults_to_qualname_and_skips_when_disabled():
    tracer = Tracer(enabled=False)

    @tracer.trace()
    def helper() -> str:
        return "ok"

    assert helper() == "ok"
    assert tracer.spans() == []


def test_disabled_tracer_span_is_shared_null_singleton():
    tracer = Tracer(enabled=False)
    cm = tracer.span("anything", key="value")
    assert cm is NULL_SPAN
    with cm as span:
        span.set(ignored=True)
    assert tracer.spans() == []
    assert NULL_SPAN.attributes == {}


def test_measure_yields_real_duration_even_when_disabled():
    tracer = Tracer(enabled=False)
    with tracer.measure("timed.stage") as span:
        time.sleep(0.002)
    assert span.duration >= 0.002
    # ... but nothing is recorded into the tracer.
    assert tracer.spans() == []


def test_exception_closes_span_marks_error_and_reraises():
    tracer = Tracer(enabled=True)
    with pytest.raises(ValueError, match="boom"):
        with tracer.span("explodes"):
            raise ValueError("boom")
    (span,) = tracer.spans()
    assert span.status == "error"
    assert span.end is not None
    assert span.error == "ValueError: boom"
    assert tracer.failure_counts == {"explodes": 1}
    # The active stack is clean: a new span becomes a root.
    with tracer.span("after") as after:
        pass
    assert after.parent_id is None


def test_failure_hook_feeds_global_metrics(observability):
    with pytest.raises(RuntimeError):
        with obs.span("stage.fail"):
            raise RuntimeError("nope")
    counter = obs.get_metrics().get(obs.SPAN_FAILURES)
    assert counter is not None
    assert counter.value(span="stage.fail") == 1


def test_threads_keep_independent_span_stacks():
    tracer = Tracer(enabled=True)
    errors = []

    def work(label: str) -> None:
        try:
            with tracer.span(f"outer.{label}") as outer:
                with tracer.span(f"inner.{label}") as inner:
                    assert inner.parent_id == outer.span_id
                assert outer.parent_id is None
        except BaseException as exc:  # pragma: no cover - defensive
            errors.append(exc)

    threads = [
        threading.Thread(target=work, args=(str(i),)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(tracer.spans()) == 8


def test_max_spans_backstop_counts_drops():
    tracer = Tracer(enabled=True, max_spans=2)
    for i in range(4):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer.spans()) == 2
    assert tracer.dropped == 2


def test_clear_resets_spans_and_failures():
    tracer = Tracer(enabled=True)
    with pytest.raises(ValueError):
        with tracer.span("bad"):
            raise ValueError()
    tracer.clear()
    assert tracer.spans() == []
    assert tracer.failure_counts == {}
    assert tracer.dropped == 0
