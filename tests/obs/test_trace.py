"""TraceContext propagation, stitching, and recent_traces grouping."""

from __future__ import annotations

import pytest

from repro.obs import Tracer, context_of, mint_trace_id, recent_traces
from repro.obs.trace import (
    PARENT_SPAN_HEADER,
    TRACE_ID_HEADER,
    TraceContext,
)
from repro.obs.span import NULL_SPAN, span_from_record


def test_mint_trace_id_is_hex_and_unique():
    ids = {mint_trace_id() for _ in range(64)}
    assert len(ids) == 64
    for tid in ids:
        assert len(tid) == 16
        assert all(c in "0123456789abcdef" for c in tid)


def test_every_span_in_a_tree_shares_the_root_trace_id():
    tracer = Tracer(enabled=True)
    with tracer.span("root") as root:
        with tracer.span("child") as child:
            with tracer.span("grandchild") as grandchild:
                pass
    assert root.trace_id is not None
    assert child.trace_id == root.trace_id
    assert grandchild.trace_id == root.trace_id


def test_separate_roots_mint_separate_trace_ids():
    tracer = Tracer(enabled=True)
    with tracer.span("first") as a:
        pass
    with tracer.span("second") as b:
        pass
    assert a.trace_id != b.trace_id


def test_header_round_trip():
    ctx = TraceContext(trace_id="deadbeef01234567", span_id=42)
    headers = ctx.to_headers()
    assert headers == {
        TRACE_ID_HEADER: "deadbeef01234567",
        PARENT_SPAN_HEADER: "42",
    }
    assert TraceContext.from_headers(headers) == ctx


def test_from_headers_is_case_insensitive():
    ctx = TraceContext.from_headers(
        {"X-Trace-Id": "ABCDEF", "X-Parent-Span": "7"}
    )
    assert ctx == TraceContext(trace_id="abcdef", span_id=7)


@pytest.mark.parametrize(
    "headers",
    [
        {},
        {TRACE_ID_HEADER: ""},
        {TRACE_ID_HEADER: "not hex!"},
        {TRACE_ID_HEADER: "zzzz"},
        {TRACE_ID_HEADER: "a" * 65},
    ],
)
def test_from_headers_rejects_malformed_trace_ids(headers):
    assert TraceContext.from_headers(headers) is None


def test_from_headers_degrades_bad_parent_to_zero():
    ctx = TraceContext.from_headers(
        {TRACE_ID_HEADER: "abc123", PARENT_SPAN_HEADER: "not-a-number"}
    )
    assert ctx == TraceContext(trace_id="abc123", span_id=0)


def test_context_of_live_span_and_null_span():
    tracer = Tracer(enabled=True)
    with tracer.span("work") as span:
        ctx = context_of(span)
        assert ctx == TraceContext(
            trace_id=span.trace_id, span_id=span.span_id
        )
    assert context_of(NULL_SPAN) is None


def test_ambient_context_parents_new_roots():
    """A root opened under use_context joins the remote caller's trace."""
    tracer = Tracer(enabled=True)
    ctx = TraceContext(trace_id="feedface00000001", span_id=99)
    with tracer.use_context(ctx):
        with tracer.span("remote.work") as span:
            pass
    assert span.trace_id == "feedface00000001"
    assert span.parent_id == 99
    # Outside the context, roots mint fresh traces again.
    with tracer.span("local.work") as other:
        pass
    assert other.trace_id != "feedface00000001"


def test_use_context_none_is_a_no_op():
    tracer = Tracer(enabled=True)
    with tracer.use_context(None):
        with tracer.span("work") as span:
            pass
    assert span.parent_id is None


def test_drain_and_adopt_stitch_remote_spans():
    """The worker half drains; the parent half adopts — one trace."""
    parent = Tracer(enabled=True)
    with parent.span("acquisition") as root:
        ctx = context_of(root)
    # Simulate the forked worker: a fresh tracer, re-rooted ids.
    worker = Tracer(enabled=True)
    worker.reset_after_fork()
    with worker.use_context(ctx):
        with worker.span("pipeline.chain"):
            pass
    records = worker.drain_records()
    assert worker.spans() == []  # drained, not duplicated
    assert parent.adopt(records) == 1
    spans = parent.spans()
    assert {s.trace_id for s in spans} == {root.trace_id}
    shipped = [s for s in spans if s.name == "pipeline.chain"][0]
    assert shipped.parent_id == root.span_id


def test_span_from_record_preserves_identity_and_duration():
    tracer = Tracer(enabled=True)
    with tracer.span("work", stage="crop") as span:
        pass
    record = span.to_dict()
    clone = span_from_record(record)
    assert clone.name == span.name
    assert clone.span_id == span.span_id
    assert clone.trace_id == span.trace_id
    assert clone.duration == pytest.approx(span.duration)
    assert clone.attributes == {"stage": "crop"}


def test_recent_traces_groups_and_orders():
    tracer = Tracer(enabled=True)
    with tracer.span("first.root"):
        with tracer.span("first.child"):
            pass
    with tracer.span("second.root"):
        pass
    traces = recent_traces(tracer)
    assert len(traces) == 2
    # Most recent first.
    assert traces[0]["root"] == "second.root"
    assert traces[1]["root"] == "first.root"
    assert traces[1]["span_count"] == 2
    assert traces[1]["status"] == "ok"
    assert "first.child" in traces[1]["tree"]


def test_recent_traces_filters_and_limits():
    tracer = Tracer(enabled=True)
    for k in range(5):
        with tracer.span(f"root-{k}") as span:
            pass
    wanted = span.trace_id
    only = recent_traces(tracer, trace_id=wanted)
    assert len(only) == 1
    assert only[0]["trace_id"] == wanted
    assert len(recent_traces(tracer, limit=2)) == 2


def test_recent_traces_flags_error_traces():
    tracer = Tracer(enabled=True)
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    traces = recent_traces(tracer)
    assert traces[0]["status"] == "error"
