"""NOA ontology structure (Figure 5)."""

from repro.ontology import noa_ontology_triples, noa_ontology_turtle
from repro.ontology.noa import (
    CONFIRMATION_CONFIRMED,
    CONFIRMATION_UNCONFIRMED,
)
from repro.rdf import Graph, NOA, OWL, RDF, RDFS, parse_turtle


class TestOntology:
    def test_core_classes_declared(self):
        g = Graph()
        g.add_all(noa_ontology_triples())
        for cls in ("RawData", "Shapefile", "Hotspot"):
            assert (NOA.term(cls), RDF.type, OWL.Class) in g

    def test_sweet_alignment(self):
        g = Graph()
        g.add_all(noa_ontology_triples())
        supers = list(g.objects(NOA.Hotspot, RDFS.subClassOf))
        assert supers, "Hotspot must align to a SWEET class"

    def test_annotation_properties_typed(self):
        g = Graph()
        g.add_all(noa_ontology_triples())
        assert (
            NOA.hasAcquisitionDateTime,
            RDF.type,
            OWL.DatatypeProperty,
        ) in g
        assert (NOA.isProducedBy, RDF.type, OWL.ObjectProperty) in g

    def test_confirmation_individuals(self):
        g = Graph()
        g.add_all(noa_ontology_triples())
        assert (
            CONFIRMATION_CONFIRMED,
            RDF.type,
            NOA.ConfirmationState,
        ) in g
        assert CONFIRMATION_CONFIRMED != CONFIRMATION_UNCONFIRMED

    def test_turtle_export_reparses(self):
        text = noa_ontology_turtle()
        g = parse_turtle(text)
        assert len(g) == len(noa_ontology_triples())

    def test_hotspot_domain_statements(self):
        g = Graph()
        g.add_all(noa_ontology_triples())
        assert (NOA.hasConfidence, RDFS.domain, NOA.Hotspot) in g
