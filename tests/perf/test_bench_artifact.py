"""The BENCH_pipeline.json artifact — tier-1 smoke contract.

Thresholds are deliberately generous relative to the numbers the
benchmark actually produces (≈1.75× speedup, 1.0 hit ratio) so that
noisy re-runs on slow hosts don't flake the suite.
"""

from __future__ import annotations

import json
import os

import pytest

BENCH_PIPELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "benchmarks",
    "out",
    "BENCH_pipeline.json",
)


@pytest.fixture(scope="module")
def artifact():
    if not os.path.exists(BENCH_PIPELINE):
        pytest.skip("benchmarks/out/BENCH_pipeline.json not generated yet")
    with open(BENCH_PIPELINE) as f:
        return json.load(f)


def test_schema_has_every_required_section(artifact):
    assert artifact["schema"] == "bench-pipeline/1"
    for section in (
        "workload", "serial", "pipelined", "speedup", "plan_cache",
        "caches", "determinism",
    ):
        assert section in artifact, f"missing section {section!r}"
    for mode in ("serial", "pipelined"):
        assert artifact[mode]["acquisitions_per_min"] > 0
        assert artifact[mode]["wall_s"] > 0
    stages = artifact["serial"]["stage_latencies_s"]
    for stage in ("stage1_chain", "stage2_refine", "total"):
        summary = stages[stage]
        assert 0 < summary["p50_s"] <= summary["p95_s"]


def test_pipelined_throughput_beats_serial(artifact):
    speedup = artifact["speedup"]["acquisitions_per_min_ratio"]
    assert speedup >= 1.4, (
        f"committed artifact shows only {speedup:.2f}x "
        f"(basis: {artifact['speedup']['basis']})"
    )
    assert artifact["speedup"]["basis"] in (
        "measured", "pipeline-law"
    )


def test_plan_cache_is_hot_after_first_acquisition(artifact):
    assert (
        artifact["plan_cache"]["hit_ratio_after_first_acquisition"]
        >= 0.8
    )


def test_modes_were_deterministically_identical(artifact):
    determinism = artifact["determinism"]
    assert determinism["identical_outcomes"] is True
    assert determinism["identical_surviving_sets"] is True
    assert determinism["surviving_hotspots"] > 0
