"""The BENCH_serve.json artifact — tier-1 smoke contract.

Thresholds sit well below what the benchmark actually produces
(4x scaling-law speedup, zero torn reads, zero HTTP errors) so the
committed artifact keeps passing on noisy hosts.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.reporting import write_bench_json

BENCH_SERVE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "benchmarks",
    "out",
    "BENCH_serve.json",
)


@pytest.fixture(scope="module")
def artifact():
    if not os.path.exists(BENCH_SERVE):
        pytest.skip("benchmarks/out/BENCH_serve.json not generated yet")
    with open(BENCH_SERVE) as f:
        return json.load(f)


def test_schema_has_every_required_section(artifact):
    assert artifact["schema"] == "bench-serve/2"
    for section in (
        "workload", "read_scaling", "http_load", "consistency",
        "shard_scaling", "attach",
    ):
        assert section in artifact, f"missing section {section!r}"
    assert artifact["workload"]["ingested_acquisitions"] > 0
    assert artifact["workload"]["snapshot_triples"] > 0


def test_reads_scale_across_workers(artifact):
    scaling = artifact["read_scaling"]
    assert scaling["speedup"] >= 2.0, (
        f"committed artifact shows only {scaling['speedup']:.2f}x "
        f"(basis: {scaling['basis']})"
    )
    assert scaling["basis"] in ("measured", "scaling-law")
    assert scaling["serial"]["queries_per_s"] > 0


def test_http_load_was_clean(artifact):
    load = artifact["http_load"]
    assert load["errors"] == 0
    assert load["throughput_rps"] > 0
    assert 0 < load["p50_ms"] <= load["p99_ms"]


def test_sharded_tier_met_its_bars(artifact):
    scaling = artifact["shard_scaling"]
    assert scaling["differential_ok"] is True
    assert scaling["speedup_4_vs_1"] >= 2.0, (
        f"committed artifact shows only "
        f"{scaling['speedup_4_vs_1']:.2f}x at 4 shards"
    )
    attach = artifact["attach"]
    # Attach is O(1) in graph size and far cheaper than eager decode.
    assert attach["size_independence_ratio"] <= 3.0
    assert attach["attach_to_materialise_ratio"] <= 0.2


def test_no_torn_reads_were_observed(artifact):
    consistency = artifact["consistency"]
    assert consistency["torn_reads"] == 0
    assert consistency["polls"] > 0
    assert consistency["sequence_monotonic"] is True
    assert consistency["generation_monotonic"] is True


def test_write_bench_json_mirrors_to_root(tmp_path):
    payload = {"schema": "bench-selftest/1", "value": 42}
    out_path = write_bench_json(
        "selftest", payload, root=str(tmp_path)
    )
    try:
        mirror = tmp_path / "BENCH_selftest.json"
        assert mirror.exists()
        with open(out_path) as f:
            committed = f.read()
        assert committed == mirror.read_text()
        assert json.loads(committed) == payload
        # Deterministic serialisation: sorted keys, trailing newline.
        assert committed.endswith("\n")
        assert committed.index('"schema"') < committed.index('"value"')
    finally:
        os.remove(out_path)


@pytest.mark.parametrize("value", ["0", "false", "off", "no", ""])
def test_mirror_disabled_by_env(tmp_path, monkeypatch, value):
    """REPRO_BENCH_MIRROR=0 (and friends) must suppress the root
    mirror entirely — a smoke run of the benchmarks cannot clobber a
    committed root artifact (ISSUE 10 satellite)."""
    monkeypatch.setenv("REPRO_BENCH_MIRROR", value)
    out_path = write_bench_json(
        "selftest", {"schema": "bench-selftest/1"}
    )
    try:
        repo_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        ))
        assert not os.path.exists(
            os.path.join(repo_root, "BENCH_selftest.json")
        )
        assert os.path.exists(out_path)  # the out/ copy still lands
    finally:
        os.remove(out_path)


def test_mirror_redirected_by_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_MIRROR", str(tmp_path))
    out_path = write_bench_json(
        "selftest", {"schema": "bench-selftest/1"}
    )
    try:
        assert (tmp_path / "BENCH_selftest.json").exists()
    finally:
        os.remove(out_path)


def test_explicit_root_beats_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_MIRROR", "0")
    target = tmp_path / "explicit"
    target.mkdir()
    out_path = write_bench_json(
        "selftest", {"schema": "bench-selftest/1"}, root=str(target)
    )
    try:
        assert (target / "BENCH_selftest.json").exists()
    finally:
        os.remove(out_path)
