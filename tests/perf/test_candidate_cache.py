"""Regression: the R-tree candidate cache must evict LRU, not clear.

The seed engine dropped the *entire* candidate cache once it exceeded
4096 entries, so sustained load (one probe geometry per evaluated
spatial predicate) repeatedly threw away the hot working set.  The
cache is now a bounded LRU: the hot probes survive, only the coldest
entry is shed per insert.
"""

from __future__ import annotations

from repro.geometry import Polygon


def _probe(i: int) -> Polygon:
    x = 20.0 + (i % 50) * 0.01
    y = 36.0 + (i // 50) * 0.01
    return Polygon(
        [(x, y), (x + 0.005, y), (x + 0.005, y + 0.005), (x, y + 0.005)]
    )


def test_sustained_load_keeps_hot_entries(strabon_with_aux):
    engine = strabon_with_aux
    cache = engine._candidate_cache
    cache.resize(16)
    assert engine._ensure_rtree() is not None

    hot = _probe(0)
    assert engine.spatial_candidates(hot) is not None
    for i in range(1, 200):
        engine.spatial_candidates(_probe(i))
        engine.spatial_candidates(hot)  # keep it hot
    stats = cache.stats()
    # Bounded: never more entries than maxsize, and eviction happened
    # one-at-a-time instead of clearing the world.
    assert stats.size <= 16
    assert stats.evictions >= 199 - 15
    # The hot probe stayed cached through 199 evicting inserts.
    assert id(hot) in cache
    before = cache.stats().hits
    engine.spatial_candidates(hot)
    assert cache.stats().hits == before + 1


def test_cached_candidates_match_fresh_search(strabon_with_aux):
    engine = strabon_with_aux
    probe = _probe(7)
    first = engine.spatial_candidates(probe)
    again = engine.spatial_candidates(probe)
    assert again == first
    tree = engine._ensure_rtree()
    assert set(tree.search(probe.envelope)) == first


def test_rebuilding_the_index_invalidates_the_cache(strabon_with_aux):
    engine = strabon_with_aux
    probe = _probe(3)
    engine.spatial_candidates(probe)
    assert len(engine._candidate_cache) > 0
    # A store mutation forces an index rebuild on next use, which must
    # drop the now-stale candidate sets.
    engine.update(
        "PREFIX noa: "
        "<http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> "
        "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#> "
        'INSERT DATA { noa:probe strdf:hasGeometry '
        '"POINT (21.0 37.0)"^^strdf:geometry . }'
    )
    engine._ensure_rtree()
    assert len(engine._candidate_cache) == 0
