"""The LRU cache underneath every perf-layer cache."""

from __future__ import annotations

import threading

import pytest

from repro.perf.lru import (
    LRUCache,
    all_cache_stats,
    register_cache,
)


def test_rejects_degenerate_sizes():
    with pytest.raises(ValueError):
        LRUCache(0)
    with pytest.raises(ValueError):
        LRUCache(8).resize(0)


def test_eviction_is_least_recently_used():
    cache = LRUCache(3)
    for k in "abc":
        cache.put(k, k.upper())
    assert cache.get("a") == "A"  # refresh: "b" is now coldest
    cache.put("d", "D")
    assert "b" not in cache
    assert all(k in cache for k in "acd")
    assert cache.keys() == ["c", "a", "d"]


def test_put_refreshes_recency_and_overwrites():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh + overwrite
    cache.put("c", 3)
    assert "b" not in cache
    assert cache.get("a") == 10


def test_stats_count_hits_misses_evictions():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)  # evicts "a"
    assert cache.get("b") == 2
    assert cache.get("a") is None
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 1)
    assert stats.size == 2 and stats.maxsize == 2
    assert stats.hit_ratio == 0.5
    assert stats.as_dict()["hit_ratio"] == 0.5


def test_peek_touches_neither_recency_nor_counters():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.peek("a") == 1
    assert cache.peek("zzz", "dflt") == "dflt"
    cache.put("c", 3)  # "a" must still be the eviction victim
    assert "a" not in cache
    stats = cache.stats()
    assert stats.hits == stats.misses == 0


def test_get_or_compute_runs_compute_once_per_miss():
    cache = LRUCache(4)
    calls = []

    def compute():
        calls.append(1)
        return 42

    assert cache.get_or_compute("k", compute) == 42
    assert cache.get_or_compute("k", compute) == 42
    assert len(calls) == 1


def test_resize_evicts_down_to_new_bound():
    cache = LRUCache(8)
    for i in range(8):
        cache.put(i, i)
    cache.get(0)  # hottest
    cache.resize(2)
    assert len(cache) == 2
    assert 0 in cache and 7 in cache
    assert cache.maxsize == 2
    assert cache.stats().evictions == 6


def test_clear_keeps_lifetime_counters():
    cache = LRUCache(4)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats().hits == 1
    cache.reset_stats()
    assert cache.stats().hits == 0


def test_concurrent_access_stays_bounded_and_consistent():
    cache = LRUCache(64)
    errors = []

    def hammer(worker: int) -> None:
        try:
            for i in range(2000):
                key = (worker * 7 + i) % 200
                cache.put(key, key)
                got = cache.get(key)
                assert got is None or got == key
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(w,)) for w in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(cache) <= 64
    stats = cache.stats()
    assert stats.lookups == 4 * 2000


def test_registry_exposes_named_caches():
    cache = LRUCache(4, name="test-registry-probe")
    register_cache(cache)
    cache.put("x", 1)
    cache.get("x")
    stats = all_cache_stats()["test-registry-probe"]
    assert stats["hits"] == 1 and stats["size"] == 1
    with pytest.raises(ValueError):
        register_cache(LRUCache(4))  # unnamed
