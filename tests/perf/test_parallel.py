"""Ordering and failure semantics of the perf thread-pool helpers."""

from __future__ import annotations

import threading
import time

import pytest

from repro.perf.parallel import map_concurrent, map_outcomes


def test_map_concurrent_preserves_input_order():
    items = list(range(20))

    def slow_square(x: int) -> int:
        # Reverse the natural completion order.
        time.sleep((20 - x) * 0.001)
        return x * x

    assert map_concurrent(slow_square, items, max_workers=4) == [
        x * x for x in items
    ]


def test_map_concurrent_serial_fallback_never_spawns():
    seen_threads = set()

    def probe(x: int) -> int:
        seen_threads.add(threading.current_thread().name)
        return x

    main = threading.current_thread().name
    assert map_concurrent(probe, [1, 2, 3], max_workers=1) == [1, 2, 3]
    assert map_concurrent(probe, [7], max_workers=8) == [7]
    assert map_concurrent(probe, [], max_workers=8) == []
    assert seen_threads == {main}


def test_map_concurrent_propagates_first_exception():
    def explode(x: int) -> int:
        if x == 3:
            raise ValueError("boom at 3")
        return x

    with pytest.raises(ValueError, match="boom at 3"):
        map_concurrent(explode, list(range(6)), max_workers=3)


def test_map_outcomes_returns_exceptions_in_place():
    def explode(x: int) -> int:
        if x % 2:
            raise KeyError(x)
        return x * 10

    outcomes = map_outcomes(explode, list(range(5)), max_workers=3)
    assert outcomes[0] == 0 and outcomes[2] == 20 and outcomes[4] == 40
    assert isinstance(outcomes[1], KeyError)
    assert isinstance(outcomes[3], KeyError)


def test_map_outcomes_serial_path_matches():
    def explode(x: int) -> int:
        raise RuntimeError("always")

    (only,) = map_outcomes(explode, ["x"], max_workers=8)
    assert isinstance(only, RuntimeError)
