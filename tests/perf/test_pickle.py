"""Geometries, RDF terms and products must cross process boundaries.

The pipelined executor's stage one runs in worker processes and returns
:class:`HotspotProduct` objects by pickle; the immutable ``__slots__``
value classes need explicit state handling for that to work.
"""

from __future__ import annotations

import pickle
from datetime import datetime, timezone

from repro.core.products import Hotspot, HotspotProduct
from repro.geometry import (
    LineString,
    MultiPolygon,
    Point,
    Polygon,
    loads_wkt,
)
from repro.rdf import Literal, URI, XSD
from repro.rdf.term import BNode


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def test_geometries_roundtrip():
    square = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
    for geom in (
        Point(21.5, 37.2),
        LineString([(0, 0), (1, 1), (2, 0)]),
        square,
        MultiPolygon([square]),
        loads_wkt("POLYGON ((20 36, 21 36, 21 37, 20 37, 20 36))"),
    ):
        copy = _roundtrip(geom)
        assert copy == geom
        assert copy.wkt == geom.wkt
        assert copy.envelope == geom.envelope


def test_polygon_with_hole_keeps_structure():
    holed = Polygon(
        [(0, 0), (4, 0), (4, 4), (0, 4)],
        holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]],
    )
    copy = _roundtrip(holed)
    assert copy == holed
    assert abs(copy.area - holed.area) < 1e-12


def test_rdf_terms_roundtrip():
    uri = URI("http://teleios.di.uoa.gr/ontologies/noaOntology.owl#h1")
    plain = Literal("hello")
    typed = Literal("2007-08-24T12:00:00", datatype=XSD.base + "dateTime")
    geo = Literal(
        "POINT (21.0 37.0)",
        datatype="http://strdf.di.uoa.gr/ontology#geometry",
    )
    for term in (uri, plain, typed, geo):
        copy = _roundtrip(term)
        assert copy == term
        assert hash(copy) == hash(term)
    assert _roundtrip(BNode("b42")).label == "b42"
    # The lazily parsed geometry value survives too.
    assert _roundtrip(geo).value == geo.value


def test_hotspot_product_roundtrips():
    when = datetime(2007, 8, 24, 12, 0, tzinfo=timezone.utc)
    square = Polygon([(21, 37), (21.04, 37), (21.04, 37.04), (21, 37.04)])
    product = HotspotProduct(
        sensor="MSG2",
        timestamp=when,
        chain="sciql",
        hotspots=[
            Hotspot(
                x=3, y=4, polygon=square, confidence=1.0,
                timestamp=when, sensor="MSG2", chain="sciql",
            )
        ],
        processing_seconds=0.25,
    )
    copy = _roundtrip(product)
    assert len(copy) == 1
    assert copy.timestamp == product.timestamp
    assert copy.hotspots[0].polygon == square
    assert copy.processing_seconds == 0.25
