"""Determinism and semantics of the pipelined acquisition executor."""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.core.config import RunOptions
from repro.core.pipeline import PipelinedExecutor
from repro.core.service import FireMonitoringService
from tests.conftest import CRISIS_START

N = 3


def _whens():
    return [
        CRISIS_START + timedelta(hours=12, minutes=15 * k)
        for k in range(N)
    ]


def _service(greece) -> FireMonitoringService:
    return FireMonitoringService(greece=greece, mode="teleios")


def _keys(outcomes):
    return [
        (o.timestamp, len(o.raw_product), o.refined_count)
        for o in outcomes
    ]


def _surviving(service, when):
    return sorted(
        repr(row)
        for row in service.refinement.surviving_hotspots(when)
    )


@pytest.mark.parametrize("worker_kind", ["process", "thread"])
def test_pipelined_matches_serial_exactly(greece, season, worker_kind):
    serial = _service(greece)
    serial_outcomes = serial.run(
        _whens(), RunOptions(season=season, on_error="raise")
    )

    pipelined = _service(greece)
    with PipelinedExecutor(
        pipelined,
        chain_workers=2,
        queue_depth=1,
        worker_kind=worker_kind,
        season=season,
    ) as executor:
        pipelined_outcomes = executor.run(_whens())

    assert _keys(pipelined_outcomes) == _keys(serial_outcomes)
    assert len(pipelined.outcomes) == N
    for when in _whens():
        assert _surviving(pipelined, when) == _surviving(serial, when)


def test_run_scenes_pipelined_matches_serial(greece, season):
    scenes = [
        _service(greece).scene_generator.generate(when, season)
        for when in _whens()
    ]
    serial = _service(greece)
    serial_outcomes = serial.run(scenes, RunOptions(on_error="raise"))
    pipelined = _service(greece)
    pipelined_outcomes = pipelined.run(
        scenes,
        RunOptions(
            pipelined=True,
            chain_workers=2,
            queue_depth=1,
            on_error="raise",
        ),
    )
    assert _keys(pipelined_outcomes) == _keys(serial_outcomes)
    assert _surviving(pipelined, _whens()[-1]) == _surviving(
        serial, _whens()[-1]
    )


def test_outcomes_preserve_input_order_and_budget(greece, season):
    service = _service(greece)
    with PipelinedExecutor(
        service, chain_workers=2, queue_depth=2, season=season
    ) as executor:
        outcomes = executor.run(_whens())
    assert [o.timestamp for o in outcomes] == _whens()
    # Stage two ran on the caller: accounting saw every acquisition.
    assert len(service.budget) == N


def test_pool_survives_across_runs(greece, season):
    service = _service(greece)
    whens = _whens()
    with PipelinedExecutor(
        service, chain_workers=1, queue_depth=1, season=season
    ) as executor:
        first = executor.run(whens[:1])
        rest = executor.run(whens[1:])
    assert len(first) + len(rest) == N
    assert [o.timestamp for o in first + rest] == whens


def test_executor_validates_configuration(greece):
    service = _service(greece)
    with pytest.raises(ValueError):
        PipelinedExecutor(service, chain_workers=0)
    with pytest.raises(ValueError):
        PipelinedExecutor(service, queue_depth=-1)
    with pytest.raises(ValueError):
        PipelinedExecutor(service, worker_kind="fiber")
    executor = PipelinedExecutor(service, worker_kind="thread")
    executor.close()
    executor.close()  # idempotent
