"""The stSPARQL parsed-plan cache and parameterized execution."""

from __future__ import annotations

import pytest

from repro import obs
from repro.rdf import Literal, XSD
from repro.stsparql import Strabon

PREFIX = (
    "PREFIX noa: "
    "<http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
    "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
)

TURTLE = """
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
noa:h1 a noa:Hotspot ; noa:hasAcquisitionTime
  "2007-08-24T12:00:00"^^xsd:dateTime .
noa:h2 a noa:Hotspot ; noa:hasAcquisitionTime
  "2007-08-24T12:15:00"^^xsd:dateTime .
"""

AT_TIME = PREFIX + (
    "SELECT ?h WHERE { ?h a noa:Hotspot ; "
    "noa:hasAcquisitionTime ?__ts . }"
)


def _ts(lexical: str) -> Literal:
    return Literal(lexical, datatype=XSD.base + "dateTime")


@pytest.fixture
def engine() -> Strabon:
    s = Strabon()
    s.load_turtle(TURTLE)
    return s


def test_identical_text_parses_once(engine):
    query = PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot . }"
    for _ in range(3):
        assert len(engine.select(query)) == 2
    stats = engine.plan_cache.stats()
    assert stats.misses == 1
    assert stats.hits == 2


def test_distinct_texts_get_distinct_entries(engine):
    engine.select(PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot . }")
    engine.ask(PREFIX + "ASK { ?h a noa:Hotspot }")
    assert engine.plan_cache.stats().misses == 2
    assert len(engine.plan_cache) == 2


def test_parameters_keep_text_constant_but_results_specific(engine):
    rows_noon = engine.select(
        AT_TIME, {"__ts": _ts("2007-08-24T12:00:00")}
    )
    rows_next = engine.select(
        AT_TIME, {"?__ts": _ts("2007-08-24T12:15:00")}  # '?' optional
    )
    assert len(rows_noon) == len(rows_next) == 1
    (noon,) = rows_noon.column("h")
    (next_,) = rows_next.column("h")
    assert noon != next_
    # One text, one plan: the second execution must be a cache hit.
    stats = engine.plan_cache.stats()
    assert stats.misses == 1 and stats.hits == 1


def test_updates_are_plan_cached_and_parameterized(engine):
    delete = PREFIX + (
        "DELETE { ?h noa:hasAcquisitionTime ?__ts } "
        "WHERE { ?h noa:hasAcquisitionTime ?__ts }"
    )
    first = engine.update(delete, {"__ts": _ts("2007-08-24T12:00:00")})
    second = engine.update(delete, {"__ts": _ts("2007-08-24T12:15:00")})
    assert first.removed == 1 and second.removed == 1
    stats = engine.plan_cache.stats()
    assert stats.misses == 1 and stats.hits == 1


def test_hit_and_miss_counters_reach_the_metrics_registry(engine):
    obs.disable()
    obs.reset()
    obs.enable()
    try:
        query = PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot . }"
        for _ in range(3):
            engine.select(query)
        metrics = obs.get_metrics()
        hits = metrics.get("stsparql_plan_cache_hits_total")
        misses = metrics.get("stsparql_plan_cache_misses_total")
        assert misses is not None and misses.total() == 1.0
        assert hits is not None and hits.total() == 2.0
    finally:
        obs.disable()
        obs.reset()


def test_plan_cache_entries_are_reusable_not_stateful(engine):
    """Re-running a cached plan must not leak state between runs."""
    query = PREFIX + (
        "SELECT ?h WHERE { ?h a noa:Hotspot ; "
        "noa:hasAcquisitionTime ?t . } ORDER BY ?t"
    )
    first = [row["h"] for row in engine.select(query)]
    second = [row["h"] for row in engine.select(query)]
    assert first == second and len(first) == 2
