"""Triple store pattern matching and mutation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, NOA, RDF, STRDF, URI


@pytest.fixture
def small_graph():
    g = Graph()
    g.add(NOA.h1, RDF.type, NOA.Hotspot)
    g.add(NOA.h2, RDF.type, NOA.Hotspot)
    g.add(NOA.h1, NOA.hasConfidence, Literal(1.0))
    g.add(NOA.h2, NOA.hasConfidence, Literal(0.5))
    g.add(NOA.h1, NOA.isProducedBy, NOA.noa)
    return g


class TestMutation:
    def test_add_returns_true_once(self):
        g = Graph()
        assert g.add(NOA.a, NOA.p, NOA.b) is True
        assert g.add(NOA.a, NOA.p, NOA.b) is False
        assert len(g) == 1

    def test_remove_exact(self, small_graph):
        removed = small_graph.remove(NOA.h1, RDF.type, NOA.Hotspot)
        assert removed == 1
        assert (NOA.h1, RDF.type, NOA.Hotspot) not in small_graph

    def test_remove_wildcard_subject(self, small_graph):
        removed = small_graph.remove(NOA.h1, None, None)
        assert removed == 3
        assert len(small_graph) == 2

    def test_remove_nonexistent(self, small_graph):
        assert small_graph.remove(NOA.h9, None, None) == 0

    def test_generation_bumps(self, small_graph):
        before = small_graph.generation
        small_graph.add(NOA.x, NOA.p, NOA.y)
        assert small_graph.generation > before

    def test_clear(self, small_graph):
        small_graph.clear()
        assert len(small_graph) == 0


class TestPatterns:
    def test_fully_bound(self, small_graph):
        assert (NOA.h1, RDF.type, NOA.Hotspot) in small_graph

    def test_spo_lookup(self, small_graph):
        got = list(small_graph.triples(NOA.h1, None, None))
        assert len(got) == 3

    def test_pos_lookup(self, small_graph):
        got = list(small_graph.triples(None, RDF.type, NOA.Hotspot))
        assert {s for s, _, _ in got} == {NOA.h1, NOA.h2}

    def test_object_lookup(self, small_graph):
        got = list(small_graph.triples(None, None, NOA.noa))
        assert got == [(NOA.h1, NOA.isProducedBy, NOA.noa)]

    def test_unknown_term_matches_nothing(self, small_graph):
        assert list(small_graph.triples(URI("http://nowhere/"), None, None)) == []

    def test_count(self, small_graph):
        assert small_graph.count(None, RDF.type, None) == 2
        assert small_graph.count() == 5

    def test_subjects_objects_helpers(self, small_graph):
        assert set(small_graph.subjects(RDF.type)) == {NOA.h1, NOA.h2}
        assert small_graph.value(NOA.h1, NOA.isProducedBy) == NOA.noa

    def test_geometry_literals(self):
        g = Graph()
        g.add(
            NOA.h1,
            STRDF.hasGeometry,
            Literal("POINT (1 2)", datatype=STRDF.base + "geometry"),
        )
        g.add(NOA.h1, NOA.hasConfidence, Literal(1.0))
        got = list(g.geometry_literals())
        assert len(got) == 1
        assert got[0][1] == STRDF.hasGeometry

    def test_copy_independent(self, small_graph):
        clone = small_graph.copy()
        clone.add(NOA.x, NOA.p, NOA.y)
        assert len(clone) == len(small_graph) + 1


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 8), st.integers(0, 3), st.integers(0, 8)
            ),
            max_size=60,
        )
    )
    def test_add_remove_inverse(self, triples):
        g = Graph()
        terms = lambda i: NOA.term(f"t{i}")
        unique = set()
        for s, p, o in triples:
            g.add(terms(s), terms(100 + p), terms(o))
            unique.add((s, p, o))
        assert len(g) == len(unique)
        for s, p, o in unique:
            g.remove(terms(s), terms(100 + p), terms(o))
        assert len(g) == 0

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5), st.integers(0, 2), st.integers(0, 5)
            ),
            max_size=40,
        )
    )
    def test_all_indexes_agree(self, triples):
        g = Graph()
        terms = lambda i: NOA.term(f"t{i}")
        for s, p, o in triples:
            g.add(terms(s), terms(100 + p), terms(o))
        full = set(g.triples())
        by_s = {
            t
            for s in set(x[0] for x in triples)
            for t in g.triples(terms(s), None, None)
        }
        by_p = {
            t
            for p in set(x[1] for x in triples)
            for t in g.triples(None, terms(100 + p), None)
        }
        by_o = {
            t
            for o in set(x[2] for x in triples)
            for t in g.triples(None, None, terms(o))
        }
        assert full == by_s == by_p == by_o
