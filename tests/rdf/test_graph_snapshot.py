"""Copy-on-write graph snapshots (:meth:`Graph.snapshot`)."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.errors import SnapshotWriteError
from repro.rdf import Graph, GraphSnapshot, Literal, TripleReader, URI

EX = "http://example.org/"


def u(name: str) -> URI:
    return URI(EX + name)


def populated(n: int = 5) -> Graph:
    g = Graph()
    for i in range(n):
        g.add(u(f"s{i}"), u("p"), Literal(i))
    return g


def test_snapshot_is_a_frozen_reader():
    g = populated()
    snap = g.snapshot()
    assert isinstance(snap, GraphSnapshot)
    assert isinstance(snap, TripleReader)
    assert len(snap) == len(g) == 5
    assert set(snap.triples(None, None, None)) == set(
        g.triples(None, None, None)
    )


def test_snapshot_is_generation_stamped():
    g = populated()
    before = g.generation
    snap = g.snapshot()
    assert snap.generation == before
    g.add(u("extra"), u("p"), Literal(99))
    assert g.generation > before
    assert snap.generation == before


def test_snapshot_is_cached_per_generation():
    g = populated()
    first = g.snapshot()
    assert g.snapshot() is first  # no mutation -> same frozen object
    g.add(u("extra"), u("p"), Literal(99))
    second = g.snapshot()
    assert second is not first
    assert second.generation > first.generation


def test_writer_mutations_do_not_leak_into_snapshot():
    g = populated()
    snap = g.snapshot()
    g.add(u("new"), u("p"), Literal(123))
    g.remove(u("s0"), u("p"), Literal(0))
    assert len(g) == 5  # +1 added, -1 removed
    assert len(snap) == 5
    assert (u("new"), u("p"), Literal(123)) not in snap
    assert (u("s0"), u("p"), Literal(0)) in snap
    assert (u("s0"), u("p"), Literal(0)) not in g


def test_snapshot_survives_writer_clear():
    g = populated()
    snap = g.snapshot()
    g.clear()
    assert len(g) == 0
    assert len(snap) == 5


def test_snapshot_iteration_is_stable_mid_write():
    """A reader mid-iteration never sees a torn or resized index."""
    g = populated(50)
    snap = g.snapshot()
    seen = []
    for index, triple in enumerate(snap.triples(None, None, None)):
        seen.append(triple)
        # The writer keeps mutating while the reader iterates.
        g.add(u(f"mid{index}"), u("q"), Literal(index))
        if index == 10:
            g.remove(u("s1"), u("p"), Literal(1))
    assert len(seen) == 50
    assert len(snap) == 50


def test_snapshot_refuses_writes():
    g = populated()
    snap = g.snapshot()
    with pytest.raises(SnapshotWriteError):
        snap.add(u("x"), u("p"), Literal(1))
    with pytest.raises(SnapshotWriteError):
        snap.remove(u("s0"), u("p"), Literal(0))
    with pytest.raises(SnapshotWriteError):
        snap.clear()
    # Immutability violations read as type errors to generic callers.
    with pytest.raises(TypeError):
        snap.add(u("x"), u("p"), Literal(1))
    assert len(snap) == 5


def test_snapshot_copy_is_mutable_again():
    g = populated()
    snap = g.snapshot()
    thawed = snap.copy()
    assert isinstance(thawed, Graph)
    assert len(thawed) == 5
    thawed.add(u("x"), u("p"), Literal(7))
    assert len(thawed) == 6
    assert len(snap) == 5  # the thawed copy detached first


def test_snapshot_pickles_for_forked_readers():
    g = populated()
    snap = g.snapshot()
    clone = pickle.loads(pickle.dumps(snap))
    assert isinstance(clone, GraphSnapshot)
    assert len(clone) == len(snap)
    assert clone.generation == snap.generation
    assert set(clone.triples(None, None, None)) == set(
        snap.triples(None, None, None)
    )
    assert isinstance(clone.build_lock, type(threading.Lock()))


def test_detach_happens_once_per_snapshot_cycle():
    """After the first post-snapshot mutation the writer owns private
    indexes again — further writes must not re-copy (observable via
    the shared flag)."""
    g = populated()
    g.snapshot()
    assert g._shared is True
    g.add(u("a"), u("p"), Literal(1))
    assert g._shared is False
    spo_after_first = g._spo
    g.add(u("b"), u("p"), Literal(2))
    assert g._spo is spo_after_first


def test_reads_work_identically_on_snapshot():
    g = populated()
    g.add(u("s0"), u("geo"), Literal("POINT(1 2)", datatype=(
        "http://strdf.di.uoa.gr/ontology#WKT")))
    snap = g.snapshot()
    assert snap.count(u("s0"), None, None) == g.count(u("s0"), None, None)
    assert set(snap.subjects(u("p"), Literal(0))) == {u("s0")}
    assert snap.value(u("s0"), u("p")) == Literal(0)
    geoms = list(snap.geometry_literals())
    assert len(geoms) == 1
