"""RDFS subclass inference (rdfs9 + rdfs11)."""

import pytest

from repro.rdf import CLC, Graph, RDF, RDFS, RDFSInference


@pytest.fixture
def taxonomy():
    g = Graph()
    g.add(CLC.ConiferousForest, RDFS.subClassOf, CLC.Forests)
    g.add(CLC.BroadLeavedForest, RDFS.subClassOf, CLC.Forests)
    g.add(CLC.Forests, RDFS.subClassOf, CLC.ForestsAndSemiNaturalAreas)
    g.add(CLC.Vineyards, RDFS.subClassOf, CLC.PermanentCrops)
    g.add(CLC.area1, RDF.type, CLC.ConiferousForest)
    g.add(CLC.area2, RDF.type, CLC.Vineyards)
    return g


class TestInference:
    def test_superclasses_transitive(self, taxonomy):
        inf = RDFSInference(taxonomy)
        supers = inf.superclasses(CLC.ConiferousForest)
        assert supers == {CLC.Forests, CLC.ForestsAndSemiNaturalAreas}

    def test_subclasses(self, taxonomy):
        inf = RDFSInference(taxonomy)
        subs = inf.subclasses(CLC.ForestsAndSemiNaturalAreas)
        assert CLC.ConiferousForest in subs
        assert CLC.Forests in subs
        assert CLC.Vineyards not in subs

    def test_types_of_instance(self, taxonomy):
        inf = RDFSInference(taxonomy)
        types = inf.types_of(CLC.area1)
        assert CLC.ConiferousForest in types
        assert CLC.ForestsAndSemiNaturalAreas in types
        assert CLC.PermanentCrops not in types

    def test_instances_of_superclass(self, taxonomy):
        inf = RDFSInference(taxonomy)
        assert set(inf.instances_of(CLC.Forests)) == {CLC.area1}
        assert set(inf.instances_of(CLC.ConiferousForest)) == {CLC.area1}

    def test_refresh_after_mutation(self, taxonomy):
        inf = RDFSInference(taxonomy)
        assert set(inf.instances_of(CLC.Forests)) == {CLC.area1}
        taxonomy.add(CLC.area3, RDF.type, CLC.BroadLeavedForest)
        assert set(inf.instances_of(CLC.Forests)) == {CLC.area1, CLC.area3}

    def test_cycle_does_not_hang(self):
        g = Graph()
        g.add(CLC.A, RDFS.subClassOf, CLC.B)
        g.add(CLC.B, RDFS.subClassOf, CLC.A)
        inf = RDFSInference(g)
        assert CLC.B in inf.superclasses(CLC.A)

    def test_type_triples_enumeration(self, taxonomy):
        inf = RDFSInference(taxonomy)
        got = set(inf.type_triples(CLC.area1))
        assert (CLC.area1, RDF.type, CLC.Forests) in got
