"""RDF term model."""

from datetime import date, datetime

import pytest

from repro.geometry import Polygon
from repro.rdf import BNode, Literal, URI, Variable, XSD, STRDF


class TestURI:
    def test_equality_and_hash(self):
        a = URI("http://example.org/x")
        b = URI("http://example.org/x")
        assert a == b and hash(a) == hash(b)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            URI("")

    def test_local_name(self):
        assert URI("http://ex.org/onto#Hotspot").local_name() == "Hotspot"
        assert URI("http://ex.org/onto/Hotspot").local_name() == "Hotspot"

    def test_n3(self):
        assert URI("http://x/y").n3() == "<http://x/y>"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            URI("http://x/y").value = "other"


class TestBNode:
    def test_fresh_labels_unique(self):
        assert BNode() != BNode()

    def test_same_label_equal(self):
        assert BNode("a") == BNode("a")


class TestLiteral:
    def test_python_inference_int(self):
        lit = Literal(42)
        assert lit.datatype == XSD.base + "integer"
        assert lit.value == 42

    def test_python_inference_float(self):
        lit = Literal(2.5)
        assert lit.datatype == XSD.base + "double"
        assert lit.value == 2.5

    def test_python_inference_bool(self):
        assert Literal(True).lexical == "true"
        assert Literal(True).value is True

    def test_datetime_roundtrip(self):
        when = datetime(2007, 8, 24, 18, 15)
        lit = Literal(when)
        assert lit.value == when

    def test_date_roundtrip(self):
        lit = Literal(date(2010, 8, 22))
        assert lit.value == date(2010, 8, 22)

    def test_plain_string(self):
        lit = Literal("hello")
        assert lit.datatype is None
        assert lit.value == "hello"

    def test_language_tag(self):
        lit = Literal("Patras", language="en")
        assert lit.language == "en"
        assert lit.n3() == '"Patras"@en'

    def test_datatype_and_language_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD.base + "string", language="en")

    def test_geometry_literal_parses(self):
        lit = Literal(
            "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",
            datatype=STRDF.base + "geometry",
        )
        assert lit.is_geometry
        assert isinstance(lit.value, Polygon)

    def test_strdf_wkt_also_geometry(self):
        lit = Literal("POINT (1 2)", datatype=STRDF.base + "WKT")
        assert lit.is_geometry

    def test_bad_geometry_value_falls_back_to_text(self):
        lit = Literal("not wkt", datatype=STRDF.base + "geometry")
        assert lit.value == "not wkt"

    def test_bad_integer_falls_back(self):
        lit = Literal("abc", datatype=XSD.base + "integer")
        assert lit.value == "abc"

    def test_n3_escaping(self):
        lit = Literal('say "hi"\n')
        assert lit.n3() == '"say \\"hi\\"\\n"'

    def test_equality_depends_on_datatype(self):
        assert Literal("1") != Literal("1", datatype=XSD.base + "integer")


class TestVariable:
    def test_strips_question_mark(self):
        assert Variable("?x") == Variable("x")
        assert Variable("$x").name == "x"
