"""Turtle parsing and serialisation."""

import pytest

from repro.rdf import (
    CLC,
    Graph,
    Literal,
    NOA,
    RDF,
    RDFS,
    STRDF,
    URI,
    XSD,
    parse_turtle,
    serialize_turtle,
)
from repro.rdf.turtle import TurtleParseError

PAPER_HOTSPOT = """
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

noa:Hotspot_1 a noa:Hotspot ;
    noa:hasAcquisitionDateTime "2007-08-24T18:15:00"^^xsd:dateTime ;
    noa:hasConfidence 1.0 ;
    noa:hasConfirmation noa:confirmed ;
    strdf:hasGeometry "POLYGON ((21.52 37.91,21.57 37.91,21.56 37.88,21.56 37.88,21.52 37.87,21.52 37.91))"^^strdf:geometry ;
    noa:isDerivedFromSensor "MSG2"^^xsd:string ;
    noa:isProducedBy noa:noa ;
    noa:isFromProcessingChain "cloud-masked"^^xsd:string .
"""


class TestParsing:
    def test_paper_example(self):
        g = parse_turtle(PAPER_HOTSPOT)
        assert len(g) == 8
        assert (NOA.Hotspot_1, RDF.type, NOA.Hotspot) in g
        geom = g.value(NOA.Hotspot_1, STRDF.hasGeometry)
        assert geom.is_geometry
        assert geom.value.area > 0

    def test_object_lists(self):
        g = parse_turtle("@prefix ex: <http://e/> . ex:a ex:p ex:b, ex:c .")
        assert len(g) == 2

    def test_numbers_and_booleans(self):
        g = parse_turtle(
            "@prefix ex: <http://e/> . ex:a ex:i 42 ; ex:f 2.5 ; ex:b true ."
        )
        values = {o.value for _, _, o in g.triples()}
        assert values == {42, 2.5, True}

    def test_language_tag(self):
        g = parse_turtle('@prefix ex: <http://e/> . ex:a ex:name "Patras"@en .')
        lit = g.value(ex_a := ex(g), None)
        assert lit.language == "en"

    def test_comments_ignored(self):
        g = parse_turtle(
            "# header\n@prefix ex: <http://e/> . ex:a ex:p ex:b . # trailing"
        )
        assert len(g) == 1

    def test_blank_nodes(self):
        g = parse_turtle(
            "@prefix ex: <http://e/> . _:x ex:p ex:b . ex:a ex:q [ ex:r ex:c ] ."
        )
        assert len(g) == 3

    def test_well_known_prefix_fallback(self):
        # clc: is available without @prefix.
        g = parse_turtle("clc:Area_1 a clc:Area .")
        assert (CLC.Area_1, RDF.type, CLC.Area) in g

    def test_unknown_prefix_raises(self):
        with pytest.raises(TurtleParseError):
            parse_turtle("bogus:a bogus:p bogus:c .")

    def test_long_string(self):
        g = parse_turtle(
            '@prefix ex: <http://e/> . ex:a ex:doc """line1\nline2""" .'
        )
        lit = next(iter(g.triples()))[2]
        assert "line1\nline2" == lit.lexical

    def test_escapes(self):
        g = parse_turtle(
            '@prefix ex: <http://e/> . ex:a ex:p "tab\\there" .'
        )
        assert next(iter(g.triples()))[2].lexical == "tab\there"

    def test_semicolon_before_dot_tolerated(self):
        g = parse_turtle("@prefix ex: <http://e/> . ex:a ex:p ex:b ; .")
        assert len(g) == 1


def ex(graph: Graph):
    return next(iter(graph.subjects()))


class TestRoundtrip:
    def test_serialise_and_reparse(self):
        g = parse_turtle(PAPER_HOTSPOT)
        text = serialize_turtle(g)
        g2 = parse_turtle(text)
        assert len(g2) == len(g)
        for t in g.triples():
            assert t in g2

    def test_roundtrip_with_special_characters(self):
        g = Graph()
        g.add(NOA.x, RDFS.label, Literal('he said "hi"'))
        g.add(NOA.x, NOA.note, Literal("multi\nline"))
        g2 = parse_turtle(serialize_turtle(g))
        assert len(g2) == 2
        for t in g.triples():
            assert t in g2

    def test_roundtrip_typed_literals(self):
        g = Graph()
        g.add(NOA.x, NOA.c, Literal("0.5", datatype=XSD.base + "float"))
        g.add(NOA.x, NOA.n, Literal(7))
        g2 = parse_turtle(serialize_turtle(g))
        for t in g.triples():
            assert t in g2

    def test_prefixes_emitted_once(self):
        g = Graph()
        g.add(NOA.a, RDF.type, NOA.Hotspot)
        text = serialize_turtle(g)
        assert text.count("@prefix noa:") == 1
