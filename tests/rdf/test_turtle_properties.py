"""Property-based Turtle round trips over randomly generated graphs."""

from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, NOA, URI, XSD, parse_turtle, serialize_turtle

_subjects = st.integers(min_value=0, max_value=5).map(
    lambda i: NOA.term(f"s{i}")
)
_predicates = st.integers(min_value=0, max_value=4).map(
    lambda i: NOA.term(f"p{i}")
)

_safe_text = st.text(
    alphabet=st.characters(
        codec="utf-8",
        categories=("L", "N", "P", "Zs"),
        exclude_characters="\r",
    ),
    max_size=40,
)

_objects = st.one_of(
    st.integers(min_value=0, max_value=5).map(lambda i: NOA.term(f"o{i}")),
    st.integers(min_value=-1000, max_value=1000).map(Literal),
    st.floats(
        min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
    ).map(Literal),
    st.booleans().map(Literal),
    _safe_text.map(Literal),
    _safe_text.map(lambda t: Literal(t, language="en")),
    _safe_text.map(
        lambda t: Literal(t, datatype=XSD.base + "string")
    ),
)

_triples = st.lists(
    st.tuples(_subjects, _predicates, _objects), max_size=40
)


class TestTurtleRoundtripProperties:
    @settings(max_examples=50, deadline=None)
    @given(_triples)
    def test_serialise_parse_identity(self, triples):
        g = Graph()
        for s, p, o in triples:
            g.add(s, p, o)
        text = serialize_turtle(g)
        back = parse_turtle(text)
        assert len(back) == len(g)
        for t in g.triples():
            assert t in back

    @settings(max_examples=25, deadline=None)
    @given(_triples)
    def test_double_roundtrip_stable(self, triples):
        g = Graph()
        for s, p, o in triples:
            g.add(s, p, o)
        once = serialize_turtle(parse_turtle(serialize_turtle(g)))
        twice = serialize_turtle(parse_turtle(once))
        assert once == twice
