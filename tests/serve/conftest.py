"""Serving-layer fixtures.

One teleios service with two ingested crisis-day acquisitions is shared
(module-of-tests wide) by the HTTP and publisher tests; building it
costs a couple of seconds, and the serving layer never mutates it
outside the explicitly-writing concurrency test, which brings its own
timestamps.
"""

from __future__ import annotations

import tempfile
from datetime import timedelta

import pytest

from tests.conftest import CRISIS_START
from repro.core.config import RunOptions
from repro.core.service import FireMonitoringService

INGESTED = [
    CRISIS_START + timedelta(hours=13, minutes=15 * k) for k in range(2)
]

#: Timestamps the concurrency test may ingest on top.
EXTRA = [
    CRISIS_START + timedelta(hours=14, minutes=15 * k) for k in range(2)
]


@pytest.fixture(scope="package")
def served_service(greece, season):
    service = FireMonitoringService(
        greece=greece,
        mode="teleios",
        workdir=tempfile.mkdtemp(prefix="test_serve_"),
    )
    service.run(INGESTED, RunOptions(season=season, on_error="raise"))
    yield service
    service.close()


@pytest.fixture(scope="package")
def serve_options(season):
    return RunOptions(season=season, on_error="raise")
