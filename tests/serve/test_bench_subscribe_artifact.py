"""The BENCH_subscribe.json artifact — tier-1 smoke contract.

Thresholds sit well below what the benchmark actually produces so the
committed artifact keeps passing on noisy hosts; the precise gating is
done by ``benchmarks/check_regression.py`` against the baselines.
"""

from __future__ import annotations

import json
import os

import pytest

BENCH_SUBSCRIBE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    ))),
    "benchmarks",
    "out",
    "BENCH_subscribe.json",
)


@pytest.fixture(scope="module")
def artifact():
    if not os.path.exists(BENCH_SUBSCRIBE):
        pytest.skip(
            "benchmarks/out/BENCH_subscribe.json not generated yet"
        )
    with open(BENCH_SUBSCRIBE) as f:
        return json.load(f)


def test_schema_has_every_required_section(artifact):
    assert artifact["schema"] == "bench-subscribe/1"
    for section in ("workload", "series", "headline"):
        assert section in artifact, f"missing section {section!r}"


def test_series_covers_100k_subscriptions(artifact):
    counts = sorted(int(k) for k in artifact["series"])
    assert counts[-1] >= 100_000
    assert len(counts) >= 3
    for key, point in artifact["series"].items():
        assert point["subscriptions"] == int(key)
        assert point["notifications"] > 0
        assert point["registration"]["subs_per_s"] > 100


def test_headline_meets_the_acceptance_bar(artifact):
    headline = artifact["headline"]
    assert headline["subscriptions"] >= 100_000
    # The benchmark asserts >= 10x on the measuring host; the
    # committed artifact only has to clear it at all.
    assert headline["speedup_incremental_vs_full"] >= 10.0
    assert headline["differential_mismatches"] == 0


def test_incremental_never_regresses_to_full_cost(artifact):
    for point in artifact["series"].values():
        assert (
            point["incremental_ms"] < point["full_rerun_ms"]
        ), point
        assert point["differential_mismatches"] == 0
