"""The HTTP serving endpoint, end to end over a real service."""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from tests.serve.conftest import EXTRA
from repro.serve import serve_in_thread

PREFIX = (
    "PREFIX noa: "
    "<http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
)
SELECT = PREFIX + (
    "SELECT ?h ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c }"
)


@pytest.fixture(scope="module")
def server(served_service):
    with serve_in_thread(served_service) as handle:
        yield handle


def _request(handle, method, path, body=None):
    host, port = handle.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        data = response.read()
    finally:
        conn.close()
    if response.getheader("Content-Type", "").startswith(
        "application/json"
    ):
        return response.status, json.loads(data)
    return response.status, data.decode("utf-8", errors="replace")


def test_hotspots_returns_geojson_with_provenance(server):
    status, collection = _request(server, "GET", "/hotspots")
    assert status == 200
    assert collection["type"] == "FeatureCollection"
    assert len(collection["features"]) > 0
    assert collection["snapshot"]["sequence"] >= 1
    assert collection["snapshot"]["generation"] > 0
    for feature in collection["features"]:
        assert feature["geometry"]["type"]
        props = feature["properties"]
        assert props["hotspot"].startswith("http")
        assert props["confidence"] is not None
        # Published snapshots are post-refinement: every hotspot is
        # confirmation-marked.
        assert props["confirmation"] in ("confirmed", "unconfirmed")


def test_hotspots_filters_compose(server):
    _, everything = _request(server, "GET", "/hotspots")
    total = len(everything["features"])
    _, confident = _request(
        server, "GET", "/hotspots?min_confidence=0.9"
    )
    assert len(confident["features"]) <= total
    for feature in confident["features"]:
        assert feature["properties"]["confidence"] >= 0.9
    _, boxed = _request(server, "GET", "/hotspots?bbox=20,34,29,42")
    assert len(boxed["features"]) <= total
    _, nowhere = _request(server, "GET", "/hotspots?bbox=0,0,1,1")
    assert nowhere["features"] == []
    _, confirmed = _request(server, "GET", "/hotspots?confirmed=true")
    _, unconfirmed = _request(
        server, "GET", "/hotspots?confirmed=false"
    )
    assert (
        len(confirmed["features"]) + len(unconfirmed["features"])
        == total
    )
    _, windowed = _request(
        server,
        "GET",
        "/hotspots?since=2007-08-24T13:15:00&until=2007-08-24T13:15:00",
    )
    for feature in windowed["features"]:
        assert feature["properties"]["acquired"] == (
            "2007-08-24T13:15:00"
        )


def test_hotspots_rejects_malformed_filters(server):
    status, body = _request(server, "GET", "/hotspots?bbox=1,2,3")
    assert status == 400 and "bbox" in body["error"]
    status, _ = _request(server, "GET", "/hotspots?bbox=9,9,1,1")
    assert status == 400
    status, _ = _request(
        server, "GET", "/hotspots?min_confidence=high"
    )
    assert status == 400
    status, _ = _request(server, "GET", "/hotspots?confirmed=maybe")
    assert status == 400


def test_stsparql_select_and_refused_update(server):
    status, result = _request(server, "POST", "/stsparql", SELECT)
    assert status == 200
    assert len(result["results"]["bindings"]) > 0
    assert result["snapshot"]["sequence"] >= 1
    # JSON envelope works too.
    status, wrapped = _request(
        server, "POST", "/stsparql", json.dumps({"query": SELECT})
    )
    assert status == 200
    assert wrapped["results"] == result["results"]
    status, refusal = _request(
        server,
        "POST",
        "/stsparql",
        PREFIX + "INSERT DATA { noa:evil a noa:Hotspot . }",
    )
    assert status == 403
    assert "read-only" in refusal["error"]
    status, bad = _request(server, "POST", "/stsparql", "SELEKT oops")
    assert status == 400
    status, empty = _request(server, "POST", "/stsparql", "")
    assert status == 400


def test_stsparql_explain_returns_plan(server):
    status, plan = _request(
        server,
        "POST",
        "/stsparql",
        json.dumps({"query": SELECT, "explain": True}),
    )
    assert status == 200
    assert plan["engine"] in ("columnar", "interpreted")
    assert plan["operation"] == "select"
    assert plan["rows"] > 0
    bgp = plan["plan"][0]
    assert bgp["operator"] == "bgp"
    assert len(bgp["join_order"]) == len(bgp["estimates"]) == 2
    # Explain responses carry the same snapshot provenance as results.
    assert plan["snapshot"]["sequence"] >= 1


def test_health_reflects_service_state(server, served_service):
    status, health = _request(server, "GET", "/health")
    assert status == 200
    assert health["status"] in ("ok", "degraded")
    assert health["mode"] == "teleios"
    assert health["acquisitions"]["ok"] >= 2
    assert health["circuit_breaker"] in (
        "closed", "open", "half-open"
    )
    assert health["dead_letters"] == 0
    assert health["snapshot"]["sequence"] >= 1
    assert health["snapshot"]["triples"] > 0
    # The HTTP layer adds only the normalised provenance block on top
    # of the service's own health document.
    provenance = health.pop("provenance")
    assert provenance["api"] == "v1"
    assert provenance["token"].startswith("v1:")
    assert health == json.loads(json.dumps(served_service.health()))


def test_metrics_and_unknown_routes(server):
    status, text = _request(server, "GET", "/metrics")
    assert status == 200
    assert isinstance(text, str)
    status, _ = _request(server, "GET", "/no-such-endpoint")
    assert status == 404
    status, _ = _request(server, "POST", "/hotspots")
    assert status == 405
    status, _ = _request(server, "GET", "/stsparql")
    assert status == 405


def test_reads_never_observe_half_refined_state(
    server, served_service, serve_options
):
    """The tentpole's e2e guarantee: /hotspots polled *during* run()
    never returns a hotspot missing its confirmation mark (the final
    refinement operation stamps every survivor), and the served
    snapshot never travels backwards."""
    errors = []

    def ingest():
        try:
            served_service.run(EXTRA, serve_options)
        except Exception as error:  # pragma: no cover
            errors.append(repr(error))

    writer = threading.Thread(target=ingest, daemon=True)
    observations = []
    torn = []
    writer.start()
    while writer.is_alive():
        status, collection = _request(server, "GET", "/hotspots")
        assert status == 200
        for feature in collection["features"]:
            if feature["properties"]["confirmation"] is None:
                torn.append(feature["properties"]["hotspot"])
        observations.append(
            (
                collection["snapshot"]["sequence"],
                collection["snapshot"]["generation"],
            )
        )
        time.sleep(0.01)
    writer.join()
    assert not errors
    assert torn == []
    sequences = [seq for seq, _ in observations]
    generations = [gen for _, gen in observations]
    assert sequences == sorted(sequences)
    assert generations == sorted(generations)
    # The run really did publish while we were polling.
    final_sequence = served_service.publisher.sequence
    assert final_sequence >= len(EXTRA)
