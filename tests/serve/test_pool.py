"""Read worker pools over a frozen snapshot."""

from __future__ import annotations

import pytest

from repro.errors import ServiceStateError, SnapshotWriteError
from repro.serve import ReadWorkerPool
from repro.serve.pool import _fork_available
from repro.stsparql import Strabon

PREFIX = (
    "PREFIX noa: "
    "<http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
)
SELECT = PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot }"
ASK = PREFIX + "ASK { ?h a noa:Hotspot }"


@pytest.fixture()
def snapshot():
    strabon = Strabon()
    for i in range(3):
        strabon.update(
            PREFIX + f"INSERT DATA {{ noa:h{i} a noa:Hotspot . }}"
        )
    return strabon.graph.snapshot()


def test_thread_pool_answers_select_and_ask(snapshot):
    with ReadWorkerPool(snapshot, workers=2, kind="thread") as pool:
        select, ask = pool.map([SELECT, ASK])
    assert len(select["results"]["bindings"]) == 3
    assert ask is True


@pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)
def test_process_pool_matches_thread_pool(snapshot):
    with ReadWorkerPool(snapshot, workers=2, kind="thread") as pool:
        expected = pool.map([SELECT])[0]
    with ReadWorkerPool(snapshot, workers=2, kind="process") as pool:
        pool.warm()
        results = pool.map([SELECT] * 4)
    for result in results:
        assert len(result["results"]["bindings"]) == len(
            expected["results"]["bindings"]
        )


def test_pool_refuses_updates(snapshot):
    with ReadWorkerPool(snapshot, workers=1, kind="thread") as pool:
        future = pool.submit(
            PREFIX + "INSERT DATA { noa:x a noa:Hotspot . }"
        )
        with pytest.raises(SnapshotWriteError):
            future.result()


def test_pool_lifecycle_and_validation(snapshot):
    with pytest.raises(ValueError):
        ReadWorkerPool(snapshot, workers=0)
    with pytest.raises(ValueError):
        ReadWorkerPool(snapshot, workers=1, kind="quantum")
    pool = ReadWorkerPool(snapshot, workers=1, kind="thread")
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(ServiceStateError):
        pool.submit(SELECT)
