"""Read worker pools over a frozen snapshot."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.errors import ServiceStateError, SnapshotWriteError
from repro.obs import context_of
from repro.serve import ReadWorkerPool
from repro.serve.pool import _fork_available
from repro.stsparql import Strabon

PREFIX = (
    "PREFIX noa: "
    "<http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
)
SELECT = PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot }"
ASK = PREFIX + "ASK { ?h a noa:Hotspot }"


@pytest.fixture()
def snapshot():
    strabon = Strabon()
    for i in range(3):
        strabon.update(
            PREFIX + f"INSERT DATA {{ noa:h{i} a noa:Hotspot . }}"
        )
    return strabon.graph.snapshot()


def test_thread_pool_answers_select_and_ask(snapshot):
    with ReadWorkerPool(snapshot, workers=2, kind="thread") as pool:
        select, ask = pool.map([SELECT, ASK])
    assert len(select["results"]["bindings"]) == 3
    assert ask is True


@pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)
def test_process_pool_matches_thread_pool(snapshot):
    with ReadWorkerPool(snapshot, workers=2, kind="thread") as pool:
        expected = pool.map([SELECT])[0]
    with ReadWorkerPool(snapshot, workers=2, kind="process") as pool:
        pool.warm()
        results = pool.map([SELECT] * 4)
    for result in results:
        assert len(result["results"]["bindings"]) == len(
            expected["results"]["bindings"]
        )


@pytest.fixture()
def tracing():
    obs.disable()
    obs.reset()
    obs.enable()
    yield obs.get_tracer()
    obs.disable()
    obs.reset()


@pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)
def test_traced_process_query_stitches_worker_span(snapshot, tracing):
    """A context-carrying submit ships the worker's span home."""
    with tracing.span("serve.request") as request:
        ctx = context_of(request)
    with ReadWorkerPool(snapshot, workers=1, kind="process") as pool:
        result = pool.submit(SELECT, context=ctx).result()
    assert len(result["results"]["bindings"]) == 3
    queries = [
        s for s in tracing.spans() if s.name == "pool.query"
    ]
    assert len(queries) == 1
    span = queries[0]
    # Same trace, parented under the request, recorded over there.
    assert span.trace_id == request.trace_id
    assert span.parent_id == request.span_id
    assert span.attributes["kind"] == "process"
    assert span.attributes["worker_pid"] != os.getpid()


def test_traced_thread_query_joins_the_request_trace(snapshot, tracing):
    with tracing.span("serve.request") as request:
        ctx = context_of(request)
    with ReadWorkerPool(snapshot, workers=1, kind="thread") as pool:
        assert pool.submit(ASK, context=ctx).result() is True
    queries = [
        s for s in tracing.spans() if s.name == "pool.query"
    ]
    assert len(queries) == 1
    assert queries[0].trace_id == request.trace_id
    assert queries[0].attributes["kind"] == "thread"


def test_untraced_submit_records_nothing_when_disabled(snapshot):
    obs.disable()
    obs.reset()
    with ReadWorkerPool(snapshot, workers=1, kind="thread") as pool:
        assert pool.submit(ASK).result() is True
        assert pool.submit(ASK, context=None).result() is True
    assert obs.get_tracer().spans() == []


def test_pool_refuses_updates(snapshot):
    with ReadWorkerPool(snapshot, workers=1, kind="thread") as pool:
        future = pool.submit(
            PREFIX + "INSERT DATA { noa:x a noa:Hotspot . }"
        )
        with pytest.raises(SnapshotWriteError):
            future.result()


def test_pool_lifecycle_and_validation(snapshot):
    with pytest.raises(ValueError):
        ReadWorkerPool(snapshot, workers=0)
    with pytest.raises(ValueError):
        ReadWorkerPool(snapshot, workers=1, kind="quantum")
    pool = ReadWorkerPool(snapshot, workers=1, kind="thread")
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(ServiceStateError):
        pool.submit(SELECT)
