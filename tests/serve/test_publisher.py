"""Snapshot publication semantics (:class:`SnapshotPublisher`)."""

from __future__ import annotations

import threading
from datetime import datetime, timezone

import pytest

from repro.serve import SnapshotPublisher
from repro.stsparql import Strabon

PREFIX = (
    "PREFIX noa: "
    "<http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
)


def test_publish_is_sequenced_and_generation_stamped():
    strabon = Strabon()
    publisher = SnapshotPublisher()
    assert publisher.latest() is None
    with pytest.raises(LookupError):
        publisher.require_latest()
    first = publisher.publish(strabon)
    assert first.sequence == 1
    assert first.generation == strabon.graph.generation
    strabon.update(PREFIX + "INSERT DATA { noa:h1 a noa:Hotspot . }")
    when = datetime(2007, 8, 24, 13, 0, tzinfo=timezone.utc)
    second = publisher.publish(strabon, timestamp=when)
    assert second.sequence == 2
    assert second.generation > first.generation
    assert second.timestamp == when
    assert publisher.latest() is second
    assert publisher.require_latest() is second


def test_unchanged_store_republishes_the_same_view():
    strabon = Strabon()
    publisher = SnapshotPublisher()
    a = publisher.publish(strabon)
    b = publisher.publish(strabon)
    assert b.sequence == a.sequence + 1
    assert b.view is a.view  # zero-mutation republish is free


def test_readers_keep_their_snapshot_across_publications():
    strabon = Strabon()
    strabon.update(PREFIX + "INSERT DATA { noa:h1 a noa:Hotspot . }")
    publisher = SnapshotPublisher()
    held = publisher.publish(strabon)
    strabon.update(PREFIX + "INSERT DATA { noa:h2 a noa:Hotspot . }")
    publisher.publish(strabon)
    query = PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot }"
    assert len(held.view.select(query)) == 1
    assert len(publisher.require_latest().view.select(query)) == 2


def test_raising_subscriber_is_isolated():
    """One broken callback must not break the publication, the
    callbacks registered after it, or future publications."""
    strabon = Strabon()
    publisher = SnapshotPublisher()
    calls = []

    def broken(published):
        calls.append(("broken", published.sequence))
        raise RuntimeError("subscriber bug")

    def healthy(published):
        calls.append(("healthy", published.sequence))

    publisher.subscribe(broken)
    publisher.subscribe(healthy)
    first = publisher.publish(strabon)
    second = publisher.publish(strabon)
    assert first.sequence == 1 and second.sequence == 2
    assert calls == [
        ("broken", 1),
        ("healthy", 1),
        ("broken", 2),
        ("healthy", 2),
    ]
    assert publisher.latest() is second


def test_subscriber_error_ordering_is_preserved():
    """Sequences observed by a later subscriber stay gap-free even
    when an earlier subscriber raises on every publication."""
    strabon = Strabon()
    publisher = SnapshotPublisher()
    seen = []
    publisher.subscribe(
        lambda p: (_ for _ in ()).throw(ValueError("boom"))
    )
    publisher.subscribe(lambda p: seen.append(p.sequence))
    for _ in range(5):
        publisher.publish(strabon)
    assert seen == [1, 2, 3, 4, 5]


def test_wait_for_unblocks_on_publication():
    strabon = Strabon()
    publisher = SnapshotPublisher()
    publisher.publish(strabon)
    assert publisher.wait_for(99, timeout=0.05) is None  # times out
    results = []

    def waiter():
        results.append(publisher.wait_for(2, timeout=5.0))

    thread = threading.Thread(target=waiter)
    thread.start()
    published = publisher.publish(strabon)
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert results and results[0] is published
