"""The sharded scatter-gather tier, differentially against one server.

The acceptance bar for the sharded serving tier: for the same published
store, the router's merged ``/v1/hotspots`` and ``/v1/stsparql``
answers must equal the single-server answers exactly, bbox fan-outs
must consult only intersecting tiles, and a failing shard must degrade
the response (labelled) rather than fail it.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.errors import SnapshotWriteError
from repro.faults import FaultPlan, inject
from repro.serve import (
    CATCH_ALL,
    ServeClient,
    ShardManager,
    serve_in_thread,
    serve_router_in_thread,
)
from repro.stsparql.errors import QueryTimeoutError, SparqlError

PREFIX = (
    "PREFIX noa: "
    "<http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
)
SELECT = PREFIX + (
    "SELECT ?h ?c WHERE { ?h a noa:Hotspot ; noa:hasConfidence ?c }"
)
ASK = PREFIX + "ASK { ?h a noa:Hotspot }"

N_SHARDS = 4


@pytest.fixture(scope="module")
def single(served_service):
    with serve_in_thread(served_service) as handle:
        yield ServeClient.for_handle(handle)


@pytest.fixture(scope="module")
def tier(served_service):
    manager = ShardManager(served_service, shards=N_SHARDS)
    manager.start_http()
    handle = serve_router_in_thread(manager)
    try:
        yield manager, handle
    finally:
        handle.stop()
        manager.stop_http()


@pytest.fixture(scope="module")
def router(tier):
    _manager, handle = tier
    return ServeClient.for_handle(handle)


def _sorted_bindings(result):
    return sorted(
        result["results"]["bindings"],
        key=lambda b: json.dumps(b, sort_keys=True),
    )


class TestDifferential:
    """Sharded answers == single-store answers, byte for byte."""

    def test_hotspots_match(self, single, router):
        alone = single.hotspots()
        merged = router.hotspots()
        assert len(merged["features"]) > 0
        assert merged["features"] == alone["features"]

    def test_hotspots_match_under_every_filter(self, single, router):
        for kwargs in (
            {"bbox": "20.6,34.6,23.0,38.0"},
            {"min_confidence": 0.5},
            {"confirmed": True},
            {"since": "2007-08-24T13:15:00"},
        ):
            alone = single.hotspots(**kwargs)
            merged = router.hotspots(**kwargs)
            assert merged["features"] == alone["features"], kwargs

    def test_select_bindings_match_as_multisets(self, single, router):
        alone = single.query(SELECT)
        merged = router.query(SELECT)
        assert _sorted_bindings(merged) == _sorted_bindings(alone)
        assert merged["head"]["vars"] == alone["head"]["vars"]

    def test_ask_matches(self, single, router):
        assert router.query(ASK)["boolean"] is True
        assert (
            router.query(PREFIX + "ASK { ?h a noa:Nonexistent }")[
                "boolean"
            ]
            is False
        )


class TestFanOut:
    def test_bbox_prunes_consulted_shards(self, tier, router):
        from repro.serve import parse_bbox

        manager, _ = tier
        env = manager.layout.envelope
        west = (
            f"{env.minx},{env.miny},"
            f"{(env.minx + env.maxx) / 2 - 0.01},{env.maxy}"
        )
        merged = router.hotspots(bbox=west)
        consulted = [
            block["shard"] for block in merged["provenance"]["shards"]
        ]
        assert consulted == manager.shard_ids_for_bbox(
            parse_bbox(west)
        )
        assert consulted == [0, 2]  # 2x2 layout: the western column
        assert CATCH_ALL not in consulted

    def test_stsparql_consults_every_shard(self, tier, router):
        manager, _ = tier
        merged = router.query(SELECT)
        consulted = [
            block["shard"] for block in merged["provenance"]["shards"]
        ]
        assert consulted == manager.shard_ids

    def test_router_provenance_shape(self, tier, router):
        manager, _ = tier
        provenance = router.hotspots()["provenance"]
        assert provenance["api"] == "v1"
        assert provenance["role"] == "router"
        assert provenance["degraded"] is False
        assert provenance["missing_shards"] == []
        token = provenance["token"]
        assert token == manager.token().encode()
        # One (sequence, generation) part per shard.
        assert token.count("-") == len(manager.shard_ids) - 1


class TestDegraded:
    def test_dead_shard_degrades_but_labels(self, tier, router):
        from repro.serve import fetch_json

        manager, _ = tier
        # Kill the shard that actually holds hotspots, so the degraded
        # answer is visibly smaller, not just labelled.
        counts = {}
        for sid in manager.shard_ids_for_bbox(None):
            host, port = manager.shards[sid].address
            doc = fetch_json(host, port, "/v1/hotspots")
            counts[sid] = len(doc["features"])
        victim = max(counts, key=counts.get)
        assert counts[victim] > 0
        plan = FaultPlan().raise_in(
            "router.fanout", index=victim, times=100
        )
        with inject(plan):
            merged = router.hotspots()
        provenance = merged["provenance"]
        assert provenance["degraded"] is True
        assert provenance["missing_shards"] == [victim]
        consulted = [b["shard"] for b in provenance["shards"]]
        assert victim not in consulted
        # The survivors still answer; the merged set is the clean set
        # minus exactly the dead shard's features.
        clean = router.hotspots()
        assert (
            len(merged["features"])
            == len(clean["features"]) - counts[victim]
        )
        assert set(
            f["properties"]["hotspot"] for f in merged["features"]
        ) <= set(
            f["properties"]["hotspot"] for f in clean["features"]
        )

    def test_all_shards_dead_is_503(self, tier, router):
        from repro.serve import ServeError

        plan = FaultPlan().raise_in("router.fanout", times=1000)
        with inject(plan):
            with pytest.raises(ServeError) as excinfo:
                router.query(SELECT)
        assert excinfo.value.status == 503

    def test_fault_site_is_inert_without_a_plan(self, router):
        # No active plan: the trip is a no-op and service is clean.
        assert router.hotspots()["provenance"]["degraded"] is False


class TestUnifiedContract:
    """ServeClient speaks the same keywords as the in-process engines
    and maps statuses back onto the same exceptions."""

    def test_explain_merges_per_shard_plans(self, tier, router):
        manager, _ = tier
        doc = router.query(SELECT, explain=True)
        assert doc["engine"] == "router"
        assert doc["operation"] == "explain"
        assert set(doc["shards"]) == {
            str(sid) for sid in manager.shard_ids
        }
        assert doc["rows"] == sum(
            shard["rows"] for shard in doc["shards"].values()
        )

    def test_query_engine_override_reaches_shards(self, router):
        doc = router.query(
            SELECT, explain=True, query_engine="interpreted"
        )
        engines = {
            shard["engine"] for shard in doc["shards"].values()
        }
        assert engines == {"interpreted"}

    def test_timeout_maps_to_query_timeout_error(self, router):
        with pytest.raises(QueryTimeoutError):
            router.query(SELECT, timeout=1e-9)

    def test_params_bind_remotely(self, single, router):
        query = PREFIX + (
            "SELECT ?h WHERE { ?h a noa:Hotspot ; "
            "noa:hasConfidence ?min }"
        )
        bindings = single.query(SELECT)["results"]["bindings"]
        assert bindings
        value = float(bindings[0]["c"]["value"])
        got = router.query(query, params={"min": value})
        expected = single.query(query, params={"min": value})
        assert _sorted_bindings(got) == _sorted_bindings(expected)

    def test_updates_refused_as_snapshot_write(self, router):
        with pytest.raises(SnapshotWriteError):
            router.query(
                PREFIX + "INSERT DATA { noa:evil a noa:Hotspot . }"
            )

    def test_undistributable_queries_are_422(self, router):
        for text in (
            SELECT + " LIMIT 2",
            SELECT + " ORDER BY ?c",
            PREFIX
            + "SELECT (COUNT(?h) AS ?n) WHERE { ?h a noa:Hotspot }",
        ):
            with pytest.raises(SparqlError):
                router.query(text)

    def test_bad_engine_name_rejected(self, router):
        with pytest.raises(SparqlError, match="engine"):
            router.query(SELECT, query_engine="quantum")


class TestVersionedApi:
    def _raw(self, client, method, path, body=None):
        conn = http.client.HTTPConnection(
            client.host, client.port, timeout=30
        )
        try:
            conn.request(method, path, body=body)
            response = conn.getresponse()
            data = response.read()
        finally:
            conn.close()
        if response.getheader("Content-Type", "").startswith(
            "application/json"
        ):
            return response, json.loads(data)
        return response, data.decode("utf-8", errors="replace")

    def test_legacy_paths_alias_v1_with_deprecation(self, single):
        response, legacy = self._raw(single, "GET", "/hotspots")
        assert response.status == 200
        assert response.getheader("Deprecation") == "true"
        assert response.getheader("Link") == (
            '</v1/hotspots>; rel="successor-version"'
        )
        v1_response, v1 = self._raw(single, "GET", "/v1/hotspots")
        assert v1_response.getheader("Deprecation") is None
        assert legacy["features"] == v1["features"]

    def test_all_v1_endpoints_answer_without_deprecation(self, single):
        for path in ("/v1/health", "/v1/metrics", "/v1/debug/tracez"):
            response, _ = self._raw(single, "GET", path)
            assert response.status == 200, path
            assert response.getheader("Deprecation") is None

    def test_router_speaks_both_generations(self, router):
        response, _ = self._raw(router, "POST", "/stsparql", SELECT)
        assert response.status == 200
        assert response.getheader("Deprecation") == "true"
        response, _ = self._raw(router, "GET", "/v1/health")
        assert response.status == 200

    def test_provenance_is_normalised_everywhere(self, single, router):
        for client in (single, router):
            for payload in (
                client.hotspots(),
                client.query(ASK),
                client.health(),
                client.tracez(),
            ):
                provenance = payload["provenance"]
                assert provenance["api"] == "v1"
                assert provenance["role"] in ("server", "router")
                assert provenance["token"].startswith("v1:")
                assert "degraded" in provenance
                assert "missing_shards" in provenance


class TestRouterHealth:
    def test_health_aggregates_shards(self, tier, router):
        manager, _ = tier
        health = router.health()
        assert health["status"] == "ok"
        assert health["role"] == "router"
        assert health["layout"] == {
            "tiles_x": manager.layout.tiles_x,
            "tiles_y": manager.layout.tiles_y,
        }
        shards = health["shards"]
        assert [s["shard"] for s in shards] == manager.shard_ids
        assert all(s["status"] == "ok" for s in shards)
        assert sum(
            s["snapshot"]["triples"] for s in shards
        ) == len(served_triples(manager))
        assert health["token"] == manager.token().encode()


def served_triples(manager):
    latest = manager.service.publisher.latest()
    return latest.view.snapshot
