"""Spatial sharding: tile layout, partitioning, composite tokens."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.annotation import source_uri
from repro.geometry import Envelope
from repro.ontology.noa import CONFIRMATION_CONFIRMED
from repro.rdf import NOA, RDF, STRDF, XSD
from repro.rdf.term import Literal, URI
from repro.serve import (
    CATCH_ALL,
    ConsistencyToken,
    ShardManager,
    SnapshotPublisher,
    TileLayout,
    partition_snapshot,
)
from repro.serve.hotspots import query_hotspots
from repro.stsparql import Strabon

WKT = "http://strdf.di.uoa.gr/ontology#WKT"
GEOM = URI("http://strdf.di.uoa.gr/ontology#hasGeometry")
LABEL = URI("http://www.w3.org/2000/01/rdf-schema#label")


def _point(n: int) -> URI:
    return URI(f"http://example.org/point/{n}")


def _engine_with_points(points) -> Strabon:
    """A Strabon whose graph holds one geometric star per point plus a
    couple of geometry-free (catch-all) subjects."""
    engine = Strabon()
    for n, (lon, lat) in enumerate(points):
        engine.graph.add(
            _point(n),
            GEOM,
            Literal(f"POINT ({lon} {lat})", datatype=WKT),
        )
        engine.graph.add(_point(n), LABEL, Literal(f"p{n}"))
    aux = URI("http://example.org/aux")
    engine.graph.add(aux, LABEL, Literal("no geometry here"))
    return engine


class _FakeService:
    """The duck-typed minimum a ShardManager needs."""

    def __init__(self, start_sequence: int = 0) -> None:
        self.publisher = SnapshotPublisher(start_sequence=start_sequence)


class TestTileLayout:
    @pytest.mark.parametrize(
        "shards,expected",
        [(1, (1, 1)), (2, (2, 1)), (4, (2, 2)), (6, (3, 2)), (5, (5, 1))],
    )
    def test_for_shards_is_most_square(self, shards, expected):
        layout = TileLayout.for_shards(shards)
        assert (layout.tiles_x, layout.tiles_y) == expected
        assert len(layout) == shards

    def test_tiles_cover_the_grid_envelope_disjointly(self):
        layout = TileLayout(3, 2)
        # Row-major indices, edges shared, area partitioned.
        assert [t.index for t in layout.tiles] == list(range(6))
        total = sum(
            (t.envelope.maxx - t.envelope.minx)
            * (t.envelope.maxy - t.envelope.miny)
            for t in layout.tiles
        )
        env = layout.envelope
        assert total == pytest.approx(
            (env.maxx - env.minx) * (env.maxy - env.miny)
        )

    def test_tile_for_clamps_out_of_grid_points(self):
        layout = TileLayout(2, 2)
        env = layout.envelope
        inside = layout.tile_for(env.minx + 0.1, env.miny + 0.1)
        assert inside == 0
        assert layout.tile_for(env.minx - 90, env.miny - 90) == 0
        assert (
            layout.tile_for(env.maxx + 90, env.maxy + 90)
            == len(layout) - 1
        )

    def test_tiles_for_bbox_prunes(self):
        layout = TileLayout(2, 2)
        env = layout.envelope
        midx = (env.minx + env.maxx) / 2
        midy = (env.miny + env.maxy) / 2
        assert layout.tiles_for_bbox(None) == [0, 1, 2, 3]
        west = Envelope(env.minx, env.miny, midx - 0.01, env.maxy)
        assert layout.tiles_for_bbox(west) == [0, 2]
        corner = Envelope(
            env.minx, env.miny, midx - 0.01, midy - 0.01
        )
        assert layout.tiles_for_bbox(corner) == [0]
        outside = Envelope(0.0, 0.0, 1.0, 1.0)
        assert layout.tiles_for_bbox(outside) == []

    def test_invalid_layouts_rejected(self):
        with pytest.raises(ValueError):
            TileLayout(0, 1)
        with pytest.raises(ValueError):
            TileLayout.for_shards(0)


class TestPartition:
    def test_partitions_disjointly_cover_the_snapshot(self):
        layout = TileLayout(2, 2)
        env = layout.envelope
        midx = (env.minx + env.maxx) / 2
        engine = _engine_with_points(
            [
                (env.minx + 0.1, env.miny + 0.1),  # tile 0
                (midx + 0.1, env.miny + 0.1),  # tile 1
                (env.minx + 0.1, env.maxy - 0.1),  # tile 2
            ]
        )
        snapshot = engine.graph.snapshot()
        parts = partition_snapshot(snapshot, layout)
        assert set(parts) == {0, 1, 2, 3, CATCH_ALL}
        union = set()
        total = 0
        for graph in parts.values():
            triples = set(graph.triples())
            assert not (union & triples), "partitions overlap"
            union |= triples
            total += len(graph)
        assert union == set(snapshot.triples())
        assert total == len(snapshot)

    def test_subject_star_is_never_split(self):
        layout = TileLayout(2, 2)
        env = layout.envelope
        engine = _engine_with_points([(env.minx + 0.1, env.miny + 0.1)])
        parts = partition_snapshot(engine.graph.snapshot(), layout)
        # The geometric subject's whole star (geometry + label) lands
        # in one tile; the geometry-free subject goes catch-all.
        assert len(parts[0]) == 2
        assert len(parts[CATCH_ALL]) == 1

    def test_out_of_grid_geometry_is_clamped_not_dropped(self):
        layout = TileLayout(2, 2)
        engine = _engine_with_points([(-170.0, -80.0)])
        parts = partition_snapshot(engine.graph.snapshot(), layout)
        assert len(parts[0]) == 2  # clamped to the south-west tile


class TestShardManager:
    def test_publish_fans_out_in_lockstep(self):
        service = _FakeService()
        layout = TileLayout(2, 2)
        env = layout.envelope
        engine = _engine_with_points([(env.minx + 0.1, env.miny + 0.1)])
        manager = ShardManager(service, layout=layout)
        assert manager.shard_ids == [0, 1, 2, 3, CATCH_ALL]
        service.publisher.publish(engine)
        for sid in manager.shard_ids:
            latest = manager.shards[sid].publisher.latest()
            assert latest is not None
            assert latest.sequence == 1
        # The tile shard answers with the partitioned data.
        tile_latest = manager.shards[0].publisher.latest()
        assert len(tile_latest) == 2
        assert len(manager.shards[CATCH_ALL].publisher.latest()) == 1

    def test_lockstep_republish_survives_raising_subscriber(self):
        """A broken subscriber registered *before* the shard manager
        must not break the lockstep repartition fan-out — publisher
        callbacks are isolated (satellite of the subscription work)."""
        service = _FakeService()
        layout = TileLayout(2, 2)
        env = layout.envelope
        engine = _engine_with_points([(env.minx + 0.1, env.miny + 0.1)])

        def broken(published):
            raise RuntimeError("subscriber bug before the manager")

        service.publisher.subscribe(broken)
        manager = ShardManager(service, layout=layout)
        service.publisher.publish(engine)
        service.publisher.publish(engine)
        for sid in manager.shard_ids:
            latest = manager.shards[sid].publisher.latest()
            assert latest is not None
            assert latest.sequence == 2

    def test_pre_published_state_is_adopted_at_construction(self):
        service = _FakeService()
        layout = TileLayout(2, 1)
        engine = _engine_with_points([])
        service.publisher.publish(engine)
        manager = ShardManager(service, layout=layout)
        # The manager replays the already-latest publication.
        assert all(
            manager.shards[sid].publisher.latest() is not None
            for sid in manager.shard_ids
        )

    def test_token_is_composite_and_monotonic(self):
        service = _FakeService()
        layout = TileLayout(2, 1)
        manager = ShardManager(service, layout=layout)
        unpublished = manager.token()
        assert unpublished.parts == ((0, 0),) * 3
        engine = _engine_with_points([])
        service.publisher.publish(engine)
        first = manager.token()
        assert unpublished.is_behind(first)
        service.publisher.publish(engine)
        second = manager.token()
        assert first.is_behind(second)
        assert not second.is_behind(first)
        # Wire round-trip preserves ordering.
        assert ConsistencyToken.decode(first.encode()).is_behind(
            ConsistencyToken.decode(second.encode())
        )

    def test_token_monotonic_across_restarts(self):
        # Run 1: two publications, client stores the token.
        service = _FakeService()
        layout = TileLayout(2, 1)
        manager = ShardManager(service, layout=layout)
        engine = _engine_with_points([])
        service.publisher.publish(engine)
        service.publisher.publish(engine)
        stored = manager.token()
        # "Restart": a recovered service seeds its publisher with the
        # last pre-crash sequence; the new manager seeds its shard
        # publishers from it, so the composite token never regresses.
        recovered = _FakeService(
            start_sequence=service.publisher.sequence
        )
        manager2 = ShardManager(recovered, layout=layout)
        recovered.publisher.publish(engine)
        resumed = manager2.token()
        assert stored.is_behind(resumed)
        assert not resumed.is_behind(stored)

    def test_tokens_across_topologies_are_incomparable(self):
        two = ConsistencyToken(((1, 1), (1, 1)))
        three = ConsistencyToken(((1, 1), (1, 1), (1, 1)))
        with pytest.raises(ValueError, match="topologies"):
            two.is_behind(three)

    def test_bbox_shards_never_include_catch_all(self):
        service = _FakeService()
        manager = ShardManager(service, shards=4)
        assert CATCH_ALL not in manager.shard_ids_for_bbox(None)
        env = manager.layout.envelope
        west = Envelope(
            env.minx,
            env.miny,
            (env.minx + env.maxx) / 2 - 0.01,
            env.maxy,
        )
        pruned = manager.shard_ids_for_bbox(west)
        assert pruned == [0, 2]

    def test_duplicate_publication_delivery_is_ignored(self):
        service = _FakeService()
        manager = ShardManager(service, shards=2)
        engine = _engine_with_points([])
        published = service.publisher.publish(engine)
        before = manager.token()
        manager._on_publish(published)  # replayed delivery
        assert manager.token() == before


SOURCE_POOL = ("polar", "weather", "viirs")


def _multi_source_star(
    graph,
    n: int,
    lon: float,
    lat: float,
    *,
    confidence: float,
    sources,
    static: bool,
    confirmed: bool,
) -> URI:
    """One federated hotspot star, shaped exactly like the acquisition
    chain writes it (square footprint, crossConfirmedBy per source,
    matchesStaticSource for refinery matches)."""
    node = URI(NOA.base + f"Hotspot_prop_{n}")
    half = 0.01
    ring = (
        f"{lon - half} {lat - half}, {lon + half} {lat - half}, "
        f"{lon + half} {lat + half}, {lon - half} {lat + half}, "
        f"{lon - half} {lat - half}"
    )
    graph.add(node, RDF.type, NOA.Hotspot)
    graph.add(
        node,
        NOA.hasAcquisitionDateTime,
        Literal(
            "2007-08-24T13:00:00", datatype=XSD.base + "dateTime"
        ),
    )
    graph.add(
        node,
        NOA.hasConfidence,
        Literal(repr(confidence), datatype=XSD.base + "float"),
    )
    graph.add(
        node,
        STRDF.hasGeometry,
        Literal(f"POLYGON (({ring}))", datatype=WKT),
    )
    if confirmed:
        graph.add(node, NOA.hasConfirmation, CONFIRMATION_CONFIRMED)
    for source in sources:
        graph.add(node, NOA.crossConfirmedBy, source_uri(source))
    if static:
        graph.add(
            node,
            NOA.matchesStaticSource,
            URI(NOA.base + f"StaticSite_{n}"),
        )
    return node


def _federated_store(seed: int, layout: TileLayout):
    """A Strabon holding seeded-random multi-source hotspot stars.

    Returns (engine, expectations) where expectations maps each
    hotspot URI string to the tile index its footprint centre owns.
    At least one star is cross-confirmed by two feeds and at least
    one matches a static site, so the properties below actually
    exercise the federation triples.
    """
    rng = random.Random(seed)
    engine = Strabon()
    env = layout.envelope
    expectations = {}
    count = rng.randint(5, 14)
    for n in range(count):
        lon = rng.uniform(env.minx + 0.05, env.maxx - 0.05)
        lat = rng.uniform(env.miny + 0.05, env.maxy - 0.05)
        if n == 0:
            sources = ("polar", "weather")
            static = False
        elif n == 1:
            sources = ("polar",)
            static = True
        else:
            sources = tuple(
                sorted(
                    rng.sample(SOURCE_POOL, rng.randint(0, 3))
                )
            )
            static = rng.random() < 0.25
        node = _multi_source_star(
            engine.graph,
            n,
            lon,
            lat,
            confidence=rng.uniform(0.3, 1.0),
            sources=sources,
            static=static,
            confirmed=len(sources) >= 2,
        )
        expectations[node.value] = layout.tile_for(lon, lat)
    # Non-geometric company for the catch-all shard.
    engine.graph.add(
        URI(NOA.base + "catalogue"), LABEL, Literal("aux")
    )
    return engine, expectations


def _features_by_uri(collection):
    return {
        f["properties"]["hotspot"]: json.dumps(f, sort_keys=True)
        for f in collection["features"]
    }


class TestMultiSourceStars:
    """Seeded property tests: federated hotspot stars (geometry +
    crossConfirmedBy + matchesStaticSource) shard like any other
    subject star — never split, owned by the footprint-centre tile —
    and scatter-gather over the shards serves exactly the single-store
    answer, provenance included (ISSUE 10 satellite)."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("shards", [2, 4, 6])
    def test_star_lands_whole_in_the_centroid_tile(
        self, seed, shards
    ):
        layout = TileLayout.for_shards(shards)
        engine, expectations = _federated_store(seed, layout)
        snapshot = engine.graph.snapshot()
        parts = partition_snapshot(snapshot, layout)
        star_sizes = {
            uri: sum(
                1
                for s, _p, _o in snapshot.triples()
                if s.value == uri
            )
            for uri in expectations
        }
        for uri, tile in expectations.items():
            holders = [
                sid
                for sid, graph in parts.items()
                if any(
                    s.value == uri
                    for s, _p, _o in graph.triples()
                )
            ]
            assert holders == [tile], (
                f"star {uri} split across {holders}, "
                f"expected tile {tile}"
            )
            held = sum(
                1
                for s, _p, _o in parts[tile].triples()
                if s.value == uri
            )
            assert held == star_sizes[uri]
        # Disjoint cover, as for any partitioning.
        union = set()
        for graph in parts.values():
            triples = set(graph.triples())
            assert not (union & triples)
            union |= triples
        assert union == set(snapshot.triples())

    @pytest.mark.parametrize("seed", range(6))
    def test_scatter_gather_preserves_provenance(self, seed):
        """The multiset union of per-shard /hotspots answers equals
        the single-store answer byte-for-byte — including the fused
        source lists and static flags, which live in the same subject
        star as the geometry."""
        layout = TileLayout.for_shards(4)
        engine, _ = _federated_store(seed, layout)
        whole = SnapshotPublisher().publish(engine)
        want = _features_by_uri(query_hotspots(whole))
        assert any(
            json.loads(f)["properties"]["sources"]
            for f in want.values()
        )
        assert any(
            json.loads(f)["properties"]["static"]
            for f in want.values()
        )
        parts = partition_snapshot(
            engine.graph.snapshot(), layout
        )
        got = {}
        for sid, graph in parts.items():
            published = SnapshotPublisher().publish(Strabon(graph))
            for uri, blob in _features_by_uri(
                query_hotspots(published)
            ).items():
                assert uri not in got, "hotspot served twice"
                got[uri] = blob
        assert got == want

    @pytest.mark.parametrize("seed", range(4))
    def test_bbox_fanout_is_exact_for_federated_stars(self, seed):
        layout = TileLayout.for_shards(4)
        engine, _ = _federated_store(seed, layout)
        service = _FakeService()
        manager = ShardManager(service, layout=layout)
        service.publisher.publish(engine)
        env = layout.envelope
        rng = random.Random(seed * 17 + 3)
        for _ in range(5):
            x = sorted(
                rng.uniform(env.minx, env.maxx) for _ in range(2)
            )
            y = sorted(
                rng.uniform(env.miny, env.maxy) for _ in range(2)
            )
            bbox = Envelope(x[0], y[0], x[1], y[1])
            whole = _features_by_uri(
                query_hotspots(
                    service.publisher.require_latest(), bbox=bbox
                )
            )
            gathered = {}
            for sid in manager.shard_ids_for_bbox(bbox):
                latest = manager.shards[sid].publisher.latest()
                for uri, blob in _features_by_uri(
                    query_hotspots(latest, bbox=bbox)
                ).items():
                    assert uri not in gathered
                    gathered[uri] = blob
            assert gathered == whole

    def test_confirmed_filter_composes_across_shards(self):
        layout = TileLayout.for_shards(4)
        engine, _ = _federated_store(0, layout)
        whole = SnapshotPublisher().publish(engine)
        for flags in (
            {"confirmed": True},
            {"static": False},
            {"confirmed": True, "static": False},
        ):
            want = _features_by_uri(
                query_hotspots(whole, **flags)
            )
            parts = partition_snapshot(
                engine.graph.snapshot(), layout
            )
            got = {}
            for graph in parts.values():
                published = SnapshotPublisher().publish(
                    Strabon(graph)
                )
                got.update(
                    _features_by_uri(
                        query_hotspots(published, **flags)
                    )
                )
            assert got == want


class TestTokenCodec:
    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            ConsistencyToken.decode("12.34")
        with pytest.raises(ValueError):
            ConsistencyToken.decode("v1:spam.eggs")
        with pytest.raises(ValueError):
            ConsistencyToken.decode("v1:")

    def test_encode_decode_round_trip(self):
        token = ConsistencyToken(((12, 340), (12, 17), (9, 0)))
        assert token.encode() == "v1:12.340-12.17-9.0"
        assert ConsistencyToken.decode(token.encode()) == token
