"""Spatial sharding: tile layout, partitioning, composite tokens."""

from __future__ import annotations

import pytest

from repro.geometry import Envelope
from repro.rdf.term import Literal, URI
from repro.serve import (
    CATCH_ALL,
    ConsistencyToken,
    ShardManager,
    SnapshotPublisher,
    TileLayout,
    partition_snapshot,
)
from repro.stsparql import Strabon

WKT = "http://strdf.di.uoa.gr/ontology#WKT"
GEOM = URI("http://strdf.di.uoa.gr/ontology#hasGeometry")
LABEL = URI("http://www.w3.org/2000/01/rdf-schema#label")


def _point(n: int) -> URI:
    return URI(f"http://example.org/point/{n}")


def _engine_with_points(points) -> Strabon:
    """A Strabon whose graph holds one geometric star per point plus a
    couple of geometry-free (catch-all) subjects."""
    engine = Strabon()
    for n, (lon, lat) in enumerate(points):
        engine.graph.add(
            _point(n),
            GEOM,
            Literal(f"POINT ({lon} {lat})", datatype=WKT),
        )
        engine.graph.add(_point(n), LABEL, Literal(f"p{n}"))
    aux = URI("http://example.org/aux")
    engine.graph.add(aux, LABEL, Literal("no geometry here"))
    return engine


class _FakeService:
    """The duck-typed minimum a ShardManager needs."""

    def __init__(self, start_sequence: int = 0) -> None:
        self.publisher = SnapshotPublisher(start_sequence=start_sequence)


class TestTileLayout:
    @pytest.mark.parametrize(
        "shards,expected",
        [(1, (1, 1)), (2, (2, 1)), (4, (2, 2)), (6, (3, 2)), (5, (5, 1))],
    )
    def test_for_shards_is_most_square(self, shards, expected):
        layout = TileLayout.for_shards(shards)
        assert (layout.tiles_x, layout.tiles_y) == expected
        assert len(layout) == shards

    def test_tiles_cover_the_grid_envelope_disjointly(self):
        layout = TileLayout(3, 2)
        # Row-major indices, edges shared, area partitioned.
        assert [t.index for t in layout.tiles] == list(range(6))
        total = sum(
            (t.envelope.maxx - t.envelope.minx)
            * (t.envelope.maxy - t.envelope.miny)
            for t in layout.tiles
        )
        env = layout.envelope
        assert total == pytest.approx(
            (env.maxx - env.minx) * (env.maxy - env.miny)
        )

    def test_tile_for_clamps_out_of_grid_points(self):
        layout = TileLayout(2, 2)
        env = layout.envelope
        inside = layout.tile_for(env.minx + 0.1, env.miny + 0.1)
        assert inside == 0
        assert layout.tile_for(env.minx - 90, env.miny - 90) == 0
        assert (
            layout.tile_for(env.maxx + 90, env.maxy + 90)
            == len(layout) - 1
        )

    def test_tiles_for_bbox_prunes(self):
        layout = TileLayout(2, 2)
        env = layout.envelope
        midx = (env.minx + env.maxx) / 2
        midy = (env.miny + env.maxy) / 2
        assert layout.tiles_for_bbox(None) == [0, 1, 2, 3]
        west = Envelope(env.minx, env.miny, midx - 0.01, env.maxy)
        assert layout.tiles_for_bbox(west) == [0, 2]
        corner = Envelope(
            env.minx, env.miny, midx - 0.01, midy - 0.01
        )
        assert layout.tiles_for_bbox(corner) == [0]
        outside = Envelope(0.0, 0.0, 1.0, 1.0)
        assert layout.tiles_for_bbox(outside) == []

    def test_invalid_layouts_rejected(self):
        with pytest.raises(ValueError):
            TileLayout(0, 1)
        with pytest.raises(ValueError):
            TileLayout.for_shards(0)


class TestPartition:
    def test_partitions_disjointly_cover_the_snapshot(self):
        layout = TileLayout(2, 2)
        env = layout.envelope
        midx = (env.minx + env.maxx) / 2
        engine = _engine_with_points(
            [
                (env.minx + 0.1, env.miny + 0.1),  # tile 0
                (midx + 0.1, env.miny + 0.1),  # tile 1
                (env.minx + 0.1, env.maxy - 0.1),  # tile 2
            ]
        )
        snapshot = engine.graph.snapshot()
        parts = partition_snapshot(snapshot, layout)
        assert set(parts) == {0, 1, 2, 3, CATCH_ALL}
        union = set()
        total = 0
        for graph in parts.values():
            triples = set(graph.triples())
            assert not (union & triples), "partitions overlap"
            union |= triples
            total += len(graph)
        assert union == set(snapshot.triples())
        assert total == len(snapshot)

    def test_subject_star_is_never_split(self):
        layout = TileLayout(2, 2)
        env = layout.envelope
        engine = _engine_with_points([(env.minx + 0.1, env.miny + 0.1)])
        parts = partition_snapshot(engine.graph.snapshot(), layout)
        # The geometric subject's whole star (geometry + label) lands
        # in one tile; the geometry-free subject goes catch-all.
        assert len(parts[0]) == 2
        assert len(parts[CATCH_ALL]) == 1

    def test_out_of_grid_geometry_is_clamped_not_dropped(self):
        layout = TileLayout(2, 2)
        engine = _engine_with_points([(-170.0, -80.0)])
        parts = partition_snapshot(engine.graph.snapshot(), layout)
        assert len(parts[0]) == 2  # clamped to the south-west tile


class TestShardManager:
    def test_publish_fans_out_in_lockstep(self):
        service = _FakeService()
        layout = TileLayout(2, 2)
        env = layout.envelope
        engine = _engine_with_points([(env.minx + 0.1, env.miny + 0.1)])
        manager = ShardManager(service, layout=layout)
        assert manager.shard_ids == [0, 1, 2, 3, CATCH_ALL]
        service.publisher.publish(engine)
        for sid in manager.shard_ids:
            latest = manager.shards[sid].publisher.latest()
            assert latest is not None
            assert latest.sequence == 1
        # The tile shard answers with the partitioned data.
        tile_latest = manager.shards[0].publisher.latest()
        assert len(tile_latest) == 2
        assert len(manager.shards[CATCH_ALL].publisher.latest()) == 1

    def test_lockstep_republish_survives_raising_subscriber(self):
        """A broken subscriber registered *before* the shard manager
        must not break the lockstep repartition fan-out — publisher
        callbacks are isolated (satellite of the subscription work)."""
        service = _FakeService()
        layout = TileLayout(2, 2)
        env = layout.envelope
        engine = _engine_with_points([(env.minx + 0.1, env.miny + 0.1)])

        def broken(published):
            raise RuntimeError("subscriber bug before the manager")

        service.publisher.subscribe(broken)
        manager = ShardManager(service, layout=layout)
        service.publisher.publish(engine)
        service.publisher.publish(engine)
        for sid in manager.shard_ids:
            latest = manager.shards[sid].publisher.latest()
            assert latest is not None
            assert latest.sequence == 2

    def test_pre_published_state_is_adopted_at_construction(self):
        service = _FakeService()
        layout = TileLayout(2, 1)
        engine = _engine_with_points([])
        service.publisher.publish(engine)
        manager = ShardManager(service, layout=layout)
        # The manager replays the already-latest publication.
        assert all(
            manager.shards[sid].publisher.latest() is not None
            for sid in manager.shard_ids
        )

    def test_token_is_composite_and_monotonic(self):
        service = _FakeService()
        layout = TileLayout(2, 1)
        manager = ShardManager(service, layout=layout)
        unpublished = manager.token()
        assert unpublished.parts == ((0, 0),) * 3
        engine = _engine_with_points([])
        service.publisher.publish(engine)
        first = manager.token()
        assert unpublished.is_behind(first)
        service.publisher.publish(engine)
        second = manager.token()
        assert first.is_behind(second)
        assert not second.is_behind(first)
        # Wire round-trip preserves ordering.
        assert ConsistencyToken.decode(first.encode()).is_behind(
            ConsistencyToken.decode(second.encode())
        )

    def test_token_monotonic_across_restarts(self):
        # Run 1: two publications, client stores the token.
        service = _FakeService()
        layout = TileLayout(2, 1)
        manager = ShardManager(service, layout=layout)
        engine = _engine_with_points([])
        service.publisher.publish(engine)
        service.publisher.publish(engine)
        stored = manager.token()
        # "Restart": a recovered service seeds its publisher with the
        # last pre-crash sequence; the new manager seeds its shard
        # publishers from it, so the composite token never regresses.
        recovered = _FakeService(
            start_sequence=service.publisher.sequence
        )
        manager2 = ShardManager(recovered, layout=layout)
        recovered.publisher.publish(engine)
        resumed = manager2.token()
        assert stored.is_behind(resumed)
        assert not resumed.is_behind(stored)

    def test_tokens_across_topologies_are_incomparable(self):
        two = ConsistencyToken(((1, 1), (1, 1)))
        three = ConsistencyToken(((1, 1), (1, 1), (1, 1)))
        with pytest.raises(ValueError, match="topologies"):
            two.is_behind(three)

    def test_bbox_shards_never_include_catch_all(self):
        service = _FakeService()
        manager = ShardManager(service, shards=4)
        assert CATCH_ALL not in manager.shard_ids_for_bbox(None)
        env = manager.layout.envelope
        west = Envelope(
            env.minx,
            env.miny,
            (env.minx + env.maxx) / 2 - 0.01,
            env.maxy,
        )
        pruned = manager.shard_ids_for_bbox(west)
        assert pruned == [0, 2]

    def test_duplicate_publication_delivery_is_ignored(self):
        service = _FakeService()
        manager = ShardManager(service, shards=2)
        engine = _engine_with_points([])
        published = service.publisher.publish(engine)
        before = manager.token()
        manager._on_publish(published)  # replayed delivery
        assert manager.token() == before


class TestTokenCodec:
    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            ConsistencyToken.decode("12.34")
        with pytest.raises(ValueError):
            ConsistencyToken.decode("v1:spam.eggs")
        with pytest.raises(ValueError):
            ConsistencyToken.decode("v1:")

    def test_encode_decode_round_trip(self):
        token = ConsistencyToken(((12, 340), (12, 17), (9, 0)))
        assert token.encode() == "v1:12.340-12.17-9.0"
        assert ConsistencyToken.decode(token.encode()) == token
