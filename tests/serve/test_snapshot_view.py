"""Snapshot-aware stSPARQL execution (:class:`SnapshotView`)."""

from __future__ import annotations

import pytest

from repro.errors import SnapshotWriteError
from repro.rdf import NOA, RDF, URI
from repro.stsparql import SnapshotView, Strabon

PREFIX = (
    "PREFIX noa: "
    "<http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
)
SELECT_HOTSPOTS = PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot }"
ASK_HOTSPOTS = PREFIX + "ASK { ?h a noa:Hotspot }"
INSERT_ONE = (
    PREFIX + "INSERT DATA { noa:sneaky a noa:Hotspot . }"
)
SPATIAL = PREFIX + (
    "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
    "SELECT ?a WHERE { ?a strdf:hasGeometry ?g . "
    'FILTER(strdf:anyInteract(?g, "POINT(24.0 38.0)")) }'
)


@pytest.fixture()
def engine() -> Strabon:
    strabon = Strabon()
    for i in range(4):
        strabon.update(
            PREFIX + f"INSERT DATA {{ noa:h{i} a noa:Hotspot . }}"
        )
    return strabon


def test_view_matches_live_results(engine):
    live = engine.select(SELECT_HOTSPOTS)
    view = engine.snapshot_view()
    frozen = view.select(SELECT_HOTSPOTS)
    assert sorted(map(repr, frozen)) == sorted(map(repr, live))
    assert view.ask(ASK_HOTSPOTS) is True


def test_view_is_cached_per_generation(engine):
    view = engine.snapshot_view()
    assert engine.snapshot_view() is view
    engine.update(INSERT_ONE)
    fresh = engine.snapshot_view()
    assert fresh is not view
    assert fresh.generation > view.generation


def test_old_view_is_isolated_from_later_updates(engine):
    view = engine.snapshot_view()
    before = len(view.select(SELECT_HOTSPOTS))
    engine.update(INSERT_ONE)
    assert len(view.select(SELECT_HOTSPOTS)) == before
    assert len(engine.snapshot_view().select(SELECT_HOTSPOTS)) == (
        before + 1
    )


def test_view_refuses_updates(engine):
    view = engine.snapshot_view()
    with pytest.raises(SnapshotWriteError):
        view.query(INSERT_ONE)
    # Nothing leaked into the live store either.
    assert (URI(NOA.base + "sneaky"), RDF.type, NOA.Hotspot) not in (
        engine.graph
    )


def test_view_shares_the_engines_plan_cache(engine):
    view = engine.snapshot_view()
    assert view.plan_cache is engine.plan_cache
    baseline = engine.plan_cache.stats().hits
    view.select(SELECT_HOTSPOTS)  # miss (first sighting of the text)
    view.select(SELECT_HOTSPOTS)  # hit
    engine.select(SELECT_HOTSPOTS)  # hit — shared with the writer too
    assert engine.plan_cache.stats().hits >= baseline + 2


def test_view_spatial_query_uses_frozen_rtree(strabon_with_aux):
    # The row-wise engine prunes through the R-tree (the columnar one
    # uses vectorised envelope comparison and never needs it), so force
    # it to observe the frozen index being built on the view.
    view = SnapshotView(
        strabon_with_aux.graph.snapshot(),
        query_engine="interpreted",
    )
    rows = view.select(SPATIAL)
    live = strabon_with_aux.select(SPATIAL)
    assert sorted(map(repr, rows)) == sorted(map(repr, live))
    # The R-tree was built lazily, once, on the snapshot.
    assert view._rtree_built is True
    assert view._rtree is not None


def test_standalone_view_over_a_bare_snapshot(engine):
    snap = engine.graph.snapshot()
    view = SnapshotView(snap)
    assert len(view.select(SELECT_HOTSPOTS)) == 4
    assert view.plan_cache is not engine.plan_cache
