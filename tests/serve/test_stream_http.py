"""The subscription HTTP surface: /v1/subscriptions CRUD, SSE
streaming over /v1/stream, and cursor-based resume."""

from __future__ import annotations

import json

import pytest

from repro.serve import (
    ServeClient,
    ServeError,
    ShardManager,
    SnapshotPublisher,
    SseStream,
    SubscriptionEngine,
    SubscriptionError,
    serve_in_thread,
)
from repro.serve.router import RouterService
from repro.stsparql import Strabon

NOA = "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#"
WKT = "http://strdf.di.uoa.gr/ontology#WKT"


class _StandIn:
    """The duck-typed minimum the subscription HTTP surface needs:
    a store, a publisher, and a bound engine."""

    def __init__(self, state_dir=None):
        self.strabon = Strabon()
        self.publisher = SnapshotPublisher()
        self.subscriptions = SubscriptionEngine(state_dir=state_dir)
        self.subscriptions.bind(self.strabon, self.publisher)
        self.publisher.publish(self.strabon)
        self._n = 0

    def health(self):
        return {"status": "ok", "mode": "teleios"}

    def ingest_one(self, confidence=0.8):
        """One hotspot in, committed through the engine exactly the
        way the service write path sequences it.  The mutation goes
        through ``update`` so the engine's journal tee sees the delta."""
        self._n += 1
        subject = f"http://example.org/hotspot/{self._n}"
        lat = 38.0 + self._n * 0.01
        self.strabon.update(
            f"PREFIX noa: <{NOA}>\n"
            "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
            "INSERT DATA {\n"
            f"  <{subject}> a noa:Hotspot .\n"
            f'  <{subject}> strdf:hasGeometry "POINT (23.7 {lat})"'
            f"^^<{WKT}> .\n"
            f'  <{subject}> noa:hasConfidence "{confidence}" .\n'
            "}"
        )
        batch = self.subscriptions.process_commit(
            self.publisher.sequence + 1
        )
        self.publisher.publish(self.strabon)
        self.subscriptions.publish_batch(batch)
        return subject


@pytest.fixture()
def standin(tmp_path):
    service = _StandIn(state_dir=str(tmp_path / "subs"))
    yield service
    service.subscriptions.close()


@pytest.fixture()
def handle(standin):
    with serve_in_thread(standin) as h:
        yield h


@pytest.fixture()
def client(handle):
    return ServeClient.for_handle(handle)


class TestCrud:
    def test_register_list_get_delete(self, client):
        doc = client.subscribe({"kind": "filter", "min_confidence": 0.5})
        sub_id = doc["id"]
        assert doc["kind"] == "filter"
        assert doc["cursor"] == 0

        listing = client.subscriptions()
        assert listing["count"] == 1
        assert listing["subscriptions"][0]["id"] == sub_id

        fetched = client.subscription(sub_id)
        assert fetched["id"] == sub_id

        removed = client.unsubscribe(sub_id)
        assert removed["removed"] == sub_id
        assert client.subscriptions()["count"] == 0

    def test_invalid_subscription_is_422(self, client):
        with pytest.raises(SubscriptionError, match="bbox"):
            client.subscribe({"kind": "filter", "bbox": [1, 2, 3]})
        with pytest.raises(SubscriptionError, match="kind"):
            client.subscribe({"kind": "teleport"})

    def test_unknown_subscription_is_404(self, client):
        with pytest.raises(ServeError) as exc:
            client.subscription("sub-nope")
        assert exc.value.status == 404
        with pytest.raises(ServeError) as exc:
            client.unsubscribe("sub-nope")
        assert exc.value.status == 404
        with pytest.raises(ServeError) as exc:
            client.ack("sub-nope", 3)
        assert exc.value.status == 404

    def test_ack_is_monotonic_over_http(self, client):
        sub_id = client.subscribe({"kind": "filter"})["id"]
        assert client.ack(sub_id, 4)["cursor"] == 4
        assert client.ack(sub_id, 2)["cursor"] == 4  # regression ignored
        assert client.subscription(sub_id)["cursor"] == 4

    def test_stream_route_requires_get(self, client):
        with pytest.raises(ServeError) as exc:
            client._request("POST", "/v1/stream", body=b"{}")
        assert exc.value.status == 405


class TestStream:
    def test_live_notifications_arrive_over_sse(
        self, standin, client
    ):
        sub_id = client.subscribe({"kind": "filter"})["id"]
        with client.stream(sub_id, cursor=0, timeout=30.0) as stream:
            subject = standin.ingest_one()
            notif = next(
                e for e in stream.events()
                if e["event"] == "notification"
            )
            assert notif["data"]["subject"] == subject
            assert notif["data"]["subscription"] == sub_id
            marker = next(stream.events())
            assert marker["event"] == "batch"
            assert marker["id"] == notif["id"]

    def test_resume_from_cursor_misses_nothing_duplicates_nothing(
        self, standin, client
    ):
        sub_id = client.subscribe({"kind": "filter"})["id"]
        first = standin.ingest_one()
        second = standin.ingest_one()

        # First connection: read the first batch only, ack it.
        with client.stream(sub_id, cursor=0) as stream:
            events = stream.events()
            notif = next(
                e for e in events if e["event"] == "notification"
            )
            assert notif["data"]["subject"] == first
            client.ack(sub_id, notif["id"])

        # Reconnect without a cursor: the durable cursor takes over
        # and only the unacknowledged batch replays.
        with client.stream(sub_id) as stream:
            events = stream.events()
            notif = next(
                e for e in events if e["event"] == "notification"
            )
            assert notif["data"]["subject"] == second
            marker = next(events)
            assert marker["event"] == "batch"

        # An explicit cursor query param overrides the durable one.
        with client.stream(sub_id, cursor=0) as stream:
            subjects = []
            for event in stream.events():
                if event["event"] == "notification":
                    subjects.append(event["data"]["subject"])
                elif event["id"] == standin.publisher.sequence:
                    break
            assert subjects == [first, second]

    def test_stream_errors(self, client, handle):
        with pytest.raises(ServeError) as exc:
            client.stream("sub-nope")
        assert exc.value.status == 404
        host, port = handle.address
        import http.client as hc

        conn = hc.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", "/v1/stream")  # no subscription param
            response = conn.getresponse()
            assert response.status == 400
            json.loads(response.read())
        finally:
            conn.close()

    def test_last_event_id_header_resumes(self, standin, client):
        sub_id = client.subscribe({"kind": "filter"})["id"]
        standin.ingest_one()
        second = standin.ingest_one()
        host, port = client.host, client.port
        stream = SseStream(
            host,
            port,
            sub_id,
            timeout=10.0,
            headers={"Last-Event-ID": "2"},
        )
        with stream:
            notif = next(
                e for e in stream.events()
                if e["event"] == "notification"
            )
            assert notif["data"]["subject"] == second


class TestTopologies:
    def test_router_exposes_base_engine(self, standin):
        manager = ShardManager(standin, shards=2)
        routed = RouterService(manager)
        assert routed.subscriptions is standin.subscriptions

    def test_service_without_engine_is_404(self):
        class _Bare:
            publisher = SnapshotPublisher()
            strabon = Strabon()
            subscriptions = None

            def health(self):
                return {"status": "ok"}

        _Bare.publisher.publish(_Bare.strabon)
        with serve_in_thread(_Bare()) as h:
            client = ServeClient.for_handle(h)
            with pytest.raises(ServeError) as exc:
                client.subscriptions()
            assert exc.value.status == 404
            with pytest.raises(ServeError) as exc:
                client.stream("sub-x")
            assert exc.value.status == 404
