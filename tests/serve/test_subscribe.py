"""Subscription registry, validation and incremental evaluation."""

from __future__ import annotations

import pytest

from repro.geometry import Envelope
from repro.rdf.namespace import NOA
from repro.serve import SnapshotPublisher
from repro.serve.subscribe import (
    DANGER_CLASSES,
    Subscription,
    SubscriptionEngine,
    SubscriptionError,
    SubscriptionRegistry,
    danger_class,
    delta_from_ops,
    validate_standing_query,
)
from repro.stsparql import Strabon

PREFIX = (
    "PREFIX noa: "
    "<http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
    "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n"
)

WKT = "<http://strdf.di.uoa.gr/ontology#WKT>"


def _insert_hotspot(
    strabon: Strabon,
    n: int,
    lon: float,
    lat: float,
    confidence: float = 0.8,
    municipality: str = "http://example.org/muni/A",
) -> str:
    subject = f"http://example.org/hotspot/{n}"
    strabon.update(
        PREFIX
        + f"""INSERT DATA {{
            <{subject}> a noa:Hotspot .
            <{subject}> strdf:hasGeometry
                "POINT ({lon} {lat})"^^{WKT} .
            <{subject}> noa:hasConfidence "{confidence}" .
            <{subject}> noa:isInMunicipality <{municipality}> .
        }}"""
    )
    return subject


def _engine_on(strabon: Strabon) -> SubscriptionEngine:
    publisher = SnapshotPublisher()
    engine = SubscriptionEngine()
    engine.bind(strabon, publisher)
    publisher.publish(strabon)
    return engine


class TestValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(SubscriptionError):
            Subscription.from_dict({"kind": "nope"}, "x", 0)

    def test_rejects_bad_bbox(self):
        with pytest.raises(SubscriptionError):
            Subscription.from_dict(
                {"kind": "filter", "bbox": [1, 2, 3]}, "x", 0
            )

    def test_rejects_non_boolean_confirmed(self):
        with pytest.raises(SubscriptionError):
            Subscription.from_dict(
                {"kind": "filter", "confirmed": "yes"}, "x", 0
            )

    def test_fwi_min_class_must_be_named(self):
        with pytest.raises(SubscriptionError):
            Subscription.from_dict(
                {"kind": "fwi", "min_class": "apocalyptic"}, "x", 0
            )
        sub = Subscription.from_dict(
            {"kind": "fwi", "min_class": "extreme"}, "x", 0
        )
        assert sub.min_class == DANGER_CLASSES.index("extreme")

    def test_standing_query_must_be_plain_select(self):
        validate_standing_query(
            PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot }"
        )
        with pytest.raises(SubscriptionError):
            validate_standing_query(
                PREFIX + "ASK { ?h a noa:Hotspot }"
            )

    def test_standing_query_rejects_modifiers_and_aggregates(self):
        with pytest.raises(SubscriptionError):
            validate_standing_query(
                PREFIX
                + "SELECT ?h WHERE { ?h a noa:Hotspot } LIMIT 5"
            )
        with pytest.raises(SubscriptionError):
            validate_standing_query(
                PREFIX
                + "SELECT (COUNT(?h) AS ?n) WHERE "
                + "{ ?h a noa:Hotspot }"
            )

    def test_standing_query_requires_h_variable(self):
        with pytest.raises(SubscriptionError):
            validate_standing_query(
                PREFIX + "SELECT ?x WHERE { ?x a noa:Hotspot }"
            )

    def test_filter_subscriptions_take_no_query(self):
        with pytest.raises(SubscriptionError):
            Subscription.from_dict(
                {"kind": "filter", "query": "SELECT ?h WHERE {}"},
                "x",
                0,
            )

    def test_round_trips_through_dict(self):
        sub = Subscription.from_dict(
            {
                "kind": "filter",
                "bbox": [20.0, 36.0, 25.0, 40.0],
                "min_confidence": 0.5,
                "confirmed": True,
            },
            "abc",
            7,
        )
        doc = sub.to_dict()
        again = Subscription.from_dict(
            doc, doc["id"], doc["created_sequence"]
        )
        assert again == sub


class TestDangerClass:
    @pytest.mark.parametrize(
        "score,name",
        [
            (0.0, "low"),
            (0.49, "low"),
            (0.5, "moderate"),
            (1.5, "high"),
            (3.0, "very-high"),
            (5.0, "extreme"),
            (99.0, "extreme"),
        ],
    )
    def test_thresholds(self, score, name):
        assert DANGER_CLASSES[danger_class(score)] == name


class TestRegistry:
    def _sub(self, n: int, bbox=None) -> Subscription:
        return Subscription.from_dict(
            {"kind": "filter", "bbox": bbox}, f"sub{n}", 0
        )

    def test_point_probe_finds_only_covering_geofences(self):
        registry = SubscriptionRegistry()
        registry.add_many(
            [
                self._sub(0, [0.0, 0.0, 10.0, 10.0]),
                self._sub(1, [20.0, 20.0, 30.0, 30.0]),
                self._sub(2, None),  # global — always a candidate
            ]
        )
        hits = {
            s.id for s in registry.geofence_candidates(5.0, 5.0)
        }
        assert hits == {"sub0", "sub2"}

    def test_removal_tombstones_until_rebuild(self):
        registry = SubscriptionRegistry()
        registry.add_many(
            [
                self._sub(n, [0.0, 0.0, 10.0, 10.0])
                for n in range(3)
            ]
        )
        assert registry.remove("sub1")
        assert not registry.remove("sub1")
        hits = {
            s.id for s in registry.geofence_candidates(5.0, 5.0)
        }
        assert hits == {"sub0", "sub2"}

    def test_pending_inserts_are_probed_before_rebuild(self):
        registry = SubscriptionRegistry()
        registry.add(self._sub(0, [0.0, 0.0, 10.0, 10.0]))
        hits = {
            s.id for s in registry.geofence_candidates(5.0, 5.0)
        }
        assert hits == {"sub0"}

    def test_duplicate_ids_are_refused(self):
        registry = SubscriptionRegistry()
        registry.add(self._sub(0))
        with pytest.raises(SubscriptionError):
            registry.add(self._sub(0))

    def test_counts_by_kind(self):
        registry = SubscriptionRegistry()
        registry.add(self._sub(0))
        registry.add(
            Subscription.from_dict(
                {"kind": "fwi", "min_class": "low"}, "f", 0
            )
        )
        assert registry.counts() == {
            "filter": 1,
            "stsparql": 0,
            "fwi": 1,
        }


class TestDeltaExtraction:
    def test_collects_subjects_and_municipalities(self):
        from repro.durable.codec import OP_ADD, OP_REMOVE
        from repro.rdf.term import URI

        s = URI("http://example.org/h1")
        m = URI("http://example.org/muni/A")
        ops = [
            (OP_ADD, (s, NOA.hasConfidence, m)),
            (OP_REMOVE, (s, NOA.isInMunicipality, m)),
        ]
        delta = delta_from_ops(ops)
        assert delta.subjects == ("http://example.org/h1",)
        assert delta.municipalities == ("http://example.org/muni/A",)
        assert not delta.full_rescan

    def test_clear_forces_full_rescan(self):
        from repro.durable.codec import OP_CLEAR

        delta = delta_from_ops([(OP_CLEAR, None)])
        assert delta.full_rescan


class TestEngine:
    def test_filter_subscription_notifies_on_new_hotspot(self):
        strabon = Strabon()
        engine = _engine_on(strabon)
        sub = engine.register(
            {"kind": "filter", "min_confidence": 0.5}
        )
        subject = _insert_hotspot(strabon, 1, 23.7, 38.0)
        batch = engine.process_commit(2)
        keys = {
            (d["subscription"], d["subject"])
            for d in batch.notifications
        }
        assert (sub.id, subject) in keys

    def test_notification_is_exactly_once_per_subject(self):
        strabon = Strabon()
        engine = _engine_on(strabon)
        engine.register({"kind": "filter"})
        _insert_hotspot(strabon, 1, 23.7, 38.0)
        first = engine.process_commit(2)
        assert len(first.notifications) == 1
        # Touch the same subject again — already notified, no repeat.
        strabon.update(
            PREFIX
            + 'INSERT DATA { <http://example.org/hotspot/1> '
            + 'noa:hasConfidence "0.9" . }'
        )
        second = engine.process_commit(3)
        assert second.notifications == ()

    def test_priming_suppresses_pre_existing_matches(self):
        strabon = Strabon()
        _insert_hotspot(strabon, 1, 23.7, 38.0)
        engine = _engine_on(strabon)  # hotspot already published
        engine.register({"kind": "filter"})
        strabon.update(
            PREFIX
            + 'INSERT DATA { <http://example.org/hotspot/1> '
            + 'noa:hasConfidence "0.9" . }'
        )
        batch = engine.process_commit(2)
        assert batch.notifications == ()  # it matched before "now"

    def test_geofence_excludes_outside_hotspots(self):
        strabon = Strabon()
        engine = _engine_on(strabon)
        engine.register(
            {"kind": "filter", "bbox": [20.0, 36.0, 25.0, 40.0]}
        )
        _insert_hotspot(strabon, 1, 23.0, 38.0)  # inside
        _insert_hotspot(strabon, 2, 5.0, 5.0)  # outside
        batch = engine.process_commit(2)
        subjects = {d["subject"] for d in batch.notifications}
        assert subjects == {"http://example.org/hotspot/1"}

    def test_stsparql_standing_query_binds_h_per_subject(self):
        strabon = Strabon()
        engine = _engine_on(strabon)
        sub = engine.register(
            {
                "kind": "stsparql",
                "query": PREFIX
                + "SELECT ?h WHERE { ?h a noa:Hotspot . "
                + "?h noa:hasConfidence ?c . "
                + 'FILTER(?c >= "0.7") }',
            }
        )
        _insert_hotspot(strabon, 1, 23.0, 38.0, confidence=0.9)
        _insert_hotspot(strabon, 2, 23.1, 38.1, confidence=0.3)
        batch = engine.process_commit(2)
        mine = [
            d
            for d in batch.notifications
            if d["subscription"] == sub.id
        ]
        assert [d["subject"] for d in mine] == [
            "http://example.org/hotspot/1"
        ]

    def test_fwi_fires_on_class_transition_only(self):
        strabon = Strabon()
        engine = _engine_on(strabon)
        sub = engine.register({"kind": "fwi", "min_class": "low"})
        _insert_hotspot(strabon, 1, 23.0, 38.0, confidence=0.4)
        first = engine.process_commit(2)
        fwi = [
            d for d in first.notifications if d["kind"] == "fwi"
        ]
        assert fwi == []  # 0.4 is still "low" — no transition
        _insert_hotspot(strabon, 2, 23.1, 38.1, confidence=0.4)
        second = engine.process_commit(3)
        fwi = [
            d for d in second.notifications if d["kind"] == "fwi"
        ]
        assert len(fwi) == 1
        assert fwi[0]["subscription"] == sub.id
        assert fwi[0]["payload"]["danger_class"] == "moderate"
        assert fwi[0]["payload"]["previous_class"] == "low"

    def test_fwi_min_class_filters_transitions(self):
        strabon = Strabon()
        engine = _engine_on(strabon)
        engine.register({"kind": "fwi", "min_class": "extreme"})
        _insert_hotspot(strabon, 1, 23.0, 38.0, confidence=1.0)
        batch = engine.process_commit(2)
        assert [
            d for d in batch.notifications if d["kind"] == "fwi"
        ] == []

    def test_remove_drops_seen_state_and_cursor(self):
        strabon = Strabon()
        engine = _engine_on(strabon)
        sub = engine.register({"kind": "filter"})
        engine.ack(sub.id, 5)
        assert engine.cursor(sub.id) == 5
        assert engine.remove(sub.id)
        assert engine.cursor(sub.id) == 0
        assert not engine.remove(sub.id)

    def test_ack_is_monotonic(self):
        strabon = Strabon()
        engine = _engine_on(strabon)
        sub = engine.register({"kind": "filter"})
        assert engine.ack(sub.id, 3) == 3
        assert engine.ack(sub.id, 1) == 3  # regressions ignored

    def test_raising_listener_does_not_break_fanout(self):
        strabon = Strabon()
        engine = _engine_on(strabon)
        engine.register({"kind": "filter"})
        seen = []
        engine.add_listener(
            lambda b: (_ for _ in ()).throw(RuntimeError("bug"))
        )
        engine.add_listener(lambda b: seen.append(b.sequence))
        _insert_hotspot(strabon, 1, 23.0, 38.0)
        batch = engine.process_commit(2)
        engine.publish_batch(batch)
        assert seen == [2]

    def test_stats_reports_counts(self):
        strabon = Strabon()
        engine = _engine_on(strabon)
        engine.register({"kind": "filter"})
        stats = engine.stats()
        assert stats["subscriptions"] == 1
        assert stats["durable"] is False
