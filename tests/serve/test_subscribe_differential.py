"""The incremental-evaluation contract, asserted differentially.

Two independent guarantees:

* **Equivalence** — per published snapshot, the notification set the
  incremental (delta-driven) evaluation produced equals what a full
  re-run of every standing query over that snapshot would produce,
  across all three subscription families.
* **Exactly-once across crashes** — a durable service killed between
  the triple-WAL commit and the notification-log append regenerates
  the swallowed batch on recovery; the union of notifications over the
  whole crashed-and-resumed season has no duplicates and equals the
  no-crash run, and a subscriber resuming from its acknowledged cursor
  receives exactly the batches it missed.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
from datetime import timedelta

import pytest

from repro.core.config import RunOptions, ServiceConfig
from repro.core.service import FireMonitoringService
from repro.datasets import SyntheticGreece
from repro.durable import CRASH_EXIT, crashpoints
from repro.serve.subscribe import Notification, SubscriptionEngine
from repro.seviri.fires import FireSeason

from tests.durable.conftest import CRISIS_START

PREFIX = (
    "PREFIX noa: "
    "<http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
)

SUB_DOCS = [
    {"kind": "filter"},
    {"kind": "filter", "min_confidence": 0.5},
    {"kind": "filter", "bbox": [-180.0, -90.0, 180.0, 90.0]},
    {"kind": "filter", "confirmed": True},
    {
        "kind": "stsparql",
        "query": PREFIX
        + "SELECT ?h WHERE { ?h a noa:Hotspot . "
        + "?h noa:hasConfidence ?c . "
        + 'FILTER(?c >= "0.4") }',
    },
    {"kind": "fwi", "min_class": "low"},
]


@pytest.fixture(scope="module")
def diff_greece():
    return SyntheticGreece(seed=42, detail=1)


@pytest.fixture(scope="module")
def diff_season(diff_greece):
    return FireSeason(diff_greece, CRISIS_START, days=1, seed=7)


@pytest.fixture(scope="module")
def diff_requests():
    base = CRISIS_START + timedelta(hours=13)
    return [base + timedelta(minutes=15 * k) for k in range(3)]


def test_incremental_equals_full_rerun_per_snapshot(
    diff_greece, diff_season, diff_requests
):
    service = FireMonitoringService(
        greece=diff_greece,
        mode="teleios",
        workdir=tempfile.mkdtemp(prefix="test_diff_"),
    )
    try:
        engine = service.subscriptions
        for doc in SUB_DOCS:
            engine.register(doc)

        # The oracle shares the *same* subscription objects (same ids)
        # but evaluates every standing query over each full snapshot;
        # priming it against the initial publication mirrors the live
        # engine's registration-time priming and FWI baseline.
        oracle = SubscriptionEngine()
        for sub in engine.registry.list():
            oracle.registry.add(sub)
        initial = service.publisher.require_latest()
        oracle.evaluate_full(
            initial.view, initial.sequence, commit=True
        )

        batches = {}
        engine.add_listener(
            lambda b: batches.__setitem__(b.sequence, b)
        )
        snapshots = []
        service.publisher.subscribe(snapshots.append)
        service.run(
            diff_requests,
            RunOptions(season=diff_season, on_error="raise"),
        )

        assert len(snapshots) == len(diff_requests)
        total = 0
        for snap in snapshots:
            assert snap.sequence in batches, (
                f"no notification batch for publication "
                f"{snap.sequence}"
            )
            incremental = {
                Notification.from_dict(d).key()
                for d in batches[snap.sequence].notifications
            }
            full = {
                n.key()
                for n in oracle.evaluate_full(
                    snap.view, snap.sequence, commit=True
                )
            }
            assert incremental == full, (
                f"sequence {snap.sequence}: incremental != full "
                f"(only-incremental={incremental - full}, "
                f"only-full={full - incremental})"
            )
            total += len(incremental)
        assert total > 0, "differential run produced no notifications"
    finally:
        service.close()


def test_full_rescan_races_source_outage(diff_greece, diff_requests):
    """A CLEAR-triggering store rebuild races a source-outage
    degradation (ISSUE 10 satellite).

    After the second acquisition publishes, the live graph is rebuilt
    wholesale — ``clear()`` + re-add, exactly the journal shape
    checkpoint compaction and recovery replay produce — so the *third*
    acquisition's commit delta carries ``OP_CLEAR`` and forces a full
    rescan.  That same acquisition loses its polar source to an
    injected outage.  The incremental delivery must still equal
    ``evaluate_full()`` on every snapshot: the rescan may not
    resurrect already-notified subjects, alert on static heat sources,
    or hide the degradation's provenance.
    """
    from repro.faults import FaultPlan, inject

    season = FireSeason(diff_greece, CRISIS_START, days=1, seed=7)
    service = FireMonitoringService(
        greece=diff_greece,
        config=ServiceConfig(
            seed=42,
            sources={"seed": 7, "polar_revisit_minutes": 15},
        ),
    )
    try:
        engine = service.subscriptions
        for doc in SUB_DOCS:
            engine.register(doc)

        oracle = SubscriptionEngine()
        for sub in engine.registry.list():
            oracle.registry.add(sub)
        initial = service.publisher.require_latest()
        oracle.evaluate_full(
            initial.view, initial.sequence, commit=True
        )

        batches = {}
        engine.add_listener(
            lambda b: batches.__setitem__(b.sequence, b)
        )
        snapshots = []
        service.publisher.subscribe(snapshots.append)

        rebuilt = []

        def rebuild_after_second(published):
            # Runs on the writer thread right after the publish: the
            # CLEAR + re-adds land in the capture journal and drain
            # into the *next* acquisition's commit delta.
            if published.sequence != initial.sequence + 2 or rebuilt:
                return
            graph = service.strabon.graph
            triples = list(graph.triples())
            graph.clear()
            for s, p, o in triples:
                graph.add(s, p, o)
            service.strabon.reset_derived()
            rebuilt.append(len(triples))

        service.publisher.subscribe(rebuild_after_second)

        plan = FaultPlan(seed=2).raise_in("source.polar", index=2)
        with inject(plan):
            outcomes = service.run(
                diff_requests, RunOptions(season=season)
            )

        assert [o.status for o in outcomes] == [
            "ok",
            "ok",
            "degraded",
        ]
        assert rebuilt, "the CLEAR rebuild never ran"
        assert len(snapshots) == len(diff_requests)

        # The racing acquisition is both degraded *and* full-rescanned;
        # its published provenance still names the gap.
        final = snapshots[-1]
        assert any(
            r["source"] == "polar" and r["status"] == "outage"
            for r in final.sources
        )

        total = 0
        for snap in snapshots:
            assert snap.sequence in batches
            incremental = {
                Notification.from_dict(d).key()
                for d in batches[snap.sequence].notifications
            }
            full = {
                n.key()
                for n in oracle.evaluate_full(
                    snap.view, snap.sequence, commit=True
                )
            }
            assert incremental == full, (
                f"sequence {snap.sequence}: incremental != full "
                f"(only-incremental={incremental - full}, "
                f"only-full={full - incremental})"
            )
            total += len(incremental)
        assert total > 0

        # The rescan notified nothing twice and nothing static.
        from repro.rdf import NOA

        for sub in engine.registry.list():
            subjects = [
                d["subject"]
                for b in batches.values()
                for d in b.notifications
                if d["subscription"] == sub.id
                and d.get("kind") != "fwi"
            ]
            assert len(subjects) == len(set(subjects))
            for subject in subjects:
                from repro.rdf.term import URI

                assert (
                    final.view.snapshot.value(
                        URI(subject), NOA.matchesStaticSource
                    )
                    is None
                ), f"static heat source {subject} alerted"
    finally:
        service.close()


# -- crash / resume exactness ----------------------------------------------

pytestmark_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="crash e2e requires fork()"
)


def _crash_mid_commit(state_dir, greece, season, requests, id_path):
    # Second pass through commit.pre-publish: acquisition 2 is WAL-
    # committed (and service.json reserved) but its notification batch
    # never reached the log — the exact window repair_tail covers.
    crashpoints.arm("commit.pre-publish", hits=2)
    service = FireMonitoringService(
        greece=greece,
        config=ServiceConfig(state_dir=state_dir, wal_fsync="never"),
    )
    sub = service.subscriptions.register({"kind": "filter"})
    with open(id_path, "w") as fh:
        fh.write(sub.id)
    service.run(requests, RunOptions(season=season, on_error="raise"))
    os._exit(0)  # crashpoint never fired


@pytestmark_fork
def test_crashed_subscriber_resumes_exactly_once(
    tmp_path, diff_greece, diff_season, diff_requests
):
    state_dir = str(tmp_path / "state")
    id_path = str(tmp_path / "sub_id")
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(
        target=_crash_mid_commit,
        args=(
            state_dir,
            diff_greece,
            diff_season,
            diff_requests,
            id_path,
        ),
    )
    child.start()
    child.join(timeout=300)
    assert child.exitcode == CRASH_EXIT
    with open(id_path) as fh:
        sub_id = fh.read().strip()

    # Pre-crash state: only acquisition 1's batch (sequence 2) made
    # the log; acquisition 2 is in the triple WAL but unlogged.
    service = FireMonitoringService.open(state_dir, greece=diff_greece)
    try:
        engine = service.subscriptions
        assert engine.registry.get(sub_id) is not None
        sequences = [b.sequence for b in engine.log.batches]
        assert sequences == sorted(set(sequences))
        assert 2 in sequences  # acquisition 1, logged pre-crash
        # The repaired batch rides the recovery publication, so the
        # log now extends past the crash point.
        assert engine.log.last_sequence > 2

        service.run(
            diff_requests,
            RunOptions(season=diff_season, on_error="raise"),
        )

        # Exactly-once: no subject is notified twice across the whole
        # crashed-and-resumed season.
        subjects = [
            doc["subject"]
            for batch in engine.log.batches
            for doc in batch.notifications
            if doc["subscription"] == sub_id
        ]
        assert len(subjects) == len(set(subjects))

        # Equivalence with a run that never crashed.
        oracle_service = FireMonitoringService(
            greece=diff_greece,
            mode="teleios",
            workdir=tempfile.mkdtemp(prefix="test_oracle_"),
        )
        try:
            oracle_sub = oracle_service.subscriptions.register(
                {"kind": "filter"}
            )
            oracle_subjects = set()
            oracle_service.subscriptions.add_listener(
                lambda b: oracle_subjects.update(
                    d["subject"]
                    for d in b.notifications
                    if d["subscription"] == oracle_sub.id
                )
            )
            oracle_service.run(
                diff_requests,
                RunOptions(season=diff_season, on_error="raise"),
            )
        finally:
            oracle_service.close()
        assert set(subjects) == oracle_subjects

        # Cursor resume: a subscriber that acknowledged sequence 2
        # before the crash receives exactly the later batches.
        resumed = engine.replay_after(2)
        assert [b.sequence for b in resumed] == [
            b.sequence
            for b in engine.log.batches
            if b.sequence > 2
        ]
        resumed_subjects = [
            doc["subject"]
            for batch in resumed
            for doc in batch.notifications
            if doc["subscription"] == sub_id
        ]
        already = {
            doc["subject"]
            for batch in engine.log.batches
            if batch.sequence <= 2
            for doc in batch.notifications
            if doc["subscription"] == sub_id
        }
        assert set(resumed_subjects) == set(subjects) - already
    finally:
        service.close()
