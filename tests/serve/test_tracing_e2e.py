"""End-to-end trace stitching: one trace id across every boundary.

The tentpole acceptance test: with tracing enabled, a pipelined run
(forked chain workers) publishes snapshots whose provenance names the
acquisition's ``trace_id``; ``/hotspots`` polled *during* the run
serves that id; and ``/debug/tracez`` shows the full stitched trace —
the ``acquisition`` root, the ``pipeline.chain`` span recorded in a
*different process*, and the ``service.publish`` span — under the one
trace id.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import threading
import time
from datetime import timedelta

import pytest

from tests.conftest import CRISIS_START
from repro import obs
from repro.core.config import RunOptions
from repro.core.service import FireMonitoringService
from repro.serve import serve_in_thread


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:
        return False
    return True


def _request(handle, method, path, body=None, headers=None):
    host, port = handle.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        data = response.read()
    finally:
        conn.close()
    if response.getheader("Content-Type", "").startswith(
        "application/json"
    ):
        return response.status, json.loads(data)
    return response.status, data.decode("utf-8", errors="replace")


@pytest.mark.skipif(
    not _fork_available(), reason="needs the fork start method"
)
def test_one_trace_spans_service_worker_publish_and_http(
    greece, season, tmp_path
):
    obs.disable()
    obs.reset()
    obs.enable()
    service = FireMonitoringService(
        greece=greece, mode="teleios", workdir=str(tmp_path)
    )
    whens = [
        CRISIS_START + timedelta(hours=13, minutes=15 * k)
        for k in range(3)
    ]
    options = RunOptions(
        season=season,
        on_error="raise",
        pipelined=True,
        chain_workers=2,
        queue_depth=1,
        worker_kind="process",
    )
    request_trace = "feedface00000042"
    trace_headers = {"x-trace-id": request_trace, "x-parent-span": "7"}
    errors, served_trace_ids = [], []
    try:
        with serve_in_thread(service) as handle:

            def ingest():
                try:
                    service.run(whens, options)
                except Exception as error:  # pragma: no cover
                    errors.append(repr(error))

            writer = threading.Thread(target=ingest, daemon=True)
            writer.start()
            while writer.is_alive():
                status, collection = _request(
                    handle, "GET", "/hotspots", headers=trace_headers
                )
                if status == 503:  # nothing published yet
                    time.sleep(0.01)
                    continue
                assert status == 200
                snapshot = collection["snapshot"]
                # The request's own trace is echoed back...
                assert snapshot["request_trace_id"] == request_trace
                # ...next to the publishing acquisition's trace.
                if snapshot.get("trace_id"):
                    served_trace_ids.append(snapshot["trace_id"])
                time.sleep(0.01)
            writer.join()
            assert not errors

            status, collection = _request(
                handle, "GET", "/hotspots", headers=trace_headers
            )
            assert status == 200
            served_trace_ids.append(collection["snapshot"]["trace_id"])
            assert served_trace_ids[-1], "final snapshot has no trace id"
            wanted = served_trace_ids[-1]

            # The served trace id resolves to one complete stitched
            # trace in /debug/tracez.
            status, tracez = _request(
                handle, "GET", f"/debug/tracez?trace_id={wanted}"
            )
            assert status == 200
            assert tracez["tracing_enabled"] is True
            assert tracez["count"] == 1
            trace = tracez["traces"][0]
            assert trace["trace_id"] == wanted
            assert trace["root"] == "acquisition"
            assert trace["status"] == "ok"
            names = {s["name"] for s in trace["spans"]}
            assert {
                "acquisition",
                "pipeline.chain",
                "service.publish",
            } <= names

            # The chain span really crossed the fork boundary: it was
            # recorded by a worker process, then shipped home.
            chain = next(
                s for s in trace["spans"] if s["name"] == "pipeline.chain"
            )
            assert chain["attributes"]["worker_pid"] != os.getpid()
            assert chain["trace_id"] == wanted

            # Every span hangs off the acquisition root's trace; the
            # tree rendering shows the stitched hierarchy.
            assert all(s["trace_id"] == wanted for s in trace["spans"])
            assert "service.publish" in trace["tree"]

            # The HTTP requests themselves joined the client's trace,
            # parented under the advertised span id.
            status, req_trace = _request(
                handle, "GET", f"/debug/tracez?trace_id={request_trace}"
            )
            assert status == 200 and req_trace["count"] == 1
            req_spans = req_trace["traces"][0]["spans"]
            serve_spans = [
                s for s in req_spans if s["name"] == "serve.request"
            ]
            assert serve_spans
            assert all(s["parent_id"] == 7 for s in serve_spans)

            # The text rendering works too.
            status, text = _request(
                handle,
                "GET",
                f"/debug/tracez?format=text&trace_id={wanted}",
            )
            assert status == 200
            assert f"trace {wanted}" in text
            assert "acquisition" in text

            # Malformed limits are refused.
            status, _ = _request(
                handle, "GET", "/debug/tracez?limit=banana"
            )
            assert status == 400
            status, _ = _request(handle, "GET", "/debug/tracez?limit=0")
            assert status == 400
    finally:
        service.close()
        obs.disable()
        obs.reset()
