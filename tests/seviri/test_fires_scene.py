"""Fire season simulation and thermal scene synthesis."""

from datetime import datetime, timedelta, timezone

import numpy as np
import pytest

from repro.datasets.corine import FIRE_CONSISTENT_KEYS
from repro.seviri.fires import FireEvent, FireSeason
from repro.seviri.scene import SceneGenerator

START = datetime(2007, 8, 24, tzinfo=timezone.utc)


class TestFireEvent:
    @pytest.fixture
    def event(self):
        return FireEvent(
            event_id=1,
            lon=22.0,
            lat=38.0,
            start=START + timedelta(hours=10),
            peak=START + timedelta(hours=13),
            end=START + timedelta(hours=18),
            max_radius_km=3.0,
        )

    def test_inactive_before_start(self, event):
        assert event.intensity_at(START) == 0.0
        assert event.footprint(START) is None

    def test_peak_intensity_is_one(self, event):
        assert event.intensity_at(event.peak) == pytest.approx(1.0)

    def test_linear_growth(self, event):
        mid = event.start + (event.peak - event.start) / 2
        assert event.intensity_at(mid) == pytest.approx(0.5)

    def test_decay_to_zero(self, event):
        assert event.intensity_at(event.end) == pytest.approx(0.0)

    def test_radius_grows(self, event):
        early = event.radius_km_at(event.start + timedelta(hours=1))
        late = event.radius_km_at(event.start + timedelta(hours=6))
        assert 0 < early < late <= event.max_radius_km

    def test_footprint_contains_centre(self, event):
        poly = event.footprint(event.peak)
        assert poly is not None
        assert poly.contains_point((event.lon, event.lat))


class TestFireSeason:
    def test_deterministic(self, greece):
        a = FireSeason(greece, START, days=1, seed=5)
        b = FireSeason(greece, START, days=1, seed=5)
        assert len(a.events) == len(b.events)
        assert all(
            (x.lon, x.lat, x.kind) == (y.lon, y.lat, y.kind)
            for x, y in zip(a.events, b.events)
        )

    def test_forest_fires_on_flammable_cover(self, greece, season):
        for event in season.forest_fires():
            cover = greece.land_cover_at(event.lon, event.lat)
            assert cover in FIRE_CONSISTENT_KEYS

    def test_agricultural_fires_off_forest(self, greece, season):
        agri = [e for e in season.events if e.kind == "agricultural"]
        for event in agri:
            cover = greece.land_cover_at(event.lon, event.lat)
            assert cover not in FIRE_CONSISTENT_KEYS

    def test_all_fires_on_land(self, greece, season):
        for event in season.events:
            if event.kind != "smoke":
                assert greece.is_land(event.lon, event.lat)

    def test_active_fires_excludes_smoke(self, season):
        for event in season.events:
            if event.kind == "smoke":
                when = event.peak
                assert event not in season.active_fires(when)


class TestSceneGenerator:
    def test_land_sea_contrast_at_night(self, scene_generator):
        img = scene_generator.generate(
            START + timedelta(hours=2)  # 02:00 UTC: night
        )
        land = img.t108[scene_generator.land_mask]
        sea = img.t108[~scene_generator.land_mask]
        assert sea.mean() > land.mean()  # sea stays warm at night

    def test_daytime_land_warmer(self, scene_generator):
        img = scene_generator.generate(START + timedelta(hours=12))
        land = img.t108[scene_generator.land_mask]
        sea = img.t108[~scene_generator.land_mask]
        assert land.mean() > sea.mean()

    def test_deterministic_per_timestamp(self, greece, season):
        a = SceneGenerator(greece, seed=1).generate(
            START + timedelta(hours=12), season
        )
        b = SceneGenerator(greece, seed=1).generate(
            START + timedelta(hours=12), season
        )
        np.testing.assert_array_equal(a.t039, b.t039)

    def test_fire_raises_t039_far_more_than_t108(
        self, greece, scene_generator, season
    ):
        when = START + timedelta(hours=13)
        fires = [
            e for e in season.active_fires(when) if e.intensity_at(when) > 0.6
        ]
        assert fires, "expected at least one mature fire at 13:00"
        quiet = scene_generator.generate(when, season=None)
        burning = scene_generator.generate(when, season=season)
        d039 = burning.t039 - quiet.t039
        d108 = burning.t108 - quiet.t108
        assert d039.max() > 20.0
        assert d039.max() > 5 * d108.max()

    def test_land_fraction_plausible(self, scene_generator):
        frac = scene_generator.land_mask.mean()
        assert 0.1 < frac < 0.5

    def test_temperatures_physical(self, scene_generator, season):
        img = scene_generator.generate(START + timedelta(hours=14), season)
        assert img.t039.min() > 250
        assert img.t039.max() < 620
        assert img.t108.max() < 400
