"""Grids and georeferencing."""

import numpy as np
import pytest

from repro.seviri.geo import GeoReference, RawGrid, TargetGrid


class TestTargetGrid:
    def test_pixel_centres(self):
        g = TargetGrid(lon0=20.0, lat0=35.0, dlon=0.1, dlat=0.1, nx=10, ny=10)
        assert float(g.lon(0)) == pytest.approx(20.05)
        assert float(g.lat(9)) == pytest.approx(35.95)

    def test_index_roundtrip(self):
        g = TargetGrid()
        i, j = g.index_of(float(g.lon(50)), float(g.lat(60)))
        assert (i, j) == (50, 60)

    def test_contains(self):
        g = TargetGrid()
        assert g.contains(23.0, 38.0)
        assert not g.contains(50.0, 38.0)

    def test_pixel_polygon_area(self):
        g = TargetGrid()
        poly = g.pixel_polygon(10, 10)
        assert poly.area == pytest.approx(g.dlon * g.dlat)

    def test_mesh_shape(self):
        g = TargetGrid(nx=5, ny=7)
        lon, lat = g.mesh()
        assert lon.shape == (5, 7)


class TestRawGrid:
    def test_raw_to_geo_monotone(self):
        raw = RawGrid()
        lon1, _ = raw.raw_to_geo(0, 0)
        lon2, _ = raw.raw_to_geo(100, 0)
        assert lon2 > lon1

    def test_rotation_couples_axes(self):
        raw = RawGrid()
        _, lat1 = raw.raw_to_geo(0, 0)
        _, lat2 = raw.raw_to_geo(100, 0)
        assert lat1 != lat2  # x motion changes latitude (rotation)


class TestGeoReference:
    def test_fit_quality(self, georeference):
        # The 2-degree polynomial must reproduce the imaging geometry to a
        # tiny fraction of a pixel.
        assert georeference.rms_pixels < 0.05

    def test_geo_to_raw_inverts_raw_to_geo(self, georeference):
        raw = georeference.raw
        lon, lat = raw.raw_to_geo(120.0, 130.0)
        i, j = georeference.geo_to_raw(lon, lat)
        assert float(i) == pytest.approx(120.0, abs=0.1)
        assert float(j) == pytest.approx(130.0, abs=0.1)

    def test_resample_constant_field(self, georeference):
        raw_img = np.full(
            (georeference.raw.nx, georeference.raw.ny), 42.0
        )
        out = georeference.resample(raw_img)
        assert out.shape == (georeference.target.nx, georeference.target.ny)
        valid = ~np.isnan(out)
        assert valid.all()
        assert (out == 42.0).all()

    def test_resample_gradient_preserved(self, georeference):
        raw = georeference.raw
        ii, jj = np.meshgrid(
            np.arange(raw.nx), np.arange(raw.ny), indexing="ij"
        )
        lon, _ = raw.raw_to_geo(ii, jj)
        out = georeference.resample(lon)
        target_lon, _ = georeference.target.mesh()
        # Nearest-neighbour: lon error bounded by one raw pixel.
        assert np.nanmax(np.abs(out - target_lon)) < raw.dlon * 1.5

    def test_resample_window_offset_equivalence(self, georeference):
        raw = georeference.raw
        rng = np.random.default_rng(0)
        raw_img = rng.normal(300, 5, (raw.nx, raw.ny))
        window = georeference.crop_window()
        i_lo, i_hi, j_lo, j_hi = window
        cropped = raw_img[i_lo:i_hi, j_lo:j_hi]
        full = georeference.resample(raw_img)
        windowed = georeference.resample(cropped, window)
        np.testing.assert_array_equal(
            np.nan_to_num(full), np.nan_to_num(windowed)
        )

    def test_crop_window_covers_target(self, georeference):
        i_lo, i_hi, j_lo, j_hi = georeference.crop_window()
        assert 0 <= i_lo < i_hi <= georeference.raw.nx
        assert 0 <= j_lo < j_hi <= georeference.raw.ny
        # Window must be a strict subset (cropping actually saves work).
        raw_cells = georeference.raw.nx * georeference.raw.ny
        window_cells = (i_hi - i_lo) * (j_hi - j_lo)
        assert window_cells < raw_cells

    def test_source_indices_in_window(self, georeference):
        gx, gy = georeference.source_indices()
        i_lo, i_hi, j_lo, j_hi = georeference.crop_window()
        assert gx.min() >= i_lo and gx.max() < i_hi
        assert gy.min() >= j_lo and gy.max() < j_hi
