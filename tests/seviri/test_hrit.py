"""HRIT-like segmented file format."""

from datetime import datetime, timezone

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arraydb.errors import VaultError
from repro.seviri.hrit import (
    HRITDriver,
    image_metadata,
    read_hrit_image,
    read_segment,
    segment_paths_for,
    write_hrit_segments,
)

TS = datetime(2010, 8, 22, 9, 35, tzinfo=timezone.utc)


class TestRoundtrip:
    def test_basic_roundtrip(self, tmp_path):
        grid = np.linspace(250, 350, 15 * 11).reshape(15, 11)
        paths = write_hrit_segments(str(tmp_path), "MSG2", "IR_039", TS, grid)
        header, back = read_hrit_image(paths)
        assert header.sensor == "MSG2"
        assert header.band == "IR_039"
        assert header.timestamp == TS
        assert back.shape == grid.shape
        assert np.abs(back - grid).max() <= 0.01  # centikelvin quantisation

    def test_out_of_order_segments(self, tmp_path):
        grid = np.random.default_rng(1).uniform(260, 330, (20, 8))
        paths = write_hrit_segments(
            str(tmp_path), "MSG1", "IR_108", TS, grid, segment_count=5
        )
        _, back = read_hrit_image(list(reversed(paths)))
        assert np.abs(back - grid).max() <= 0.01

    def test_uneven_segment_split(self, tmp_path):
        grid = np.full((10, 4), 300.0)  # 10 rows, 4 segments -> 3/3/3/1
        paths = write_hrit_segments(
            str(tmp_path), "MSG2", "IR_039", TS, grid, segment_count=4
        )
        _, back = read_hrit_image(paths)
        assert back.shape == (10, 4)

    def test_missing_segment_detected(self, tmp_path):
        grid = np.full((8, 8), 300.0)
        paths = write_hrit_segments(
            str(tmp_path), "MSG2", "IR_039", TS, grid, segment_count=4
        )
        with pytest.raises(VaultError, match="missing segments"):
            read_hrit_image(paths[:-1])

    def test_mixed_images_detected(self, tmp_path):
        a = write_hrit_segments(
            str(tmp_path / "a"), "MSG2", "IR_039", TS, np.full((8, 8), 300.0)
        )
        b = write_hrit_segments(
            str(tmp_path / "b"),
            "MSG2",
            "IR_108",
            TS,
            np.full((8, 8), 290.0),
        )
        with pytest.raises(VaultError, match="different images"):
            read_hrit_image([a[0], b[1], a[2], b[3]])

    def test_not_hsim_file(self, tmp_path):
        bogus = tmp_path / "x.hsim"
        bogus.write_bytes(b"JUNK" + b"\0" * 100)
        with pytest.raises(VaultError):
            read_segment(str(bogus))

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=4, max_value=40),
        st.integers(min_value=4, max_value=40),
        st.integers(min_value=1, max_value=6),
    )
    def test_roundtrip_shapes(self, rows, cols, segments):
        import tempfile

        grid = np.random.default_rng(rows * cols).uniform(
            200, 400, (rows, cols)
        )
        with tempfile.TemporaryDirectory() as tmp:
            paths = write_hrit_segments(
                str(tmp), "MSG2", "IR_039", TS, grid, segment_count=segments
            )
            _, back = read_hrit_image(paths)
        assert back.shape == (rows, cols)
        assert np.abs(back - grid).max() <= 0.01


class TestMetadata:
    def test_headers_without_decompression(self, tmp_path):
        grid = np.full((12, 6), 300.0)
        paths = write_hrit_segments(
            str(tmp_path), "MSG2", "IR_039", TS, grid, segment_count=3
        )
        headers = image_metadata(paths)
        assert len(headers) == 3
        assert {h.segment_index for h in headers} == {0, 1, 2}
        assert all(h.rows == 12 and h.cols == 6 for h in headers)

    def test_segment_paths_filter_by_band(self, tmp_path):
        write_hrit_segments(
            str(tmp_path), "MSG2", "IR_039", TS, np.full((4, 4), 1.0), 2
        )
        write_hrit_segments(
            str(tmp_path), "MSG2", "IR_108", TS, np.full((4, 4), 1.0), 2
        )
        assert len(segment_paths_for(str(tmp_path))) == 4
        assert len(segment_paths_for(str(tmp_path), band="IR_039")) == 2


class TestDriver:
    def test_can_handle(self, tmp_path):
        driver = HRITDriver()
        paths = write_hrit_segments(
            str(tmp_path), "MSG2", "IR_039", TS, np.full((4, 4), 1.0), 1
        )
        assert driver.can_handle(str(tmp_path))
        assert driver.can_handle(paths[0])
        assert not driver.can_handle(str(tmp_path / "nope.txt"))
