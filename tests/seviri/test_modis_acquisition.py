"""MODIS simulation and acquisition scheduling."""

from datetime import date, datetime, timedelta, timezone

import pytest

from repro.seviri.acquisition import (
    AcquisitionSchedule,
    modis_overpasses,
    msg_schedule,
)
from repro.seviri.modis import simulate_modis_detections
from repro.seviri.sensors import MODIS_AQUA, MODIS_TERRA, MSG1, MSG2

DAY = date(2007, 8, 24)
START = datetime(2007, 8, 24, tzinfo=timezone.utc)


class TestSchedules:
    def test_msg1_has_288_daily_acquisitions(self):
        assert len(msg_schedule(DAY, MSG1)) == 24 * 12

    def test_msg2_has_96_daily_acquisitions(self):
        assert len(msg_schedule(DAY, MSG2)) == 24 * 4

    def test_msg_schedule_rejects_polar(self):
        with pytest.raises(ValueError):
            msg_schedule(DAY, MODIS_TERRA)

    def test_modis_four_overpasses(self):
        passes = modis_overpasses(DAY)
        assert len(passes) == 4
        sensors = {a.sensor.name for a in passes}
        assert sensors == {"MODIS-Terra", "MODIS-Aqua"}

    def test_modis_overpass_utc_shift(self):
        passes = modis_overpasses(DAY, longitude=23.7)
        # 09:30 local solar time at 23.7E is ~07:55 UTC.
        terra_morning = min(
            a.timestamp for a in passes if a.sensor is MODIS_TERRA
        )
        assert terra_morning.hour == 7

    def test_merged_schedule_sorted(self):
        sched = AcquisitionSchedule(DAY, days=1, sensors=(MSG1, MSG2))
        merged = list(sched)
        times = [a.timestamp for a in merged]
        assert times == sorted(times)
        assert len(sched.msg_acquisitions()) == 288 + 96

    def test_multi_day(self):
        sched = AcquisitionSchedule(DAY, days=3, sensors=(MSG2,))
        assert len(sched.msg_acquisitions()) == 3 * 96


class TestModisSimulation:
    def test_detections_near_active_fires(self, greece, season):
        when = START + timedelta(hours=13)
        detections = simulate_modis_detections(
            greece, season, when, seed=11, false_alarm_rate=0.0
        )
        fires = season.active_fires(when)
        assert detections
        for det in detections:
            nearest = min(
                abs(det.lon - f.lon) + abs(det.lat - f.lat) for f in fires
            )
            assert nearest < 0.2

    def test_deterministic_with_seed(self, greece, season):
        when = START + timedelta(hours=13)
        a = simulate_modis_detections(greece, season, when, seed=3)
        b = simulate_modis_detections(greece, season, when, seed=3)
        assert [(d.lon, d.lat) for d in a] == [(d.lon, d.lat) for d in b]

    def test_no_fires_no_real_detections(self, greece, season):
        when = START + timedelta(hours=3)  # before first ignition
        detections = simulate_modis_detections(
            greece, season, when, seed=5, false_alarm_rate=0.0
        )
        assert detections == []

    def test_confidence_range(self, greece, season):
        when = START + timedelta(hours=14)
        for det in simulate_modis_detections(greece, season, when, seed=1):
            assert 0 <= det.confidence <= 100

    def test_more_detections_for_bigger_fires(self, greece, season):
        early = simulate_modis_detections(
            greece,
            season,
            START + timedelta(hours=10, minutes=30),
            seed=9,
            false_alarm_rate=0.0,
        )
        late = simulate_modis_detections(
            greece,
            season,
            START + timedelta(hours=15),
            seed=9,
            false_alarm_rate=0.0,
        )
        assert len(late) >= len(early)
