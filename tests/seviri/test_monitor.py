"""The SEVIRI Monitor (pre-TELEIOS stream manager, §2)."""

import os
import shutil
from datetime import datetime, timedelta, timezone

import numpy as np
import pytest

from repro.seviri.hrit import write_hrit_segments
from repro.seviri.monitor import FIRE_BANDS, SeviriMonitor

TS = datetime(2010, 8, 22, 9, 35, tzinfo=timezone.utc)


def write_acquisition(directory, when=TS, sensor="MSG2", segments=3):
    """Both fire bands of one acquisition, as segment files."""
    paths = {}
    for band in FIRE_BANDS:
        grid = np.full((9, 9), 300.0)
        paths[band] = write_hrit_segments(
            str(directory), sensor, band, when, grid, segment_count=segments
        )
    return paths


@pytest.fixture
def dirs(tmp_path):
    incoming = tmp_path / "incoming"
    archive = tmp_path / "archive"
    incoming.mkdir()
    return str(incoming), str(archive)


class TestScan:
    def test_metadata_extracted(self, dirs):
        incoming, archive = dirs
        write_acquisition(incoming)
        with SeviriMonitor(incoming, archive) as monitor:
            assert monitor.scan() == 6  # 3 segments x 2 bands
            assert monitor.catalog_size() == 6

    def test_rescan_is_idempotent(self, dirs):
        incoming, archive = dirs
        write_acquisition(incoming)
        with SeviriMonitor(incoming, archive) as monitor:
            monitor.scan()
            assert monitor.scan() == 0

    def test_irrelevant_bands_filtered(self, dirs):
        incoming, archive = dirs
        write_hrit_segments(
            incoming, "MSG2", "VIS006", TS, np.full((4, 4), 1.0), 2
        )
        with SeviriMonitor(incoming, archive) as monitor:
            assert monitor.scan() == 0
            assert monitor.filtered_count == 2
        # Filtered files are removed from the incoming spool.
        assert not [f for f in os.listdir(incoming) if "VIS006" in f]

    def test_corrupt_file_rejected(self, dirs):
        incoming, archive = dirs
        bogus = os.path.join(incoming, "junk.hsim")
        with open(bogus, "wb") as f:
            f.write(b"garbage")
        with SeviriMonitor(incoming, archive) as monitor:
            assert monitor.scan() == 0
            assert monitor.rejected_count == 1


class TestDispatch:
    def test_complete_acquisition_dispatched(self, dirs):
        incoming, archive = dirs
        write_acquisition(incoming)
        with SeviriMonitor(incoming, archive) as monitor:
            monitor.scan()
            ready = monitor.dispatch_ready()
        assert len(ready) == 1
        acq = ready[0]
        assert acq.sensor == "MSG2"
        paths039, paths108 = acq.chain_input
        assert len(paths039) == 3 and len(paths108) == 3
        # Files were moved to the permanent archive.
        for path in paths039 + paths108:
            assert path.startswith(archive)
            assert os.path.exists(path)
        assert not os.listdir(incoming)

    def test_out_of_order_arrival(self, dirs):
        incoming, archive = dirs
        staging = os.path.join(archive, "..", "staging")
        os.makedirs(staging)
        paths = write_acquisition(staging)
        with SeviriMonitor(incoming, archive) as monitor:
            # Segments trickle in out of order; nothing dispatches until
            # both bands are complete.
            order = [
                paths["IR_039"][2],
                paths["IR_108"][0],
                paths["IR_039"][0],
                paths["IR_108"][2],
                paths["IR_039"][1],
            ]
            for p in order:
                shutil.move(p, incoming)
                monitor.scan()
                assert monitor.dispatch_ready() == []
            assert monitor.pending_images()
            shutil.move(paths["IR_108"][1], incoming)
            monitor.scan()
            ready = monitor.dispatch_ready()
        assert len(ready) == 1

    def test_one_band_missing_blocks_dispatch(self, dirs):
        incoming, archive = dirs
        write_hrit_segments(
            incoming, "MSG2", "IR_039", TS, np.full((6, 6), 300.0), 2
        )
        with SeviriMonitor(incoming, archive) as monitor:
            monitor.scan()
            assert monitor.dispatch_ready() == []

    def test_multiple_acquisitions(self, dirs):
        incoming, archive = dirs
        write_acquisition(incoming, TS)
        write_acquisition(incoming, TS + timedelta(minutes=15))
        with SeviriMonitor(incoming, archive) as monitor:
            monitor.scan()
            ready = monitor.dispatch_ready()
        assert len(ready) == 2
        assert ready[0].timestamp < ready[1].timestamp

    def test_dispatched_files_not_redispatched(self, dirs):
        incoming, archive = dirs
        write_acquisition(incoming)
        with SeviriMonitor(incoming, archive) as monitor:
            monitor.scan()
            assert len(monitor.dispatch_ready()) == 1
            assert monitor.dispatch_ready() == []


class TestEndToEnd:
    def test_monitor_feeds_the_chain(self, dirs, georeference,
                                     scene_generator, season):
        from repro.core.legacy import LegacyChain

        incoming, archive = dirs
        when = datetime(2007, 8, 24, 14, 0, tzinfo=timezone.utc)
        scene = scene_generator.generate(when, season)
        write_hrit_segments(incoming, "MSG2", "IR_039", when, scene.t039)
        write_hrit_segments(incoming, "MSG2", "IR_108", when, scene.t108)
        with SeviriMonitor(incoming, archive) as monitor:
            monitor.scan()
            ready = monitor.dispatch_ready()
        assert len(ready) == 1
        product = LegacyChain(georeference).process(ready[0].chain_input)
        direct = LegacyChain(georeference).process(scene)
        a = {(h.x, h.y) for h in product.hotspots}
        b = {(h.x, h.y) for h in direct.hotspots}
        assert len(a ^ b) <= max(2, len(a) // 5)


class TestDegradation:
    def test_corrupt_file_quarantined_with_reason(self, dirs):
        incoming, archive = dirs
        bogus = os.path.join(incoming, "junk.hsim")
        with open(bogus, "wb") as f:
            f.write(b"garbage")
        with SeviriMonitor(incoming, archive) as monitor:
            monitor.scan()
            assert monitor.rejected_count == 1
            # The file left the incoming spool for the dead-letter box —
            # it used to linger and be re-parsed on every scan.
            assert not os.path.exists(bogus)
            records = monitor.dead_letters.records()
            assert len(records) == 1
            assert records[0].reason == "unparseable-header"
            assert records[0].site == "monitor.scan"
            # Rescanning finds nothing left to reject.
            monitor.scan()
            assert monitor.rejected_count == 1

    def _partial_acquisition(self, incoming):
        """IR_108 complete, IR_039 forever missing its last segment."""
        write_hrit_segments(
            incoming, "MSG2", "IR_108", TS, np.full((9, 9), 300.0), 3
        )
        paths039 = write_hrit_segments(
            incoming, "MSG2", "IR_039", TS, np.full((9, 9), 300.0), 3
        )
        lost = paths039.pop()
        staging = os.path.dirname(incoming) + os.sep + "lost"
        os.makedirs(staging, exist_ok=True)
        shutil.move(lost, staging)
        return os.path.join(staging, os.path.basename(lost))

    def test_stale_acquisition_dispatched_single_band(self, dirs):
        incoming, archive = dirs
        self._partial_acquisition(incoming)
        with SeviriMonitor(incoming, archive) as monitor:
            monitor.scan()
            assert monitor.dispatch_ready() == []
            # Still inside its grace period: nothing is given up on.
            assert monitor.dispatch_stale(TS) == []
            stale = monitor.dispatch_stale(TS + timedelta(hours=1))
        assert len(stale) == 1
        acq = stale[0]
        assert acq.missing_bands == ("IR_039",)
        assert not acq.complete
        paths039, paths108 = acq.chain_input
        assert paths039 == []
        assert len(paths108) == 3
        for path in paths108:
            assert path.startswith(archive) and os.path.exists(path)

    def test_stragglers_never_resurrect_a_stale_acquisition(self, dirs):
        incoming, archive = dirs
        lost = self._partial_acquisition(incoming)
        with SeviriMonitor(incoming, archive) as monitor:
            monitor.scan()
            assert len(monitor.dispatch_stale(TS + timedelta(hours=1))) == 1
            # The missing segment finally trickles in: too late.  It must
            # not reassemble an acquisition that already shipped.
            shutil.move(lost, incoming)
            monitor.scan()
            assert monitor.dispatch_ready() == []
            assert monitor.dispatch_stale(TS + timedelta(hours=1)) == []
