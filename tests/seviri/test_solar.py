"""Solar geometry."""

from datetime import datetime, timezone

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.seviri.solar import (
    equation_of_time_minutes,
    is_daytime,
    solar_declination_rad,
    solar_zenith_deg,
)

ATHENS = (23.7, 38.0)


class TestZenith:
    def test_noon_summer_low_zenith(self):
        z = solar_zenith_deg(
            datetime(2007, 6, 21, 10, 25, tzinfo=timezone.utc), *ATHENS
        )
        # Summer solstice solar noon at 38N: zenith = 38 - 23.44 = ~14.6.
        assert z == pytest.approx(14.6, abs=1.5)

    def test_midnight_sun_below_horizon(self):
        z = solar_zenith_deg(
            datetime(2007, 8, 24, 0, 0, tzinfo=timezone.utc), *ATHENS
        )
        assert z > 90

    def test_array_broadcast(self):
        lon = np.array([20.0, 23.0, 26.0])
        lat = np.array([35.0, 38.0, 41.0])
        z = solar_zenith_deg(
            datetime(2007, 8, 24, 12, 0, tzinfo=timezone.utc), lon, lat
        )
        assert z.shape == (3,)
        assert (z >= 0).all() and (z <= 180).all()

    def test_naive_datetime_treated_as_utc(self):
        a = solar_zenith_deg(datetime(2007, 8, 24, 12, 0), *ATHENS)
        b = solar_zenith_deg(
            datetime(2007, 8, 24, 12, 0, tzinfo=timezone.utc), *ATHENS
        )
        assert a == b

    def test_monotone_through_afternoon(self):
        values = [
            solar_zenith_deg(
                datetime(2007, 8, 24, h, 0, tzinfo=timezone.utc), *ATHENS
            )
            for h in (12, 14, 16, 18)
        ]
        assert values == sorted(values)

    @given(
        st.integers(min_value=0, max_value=23),
        st.floats(min_value=20, max_value=27),
        st.floats(min_value=34, max_value=42),
    )
    def test_range_invariant(self, hour, lon, lat):
        z = solar_zenith_deg(
            datetime(2007, 8, 24, hour, 0, tzinfo=timezone.utc), lon, lat
        )
        assert 0.0 <= float(z) <= 180.0


class TestHelpers:
    def test_declination_bounds(self):
        for month in range(1, 13):
            d = solar_declination_rad(
                datetime(2007, month, 15, tzinfo=timezone.utc)
            )
            assert abs(np.degrees(d)) <= 23.6

    def test_equation_of_time_bounds(self):
        for month in range(1, 13):
            e = equation_of_time_minutes(
                datetime(2007, month, 15, tzinfo=timezone.utc)
            )
            assert abs(e) < 18

    def test_is_daytime(self):
        assert is_daytime(
            datetime(2007, 8, 24, 12, 0, tzinfo=timezone.utc), *ATHENS
        )
        assert not is_daytime(
            datetime(2007, 8, 24, 0, 0, tzinfo=timezone.utc), *ATHENS
        )
