"""ESRI shapefile writer/reader byte-level round trips."""

import struct
from datetime import date

import pytest

from repro.geometry import MultiPolygon, Point, Polygon, loads_wkt
from repro.shapefile import (
    Field,
    ShapeRecord,
    Shapefile,
    read_shapefile,
    write_shapefile,
)


@pytest.fixture
def polygon_layer():
    fields = [
        Field("NAME", "C", 16),
        Field("CONF", "N", 8, 2),
        Field("COUNT", "N", 6),
        Field("SEEN", "D"),
        Field("OK", "L", 1),
    ]
    records = [
        ShapeRecord(
            Polygon.square(21.5, 38.0, 0.04),
            {
                "NAME": "hotspot-1",
                "CONF": 1.0,
                "COUNT": 3,
                "SEEN": date(2007, 8, 24),
                "OK": True,
            },
        ),
        ShapeRecord(
            Polygon.square(22.5, 37.0, 0.04),
            {
                "NAME": "hotspot-2",
                "CONF": 0.5,
                "COUNT": 1,
                "SEEN": None,
                "OK": False,
            },
        ),
    ]
    return Shapefile(fields=fields, records=records)


class TestRoundtrip:
    def test_polygon_layer(self, tmp_path, polygon_layer):
        base = str(tmp_path / "hotspots")
        shp, shx, dbf = write_shapefile(polygon_layer, base)
        back = read_shapefile(base)
        assert len(back) == 2
        r0 = back.records[0]
        assert r0.attributes["NAME"] == "hotspot-1"
        assert r0.attributes["CONF"] == pytest.approx(1.0)
        assert r0.attributes["COUNT"] == 3
        assert r0.attributes["SEEN"] == date(2007, 8, 24)
        assert r0.attributes["OK"] is True
        assert back.records[1].attributes["SEEN"] is None
        assert back.records[1].attributes["OK"] is False
        assert r0.geometry.area == pytest.approx(0.04 * 0.04)

    def test_point_layer(self, tmp_path):
        layer = Shapefile(
            fields=[Field("ID", "N", 4)],
            records=[
                ShapeRecord(Point(23.8, 40.4), {"ID": 1}),
                ShapeRecord(Point(21.7, 38.2), {"ID": 2}),
            ],
        )
        base = str(tmp_path / "points")
        write_shapefile(layer, base)
        back = read_shapefile(base + ".shp")
        assert [r.attributes["ID"] for r in back.records] == [1, 2]
        assert isinstance(back.records[0].geometry, Point)

    def test_polygon_with_hole(self, tmp_path):
        donut = loads_wkt(
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
            "(4 4, 6 4, 6 6, 4 6, 4 4))"
        )
        layer = Shapefile(
            fields=[Field("ID", "N", 4)],
            records=[ShapeRecord(donut, {"ID": 1})],
        )
        base = str(tmp_path / "donut")
        write_shapefile(layer, base)
        back = read_shapefile(base)
        geom = back.records[0].geometry
        assert geom.area == pytest.approx(96.0)

    def test_multipolygon_flattened(self, tmp_path):
        mp = MultiPolygon(
            [Polygon.square(0, 0, 2), Polygon.square(10, 10, 2)]
        )
        layer = Shapefile(
            fields=[Field("ID", "N", 4)],
            records=[ShapeRecord(mp, {"ID": 1})],
        )
        base = str(tmp_path / "mp")
        write_shapefile(layer, base)
        back = read_shapefile(base)
        assert back.records[0].geometry.area == pytest.approx(8.0)

    def test_empty_layer(self, tmp_path):
        layer = Shapefile(fields=[Field("ID", "N", 4)], records=[])
        base = str(tmp_path / "empty")
        write_shapefile(layer, base)
        back = read_shapefile(base)
        assert len(back) == 0


class TestFormatDetails:
    def test_magic_number(self, tmp_path, polygon_layer):
        base = str(tmp_path / "layer")
        shp, _, _ = write_shapefile(polygon_layer, base)
        with open(shp, "rb") as f:
            header = f.read(100)
        (file_code,) = struct.unpack(">i", header[:4])
        (version, shape_type) = struct.unpack("<ii", header[28:36])
        assert file_code == 9994
        assert version == 1000
        assert shape_type == 5  # polygon

    def test_shx_record_count(self, tmp_path, polygon_layer):
        base = str(tmp_path / "layer")
        _, shx, _ = write_shapefile(polygon_layer, base)
        with open(shx, "rb") as f:
            data = f.read()
        assert (len(data) - 100) // 8 == 2

    def test_dbf_header(self, tmp_path, polygon_layer):
        base = str(tmp_path / "layer")
        _, _, dbf = write_shapefile(polygon_layer, base)
        with open(dbf, "rb") as f:
            data = f.read()
        assert data[0] == 0x03
        (count,) = struct.unpack("<I", data[4:8])
        assert count == 2

    def test_field_name_length_enforced(self):
        with pytest.raises(ValueError):
            Field("WAY_TOO_LONG_NAME", "C", 8)

    def test_bad_field_type(self):
        with pytest.raises(ValueError):
            Field("X", "Z", 8)

    def test_not_a_shapefile(self, tmp_path):
        bogus = tmp_path / "x.shp"
        bogus.write_bytes(b"\0" * 120)
        with pytest.raises(ValueError):
            read_shapefile(str(bogus))
