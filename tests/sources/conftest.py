"""Fixtures for the multi-source federation suite.

The differential and outage-matrix tests each build several full
services, so the geography is the cheap deterministic one
(``detail=1``).  Seasons are handed out per test: the federation's
``prepare`` injects static-site events into the season it is given,
and two services with *different* federation seeds must not share one
mutated season.
"""

from __future__ import annotations

from datetime import datetime, timedelta, timezone

import pytest

from repro.datasets import SyntheticGreece
from repro.seviri.fires import FireSeason

CRISIS_START = datetime(2007, 8, 24, tzinfo=timezone.utc)

#: Acquisition slots per run; 15-minute cadence like the paper's MSG.
N_ACQUISITIONS = 3


@pytest.fixture(scope="package")
def sources_greece() -> SyntheticGreece:
    return SyntheticGreece(seed=42, detail=1)


@pytest.fixture
def make_season(sources_greece):
    def build(seed: int = 7) -> FireSeason:
        return FireSeason(
            sources_greece, CRISIS_START, days=1, seed=seed
        )

    return build


@pytest.fixture(scope="package")
def acquisition_requests():
    base = CRISIS_START + timedelta(hours=13)
    return [
        base + timedelta(minutes=15 * k)
        for k in range(N_ACQUISITIONS)
    ]
