"""Unit coverage for the per-source drivers and shared records."""

from __future__ import annotations

from datetime import timedelta

import pytest

from repro.core.annotation import (
    annotate_source_batch,
    source_name,
    source_uri,
)
from repro.core.config import ServiceConfig
from repro.arraydb.errors import VaultError
from repro.errors import ConfigurationError
from repro.rdf import Graph, NOA
from repro.sources import (
    FirmsCsvDriver,
    PolarOrbiterDriver,
    SourceBatch,
    SourcesConfig,
    WeatherStationDriver,
    read_firms_csv,
    simulate_static_sites,
    simulate_stations,
    sort_observations,
    write_firms_csv,
)
from repro.datasets.corine import FIRE_CONSISTENT_KEYS

from tests.sources.conftest import CRISIS_START


# -- configuration ---------------------------------------------------------


def test_sources_config_roundtrip():
    config = SourcesConfig(seed=9, stations=5, static_sites=2)
    config.validate()
    assert SourcesConfig.from_dict(config.to_dict()) == config


@pytest.mark.parametrize(
    "overrides",
    [
        {"fusion_window_minutes": 0},
        {"fusion_window_degrees": -0.1},
        {"single_source_decay": 0.0},
        {"single_source_decay": 1.5},
        {"stations": -1},
        {"static_sites": -3},
    ],
)
def test_sources_config_rejects_bad_values(overrides):
    with pytest.raises(ValueError):
        SourcesConfig(**overrides).validate()


def test_service_config_normalises_sources():
    config = ServiceConfig(sources=True)
    config.validate()
    assert isinstance(config.sources, SourcesConfig)

    config = ServiceConfig(sources={"seed": 3, "stations": 4})
    config.validate()
    assert config.sources.seed == 3
    assert config.sources.stations == 4

    with pytest.raises(ConfigurationError):
        ServiceConfig(sources="polar").validate()
    with pytest.raises(ConfigurationError):
        ServiceConfig(
            sources={"single_source_decay": 2.0}
        ).validate()
    with pytest.raises(ConfigurationError):
        ServiceConfig(mode="pre-teleios", sources=True).validate()


def test_source_uri_roundtrip():
    for name in ("polar", "weather", "seviri"):
        assert source_name(source_uri(name)) == name


# -- polar orbiter ---------------------------------------------------------


def test_polar_revisit_windows(sources_greece):
    driver = PolarOrbiterDriver(
        sources_greece, revisit_minutes=90, pass_minutes=20
    )
    base = CRISIS_START.replace(hour=0, minute=0)
    for minute in (0, 10, 19, 90, 109):
        assert driver.available(base + timedelta(minutes=minute))
    for minute in (20, 45, 89, 110, 170):
        assert not driver.available(
            base + timedelta(minutes=minute)
        )


def test_polar_acquire_deterministic(sources_greece, make_season):
    season = make_season()
    when = CRISIS_START + timedelta(hours=13)
    a = PolarOrbiterDriver(
        sources_greece, seed=5, revisit_minutes=15
    ).acquire(when, season)
    b = PolarOrbiterDriver(
        sources_greece, seed=5, revisit_minutes=15
    ).acquire(when, season)
    assert a.observations == b.observations
    assert a.kind == "fire"
    for obs in a.observations:
        assert 0.0 <= obs.confidence <= 1.0
        assert obs.extras["satellite"]
        assert obs.timestamp == when


# -- weather stations ------------------------------------------------------


def test_station_placement(sources_greece):
    stations = simulate_stations(sources_greece, count=8, seed=3)
    assert stations == simulate_stations(
        sources_greece, count=8, seed=3
    )
    assert len(stations) == 8
    for station in stations:
        assert sources_greece.is_land(station.lon, station.lat)
        assert station.municipality_index >= -1


def test_weather_driver_reports(sources_greece):
    driver = WeatherStationDriver(
        sources_greece, stations=6, seed=3
    )
    when = CRISIS_START + timedelta(hours=13)
    assert driver.available(when)
    batch = driver.acquire(when, None)
    assert batch.kind == "weather"
    assert len(batch) == 6
    again = driver.acquire(when, None)
    assert batch.observations == again.observations
    for obs in batch.observations:
        assert 0.0 <= obs.confidence <= 1.2
        assert "temperature_c" in obs.extras
        assert "relative_humidity" in obs.extras
        assert "wind_speed_ms" in obs.extras


# -- static sites ----------------------------------------------------------


def test_static_sites_on_fire_consistent_cover(sources_greece):
    sites = simulate_static_sites(sources_greece, count=3, seed=5)
    assert sites == simulate_static_sites(
        sources_greece, count=3, seed=5
    )
    for site in sites:
        assert sources_greece.is_land(site.lon, site.lat)
        cover = sources_greece.land_cover_at(site.lon, site.lat)
        assert cover in FIRE_CONSISTENT_KEYS
        envelope = site.footprint.envelope
        assert envelope.contains_point(site.lon, site.lat)


# -- FIRMS CSV vault format ------------------------------------------------


def test_firms_csv_roundtrip(tmp_path, sources_greece, make_season):
    season = make_season()
    when = CRISIS_START + timedelta(hours=13)
    batch = PolarOrbiterDriver(
        sources_greece, seed=5, revisit_minutes=15
    ).acquire(when, season)
    path = tmp_path / "polar.firms.csv"
    write_firms_csv(batch, str(path))
    loaded = read_firms_csv(str(path))
    assert len(loaded) == len(batch)
    original = sort_observations(list(batch.observations))
    for got, expect in zip(loaded, original):
        assert got.source == expect.source
        assert got.lon == pytest.approx(expect.lon)
        assert got.lat == pytest.approx(expect.lat)
        # The CSV rounds confidences to 4 decimals.
        assert got.confidence == pytest.approx(
            expect.confidence, abs=1e-4
        )
    assert FirmsCsvDriver().can_handle(str(path))


def test_firms_csv_rejects_bad_header(tmp_path):
    path = tmp_path / "bogus.firms.csv"
    path.write_text("lat,lon\n1,2\n")
    with pytest.raises(VaultError):
        read_firms_csv(str(path))
    assert not FirmsCsvDriver().can_handle(str(path))


# -- annotation ------------------------------------------------------------


def test_weather_annotation_replaces_station_star(sources_greece):
    driver = WeatherStationDriver(
        sources_greece, stations=4, seed=3
    )
    graph = Graph()
    first = CRISIS_START + timedelta(hours=13)
    second = first + timedelta(minutes=15)
    annotate_source_batch(graph, driver.acquire(first, None))
    size_after_first = len(graph)
    annotate_source_batch(graph, driver.acquire(second, None))
    # Replace, not accumulate: one star per station.
    assert len(graph) == size_after_first
    from repro.rdf import RDF

    subjects = set(
        graph.subjects(RDF.type, NOA.WeatherObservation)
    )
    assert len(subjects) == 4
    for subject in subjects:
        acquired = graph.value(
            subject, NOA.hasAcquisitionDateTime
        )
        assert acquired.lexical.endswith("13:15:00")


def test_fire_annotation_writes_detection_star(
    sources_greece, make_season
):
    from repro.rdf import RDF

    season = make_season()
    when = CRISIS_START + timedelta(hours=13)
    batch = PolarOrbiterDriver(
        sources_greece, seed=5, revisit_minutes=15
    ).acquire(when, season)
    graph = Graph()
    added = annotate_source_batch(graph, batch)
    assert added > 0
    detections = set(
        graph.subjects(RDF.type, NOA.SourceDetection)
    )
    assert len(detections) == len(batch)
    for subject in detections:
        assert graph.value(
            subject, NOA.fromSource
        ) == source_uri("polar")
