"""Fusion unit tests + seeded property tests for the dedup window.

The property suite generates synthetic "fires" far apart (≥ 4 windows)
with per-source detections jittered *inside* half a window, and
requires :func:`repro.sources.fusion.fuse` to neither split one fire
across sources nor merge two distinct fires — under every seeded
jitter and any arrival order.
"""

from __future__ import annotations

import itertools
import random
from datetime import timedelta

import pytest

from repro.sources import SourceObservation, fuse, fused_confidence

from tests.sources.conftest import CRISIS_START

WINDOW_DEG = 0.05
WINDOW_MIN = 30.0


def _obs(source, lon, lat, minutes=0.0, confidence=0.8):
    return SourceObservation(
        source=source,
        kind="fire",
        lon=lon,
        lat=lat,
        timestamp=CRISIS_START + timedelta(minutes=minutes),
        confidence=confidence,
    )


# -- fused_confidence ------------------------------------------------------


def test_fused_confidence_is_noisy_or():
    assert fused_confidence([0.5, 0.8]) == pytest.approx(0.9)
    assert fused_confidence([]) == 0.0
    assert fused_confidence([1.0, 0.2]) == 1.0


def test_fused_confidence_order_invariant_bitwise():
    rng = random.Random(11)
    for _ in range(50):
        values = [rng.random() for _ in range(rng.randint(1, 6))]
        shuffled = list(values)
        rng.shuffle(shuffled)
        # == (not approx): sorting before multiplying makes the
        # floating-point product identical across permutations.
        assert fused_confidence(values) == fused_confidence(shuffled)


def test_fused_confidence_monotone_and_clipped():
    base = fused_confidence([0.4, 0.3])
    assert fused_confidence([0.4, 0.3, 0.2]) >= base
    assert fused_confidence([-3.0, 7.0]) == 1.0
    assert 0.0 <= fused_confidence([0.999, 0.999]) <= 1.0


# -- fuse(): basic semantics ----------------------------------------------


def test_fuse_merges_within_window():
    clusters = fuse(
        [
            _obs("polar", 23.0, 38.0),
            _obs("seviri", 23.0 + WINDOW_DEG / 2, 38.0, minutes=10),
        ],
        window_minutes=WINDOW_MIN,
        window_degrees=WINDOW_DEG,
    )
    assert len(clusters) == 1
    assert clusters[0].sources == ("polar", "seviri")
    assert clusters[0].confirmed


def test_fuse_splits_outside_window():
    # Too far in space.
    spatial = fuse(
        [
            _obs("polar", 23.0, 38.0),
            _obs("seviri", 23.0 + 3 * WINDOW_DEG, 38.0),
        ],
        window_minutes=WINDOW_MIN,
        window_degrees=WINDOW_DEG,
    )
    assert len(spatial) == 2
    assert not any(c.confirmed for c in spatial)
    # Too far in time.
    temporal = fuse(
        [
            _obs("polar", 23.0, 38.0, minutes=0),
            _obs("seviri", 23.0, 38.0, minutes=2 * WINDOW_MIN),
        ],
        window_minutes=WINDOW_MIN,
        window_degrees=WINDOW_DEG,
    )
    assert len(temporal) == 2


def test_single_source_never_confirms():
    clusters = fuse(
        [
            _obs("polar", 23.0, 38.0, confidence=0.9),
            _obs("polar", 23.001, 38.001, confidence=0.7),
        ],
        window_minutes=WINDOW_MIN,
        window_degrees=WINDOW_DEG,
    )
    assert len(clusters) == 1
    assert not clusters[0].confirmed
    # One vote per source: the cluster's confidence is the best pixel,
    # not the noisy-OR of every pixel of the same instrument.
    assert clusters[0].confidence == pytest.approx(0.9)


# -- seeded dedup-window properties ---------------------------------------


def _synth_fires(seed: int):
    """K fires ≥ 4 windows apart, each seen by 1–3 sources with ≤ 3
    detections jittered within half a window in space and time."""
    rng = random.Random(seed)
    n_fires = rng.randint(2, 6)
    fires = []
    observations = []
    for k in range(n_fires):
        # A diagonal lattice keeps every pair ≥ 4 windows apart.
        lon = 20.0 + 4.0 * WINDOW_DEG * k
        lat = 36.0 + 4.0 * WINDOW_DEG * ((k * 7) % n_fires)
        sources = rng.sample(
            ["seviri", "polar", "viirs"], rng.randint(1, 3)
        )
        fire_obs = []
        for source in sources:
            for _ in range(rng.randint(1, 3)):
                fire_obs.append(
                    _obs(
                        source,
                        lon
                        + rng.uniform(-1, 1) * WINDOW_DEG / 4,
                        lat
                        + rng.uniform(-1, 1) * WINDOW_DEG / 4,
                        minutes=rng.uniform(0, WINDOW_MIN / 2),
                        confidence=rng.uniform(0.3, 1.0),
                    )
                )
        fires.append((set(sources), fire_obs))
        observations.extend(fire_obs)
    return fires, observations


@pytest.mark.parametrize("seed", range(20))
def test_dedup_window_neither_splits_nor_merges(seed):
    fires, observations = _synth_fires(seed)
    rng = random.Random(seed * 31 + 1)
    rng.shuffle(observations)
    clusters = fuse(
        observations,
        window_minutes=WINDOW_MIN,
        window_degrees=WINDOW_DEG,
    )
    assert len(clusters) == len(fires), (
        "fuse() split one fire or merged two distinct fires"
    )
    expected = sorted(
        (tuple(sorted(sources)), len(obs))
        for sources, obs in fires
    )
    got = sorted(
        (c.sources, len(c.observations)) for c in clusters
    )
    assert got == expected
    for cluster in clusters:
        assert cluster.confirmed == (len(cluster.sources) >= 2)


@pytest.mark.parametrize("seed", range(5))
def test_fuse_invariant_under_arrival_order(seed):
    _, observations = _synth_fires(seed)
    rng = random.Random(seed * 97 + 5)

    def canonical(clusters):
        return [
            (
                c.sources,
                c.confidence,
                c.centroid,
                tuple(
                    (o.source, o.lon, o.lat, o.confidence)
                    for o in o_sorted(c.observations)
                ),
            )
            for c in clusters
        ]

    def o_sorted(obs):
        return sorted(
            obs, key=lambda o: (o.source, o.lon, o.lat)
        )

    baseline = canonical(
        fuse(
            observations,
            window_minutes=WINDOW_MIN,
            window_degrees=WINDOW_DEG,
        )
    )
    for _ in range(4):
        shuffled = list(observations)
        rng.shuffle(shuffled)
        assert (
            canonical(
                fuse(
                    shuffled,
                    window_minutes=WINDOW_MIN,
                    window_degrees=WINDOW_DEG,
                )
            )
            == baseline
        )


def test_fuse_exhaustive_permutations_small():
    """Every permutation of a 4-observation input, not just samples."""
    observations = [
        _obs("polar", 23.0, 38.0, confidence=0.6),
        _obs("seviri", 23.01, 38.01, minutes=5, confidence=0.7),
        _obs("polar", 23.4, 38.4, confidence=0.5),
        _obs("viirs", 23.41, 38.41, minutes=8, confidence=0.9),
    ]
    results = set()
    for perm in itertools.permutations(observations):
        clusters = fuse(
            perm,
            window_minutes=WINDOW_MIN,
            window_degrees=WINDOW_DEG,
        )
        results.add(
            tuple(
                (c.sources, c.confidence) for c in clusters
            )
        )
    assert len(results) == 1
    (outcome,) = results
    assert outcome == (
        (("polar", "seviri"), fused_confidence([0.6, 0.7])),
        (("polar", "viirs"), fused_confidence([0.5, 0.9])),
    )
