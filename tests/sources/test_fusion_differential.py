"""The fusion differential suite (ISSUE 10 tentpole harness, part a).

Two layers of order-independence evidence:

* **fuse() vs an order-independent oracle** — an O(n²) BFS transitive
  closure over the observation *multiset* (no ordering anywhere in its
  construction) must agree with the grid/union-find implementation on
  every seeded input and under every tested arrival permutation.
* **end-to-end arrival order** — a full service run over a seeded
  crisis day must serve byte-identical hotspot GeoJSON (confirmed
  sets, fused confidences, per-hotspot source lists) whether the
  federation polls its drivers in registration order or reversed.
"""

from __future__ import annotations

import json
import random
from collections import deque
from datetime import timedelta

import pytest

from repro.core import FireMonitoringService, RunOptions, ServiceConfig
from repro.serve.hotspots import query_hotspots
from repro.sources import fuse
from tests.sources.conftest import CRISIS_START
from tests.sources.test_fusion import WINDOW_DEG, WINDOW_MIN, _synth_fires


# -- the order-independent oracle -----------------------------------------


def _oracle_clusters(observations, window_minutes, window_degrees):
    """Transitive closure by pairwise scan — O(n²), no grid, no
    union-find, and no dependence on input order: observations are
    keyed by their full value, and components come out as frozensets."""
    keyed = sorted(
        (
            (
                o.source,
                o.timestamp.isoformat(),
                round(o.lon, 12),
                round(o.lat, 12),
                round(o.confidence, 12),
            ),
            o,
        )
        for o in observations
    )
    window_seconds = window_minutes * 60.0

    def near(a, b):
        return (
            abs(a.lon - b.lon) <= window_degrees
            and abs(a.lat - b.lat) <= window_degrees
            and abs((a.timestamp - b.timestamp).total_seconds())
            <= window_seconds
        )

    n = len(keyed)
    adjacency = {i: [] for i in range(n)}
    for i in range(n):
        for j in range(i + 1, n):
            if near(keyed[i][1], keyed[j][1]):
                adjacency[i].append(j)
                adjacency[j].append(i)
    seen = set()
    components = []
    for start in range(n):
        if start in seen:
            continue
        queue = deque([start])
        component = set()
        while queue:
            node = queue.popleft()
            if node in component:
                continue
            component.add(node)
            queue.extend(
                peer
                for peer in adjacency[node]
                if peer not in component
            )
        seen |= component
        components.append(
            frozenset(keyed[index][0] for index in component)
        )
    return frozenset(components)


def _fuse_as_components(observations):
    clusters = fuse(
        observations,
        window_minutes=WINDOW_MIN,
        window_degrees=WINDOW_DEG,
    )
    return frozenset(
        frozenset(
            (
                o.source,
                o.timestamp.isoformat(),
                round(o.lon, 12),
                round(o.lat, 12),
                round(o.confidence, 12),
            )
            for o in c.observations
        )
        for c in clusters
    )


@pytest.mark.parametrize("seed", range(8))
def test_fuse_matches_oracle_under_permutations(seed):
    _, observations = _synth_fires(seed)
    oracle = _oracle_clusters(observations, WINDOW_MIN, WINDOW_DEG)
    rng = random.Random(seed * 131 + 7)
    for _ in range(5):
        shuffled = list(observations)
        rng.shuffle(shuffled)
        assert _fuse_as_components(shuffled) == oracle


def test_oracle_handles_chains():
    """A chain A–B–C where A and C are NOT directly within the window
    must still be one cluster (transitive closure), in both
    implementations."""
    from tests.sources.test_fusion import _obs

    chain = [
        _obs("seviri", 23.0, 38.0),
        _obs("polar", 23.0 + 0.9 * WINDOW_DEG, 38.0, minutes=5),
        _obs("viirs", 23.0 + 1.8 * WINDOW_DEG, 38.0, minutes=10),
    ]
    oracle = _oracle_clusters(chain, WINDOW_MIN, WINDOW_DEG)
    assert len(oracle) == 1
    assert _fuse_as_components(chain) == oracle


# -- end-to-end: crisis days under permuted driver order ------------------


def _crisis_day_features(
    greece, make_season, season_seed, reverse_drivers
):
    """Canonical /hotspots features after a 3-acquisition crisis run
    with the federation's drivers polled in the given order."""
    season = make_season(seed=season_seed)
    service = FireMonitoringService(
        greece=greece,
        config=ServiceConfig(
            seed=42,
            sources={
                "seed": season_seed,
                "polar_revisit_minutes": 15,
            },
        ),
    )
    try:
        if reverse_drivers:
            service.sources.drivers.reverse()
        base = CRISIS_START + timedelta(hours=13)
        requests = [
            base + timedelta(minutes=15 * k) for k in range(3)
        ]
        outcomes = service.run(
            requests, RunOptions(season=season, on_error="raise")
        )
        assert [o.status for o in outcomes] == ["ok"] * 3
        collection = query_hotspots(
            service.publisher.require_latest()
        )
        # The snapshot provenance block lists per-source reports in
        # poll order — deliberately excluded from the equality: the
        # *data* must be order-independent, the provenance may not be.
        return json.dumps(collection["features"], sort_keys=True)
    finally:
        service.close()


@pytest.mark.parametrize("season_seed", [3, 7, 11])
def test_arrival_order_is_invisible_in_served_data(
    sources_greece, make_season, season_seed
):
    forward = _crisis_day_features(
        sources_greece, make_season, season_seed, reverse_drivers=False
    )
    reverse = _crisis_day_features(
        sources_greece, make_season, season_seed, reverse_drivers=True
    )
    assert forward == reverse
    features = json.loads(forward)
    confirmed = [
        f
        for f in features
        if f["properties"]["confirmation"] == "confirmed"
    ]
    cross = [f for f in features if f["properties"]["sources"]]
    # The run must actually exercise fusion to mean anything.
    assert confirmed, "crisis day produced no confirmed hotspots"
    assert cross, "crisis day produced no cross-source matches"
