"""Source-outage fault matrix (ISSUE 10 tentpole harness, part b).

Every federated source is dropped at every acquisition phase, in both
serial and pipelined runs.  Losing a source must be a *degradation*:
the acquisition completes, the served confirmed-hotspot set is a
labelled subset of the no-fault oracle's, the degraded outcome names
the missing source, and ``health()`` reports the gap.  A repeated
outage must open the per-source circuit breaker, which then
short-circuits the driver (``breaker-open`` gaps) instead of hammering
it.
"""

from __future__ import annotations

import json
from datetime import timedelta

import pytest

from repro.core import FireMonitoringService, RunOptions, ServiceConfig
from repro.faults import FaultPlan, inject
from repro.serve.hotspots import query_hotspots

from tests.sources.conftest import CRISIS_START, N_ACQUISITIONS

SOURCES = ("polar", "weather")
SEASON_SEED = 7


def _requests():
    base = CRISIS_START + timedelta(hours=13)
    return [
        base + timedelta(minutes=15 * k)
        for k in range(N_ACQUISITIONS)
    ]


def _build(greece, breaker_threshold=2):
    return FireMonitoringService(
        greece=greece,
        config=ServiceConfig(
            seed=42,
            sources={
                "seed": SEASON_SEED,
                "polar_revisit_minutes": 15,
                "breaker_threshold": breaker_threshold,
            },
        ),
    )


def _options(season, pipelined):
    return RunOptions(
        season=season,
        pipelined=pipelined,
        worker_kind="thread",
    )


def _served(service):
    """(confirmed URI set, full canonical feature JSON)."""
    collection = query_hotspots(service.publisher.require_latest())
    confirmed = {
        f["properties"]["hotspot"]
        for f in collection["features"]
        if f["properties"]["confirmation"] == "confirmed"
    }
    return confirmed, json.dumps(
        collection["features"], sort_keys=True
    )


@pytest.fixture(scope="module")
def oracle(sources_greece):
    """Confirmed set + features of a run that loses nothing."""
    from repro.seviri.fires import FireSeason

    season = FireSeason(
        sources_greece, CRISIS_START, days=1, seed=SEASON_SEED
    )
    service = _build(sources_greece)
    try:
        outcomes = service.run(
            _requests(), _options(season, pipelined=False)
        )
        assert [o.status for o in outcomes] == ["ok"] * N_ACQUISITIONS
        return _served(service)
    finally:
        service.close()


@pytest.mark.parametrize(
    "pipelined", [False, True], ids=["serial", "pipelined"]
)
@pytest.mark.parametrize("fault_index", range(N_ACQUISITIONS))
@pytest.mark.parametrize("source", SOURCES)
def test_outage_cell(
    source, fault_index, pipelined, sources_greece, make_season, oracle
):
    season = make_season(seed=SEASON_SEED)
    service = _build(sources_greece)
    plan = FaultPlan(seed=fault_index).raise_in(
        f"source.{source}", index=fault_index
    )
    try:
        with inject(plan):
            outcomes = service.run(
                _requests(), _options(season, pipelined)
            )
        statuses = [o.status for o in outcomes]
        expected = ["ok"] * N_ACQUISITIONS
        expected[fault_index] = "degraded"
        assert statuses == expected

        # The degraded outcome is labelled: it names the lost source,
        # and its per-source reports carry the outage.
        degraded = outcomes[fault_index]
        assert any(
            f"source {source} unavailable" in error
            for error in degraded.errors
        )
        by_source = {
            r["source"]: r for r in degraded.source_reports
        }
        assert by_source[source]["status"] == "outage"
        others = [
            r
            for name, r in by_source.items()
            if name != source
        ]
        assert others and all(
            r["status"] == "ok" for r in others
        ), "the surviving sources must keep flowing"

        # Subset, not divergence: losing corroborating evidence can
        # only shrink the confirmed set (the SEVIRI hotspots
        # themselves all survive).
        oracle_confirmed, oracle_features = oracle
        confirmed, _features = _served(service)
        assert confirmed <= oracle_confirmed
        if source == "weather":
            # Weather never corroborates fire pixels, so the fire
            # data is untouched — byte-identical to the oracle.
            assert _features == oracle_features

        # health() reports the gap.
        report = service.health()
        health = report["sources"][source]
        assert health["outages_total"] == 1
        assert health["breaker"] == "closed"
        expected_last = (
            "ok" if fault_index < N_ACQUISITIONS - 1 else "outage"
        )
        assert health["last_status"] == expected_last
        assert report["acquisitions"].get("degraded") == 1
    finally:
        service.close()


def test_repeated_outage_opens_breaker(sources_greece, make_season):
    season = make_season(seed=SEASON_SEED)
    service = _build(sources_greece, breaker_threshold=1)
    plan = FaultPlan(seed=0).raise_in(
        "source.polar", index=0
    )
    try:
        with inject(plan):
            outcomes = service.run(
                _requests(), _options(season, pipelined=False)
            )
        # Acquisition 0 is a real outage; the breaker (threshold 1,
        # 60 s recovery) then short-circuits the remaining slots.
        assert [o.status for o in outcomes] == [
            "degraded"
        ] * N_ACQUISITIONS
        statuses = [
            {
                r["source"]: r["status"]
                for r in o.source_reports
            }["polar"]
            for o in outcomes
        ]
        assert statuses == [
            "outage",
            "breaker-open",
            "breaker-open",
        ]
        health = service.health()["sources"]["polar"]
        assert health["breaker"] == "open"
        assert health["outages_total"] == N_ACQUISITIONS
        # Weather kept flowing throughout.
        assert (
            service.health()["sources"]["weather"][
                "observations_total"
            ]
            > 0
        )
    finally:
        service.close()
