"""The fluent stSPARQL query builder."""

import pytest

from repro.stsparql import Strabon
from repro.stsparql.builder import (
    SelectBuilder,
    UpdateBuilder,
    datetime_literal,
    wkt_literal,
)

DATA = """
@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .
@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .
@prefix coast: <http://teleios.di.uoa.gr/ontologies/coastlineOntology.owl#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
noa:h1 a noa:Hotspot ;
  noa:hasAcquisitionDateTime "2007-08-24T14:00:00"^^xsd:dateTime ;
  noa:hasConfidence 1.0 ;
  strdf:hasGeometry "POLYGON ((21.3 37.4, 21.5 37.4, 21.5 37.6, 21.3 37.6, 21.3 37.4))"^^strdf:geometry .
noa:h2 a noa:Hotspot ;
  noa:hasAcquisitionDateTime "2007-08-25T10:00:00"^^xsd:dateTime ;
  noa:hasConfidence 0.5 ;
  strdf:hasGeometry "POLYGON ((30 30, 30.2 30, 30.2 30.2, 30 30.2, 30 30))"^^strdf:geometry .
coast:c1 a coast:Coastline ;
  strdf:hasGeometry "POLYGON ((21 37, 22 37, 22 38, 21 38, 21 37))"^^strdf:geometry .
"""


@pytest.fixture
def engine():
    s = Strabon()
    s.load_turtle(DATA)
    return s


class TestSelectBuilder:
    def test_simple_select(self, engine):
        result = (
            SelectBuilder()
            .select("?h")
            .where("?h", "a", "noa:Hotspot")
            .run(engine)
        )
        assert len(result) == 2

    def test_spatial_filter_with_constant(self, engine):
        region = wkt_literal(
            "POLYGON ((21 37, 22 37, 22 38, 21 38, 21 37))"
        )
        result = (
            SelectBuilder()
            .select("?h")
            .where("?h", "a", "noa:Hotspot")
            .where("?h", "strdf:hasGeometry", "?g")
            .filter_spatial("anyInteract", "?g", region)
            .run(engine)
        )
        assert [row["h"].local_name() for row in result] == ["h1"]

    def test_time_window(self, engine):
        result = (
            SelectBuilder()
            .select("?h")
            .where("?h", "noa:hasAcquisitionDateTime", "?t")
            .filter_time_between(
                "?t", "2007-08-24T00:00:00", "2007-08-24T23:59:59"
            )
            .run(engine)
        )
        assert len(result) == 1

    def test_optional_not_bound_idiom(self, engine):
        result = (
            SelectBuilder()
            .select("?h")
            .where("?h", "a", "noa:Hotspot")
            .where("?h", "strdf:hasGeometry", "?hGeo")
            .optional_group(
                lambda sub: sub.where("?c", "a", "coast:Coastline")
                .where("?c", "strdf:hasGeometry", "?cGeo")
                .filter("strdf:anyInteract(?hGeo, ?cGeo)")
            )
            .filter_not_bound("?c")
            .run(engine)
        )
        assert [row["h"].local_name() for row in result] == ["h2"]

    def test_aggregation(self, engine):
        result = (
            SelectBuilder()
            .select_expression("COUNT(?h)", "?n")
            .where("?h", "a", "noa:Hotspot")
            .run(engine)
        )
        assert int(result.rows[0]["n"].lexical) == 2

    def test_order_limit_distinct(self, engine):
        result = (
            SelectBuilder()
            .select("?c")
            .distinct()
            .where("?h", "noa:hasConfidence", "?c")
            .order_by("?c", descending=True)
            .limit(1)
            .run(engine)
        )
        assert float(result.rows[0]["c"].lexical) == 1.0

    def test_requires_projection_and_pattern(self):
        with pytest.raises(ValueError):
            SelectBuilder().where("?s", "?p", "?o").build()
        with pytest.raises(ValueError):
            SelectBuilder().select("?s").build()

    def test_unknown_prefix_rejected(self):
        with pytest.raises(ValueError):
            SelectBuilder().prefix("bogus")

    def test_plain_literal_quoting(self, engine):
        engine.load_turtle(
            '@prefix noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#> .\n'
            'noa:h1 noa:isDerivedFromSensor "MSG2" .'
        )
        result = (
            SelectBuilder()
            .select("?h")
            .where("?h", "noa:isDerivedFromSensor", "MSG2")
            .run(engine)
        )
        assert len(result) == 1


class TestUpdateBuilder:
    def test_delete_where(self, engine):
        result = (
            UpdateBuilder()
            .delete("?h", "noa:hasConfidence", "?c")
            .where("?h", "noa:hasConfidence", "?c")
            .filter("?c < 0.7")
            .run(engine)
        )
        assert result.removed == 1

    def test_insert_where(self, engine):
        result = (
            UpdateBuilder()
            .insert("?h", "noa:flagged", "noa:yes")
            .where("?h", "a", "noa:Hotspot")
            .run(engine)
        )
        assert result.added == 2

    def test_needs_template(self):
        with pytest.raises(ValueError):
            UpdateBuilder().where("?s", "?p", "?o").build()

    def test_datetime_literal_helper(self):
        assert datetime_literal("2007-08-24T00:00:00").endswith(
            "^^xsd:dateTime"
        )
