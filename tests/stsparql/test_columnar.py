"""Columnar-engine specifics: explain plans, metrics, configuration.

Result *equality* with the interpreted engine lives in
``test_differential.py``; this file covers the machinery around the
engine — the EXPLAIN surface, the observability counters, the perf
knob and the SolutionSet helpers the executor leans on.
"""

import pytest

from repro import obs, perf
from repro.rdf import Literal, NOA, RDF, XSD
from repro.stsparql import Strabon
from repro.stsparql.eval import SolutionSet

pytest.importorskip("numpy")

PREFIX = (
    "PREFIX noa: <http://teleios.di.uoa.gr/ontologies/noaOntology.owl#>\n"
)


def small_engine(**kwargs):
    engine = Strabon(**kwargs)
    for i in range(8):
        node = NOA.term(f"h{i}")
        engine.add(node, RDF.type, NOA.term("Hotspot"))
        engine.add(
            node,
            NOA.term("hasConfidence"),
            Literal(repr(i / 8), datatype=XSD.base + "double"),
        )
    return engine


@pytest.fixture()
def observability():
    obs.enable()
    try:
        yield obs
    finally:
        obs.disable()
        obs.reset()


class TestExplain:
    def test_explain_reports_join_order_and_engine(self):
        engine = small_engine()
        doc = engine.query(
            PREFIX
            + """SELECT ?h ?c WHERE {
                ?h a noa:Hotspot ; noa:hasConfidence ?c .
                FILTER(?c > 0.5) }""",
            explain=True,
        )
        assert doc["engine"] == "columnar"
        assert doc["operation"] == "select"
        assert doc["rows"] == 3
        (bgp,) = doc["plan"]
        assert bgp["operator"] == "bgp"
        assert bgp["engine"] == "columnar"
        assert len(bgp["join_order"]) == 2
        assert len(bgp["estimates"]) == 2
        # Estimates are the planner's scores: ordered greedily.
        assert all(isinstance(e, int) for e in bgp["estimates"])

    def test_explain_still_executes(self):
        engine = small_engine()
        doc = engine.query(
            PREFIX + "INSERT { ?h noa:seen 1 } "
            "WHERE { ?h a noa:Hotspot }",
            explain=True,
        )
        assert doc["operation"] == "update"
        assert len(doc["plan"]) == 1
        assert engine.ask(PREFIX + "ASK { ?h noa:seen 1 }")

    def test_snapshot_view_explain(self):
        engine = small_engine()
        view = engine.snapshot_view()
        doc = view.query(
            PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot }",
            explain=True,
        )
        assert doc["engine"] == "columnar"
        assert doc["rows"] == 8
        assert doc["plan"][0]["join_order"]

    def test_interpreted_engine_explains_too(self):
        engine = small_engine(query_engine="interpreted")
        doc = engine.query(
            PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot }",
            explain=True,
        )
        assert doc["engine"] == "interpreted"
        assert doc["plan"][0]["engine"] == "interpreted"


class TestMetrics:
    def test_columnar_metrics_registered(self, observability):
        engine = small_engine()
        engine.select(
            PREFIX
            + """SELECT ?h ?c WHERE {
                ?h a noa:Hotspot ; noa:hasConfidence ?c .
                FILTER(?c >= 0.25) }"""
        )
        names = {
            m["name"] for m in observability.get_metrics().collect()
        }
        assert "stsparql_columnar_batches_total" in names
        assert "stsparql_columnar_batch_rows" in names
        assert "stsparql_columnar_dictionary_terms" in names
        assert "stsparql_columnar_vectorised_filters_total" in names

    def test_filter_memo_counters(self, observability):
        engine = small_engine()
        # A string filter takes the per-distinct-combination path.
        engine.add(
            NOA.term("h0"), NOA.term("producedBy"), Literal("MSG2")
        )
        engine.add(
            NOA.term("h1"), NOA.term("producedBy"), Literal("MSG2")
        )
        engine.select(
            PREFIX
            + """SELECT ?h WHERE { ?h noa:producedBy ?s .
                FILTER(?s = "MSG2") }"""
        )
        names = {
            m["name"] for m in observability.get_metrics().collect()
        }
        assert "stsparql_columnar_filter_memo_misses_total" in names


class TestPerfKnob:
    def test_engine_setting_validates(self):
        with pytest.raises(ValueError):
            perf.configure(query_engine="turbo")
        with pytest.raises(ValueError):
            perf.configure(columnar_batch_rows=0)
        # Rejected values must not stick.
        assert perf.get_config().query_engine in (
            "auto",
            "columnar",
            "interpreted",
        )
        assert perf.get_config().columnar_batch_rows >= 1
        original = perf.get_config().query_engine
        try:
            perf.configure(query_engine="interpreted")
            assert Strabon().engine_name == "interpreted"
            perf.configure(query_engine="columnar")
            assert Strabon().engine_name == "columnar"
        finally:
            perf.configure(query_engine=original)

    def test_auto_routes_updates_row_wise(self):
        # "auto" (the default) answers read queries from the columnar
        # engine but evaluates update WHERE clauses row-wise; explain
        # reports the engine that actually ran each request.
        engine = small_engine(query_engine="auto")
        assert engine.engine_name == "columnar"
        doc = engine.query(
            PREFIX + "SELECT ?h WHERE { ?h a noa:Hotspot }",
            explain=True,
        )
        assert doc["engine"] == "columnar"
        doc = engine.query(
            PREFIX
            + """DELETE { ?h noa:producedBy ?s }
                WHERE { ?h noa:producedBy ?s }""",
            explain=True,
        )
        assert doc["engine"] == "interpreted"
        forced = small_engine(query_engine="columnar")
        doc = forced.query(
            PREFIX
            + """DELETE { ?h noa:producedBy ?s }
                WHERE { ?h noa:producedBy ?s }""",
            explain=True,
        )
        assert doc["engine"] == "columnar"

    def test_batch_size_one_still_correct(self):
        original = perf.get_config().columnar_batch_rows
        try:
            perf.configure(columnar_batch_rows=1)
            engine = small_engine()
            got = engine.select(
                PREFIX
                + """SELECT ?h ?c WHERE {
                    ?h a noa:Hotspot ; noa:hasConfidence ?c .
                    FILTER(?c > 0.3) }"""
            )
            assert len(got) == 5
        finally:
            perf.configure(columnar_batch_rows=original)


class TestSolutionSet:
    def test_column_raises_for_unknown_variable(self):
        ss = SolutionSet(["a"], [{"a": Literal("x")}])
        assert ss.column("a") == [Literal("x")]
        assert ss.column("?a") == [Literal("x")]
        with pytest.raises(KeyError):
            ss.column("missing")

    def test_equality_ignores_row_order(self):
        r1 = {"a": Literal("x")}
        r2 = {"a": Literal("y")}
        assert SolutionSet(["a"], [r1, r2]) == SolutionSet(
            ["a"], [r2, r1]
        )
        assert SolutionSet(["a"], [r1]) != SolutionSet(["a"], [r2])
        assert SolutionSet(["a"], [r1, r1]) != SolutionSet(
            ["a"], [r1]
        )

    def test_equality_needs_same_variables(self):
        row = {"a": Literal("x")}
        assert SolutionSet(["a"], [row]) != SolutionSet(
            ["a", "b"], [row]
        )
